"""Tests for the lean-consensus state machine (paper Section 4)."""

import pytest

from repro.errors import ProtocolError
from repro.core.machine import KeepTie, LeanConsensus
from repro.memory import make_racing_arrays
from repro.types import OpKind, OpResult, read, write


def step(machine, memory):
    """Execute the machine's next operation against the memory."""
    res = memory.execute(machine.peek(), pid=machine.pid)
    machine.apply(res)
    return res


def run_solo(machine, memory, max_ops=100):
    while not machine.done and machine.ops < max_ops:
        step(machine, memory)
    return machine


class TestOpSequence:
    def test_round_is_two_reads_write_read(self):
        """The paper fixes the per-round sequence exactly (Section 4)."""
        m = LeanConsensus(0, 1)
        mem = make_racing_arrays()
        ops = []
        for _ in range(4):
            ops.append(m.peek())
            step(m, mem)
        assert ops[0] == read("a0", 1)
        assert ops[1] == read("a1", 1)
        assert ops[2] == write("a1", 1, 1)
        assert ops[3] == read("a0", 0)

    def test_ops_per_round_constant(self):
        assert LeanConsensus.OPS_PER_ROUND == 4

    def test_second_round_targets_round_2(self):
        m = LeanConsensus(0, 0)
        mem = make_racing_arrays()
        for _ in range(4):
            step(m, mem)  # round 1; a1[0] prefix is 1, so no decision
        assert m.round == 2
        assert m.peek() == read("a0", 2)

    def test_writes_preferred_array(self):
        m0 = LeanConsensus(0, 0)
        mem = make_racing_arrays()
        step(m0, mem)
        step(m0, mem)
        assert m0.peek() == write("a0", 1, 1)


class TestSoloExecution:
    """A process running alone (Lemma 3 with n = 1)."""

    @pytest.mark.parametrize("bit", [0, 1])
    def test_decides_own_input_in_8_ops(self, bit):
        m = run_solo(LeanConsensus(0, bit), make_racing_arrays())
        assert m.decision is not None
        assert m.decision.value == bit
        assert m.decision.ops == 8
        assert m.decision.round == 2

    def test_no_decision_in_round_1(self):
        """a_{1-p}[0] is the read-only 1, so round 1 never decides."""
        m = LeanConsensus(0, 0)
        mem = make_racing_arrays()
        for _ in range(4):
            step(m, mem)
        assert m.decision is None


class TestAdoptionRule:
    def test_adopts_when_rival_marked_and_own_not(self):
        mem = make_racing_arrays()
        mem.execute(write("a1", 1, 1))
        m = LeanConsensus(0, 0)
        step(m, mem)  # read a0[1] = 0
        step(m, mem)  # read a1[1] = 1 -> adopt 1
        assert m.preference == 1
        assert m.preference_changes == 1

    def test_keeps_preference_on_empty_tie(self):
        m = LeanConsensus(0, 0)
        mem = make_racing_arrays()
        step(m, mem)
        step(m, mem)
        assert m.preference == 0
        assert m.preference_changes == 0

    def test_keeps_preference_on_full_tie(self):
        mem = make_racing_arrays()
        mem.execute(write("a0", 1, 1))
        mem.execute(write("a1", 1, 1))
        m = LeanConsensus(0, 1)
        step(m, mem)
        step(m, mem)
        assert m.preference == 1  # lean-consensus keeps on ties

    def test_no_adoption_when_own_marked(self):
        mem = make_racing_arrays()
        mem.execute(write("a0", 1, 1))
        m = LeanConsensus(0, 0)
        step(m, mem)
        step(m, mem)
        assert m.preference == 0


class TestDecisionRule:
    def test_decides_when_behind_rival_round_unmarked(self):
        """Process at round 2 decides if a_{1-p}[1] is still 0."""
        m = run_solo(LeanConsensus(0, 1), make_racing_arrays())
        assert m.decision.round == 2

    def test_does_not_decide_when_rival_marked(self):
        mem = make_racing_arrays()
        mem.execute(write("a1", 1, 1))
        mem.execute(write("a1", 2, 1))
        mem.execute(write("a1", 3, 1))
        m = LeanConsensus(0, 0)
        # Round 1: reads (0, 1) -> adopts 1; writes a1[1]; reads a0[0]=1.
        for _ in range(4):
            step(m, mem)
        assert m.decision is None
        assert m.round == 2


class TestLifecycle:
    def test_peek_after_decision_raises(self):
        m = run_solo(LeanConsensus(0, 0), make_racing_arrays())
        with pytest.raises(ProtocolError):
            m.peek()

    def test_halted_machine_is_done(self):
        m = LeanConsensus(0, 0)
        m.halted = True
        assert m.done
        with pytest.raises(ProtocolError):
            m.peek()

    def test_apply_wrong_result_raises(self):
        m = LeanConsensus(0, 0)
        with pytest.raises(ProtocolError):
            m.apply(OpResult(read("a1", 1), 0))

    def test_bad_input_rejected(self):
        with pytest.raises(ProtocolError):
            LeanConsensus(0, 2)

    def test_ops_counter(self):
        m = LeanConsensus(0, 0)
        mem = make_racing_arrays()
        step(m, mem)
        step(m, mem)
        assert m.ops == 2

    def test_decided_value_property(self):
        m = LeanConsensus(0, 1)
        assert m.decided_value is None
        run_solo(m, make_racing_arrays())
        assert m.decided_value == 1


class TestRoundCap:
    def test_overflow_at_cap(self):
        mem = make_racing_arrays()
        # Pre-mark a1 so the 0-preferring machine can never decide.
        for r in range(1, 10):
            mem.execute(write("a0", r, 1))
            mem.execute(write("a1", r, 1))
        m = LeanConsensus(0, 0, round_cap=3)
        while not m.done:
            step(m, mem)
        assert m.overflowed
        assert m.decision is None
        assert m.round == 3
        with pytest.raises(ProtocolError):
            m.peek()

    def test_no_overflow_when_decides_first(self):
        m = run_solo(LeanConsensus(0, 0, round_cap=5), make_racing_arrays())
        assert not m.overflowed
        assert m.decision is not None


class TestSnapshots:
    def test_roundtrip_mid_round(self):
        m = LeanConsensus(0, 0)
        mem = make_racing_arrays()
        step(m, mem)
        snap = m.snapshot()
        peek_before = m.peek()
        step(m, mem)
        step(m, mem)
        m.restore(snap)
        assert m.peek() == peek_before
        assert m.ops == 1

    def test_roundtrip_preserves_decision(self):
        m = run_solo(LeanConsensus(0, 1), make_racing_arrays())
        snap = m.snapshot()
        m2 = LeanConsensus(0, 1)
        m2.restore(snap)
        assert m2.decision == m.decision
        assert m2.done

    def test_snapshot_hashable(self):
        m = LeanConsensus(0, 0)
        assert hash(m.snapshot()) == hash(m.snapshot())


class TestTwoProcessInterleavings:
    def test_sequential_execution_adopts_leader_value(self):
        """A late process joins the early decider's value (Lemma 4)."""
        mem = make_racing_arrays()
        fast = run_solo(LeanConsensus(0, 1), mem)
        slow = run_solo(LeanConsensus(1, 0), mem)
        assert fast.decision.value == 1
        assert slow.decision.value == 1
        assert slow.decision.round <= fast.decision.round + 1

    def test_lockstep_round_robin_does_not_decide(self):
        """Perfect lockstep keeps lean-consensus undecided (why noise is
        needed)."""
        mem = make_racing_arrays()
        machines = [LeanConsensus(0, 0), LeanConsensus(1, 1)]
        for _ in range(40):  # 10 rounds of lockstep
            for m in machines:
                step(m, mem)
        assert all(m.decision is None for m in machines)

    def test_required_arrays(self):
        assert LeanConsensus.required_arrays() == [("a0", 1), ("a1", 1)]
