"""SweepSpec: grid compilation, seed discipline, cache, and aggregators."""

import numpy as np
import pytest

from repro._rng import make_rng
from repro.analysis.aggregate import (
    BootstrapCI,
    Mean,
    MeanCI,
    TailProbabilities,
    agreement_rate,
    decided_count,
    fit_log_over_cells,
    mean_halted,
)
from repro.analysis.stats import mean_confidence_interval
from repro.api import (
    BatchRunner,
    FailureSpec,
    NoiseSpec,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    apply_axis_value,
    run_batch,
    run_sweep,
)
from repro.errors import AggregationError, ConfigurationError

EXPO = NoiseSpec.of("exponential", mean=1.0)
UNIF = NoiseSpec.of("uniform", low=0.0, high=2.0)


def base_spec(**kwargs):
    return TrialSpec(n=1, model=NoisyModelSpec(noise=EXPO),
                     stop_after_first_decision=True, **kwargs)


def two_axis_sweep(trials=5):
    return SweepSpec(
        base=base_spec(),
        axes=(SweepAxis("model.noise", (EXPO, UNIF), name="distribution",
                        labels=("expo", "unif")),
              SweepAxis("n", (2, 8))),
        trials=trials)


class TestSweepCompilation:
    def test_grid_order_is_row_major(self):
        cells = two_axis_sweep().cells()
        assert [cell.coords for cell in cells] == [
            (("distribution", EXPO), ("n", 2)),
            (("distribution", EXPO), ("n", 8)),
            (("distribution", UNIF), ("n", 2)),
            (("distribution", UNIF), ("n", 8)),
        ]
        assert cells[2].label("distribution") == "unif"
        assert cells[3].spec.n == 8
        assert cells[3].spec.model.noise == UNIF
        assert two_axis_sweep().shape == (2, 2)
        assert two_axis_sweep().size == 4

    def test_params_path_axis(self):
        spec = TrialSpec(n=4, model=NoisyModelSpec(noise=NoiseSpec.of(
            "truncated-normal", mu=1.0, sigma=0.2, low=0.0, high=2.0)))
        out = apply_axis_value(spec, "model.noise.params.sigma", 0.4)
        assert out.model.noise.param("sigma") == 0.4
        assert out.model.noise.param("mu") == 1.0

    def test_failure_and_protocol_paths(self):
        spec = base_spec()
        assert apply_axis_value(spec, "failures.h", 0.1).failures.h == 0.1
        assert apply_axis_value(spec, "protocol.name",
                                "optimized").protocol.name == "optimized"

    def test_axis_defaults_and_validation(self):
        axis = SweepAxis("failures.h", (0.0, 0.1))
        assert axis.name == "h"
        assert axis.label(1) == "0.1"
        with pytest.raises(ConfigurationError):
            SweepAxis("n", ())
        with pytest.raises(ConfigurationError):
            SweepAxis("n", (1, 2), labels=("just-one",))
        with pytest.raises(ConfigurationError):
            SweepSpec(base=base_spec(), trials=2,
                      axes=(SweepAxis("n", (1,)), SweepAxis("n", (2,))))

    def test_bad_path_raises_with_field_name(self):
        sweep = SweepSpec(base=base_spec(),
                          axes=(SweepAxis("model.nope", (1,)),), trials=1)
        with pytest.raises(ConfigurationError, match="nope"):
            sweep.cells()

    def test_invalid_axis_value_fails_spec_validation(self):
        sweep = SweepSpec(base=base_spec(),
                          axes=(SweepAxis("failures.h", (2.0,)),), trials=1)
        with pytest.raises(ConfigurationError):
            sweep.cells()


class TestSweepExecution:
    def test_bit_identical_to_manual_grid_loop(self):
        trials = 5
        root = make_rng(2000)
        runner = BatchRunner()
        manual = []
        for noise in (EXPO, UNIF):
            for n in (2, 8):
                spec = base_spec().replace(n=n).replace(
                    model=NoisyModelSpec(noise=noise))
                manual.append(runner.run(spec, trials, seed=root))
        result = run_sweep(two_axis_sweep(trials), seed=2000)
        assert result.seed_entropy == 2000
        for lst, (cell, frame) in zip(manual, result):
            assert frame.to_trial_results() == lst, cell.coords

    def test_workers_do_not_change_results(self):
        serial = run_sweep(two_axis_sweep(), seed=3)
        parallel = run_sweep(two_axis_sweep(), seed=3, workers=2)
        assert serial.frames == parallel.frames

    def test_frame_lookup_by_coords(self):
        result = run_sweep(two_axis_sweep(), seed=1)
        assert result.frame(distribution=UNIF, n=8) is result.frames[3]
        with pytest.raises(KeyError):
            result.frame(n=8)  # two matches
        with pytest.raises(KeyError):
            result.frame(n=99)

    def test_sweep_run_method(self):
        assert two_axis_sweep().run(seed=4).frames == run_sweep(
            two_axis_sweep(), seed=4).frames


class TestSeedLane:
    """The legacy Generator-root spawn lane is supported but flagged."""

    def test_value_seeds_take_the_analytic_lane_silently(self):
        import warnings

        import numpy as np

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for seed in (7, np.random.SeedSequence(7)):
                assert run_sweep(two_axis_sweep(), seed=seed).seed_lane == \
                    "analytic"

    def test_generator_root_warns_and_is_recorded(self):
        from repro.api import LegacySeedLaneWarning

        with pytest.warns(LegacySeedLaneWarning, match="legacy spawn lane"):
            result = run_sweep(two_axis_sweep(), seed=make_rng(7))
        assert result.seed_lane == "legacy-spawn"

    def test_legacy_seed_ok_suppresses_the_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = run_sweep(two_axis_sweep(), seed=make_rng(7),
                               legacy_seed_ok=True)
        assert result.seed_lane == "legacy-spawn"

    def test_sweep_value_seed_conversion_is_bit_identical(self):
        from repro.experiments._common import sweep_value_seed

        legacy = run_sweep(two_axis_sweep(), seed=make_rng(42),
                           legacy_seed_ok=True)
        analytic = run_sweep(two_axis_sweep(),
                             seed=sweep_value_seed(make_rng(42)))
        assert analytic.seed_lane == "analytic"
        assert analytic.frames == legacy.frames


class TestSweepCache:
    def test_cache_round_trip_and_seed_block_burning(self, tmp_path):
        sweep = two_axis_sweep()
        first = run_sweep(sweep, seed=2000, cache_dir=str(tmp_path))
        again = run_sweep(sweep, seed=2000, cache_dir=str(tmp_path))
        assert first.cache_hits == 0
        assert again.cache_hits == 4
        assert first.frames == again.frames
        # cached cells must burn their seed blocks: a partially cached
        # run still gives later cells identical seeds
        for path in sorted(tmp_path.iterdir())[:2]:
            path.unlink()
        partial = run_sweep(sweep, seed=2000, cache_dir=str(tmp_path))
        assert partial.cache_hits == 2
        assert partial.frames == first.frames

    def test_corrupted_cache_entry_is_a_miss(self, tmp_path):
        sweep = two_axis_sweep()
        first = run_sweep(sweep, seed=2000, cache_dir=str(tmp_path))
        for path in tmp_path.glob("*.npz"):
            path.write_bytes(b"not an npz")
        recomputed = run_sweep(sweep, seed=2000, cache_dir=str(tmp_path))
        assert recomputed.cache_hits == 0
        assert recomputed.frames == first.frames
        # and the rewritten entries hit again
        assert run_sweep(sweep, seed=2000,
                         cache_dir=str(tmp_path)).cache_hits == 4

    def test_cache_misses_on_seed_spec_or_trials_change(self, tmp_path):
        sweep = two_axis_sweep()
        run_sweep(sweep, seed=2000, cache_dir=str(tmp_path))
        assert run_sweep(sweep, seed=2001,
                         cache_dir=str(tmp_path)).cache_hits == 0
        bigger = SweepSpec(base=sweep.base, axes=sweep.axes,
                           trials=sweep.trials + 1)
        assert run_sweep(bigger, seed=2000,
                         cache_dir=str(tmp_path)).cache_hits == 0
        h = SweepSpec(base=sweep.base.replace(failures=FailureSpec(h=0.01)),
                      axes=sweep.axes, trials=sweep.trials)
        assert run_sweep(h, seed=2000,
                         cache_dir=str(tmp_path)).cache_hits == 0

    def test_cache_reuses_shared_prefix_cells(self, tmp_path):
        # Same cells in the same positions → an extended sweep resumes.
        sweep = SweepSpec(base=base_spec(),
                          axes=(SweepAxis("n", (2, 8)),), trials=4)
        run_sweep(sweep, seed=2000, cache_dir=str(tmp_path))
        extended = SweepSpec(base=base_spec(),
                             axes=(SweepAxis("n", (2, 8, 16)),), trials=4)
        resumed = run_sweep(extended, seed=2000, cache_dir=str(tmp_path))
        assert resumed.cache_hits == 2
        fresh = run_sweep(extended, seed=2000)
        assert resumed.frames == fresh.frames


class TestAggregators:
    def frame(self, n=16, trials=20, **kwargs):
        return run_batch(base_spec(**kwargs).replace(n=n), trials,
                         seed=5, as_frame=True)

    def test_mean_ci_matches_legacy_helper(self):
        frame = self.frame()
        rounds = [t.first_decision_round for t in frame.to_trial_results()]
        assert MeanCI("first_decision_round")(frame) == \
            mean_confidence_interval(rounds)
        assert Mean("first_decision_round")(frame) == float(np.mean(rounds))

    def test_single_sample_ci_is_inf(self):
        frame = run_batch(base_spec(), 1, seed=5, as_frame=True)
        mean, half = MeanCI("first_decision_round")(frame)
        assert half == float("inf") and mean == 2.0

    def test_undecided_frames_raise_naming_spec(self):
        spec = TrialSpec(n=8, model=NoisyModelSpec(noise=EXPO),
                         engine="event", max_total_ops=3)
        frame = run_batch(spec, 4, seed=1, as_frame=True)
        with pytest.raises(AggregationError, match="max_total_ops"):
            Mean("first_decision_round")(frame)
        with pytest.raises(AggregationError, match="undecided"):
            MeanCI("first_decision_ops")(frame)
        assert decided_count(frame) == 0

    def test_where_all_requires_full_column(self):
        spec = TrialSpec(n=8, model=NoisyModelSpec(noise=EXPO),
                         engine="event", max_total_ops=3)
        frame = run_batch(spec, 4, seed=1, as_frame=True)
        with pytest.raises(AggregationError, match="4 of 4"):
            Mean("first_decision_round", where="all")(frame)

    def test_bootstrap_and_tail(self):
        frame = self.frame()
        mean, lo, hi = BootstrapCI("first_decision_round", n_boot=200)(
            frame, make_rng(0))
        assert lo <= mean <= hi
        probs = TailProbabilities("last_decision_round", (0, 1000))(frame)
        assert probs[0] == 1.0 and probs[1] == 0.0

    def test_rates_and_fit(self):
        frame = self.frame()
        assert agreement_rate(frame) == 1.0
        assert mean_halted(frame) == 0.0
        fit = fit_log_over_cells([1, 4, 16, 64], [1.0, 2.0, 3.0, 4.0])
        assert fit.model == "a*ln(n)+b"
        assert fit.a > 0
