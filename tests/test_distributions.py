"""Tests for the noise-distribution substrate (paper Section 3.1)."""

import math

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.noise import (
    Constant,
    Exponential,
    Geometric,
    HeavyTail,
    LogNormal,
    Mixture,
    Pareto,
    PerOpKindNoise,
    ShiftedExponential,
    SumOf,
    TruncatedNormal,
    TwoPoint,
    Uniform,
    figure1_distributions,
    validate_noise,
)
from repro.types import OpKind

ADMISSIBLE = [
    TruncatedNormal(1.0, 0.2, 0.0, 2.0),
    TwoPoint(2 / 3, 4 / 3),
    ShiftedExponential(0.5, 0.5),
    Geometric(0.5),
    Uniform(0.0, 2.0),
    Exponential(1.0),
    LogNormal(0.0, 0.5),
    Pareto(2.0),
    HeavyTail(k_cap=4),
]


@pytest.mark.parametrize("dist", ADMISSIBLE, ids=lambda d: d.name)
class TestAdmissibleDistributions:
    def test_samples_non_negative(self, dist, rng):
        xs = dist.sample_array(rng, 2000)
        assert (xs >= 0).all()
        assert (xs >= dist.min_value - 1e-12).all()

    def test_not_degenerate(self, dist):
        assert not dist.is_degenerate

    def test_validate_passes(self, dist):
        assert validate_noise(dist) is dist

    def test_scalar_sample_matches_support(self, dist, rng):
        x = dist.sample(rng)
        assert isinstance(x, float)
        assert x >= dist.min_value - 1e-12

    def test_shape_tuple(self, dist, rng):
        xs = dist.sample_array(rng, (3, 5))
        assert xs.shape == (3, 5)

    def test_sampling_is_seeded(self, dist):
        from repro._rng import make_rng
        a = dist.sample_array(make_rng(5), 64)
        b = dist.sample_array(make_rng(5), 64)
        assert np.array_equal(a, b)


class TestMeans:
    """Empirical means must track the analytic ones (finite-mean cases)."""

    @pytest.mark.parametrize("dist, tol", [
        (TruncatedNormal(1.0, 0.2, 0.0, 2.0), 0.02),
        (TwoPoint(2 / 3, 4 / 3), 0.02),
        (ShiftedExponential(0.5, 0.5), 0.03),
        (Geometric(0.5), 0.1),
        (Uniform(0.0, 2.0), 0.03),
        (Exponential(1.0), 0.05),
        (LogNormal(0.0, 0.5), 0.06),
        (Pareto(3.0), 0.06),
    ], ids=lambda v: getattr(v, "name", v))
    def test_empirical_mean(self, dist, tol, rng):
        xs = dist.sample_array(rng, 40_000)
        assert xs.mean() == pytest.approx(dist.mean, abs=4 * tol * dist.mean)

    def test_truncated_normal_mean_is_center_when_symmetric(self):
        assert TruncatedNormal(1.0, 0.2, 0.0, 2.0).mean == pytest.approx(1.0)

    def test_pareto_infinite_mean(self):
        assert Pareto(1.0).mean == math.inf

    def test_heavytail_uncapped_mean_infinite(self):
        assert HeavyTail().mean == math.inf

    def test_heavytail_capped_mean_grows_with_cap(self):
        means = [HeavyTail(k_cap=k).mean for k in (2, 3, 4, 5)]
        assert all(a < b for a, b in zip(means, means[1:]))


class TestTruncatedNormal:
    def test_rejection_bounds(self, rng):
        xs = TruncatedNormal(1.0, 0.8, 0.0, 2.0).sample_array(rng, 5000)
        assert (xs > 0).all() and (xs < 2).all()

    def test_bad_sigma(self):
        with pytest.raises(DistributionError):
            TruncatedNormal(1.0, 0.0)

    def test_bad_interval(self):
        with pytest.raises(DistributionError):
            TruncatedNormal(1.0, 0.2, 2.0, 0.0)


class TestTwoPoint:
    def test_values_only(self, rng):
        xs = TwoPoint(1.0, 2.0).sample_array(rng, 1000)
        assert set(np.unique(xs)) <= {1.0, 2.0}

    def test_degenerate_when_equal(self):
        assert TwoPoint(1.0, 1.0).is_degenerate

    def test_degenerate_when_p_extreme(self):
        assert TwoPoint(1.0, 2.0, p=1.0).is_degenerate
        assert TwoPoint(1.0, 2.0, p=0.0).is_degenerate

    def test_bad_p(self):
        with pytest.raises(DistributionError):
            TwoPoint(1.0, 2.0, p=1.5)

    def test_probability_split(self, rng):
        xs = TwoPoint(0.0, 1.0, p=0.25).sample_array(rng, 20_000)
        assert np.mean(xs == 0.0) == pytest.approx(0.25, abs=0.02)


class TestGeometric:
    def test_support_is_positive_integers(self, rng):
        xs = Geometric(0.5).sample_array(rng, 1000)
        assert (xs >= 1).all()
        assert np.array_equal(xs, np.round(xs))

    def test_degenerate_at_p1(self):
        assert Geometric(1.0).is_degenerate

    def test_bad_p(self):
        with pytest.raises(DistributionError):
            Geometric(0.0)


class TestShiftedExponential:
    def test_min_value_is_shift(self, rng):
        dist = ShiftedExponential(0.5, 0.5)
        assert dist.min_value == 0.5
        assert (dist.sample_array(rng, 1000) >= 0.5).all()

    def test_negative_shift_rejected(self):
        with pytest.raises(DistributionError):
            ShiftedExponential(-0.1, 1.0)

    def test_bad_mean(self):
        with pytest.raises(DistributionError):
            ShiftedExponential(0.0, 0.0)


class TestHeavyTail:
    def test_support_values(self, rng):
        xs = HeavyTail(k_cap=3).sample_array(rng, 2000)
        assert set(np.unique(xs)) <= {2.0, 16.0, 512.0}

    def test_cap_validation(self):
        with pytest.raises(DistributionError):
            HeavyTail(k_cap=0)

    def test_cap1_is_degenerate(self):
        assert HeavyTail(k_cap=1).is_degenerate

    def test_uncapped_never_overflows(self, rng):
        xs = HeavyTail().sample_array(rng, 10_000)
        assert np.isfinite(xs).all()


class TestConstant:
    def test_is_degenerate_and_rejected(self):
        dist = Constant(1.0)
        assert dist.is_degenerate
        with pytest.raises(DistributionError):
            validate_noise(dist)

    def test_sampling(self, rng):
        assert (Constant(2.5).sample_array(rng, 10) == 2.5).all()

    def test_negative_rejected(self):
        with pytest.raises(DistributionError):
            Constant(-1.0)


class TestMixture:
    def test_mean_is_weighted(self):
        mix = Mixture([Constant(1.0), Constant(3.0)], weights=[0.75, 0.25])
        assert mix.mean == pytest.approx(1.5)

    def test_sampling_covers_components(self, rng):
        mix = Mixture([Constant(1.0), Constant(2.0)])
        xs = mix.sample_array(rng, 500)
        assert {1.0, 2.0} == set(np.unique(xs))

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            Mixture([])

    def test_weight_mismatch_rejected(self):
        with pytest.raises(DistributionError):
            Mixture([Constant(1.0)], weights=[0.5, 0.5])

    def test_negative_weight_rejected(self):
        with pytest.raises(DistributionError):
            Mixture([Constant(1.0), Constant(2.0)], weights=[-1.0, 2.0])

    def test_min_value(self):
        mix = Mixture([Uniform(0.5, 1.0), Uniform(0.2, 0.9)])
        assert mix.min_value == pytest.approx(0.2)

    def test_shape_tuple(self, rng):
        xs = Mixture([Constant(1.0), Constant(2.0)]).sample_array(rng, (4, 6))
        assert xs.shape == (4, 6)


class TestSumOf:
    def test_mean_scales(self):
        assert SumOf(Uniform(0.0, 2.0), 4).mean == pytest.approx(4.0)

    def test_min_value_scales(self):
        assert SumOf(ShiftedExponential(0.5, 1.0), 4).min_value == pytest.approx(2.0)

    def test_sample_is_sum(self, rng):
        xs = SumOf(Constant(1.5), 4).sample_array(rng, 10)
        assert (xs == 6.0).all()

    def test_bad_k(self):
        with pytest.raises(DistributionError):
            SumOf(Uniform(), 0)

    def test_degenerate_follows_base(self):
        assert SumOf(Constant(1.0), 3).is_degenerate
        assert not SumOf(Uniform(), 3).is_degenerate


class TestPerOpKindNoise:
    def test_single_distribution_for_both_kinds(self):
        dist = Exponential(1.0)
        per = PerOpKindNoise(dist)
        assert per.for_kind(OpKind.READ) is dist
        assert per.for_kind(OpKind.WRITE) is dist
        assert per.uniform_across_kinds

    def test_distinct_distributions(self):
        r, w = Exponential(1.0), Uniform(0.0, 2.0)
        per = PerOpKindNoise(r, w)
        assert per.for_kind(OpKind.READ) is r
        assert per.for_kind(OpKind.WRITE) is w
        assert not per.uniform_across_kinds

    def test_validate_checks_both(self):
        with pytest.raises(DistributionError):
            PerOpKindNoise(Exponential(1.0), Constant(1.0)).validate()


class TestFigure1Distributions:
    def test_has_the_papers_six(self):
        dists = figure1_distributions()
        assert set(dists) == {
            "exponential(1)", "uniform [0,2]", "geometric(0.5)",
            "0.5 + exponential(0.5)", "2/3,4/3", "normal(1,0.04)",
        }

    def test_all_admissible(self):
        for dist in figure1_distributions().values():
            validate_noise(dist)

    def test_means_match_paper_parameters(self):
        dists = figure1_distributions()
        assert dists["exponential(1)"].mean == pytest.approx(1.0)
        assert dists["uniform [0,2]"].mean == pytest.approx(1.0)
        assert dists["geometric(0.5)"].mean == pytest.approx(2.0)
        assert dists["0.5 + exponential(0.5)"].mean == pytest.approx(1.0)
        assert dists["2/3,4/3"].mean == pytest.approx(1.0)
        assert dists["normal(1,0.04)"].mean == pytest.approx(1.0)
