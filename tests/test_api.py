"""API-surface tests: exports, error hierarchy, version."""

import pytest

import repro
import repro.core
from repro.errors import (
    ConfigurationError,
    DistributionError,
    InvariantViolation,
    MemoryError_,
    ModelCheckError,
    ProtocolError,
    ReproError,
    SchedulerError,
    SimulationError,
)


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_core_all_names_resolve(self):
        for name in repro.core.__all__:
            assert getattr(repro.core, name) is not None, name

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_quickstart_snippet(self):
        """The README quickstart must work verbatim."""
        from repro import run_noisy_trial
        from repro.noise import Exponential

        result = run_noisy_trial(n=100, noise=Exponential(1.0), seed=42)
        assert result.agreed


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, DistributionError, InvariantViolation,
        MemoryError_, ModelCheckError, ProtocolError, SchedulerError,
        SimulationError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_distribution_error_is_configuration_error(self):
        assert issubclass(DistributionError, ConfigurationError)

    def test_invariant_violation_carries_witness(self):
        err = InvariantViolation("boom", witness={"k": 1})
        assert err.witness == {"k": 1}

    def test_catching_repro_error_catches_everything(self):
        with pytest.raises(ReproError):
            raise SimulationError("x")
