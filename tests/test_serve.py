"""repro.serve: store durability, job model, executor, streaming aggregates."""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro._atomicio import atomic_write_bytes
from repro.analysis.aggregate import (
    STREAM_COLUMNS,
    Mean,
    MeanCI,
    RunningCellAggregate,
    RunningColumnStat,
    agreement_rate,
    decided_count,
)
from repro.api import (
    BatchRunner,
    NoiseSpec,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    run_sweep,
)
from repro.errors import ConfigurationError
from repro.sim.frame import ResultFrame
from repro.serve import (
    InlineDispatcher,
    JobRunner,
    JobState,
    ResultStore,
    SweepJob,
    effective_state,
    job_status,
    load_result,
    verify_result,
)
from repro.serve.executor import run_chunk_task

EXPO = NoiseSpec.of("exponential", mean=1.0)
UNIF = NoiseSpec.of("uniform", low=0.0, high=2.0)


def small_sweep(trials=40, budget=None):
    return SweepSpec(
        base=TrialSpec(n=4, model=NoisyModelSpec(noise=EXPO),
                       max_total_ops=budget),
        axes=(SweepAxis("model.noise", (EXPO, UNIF), name="distribution",
                        labels=("expo", "unif")),
              SweepAxis("n", (2, 8))),
        trials=trials)


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        path = str(tmp_path / "a" / "b.bin")
        atomic_write_bytes(path, b"payload")
        with open(path, "rb") as handle:
            assert handle.read() == b"payload"

    def test_kill_between_write_and_rename_leaves_no_file(self, tmp_path,
                                                          monkeypatch):
        """A crash after the payload write but before the rename must not
        surface a torn (or any) file under the final name."""
        path = str(tmp_path / "entry.npz")

        def die(src, dst):
            raise KeyboardInterrupt("SIGKILL stand-in")

        monkeypatch.setattr(os, "replace", die)
        with pytest.raises(KeyboardInterrupt):
            atomic_write_bytes(path, b"half-written")
        assert not os.path.exists(path)
        monkeypatch.undo()
        # the interrupted attempt leaves the directory clean for a retry
        assert [f for f in os.listdir(tmp_path) if not f.endswith(".tmp")] == []
        atomic_write_bytes(path, b"second-try")
        with open(path, "rb") as handle:
            assert handle.read() == b"second-try"


class TestResultStore:
    def _frame(self, trials=8):
        spec = TrialSpec(n=2, model=NoisyModelSpec(noise=EXPO))
        return BatchRunner().run_frame(spec, trials, seed=5)

    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        frame = self._frame()
        assert store.put("ab" * 32, frame) is True
        assert store.get("ab" * 32) == frame
        assert store.has("ab" * 32)
        assert store.object_count() == 1

    def test_put_is_dedup(self, tmp_path):
        store = ResultStore(str(tmp_path))
        frame = self._frame()
        assert store.put("cd" * 32, frame) is True
        assert store.put("cd" * 32, frame) is False  # already stored

    def test_torn_object_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        path = store.object_path("ef" * 32)
        os.makedirs(os.path.dirname(path))
        with open(path, "wb") as handle:
            handle.write(b"\x00not-an-npz")
        assert store.get("ef" * 32) is None

    def test_claims_elect_one_winner(self, tmp_path):
        store = ResultStore(str(tmp_path))
        token = store.claim("11" * 32)
        assert token is not None
        assert store.claim("11" * 32) is None  # we already hold it
        assert store.claim_holder_alive("11" * 32)
        store.release("11" * 32, token)
        assert store.claim("11" * 32) is not None

    def test_stale_claim_is_broken(self, tmp_path):
        store = ResultStore(str(tmp_path))
        path = store.lock_path("22" * 32)
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as handle:
            json.dump({"pid": 2 ** 22 + 12345}, handle)  # surely dead
        assert not store.claim_holder_alive("22" * 32)
        assert store.claim("22" * 32) is not None  # broken and re-taken

    def test_lease_renew_and_expiry(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "33" * 32
        token = store.claim(key, owner="a", lease_seconds=0.05)
        assert token is not None
        # a live lease blocks other claimants...
        assert store.claim(key, owner="b") is None
        # ...renewal by token extends it...
        assert store.renew(key, token, lease_seconds=30.0)
        assert store.claim(key, owner="b") is None
        # ...but a wrong token cannot renew or release
        assert not store.renew(key, "f" * 32)
        store.release(key, "f" * 32)
        assert store.lease_live(key)

    def test_expired_lease_is_re_elected(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "44" * 32
        stale = store.claim(key, owner="a", lease_seconds=0.01)
        assert stale is not None
        time.sleep(0.05)
        assert not store.lease_live(key)  # expired, holder alive or not
        fresh = store.claim(key, owner="b", lease_seconds=30.0)
        assert fresh is not None and fresh != stale
        # the previous holder lost the chunk: renewal and token-release
        # must both refuse
        assert not store.renew(key, stale)
        store.release(key, stale)
        assert store.lease_live(key)

    def test_pid_reuse_cannot_squat_a_claim(self, tmp_path):
        # A forged claim recording *our own live pid* but a wrong start
        # marker must read as stale: the pid was "recycled" onto an
        # unrelated process, so the recorded holder is dead.
        store = ResultStore(str(tmp_path))
        key = "55" * 32
        path = store.lock_path(key)
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as handle:
            json.dump({"owner": "ghost", "token": "t" * 32,
                       "deadline": time.time() + 3600,
                       "pid": os.getpid(),
                       "start": "not-our-start-marker"}, handle)
        assert not store.lease_live(key)
        assert store.claim(key, owner="b") is not None


class TestSweepJob:
    def test_roundtrip_and_content_id(self, tmp_path):
        job = SweepJob.from_sweep(small_sweep(), seed=7, chunk_size=16)
        clone = SweepJob.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.job_id == job.content_id()
        # same sweep, same seed -> same id; different seed -> different id
        assert SweepJob.from_sweep(small_sweep(), seed=7,
                                   chunk_size=16).job_id == job.job_id
        assert SweepJob.from_sweep(small_sweep(), seed=8,
                                   chunk_size=16).job_id != job.job_id

    def test_tampered_document_refused(self):
        doc = SweepJob.from_sweep(small_sweep(), seed=7).to_dict()
        doc["trials"] = 999
        with pytest.raises(ConfigurationError, match="tampered"):
            SweepJob.from_dict(doc)

    def test_generator_root_refused(self):
        with pytest.raises(ConfigurationError, match="Generator"):
            SweepJob.from_sweep(small_sweep(),
                                seed=np.random.default_rng(3))

    def test_spawned_seedsequence_refused(self):
        seq = np.random.SeedSequence(9)
        seq.spawn(1)
        with pytest.raises(ConfigurationError, match="fresh"):
            SweepJob.from_sweep(small_sweep(), seed=seq)

    def test_record_spec_refused(self):
        sweep = SweepSpec(
            base=TrialSpec(n=2, model=NoisyModelSpec(noise=EXPO),
                           record=True),
            axes=(SweepAxis("n", (2,)),), trials=4)
        with pytest.raises(ConfigurationError, match="record"):
            SweepJob.from_sweep(sweep, seed=1)

    def test_chunk_plan_offsets_match_run_sweep(self):
        job = SweepJob.from_sweep(small_sweep(trials=40), seed=7,
                                  chunk_size=16)
        plan = job.chunks()
        # 4 cells x ceil(40/16)=3 chunks
        assert len(plan) == 12
        for task in plan:
            assert task.offset == task.cell_index * 40 + task.start
        # chunk sizes cover the cell exactly
        per_cell = {}
        for task in plan:
            per_cell[task.cell_index] = per_cell.get(task.cell_index, 0) \
                + task.count
        assert set(per_cell.values()) == {40}
        # engine is resolved from the CELL trial count, identically for
        # every chunk of a cell
        engines = {t.engine for t in plan if t.cell_index == 0}
        assert len(engines) == 1

    def test_save_load(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = SweepJob.from_sweep(small_sweep(), seed=7)
        job.save(store)
        assert SweepJob.load(store, job.job_id) == job
        assert SweepJob.list_ids(store) == [job.job_id]


class TestExecutor:
    def test_inline_bit_identical_to_run_sweep(self, tmp_path):
        sweep = small_sweep(trials=40)
        ref = run_sweep(sweep, seed=1234)
        job = SweepJob.from_sweep(sweep, seed=1234, chunk_size=16)
        result = JobRunner(ResultStore(str(tmp_path)), workers=1).run(job)
        assert result.state.state == "done"
        for cell, frame in result:
            assert frame == ref.frames[cell.index]
        assert verify_result(result)

    def test_pool_bit_identical_to_inline(self, tmp_path):
        sweep = small_sweep(trials=40)
        job = SweepJob.from_sweep(sweep, seed=1234, chunk_size=16)
        inline = JobRunner(ResultStore(str(tmp_path / "a")),
                           workers=1).run(job)
        pooled = JobRunner(ResultStore(str(tmp_path / "b")),
                           workers=2).run(job)
        for (_, a), (_, b) in zip(inline, pooled):
            assert a == b

    def test_rerun_is_noop_and_load_result(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = SweepJob.from_sweep(small_sweep(), seed=3, chunk_size=16)
        first = JobRunner(store, workers=1).run(job)
        counted = []
        runner = JobRunner(store, dispatcher=InlineDispatcher(
            chunk_fn=lambda payload: counted.append(payload)
            or run_chunk_task(payload)))
        second = runner.run(job)
        assert counted == []  # every chunk adopted from the store
        for (_, a), (_, b) in zip(first, second):
            assert a == b
        loaded = load_result(store, job.job_id)
        for (_, a), (_, b) in zip(first, loaded):
            assert a == b

    def test_cross_job_dedup_shares_chunks(self, tmp_path):
        """Two jobs with overlapping grids compute each shared chunk once."""
        store = ResultStore(str(tmp_path))
        base = TrialSpec(n=4, model=NoisyModelSpec(noise=EXPO))
        small = SweepSpec(base=base, axes=(SweepAxis("n", (2, 8)),),
                          trials=32)
        # second job: a superset grid, same base/trials/seed -> the
        # (n=2, n=8) cells' chunks are content-identical... only if the
        # cell OFFSETS agree, which they do for the shared prefix of the
        # grid (cells are offset by grid index).
        big = SweepSpec(base=base, axes=(SweepAxis("n", (2, 8, 16)),),
                        trials=32)
        job_a = SweepJob.from_sweep(small, seed=11, chunk_size=16)
        job_b = SweepJob.from_sweep(big, seed=11, chunk_size=16)
        shared = set(t.key for t in job_a.chunks()) \
            & set(t.key for t in job_b.chunks())
        assert len(shared) == len(job_a.chunks())  # full prefix overlap

        computed = []
        lock = threading.Lock()

        def counting(payload):
            with lock:
                computed.append(payload["key"])
            return run_chunk_task(payload)

        JobRunner(store,
                  dispatcher=InlineDispatcher(chunk_fn=counting)).run(job_a)
        JobRunner(store,
                  dispatcher=InlineDispatcher(chunk_fn=counting)).run(job_b)
        assert len(computed) == len(set(computed))  # nothing computed twice
        assert len(computed) == len(job_b.chunks())  # union of both plans

    def test_concurrent_jobs_compute_shared_chunks_once(self, tmp_path):
        """The acceptance scenario: two jobs running at the same time."""
        store = ResultStore(str(tmp_path))
        base = TrialSpec(n=4, model=NoisyModelSpec(noise=EXPO))
        sweep_a = SweepSpec(base=base, axes=(SweepAxis("n", (2, 8)),),
                            trials=48)
        sweep_b = SweepSpec(base=base, axes=(SweepAxis("n", (2, 8, 16)),),
                            trials=48)
        job_a = SweepJob.from_sweep(sweep_a, seed=21, chunk_size=12)
        job_b = SweepJob.from_sweep(sweep_b, seed=21, chunk_size=12)

        computed = []
        lock = threading.Lock()

        def counting(payload):
            with lock:
                computed.append(payload["key"])
            return run_chunk_task(payload)

        results = {}

        def drive(tag, job):
            runner = JobRunner(store,
                               dispatcher=InlineDispatcher(
                                   chunk_fn=counting))
            results[tag] = runner.run(job)

        threads = [threading.Thread(target=drive, args=("a", job_a)),
                   threading.Thread(target=drive, args=("b", job_b))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(computed) == len(set(computed))  # each chunk exactly once
        assert results["a"].state.state == "done"
        assert results["b"].state.state == "done"
        # and both jobs' frames are still bit-identical to run_sweep
        ref_b = run_sweep(sweep_b, seed=21)
        for cell, frame in results["b"]:
            assert frame == ref_b.frames[cell.index]
        ref_a = run_sweep(sweep_a, seed=21)
        for cell, frame in results["a"]:
            assert frame == ref_a.frames[cell.index]

    def test_failed_chunk_marks_job_failed(self, tmp_path):
        from repro.serve import JobFailedError
        store = ResultStore(str(tmp_path))
        job = SweepJob.from_sweep(small_sweep(trials=8), seed=2,
                                  chunk_size=8)

        def boom(payload):
            raise RuntimeError("chunk exploded")

        runner = JobRunner(store, dispatcher=InlineDispatcher(chunk_fn=boom))
        with pytest.raises(JobFailedError, match="chunk exploded"):
            runner.run(job)
        state = JobState.load(store, job.job_id)
        assert state.state == "failed"
        assert "chunk exploded" in state.error

    def test_chunk_killed_retry_cap_times_fails_the_job(self, tmp_path):
        # Regression (PR 7): the requeue guard compared with `>`, so a
        # chunk survived MAX_CHUNK_RETRIES kills and died on kill 4 —
        # one more worker loss than the cap promises.  A chunk killed
        # exactly MAX_CHUNK_RETRIES times must fail the job.
        from concurrent.futures.process import BrokenProcessPool

        from repro.serve import JobFailedError
        store = ResultStore(str(tmp_path))
        job = SweepJob.from_sweep(small_sweep(trials=8), seed=5,
                                  chunk_size=8)
        kills = []

        def killed(payload):
            kills.append(payload["key"])
            raise BrokenProcessPool("injected worker SIGKILL")

        runner = JobRunner(store,
                           dispatcher=InlineDispatcher(chunk_fn=killed))
        with pytest.raises(JobFailedError, match="3 times"):
            runner.run(job)
        fatal = kills[-1]
        assert kills.count(fatal) == JobRunner.MAX_CHUNK_RETRIES
        state = JobState.load(store, job.job_id)
        assert state.state == "failed"
        assert f"{JobRunner.MAX_CHUNK_RETRIES} times; giving up" in \
            state.error

    def test_job_status_document(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = SweepJob.from_sweep(small_sweep(trials=20), seed=4,
                                  chunk_size=8)
        JobRunner(store, workers=1).run(job)
        status = job_status(store, job.job_id)
        assert status["state"] == "done"
        assert status["chunks_done"] == status["chunks_total"] == \
            len(job.chunks())
        assert status["chunks_stored"] == status["chunks_total"]
        assert status["trials_done"] == job.total_trials
        assert status["cells_done"] == len(job.cells)
        assert status["trials_per_sec"] is not None
        assert any(e["type"] == "done" for e in status["events"])

    def test_effective_state_reports_partial_for_dead_runner(self):
        state = JobState(state="running", runner_pid=2 ** 22 + 54321)
        assert effective_state(state) == "partial"
        state.runner_pid = os.getpid()
        assert effective_state(state) == "running"
        state.state = "done"
        assert effective_state(state) == "done"

    def test_jobresult_frame_lookup(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = SweepJob.from_sweep(small_sweep(trials=16), seed=6,
                                  chunk_size=8)
        result = JobRunner(store, workers=1).run(job)
        frame = result.frame(distribution="unif", n=8)
        assert frame == result.frames[3]
        with pytest.raises(KeyError):
            result.frame(distribution="nope")


class TestStreamingAggregates:
    def test_running_stat_matches_one_shot_aggregators(self):
        spec = TrialSpec(n=8, model=NoisyModelSpec(noise=EXPO))
        frame = BatchRunner().run_frame(spec, 60, seed=9)
        payload = frame.to_payload()
        chunks = [ResultFrame.from_payload(
                      {k: v[i:i + 17] for k, v in payload.items()})
                  for i in range(0, 60, 17)]
        agg = RunningCellAggregate()
        for chunk in chunks:
            agg.fold_frame(chunk)
        assert agg.trials == 60
        assert agg.decided == decided_count(frame)
        assert agg.agreed / agg.trials == pytest.approx(
            agreement_rate(frame))
        for name in STREAM_COLUMNS:
            mean = Mean(name)(frame)
            ref_mean, ref_half = MeanCI(name)(frame)
            stat = agg.columns[name]
            assert stat.mean == pytest.approx(mean, rel=1e-12)
            assert stat.ci_half() == pytest.approx(ref_half, rel=1e-9)

    def test_running_stat_single_sample_ci_is_inf(self):
        stat = RunningColumnStat()
        stat.fold(np.array([3.5]))
        assert stat.mean == 3.5
        assert stat.ci_half() == float("inf")

    def test_running_stat_skips_nan(self):
        stat = RunningColumnStat()
        stat.fold(np.array([1.0, np.nan, 3.0]))
        assert stat.count == 2
        assert stat.mean == 2.0

    def test_merge_equals_sequential_fold(self):
        values = np.linspace(0.5, 9.5, 37)
        folded = RunningColumnStat()
        folded.fold(values)
        left, right = RunningColumnStat(), RunningColumnStat()
        left.fold(values[:20])
        right.fold(values[20:])
        left.merge(right)
        assert left.count == folded.count
        assert left.mean == pytest.approx(folded.mean, rel=1e-12)
        assert left.ci_half() == pytest.approx(folded.ci_half(), rel=1e-12)

    def test_roundtrip_dict(self):
        agg = RunningCellAggregate()
        spec = TrialSpec(n=2, model=NoisyModelSpec(noise=EXPO))
        agg.fold_frame(BatchRunner().run_frame(spec, 10, seed=1))
        clone = RunningCellAggregate.from_dict(
            json.loads(json.dumps(agg.to_dict())))
        assert clone.to_dict() == agg.to_dict()
        assert clone.table() == agg.table()

    def test_executor_persists_streaming_aggregates(self, tmp_path):
        store = ResultStore(str(tmp_path))
        sweep = small_sweep(trials=30)
        job = SweepJob.from_sweep(sweep, seed=13, chunk_size=8)
        result = JobRunner(store, workers=1).run(job)
        state = JobState.load(store, job.job_id)
        for cell, frame in result:
            table = RunningCellAggregate.from_dict(
                state.aggregates[str(cell.index)]).table()
            assert table["trials"] == 30
            assert table["decided"] == decided_count(frame)
            mean, half = MeanCI("first_decision_round")(frame)
            assert table["first_decision_round"]["mean"] == pytest.approx(
                mean, rel=1e-12)
            assert table["first_decision_round"]["ci95_half"] == \
                pytest.approx(half, rel=1e-9)


class TestSweepCacheCrashSafety:
    """Satellite: the sweep cell cache survives a kill mid-store."""

    def test_kill_between_write_and_rename_is_clean_miss(self, tmp_path,
                                                         monkeypatch):
        sweep = small_sweep(trials=10)
        cache = str(tmp_path / "cache")
        killed = {"done": False}
        real_replace = os.replace

        def kill_once(src, dst):
            if not killed["done"] and dst.endswith(".npz"):
                killed["done"] = True
                raise KeyboardInterrupt("killed between write and rename")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", kill_once)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(sweep, seed=42, cache_dir=cache)
        # no torn entry under any final name
        assert [f for f in os.listdir(cache) if f.endswith(".npz")] == []
        monkeypatch.undo()
        # the interrupted run is a clean miss: recompute, then hit
        first = run_sweep(sweep, seed=42, cache_dir=cache)
        assert first.cache_hits == 0
        second = run_sweep(sweep, seed=42, cache_dir=cache)
        assert second.cache_hits == len(first.cells)
        for a, b in zip(first.frames, second.frames):
            assert a == b
