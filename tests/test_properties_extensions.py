"""Property-based tests for the extension subsystems.

As with the core protocol, the *schedule is the fuzzed input*: hypothesis
generates arbitrary interleavings (and candidate assignments) and the
invariants must hold on every one of them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.idconsensus import IdConsensus, id_bits
from repro.sched.pickers import ScriptedPicker
from repro.sched.statistical import StatisticalDelta
from repro.sim.engine import StepEngine
from repro.sim.runner import make_memory_for


@settings(max_examples=60, deadline=None)
@given(candidates=st.lists(st.integers(0, 7), min_size=2, max_size=4),
       schedule=st.lists(st.integers(0, 9), min_size=1, max_size=400))
def test_id_consensus_agreement_and_validity_any_schedule(candidates,
                                                          schedule):
    """Every interleaving elects exactly one announced candidate."""
    n = len(candidates)
    bits = 3
    machines = [IdConsensus(pid, candidates[pid], bits, n)
                for pid in range(n)]
    memory = make_memory_for(machines)
    engine = StepEngine(machines, memory, ScriptedPicker(schedule),
                        max_total_ops=4000)
    engine.run()
    winners = {m.winner for m in machines if m.winner is not None}
    assert len(winners) <= 1
    if winners:
        (winner,) = winners
        assert winner in set(candidates)  # id validity


@settings(max_examples=80, deadline=None)
@given(mean_bound=st.floats(0.01, 5.0),
       burst_every=st.integers(1, 64),
       burst_scale=st.floats(0.1, 20.0),
       horizon=st.integers(1, 300))
def test_statistical_budget_never_exceeded(mean_bound, burst_every,
                                           burst_scale, horizon):
    """The sum Delta <= r*M constraint holds for every prefix, whatever
    burst pattern the adversary requests."""
    delta = StatisticalDelta(mean_bound, burst_every=burst_every,
                             burst_scale=burst_scale)
    assert delta.verify_constraint(0, horizon)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1),
       penalty=st.floats(0.001, 2.0),
       window=st.floats(0.5, 10.0))
def test_contention_meter_matches_reference_model(seed, penalty, window):
    """The meter's charge equals penalty x (accesses by *other* pids to
    the same location within the window), computed by an independent
    reference model."""
    import math

    from repro._rng import make_rng
    from repro.memory.contention import ContentionMeter
    from repro.types import read

    rng = make_rng(seed)
    meter = ContentionMeter(penalty=penalty, window=window)
    history = []  # (time, pid) reference log
    now = 0.0
    for raw in rng.integers(0, 4, size=60):
        pid = int(raw)
        now += float(rng.random())
        expected_rivals = sum(1 for t, p in history
                              if t >= now - window and p != pid)
        charge = meter.charge(read("a0", 1), pid=pid, now=now)
        assert math.isclose(charge, penalty * expected_rivals,
                            rel_tol=1e-12, abs_tol=1e-12)
        history.append((now, pid))
