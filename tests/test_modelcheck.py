"""Tests for the exhaustive interleaving model checker.

These are the library's strongest correctness statements: for small
configurations, safety holds under *every* schedule — and the intentionally
unsafe variant is caught, proving the checker has teeth.
"""

import pytest

from repro.core.machine import KeepTie, LeanConsensus, ScriptedCoin, SharedCoinLean
from repro.core.variants import ConservativeLean, EagerDecideLean, OptimizedLean
from repro.modelcheck import explore_free, explore_hybrid


def lean(pid, bit):
    return LeanConsensus(pid, bit)


class TestFreeExploration:
    def test_lean_two_processes_safe(self):
        out = explore_free(lean, {0: 0, 1: 1}, max_ops_per_process=20)
        assert out.safe
        assert out.complete
        assert out.states_explored > 100
        # Lockstep schedules exist, so some paths hit the op budget.
        assert out.truncated

    def test_lean_unanimous_validity(self):
        """With unanimous inputs every path decides the input by 8 ops."""
        out = explore_free(lean, {0: 1, 1: 1}, max_ops_per_process=12)
        assert out.safe
        assert not out.truncated          # Lemma 3: all paths terminate
        assert out.max_decision_ops == 8
        assert out.decided_leaves > 0

    def test_eager_variant_caught(self):
        out = explore_free(lambda p, b: EagerDecideLean(p, b),
                           {0: 0, 1: 1}, max_ops_per_process=16)
        assert not out.safe
        assert out.trace is not None
        assert "agreement" in str(out.violation)

    def test_eager_variant_safe_when_unanimous(self):
        """The eager bug needs input conflict; unanimous runs are fine."""
        out = explore_free(lambda p, b: EagerDecideLean(p, b),
                           {0: 1, 1: 1}, max_ops_per_process=12)
        assert out.safe

    def test_optimized_variant_safe(self):
        out = explore_free(lambda p, b: OptimizedLean(p, b),
                           {0: 0, 1: 1}, max_ops_per_process=16)
        assert out.safe

    def test_conservative_variant_safe(self):
        out = explore_free(lambda p, b: ConservativeLean(p, b),
                           {0: 0, 1: 1}, max_ops_per_process=16)
        assert out.safe

    def test_shared_coin_scripted_safe(self):
        """Coin protocols are explored with scripted (deterministic) coins;
        each script is a distinct adversary choice."""
        for script in ([0], [1], [0, 1], [1, 0]):
            out = explore_free(
                lambda p, b, s=tuple(script): SharedCoinLean(
                    p, b, coin=ScriptedCoin(list(s))),
                {0: 0, 1: 1}, max_ops_per_process=18)
            assert out.safe, f"script {script}"

    def test_state_budget_marks_incomplete(self):
        out = explore_free(lean, {0: 0, 1: 1}, max_ops_per_process=20,
                           max_states=50)
        assert not out.complete

    @pytest.mark.slow
    def test_lean_three_processes_safe(self):
        out = explore_free(lean, {0: 0, 1: 1, 2: 0},
                           max_ops_per_process=12)
        assert out.safe


class TestHybridExploration:
    def test_quantum_8_guarantees_12_ops(self):
        """Theorem 14, verified exhaustively for n=2 over all debts and all
        legal pre-emption choices."""
        out = explore_hybrid(lean, {0: 0, 1: 1}, quantum=8,
                             initial_used_options=tuple(range(9)),
                             max_ops_per_process=16)
        assert out.safe
        assert not out.truncated
        assert out.max_decision_ops <= 12
        assert out.decided_leaves > 0

    def test_quantum_6_not_guaranteed(self):
        """Small quanta admit lockstep: some path exceeds any bound."""
        out = explore_hybrid(lean, {0: 0, 1: 1}, quantum=6,
                             initial_used_options=tuple(range(7)),
                             max_ops_per_process=24)
        assert out.truncated or out.max_decision_ops > 12

    def test_permissive_debt_reading_breaks_the_bound(self):
        """If every process may start the protocol mid-quantum, 12 ops is
        no longer the worst case (measured: 16+) — see EXPERIMENTS.md."""
        out = explore_hybrid(lean, {0: 0, 1: 1}, quantum=8,
                             initial_used_options=tuple(range(9)),
                             debt_policy="per-process",
                             max_ops_per_process=16)
        assert out.max_decision_ops > 12 or out.truncated

    def test_priorities_respected(self):
        out = explore_hybrid(lean, {0: 0, 1: 1}, quantum=8,
                             priorities=[1, 0],
                             initial_used_options=(0, 8),
                             max_ops_per_process=16)
        assert out.safe
        assert out.max_decision_ops <= 12

    @pytest.mark.slow
    def test_three_processes_quantum_8(self):
        out = explore_hybrid(lean, {0: 0, 1: 1, 2: 1}, quantum=8,
                             initial_used_options=(0, 4, 8),
                             max_ops_per_process=16)
        assert out.safe
        assert not out.truncated
        assert out.max_decision_ops <= 12
