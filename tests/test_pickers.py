"""Tests for the step-choice strategies."""

import pytest

from repro._rng import make_rng
from repro.errors import SchedulerError
from repro.sched.pickers import (
    AlternatingPicker,
    LaggardPicker,
    LeaderPicker,
    RandomPicker,
    RoundRobinPicker,
    ScriptedPicker,
)


class TestRandomPicker:
    def test_always_picks_enabled(self, rng):
        picker = RandomPicker(rng)
        enabled = [2, 5, 9]
        for _ in range(50):
            assert picker.pick(enabled) in enabled

    def test_covers_all_choices(self, rng):
        picker = RandomPicker(rng)
        seen = {picker.pick([0, 1, 2]) for _ in range(100)}
        assert seen == {0, 1, 2}

    def test_deterministic_with_seed(self):
        a = [RandomPicker(make_rng(1)).pick([0, 1, 2]) for _ in range(10)]
        b = [RandomPicker(make_rng(1)).pick([0, 1, 2]) for _ in range(10)]
        assert a == b


class TestRoundRobin:
    def test_cycles_in_pid_order(self):
        picker = RoundRobinPicker()
        picks = [picker.pick([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_disabled(self):
        picker = RoundRobinPicker()
        assert picker.pick([0, 1, 2]) == 0
        assert picker.pick([0, 2]) == 2  # 1 is gone
        assert picker.pick([0, 2]) == 0


class TestAlternating:
    def test_alternates_extremes(self):
        picker = AlternatingPicker()
        picks = [picker.pick([1, 5, 9]) for _ in range(4)]
        assert picks == [1, 9, 1, 9]


class TestScripted:
    def test_follows_script(self):
        picker = ScriptedPicker([1, 0, 1])
        assert [picker.pick([0, 1]) for _ in range(3)] == [1, 0, 1]

    def test_cycles_by_default(self):
        picker = ScriptedPicker([1, 0])
        assert [picker.pick([0, 1]) for _ in range(4)] == [1, 0, 1, 0]

    def test_exhausted_first_policy(self):
        picker = ScriptedPicker([1], exhausted="first")
        picker.pick([0, 1])
        assert picker.pick([0, 1]) == 0

    def test_disabled_entry_falls_back_modulo(self):
        picker = ScriptedPicker([7])
        assert picker.pick([0, 1, 2]) == 7 % 3

    def test_empty_script_rejected(self):
        with pytest.raises(SchedulerError):
            ScriptedPicker([])

    def test_bad_exhausted_policy(self):
        with pytest.raises(SchedulerError):
            ScriptedPicker([0], exhausted="loop-de-loop")


class TestLeaderLaggard:
    def test_leader_picks_max_score(self):
        scores = {0: 3.0, 1: 9.0, 2: 5.0}
        picker = LeaderPicker(lambda pid: scores[pid])
        assert picker.pick([0, 1, 2]) == 1

    def test_leader_ties_to_smaller_pid(self):
        picker = LeaderPicker(lambda pid: 1.0)
        assert picker.pick([0, 1, 2]) == 0

    def test_laggard_picks_min_score(self):
        scores = {0: 3.0, 1: 9.0, 2: 1.0}
        picker = LaggardPicker(lambda pid: scores[pid])
        assert picker.pick([0, 1, 2]) == 2

    def test_laggard_ties_to_smaller_pid(self):
        picker = LaggardPicker(lambda pid: 1.0)
        assert picker.pick([1, 2]) == 1
