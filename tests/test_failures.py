"""Tests for failure injection: random halting and adaptive crashes."""

import numpy as np
import pytest

from repro._rng import make_rng
from repro.errors import ConfigurationError
from repro.failures import (
    KillLeaderAdversary,
    NoFailures,
    RandomHalting,
    ScriptedFailures,
)
from repro.failures.injection import ExecutionView


class TestNoFailures:
    def test_never_halts(self):
        model = NoFailures()
        assert not any(model.halts_before(p, j)
                       for p in range(4) for j in range(1, 20))


class TestRandomHalting:
    def test_h_zero_never_halts(self, rng):
        model = RandomHalting(0.0, rng)
        assert not any(model.halts_before(0, j) for j in range(1, 200))

    def test_h_validation(self, rng):
        with pytest.raises(ConfigurationError):
            RandomHalting(1.0, rng)
        with pytest.raises(ConfigurationError):
            RandomHalting(-0.1, rng)

    def test_halting_rate_matches_h(self, rng):
        model = RandomHalting(0.25, rng)
        hits = sum(model.halts_before(0, j) for j in range(1, 8001))
        assert hits / 8000 == pytest.approx(0.25, abs=0.02)

    def test_presample_death_ops_geometric(self, rng):
        model = RandomHalting(0.5, rng)
        deaths = model.presample_death_ops(10_000)
        assert (deaths >= 1).all()
        assert deaths.mean() == pytest.approx(2.0, rel=0.1)

    def test_presample_h_zero_sentinel(self, rng):
        deaths = RandomHalting(0.0, rng).presample_death_ops(4)
        assert (deaths == np.iinfo(np.int64).max).all()


class TestScriptedFailures:
    def test_kills_exact_points(self):
        model = ScriptedFailures({0: 3, 2: 1})
        assert model.halts_before(0, 3)
        assert not model.halts_before(0, 2)
        assert model.halts_before(2, 1)
        assert not model.halts_before(1, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScriptedFailures({0: 0})


def make_view(rounds, alive, decided=()):
    return ExecutionView(
        rounds=lambda pid: rounds[pid],
        alive=lambda: list(alive),
        decided=lambda: list(decided))


class TestExecutionView:
    def test_leader_is_max_round(self):
        view = make_view({0: 2, 1: 5, 2: 3}, alive=[0, 1, 2])
        assert view.leader() == 1

    def test_leader_ties_to_smaller_pid(self):
        view = make_view({0: 4, 1: 4}, alive=[0, 1])
        assert view.leader() == 0

    def test_leader_none_when_empty(self):
        assert make_view({}, alive=[]).leader() is None


class TestKillLeaderAdversary:
    def test_kills_when_lead_reached(self):
        adv = KillLeaderAdversary(budget=1, lead=2)
        view = make_view({0: 5, 1: 3}, alive=[0, 1])
        assert adv.consider(view) == {0}
        assert adv.remaining == 0

    def test_no_kill_below_lead(self):
        adv = KillLeaderAdversary(budget=1, lead=2)
        view = make_view({0: 4, 1: 3}, alive=[0, 1])
        assert adv.consider(view) == set()

    def test_budget_exhausts(self):
        adv = KillLeaderAdversary(budget=1, lead=1)
        assert adv.consider(make_view({0: 3, 1: 1}, [0, 1])) == {0}
        assert adv.consider(make_view({1: 9, 2: 1}, [1, 2])) == set()

    def test_never_kills_after_decisions(self):
        adv = KillLeaderAdversary(budget=4, lead=1)
        view = make_view({0: 9, 1: 1}, alive=[0, 1], decided=[0])
        assert adv.consider(view) == set()

    def test_no_kill_with_single_process(self):
        adv = KillLeaderAdversary(budget=1, lead=1)
        assert adv.consider(make_view({0: 9}, [0])) == set()

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            KillLeaderAdversary(budget=-1)

    def test_bad_lead_rejected(self):
        with pytest.raises(ConfigurationError):
            KillLeaderAdversary(budget=1, lead=0)
