"""Tests for the Section-10 statistical adversary."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.noise import Exponential
from repro.sched.statistical import StatisticalDelta
from repro.sim.runner import run_noisy_trial


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StatisticalDelta(-1.0)
        with pytest.raises(ConfigurationError):
            StatisticalDelta(1.0, style="zeno")
        with pytest.raises(ConfigurationError):
            StatisticalDelta(1.0, burst_every=0)


class TestBudget:
    def test_constraint_holds_for_bursts(self):
        for burst_every in (1, 2, 8, 32):
            delta = StatisticalDelta(0.5, burst_every=burst_every)
            assert delta.verify_constraint(0, 200)

    def test_constraint_holds_even_with_greedy_requests(self):
        delta = StatisticalDelta(0.5, burst_every=4, burst_scale=10.0)
        assert delta.verify_constraint(0, 200)

    def test_bursts_are_large_but_average_bounded(self):
        delta = StatisticalDelta(1.0, burst_every=8)
        delays = delta.delays_array(0, 64)
        assert delays.max() > 1.0          # individual delays exceed M
        assert delays.mean() <= 1.0 + 1e-9  # ... but the average does not

    def test_non_burst_ops_have_zero_delay(self):
        delta = StatisticalDelta(1.0, burst_every=8)
        delays = delta.delays_array(0, 16)
        assert delays[0] == 0.0
        assert delays[7] > 0.0  # op index 8 is the burst

    def test_stateful_delay_matches_array(self):
        delta_a = StatisticalDelta(0.7, burst_every=4)
        delta_b = StatisticalDelta(0.7, burst_every=4)
        stepped = [delta_a.delay(0, j) for j in range(1, 33)]
        assert np.allclose(stepped, delta_b.delays_array(0, 32))

    def test_frontrunner_targets_low_pids_only(self):
        delta = StatisticalDelta(1.0, style="frontrunner", burst_every=4,
                                 n=8)
        assert delta.delays_array(0, 16).sum() > 0
        assert delta.delays_array(7, 16).sum() == 0.0

    def test_starts_at_zero(self):
        assert StatisticalDelta(1.0).start(3) == 0.0


class TestEndToEnd:
    @pytest.mark.parametrize("style", ["bursts", "frontrunner"])
    def test_consensus_terminates_and_agrees(self, style):
        delta = StatisticalDelta(0.5, style=style, burst_every=8, n=16)
        result = run_noisy_trial(16, Exponential(1.0), seed=3, delta=delta,
                                 engine="event")
        assert result.all_decided and result.agreed

    def test_comparable_to_bounded_adversary(self):
        """The conjecture's empirical face: burst schedules within the
        statistical budget do not blow up termination."""
        from repro.sched.delta import ZeroDelta
        import numpy as np

        def mean_round(delta_factory, seed0):
            rounds = []
            for seed in range(seed0, seed0 + 15):
                result = run_noisy_trial(16, Exponential(1.0), seed=seed,
                                         delta=delta_factory(),
                                         engine="event")
                rounds.append(result.last_decision_round)
            return float(np.mean(rounds))

        baseline = mean_round(lambda: ZeroDelta(), 100)
        stat = mean_round(
            lambda: StatisticalDelta(0.5, burst_every=8, n=16), 100)
        assert stat < baseline + 4.0  # same ballpark, not exploding
