"""Tests for the operation-history recorder and its queries."""

from repro.memory import HistoryRecorder, make_racing_arrays
from repro.types import read, write


def build_history():
    rec = HistoryRecorder()
    mem = make_racing_arrays(recorder=rec)
    mem.execute(read("a0", 1), pid=0)
    mem.execute(write("a0", 1, 1), pid=0)
    mem.execute(read("a0", 1), pid=1)
    mem.execute(write("a1", 1, 1), pid=1)
    mem.execute(write("a0", 1, 1), pid=2)
    return rec, mem


class TestRecording:
    def test_length_and_order(self):
        rec, _ = build_history()
        assert len(rec) == 5
        seqs = [e.seq for e in rec]
        assert seqs == sorted(seqs)

    def test_capacity_truncates(self):
        rec = HistoryRecorder(capacity=2)
        mem = make_racing_arrays(recorder=rec)
        for _ in range(5):
            mem.execute(read("a0", 1))
        assert len(rec) == 2

    def test_event_str(self):
        rec, _ = build_history()
        assert "p0" in str(rec.events[0])


class TestQueries:
    def test_writes_to(self):
        rec, _ = build_history()
        ws = rec.writes_to("a0", 1)
        assert [e.pid for e in ws] == [0, 2]

    def test_reads_of(self):
        rec, _ = build_history()
        rs = rec.reads_of("a0", 1)
        assert [e.pid for e in rs] == [0, 1]

    def test_first_setter(self):
        rec, _ = build_history()
        assert rec.first_setter("a0", 1).pid == 0
        assert rec.first_setter("a1", 1).pid == 1
        assert rec.first_setter("a1", 9) is None

    def test_ops_by(self):
        rec, _ = build_history()
        assert len(rec.ops_by(0)) == 2
        assert len(rec.ops_by(9)) == 0

    def test_ops_between(self):
        rec, _ = build_history()
        # Events 3 and 4 belong to pid 1; between seq 2 and 5 exclusive.
        assert rec.ops_between(1, 2, 5) == 2
        assert rec.ops_between(1, 3, 4) == 0

    def test_max_index_written(self):
        rec = HistoryRecorder()
        mem = make_racing_arrays(recorder=rec)
        mem.execute(write("a0", 3, 1))
        mem.execute(write("a1", 7, 1))
        assert rec.max_index_written(["a0", "a1"]) == 7
        assert rec.max_index_written(["a0"]) == 3


class TestLinearizability:
    def test_consistent_history_passes(self):
        rec, _ = build_history()
        assert rec.check_read_your_writes()

    def test_prefix_reads_validate(self):
        rec = HistoryRecorder()
        mem = make_racing_arrays(recorder=rec)
        mem.execute(read("a0", 0))
        assert rec.check_read_your_writes()

    def test_tampered_history_fails(self):
        rec, _ = build_history()
        from repro.memory.history import HistoryEvent
        bad = HistoryEvent(99, 0, read("a0", 1), value=0)  # stale read
        rec.events.append(bad)
        assert not rec.check_read_your_writes()
