"""Tests for the Section-8 bounded-space combined protocol."""

import pytest

from repro.errors import ProtocolError
from repro._rng import make_rng
from repro.core.bounded import (
    BACKUP_PREFIX,
    BoundedLeanConsensus,
    default_backup_factory,
    suggested_round_cap,
)
from repro.memory import SharedMemory, UnboundedBitArray
from repro.sim.runner import make_memory_for
from repro.types import write


def make_bounded(pid, bit, cap, coin_seed=7):
    return BoundedLeanConsensus(
        pid, bit, round_cap=cap,
        backup_factory=default_backup_factory(make_rng(coin_seed)))


def step(machine, memory):
    res = memory.execute(machine.peek(), pid=machine.pid)
    machine.apply(res)


def run_solo(machine, memory, max_ops=2000):
    while not machine.done and machine.ops < max_ops:
        step(machine, memory)
    return machine


def poisoned_memory(machine, rounds=64):
    """Memory where both racing arrays are pre-marked: the main phase can
    never decide, forcing the cutoff."""
    mem = make_memory_for([machine])
    for r in range(1, rounds):
        mem.execute(write("a0", r, 1))
        mem.execute(write("a1", r, 1))
    return mem


class TestSuggestedRoundCap:
    def test_monotone_in_n(self):
        caps = [suggested_round_cap(n) for n in (1, 4, 64, 1024, 10**5)]
        assert caps == sorted(caps)

    def test_theta_log_squared_shape(self):
        import math
        n = 4096
        cap = suggested_round_cap(n)
        assert cap == pytest.approx(4 * (math.log2(n + 1) + 1) ** 2, rel=0.1)

    def test_minimum_is_8(self):
        assert suggested_round_cap(1) >= 8

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            suggested_round_cap(0)


class TestHappyPath:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_solo_never_uses_backup(self, bit):
        m = make_bounded(0, bit, cap=10)
        mem = make_memory_for([m])
        run_solo(m, mem)
        assert m.decision is not None
        assert m.decision.value == bit
        assert not m.used_backup
        assert m.decision.ops == 8

    def test_required_arrays_include_backup_namespace(self):
        names = [n for n, _ in BoundedLeanConsensus.required_arrays()]
        assert "a0" in names and "a1" in names
        assert BACKUP_PREFIX + "a0" in names
        assert BACKUP_PREFIX + "c1" in names

    def test_round_cap_validation(self):
        with pytest.raises(ProtocolError):
            make_bounded(0, 0, cap=1)


class TestCutoffPath:
    def test_overflow_switches_to_backup(self):
        m = make_bounded(0, 0, cap=3)
        mem = poisoned_memory(m)
        run_solo(m, mem)
        assert m.used_backup
        assert m.decision is not None
        assert m.decision.value == 0  # backup validity from preference 0

    def test_backup_input_is_cutoff_preference(self):
        m = make_bounded(0, 0, cap=3)
        mem = make_memory_for([m])
        # Mark only a1 so the machine adopts 1, then poison both arrays up
        # to the cap so it cannot decide in the main phase.
        for r in range(1, 8):
            mem.execute(write("a1", r, 1))
            mem.execute(write("a0", r, 1))
        run_solo(m, mem)
        assert m.used_backup
        assert m.decision.value in (0, 1)

    def test_ops_accumulate_across_phases(self):
        m = make_bounded(0, 0, cap=3)
        mem = poisoned_memory(m)
        run_solo(m, mem)
        assert m.decision.ops == m.ops
        assert m.ops > 3 * 4  # more than the truncated main phase

    def test_main_arrays_respect_capacity(self):
        """With memory capacity = round_cap the main phase never faults:
        the bounded protocol really is bounded-space."""
        cap = 5
        m = make_bounded(0, 0, cap=cap)
        recorder_mem = SharedMemory(arrays=[
            UnboundedBitArray("a0", prefix_value=1, capacity=cap),
            UnboundedBitArray("a1", prefix_value=1, capacity=cap),
            UnboundedBitArray(BACKUP_PREFIX + "a0", prefix_value=1),
            UnboundedBitArray(BACKUP_PREFIX + "a1", prefix_value=1),
            UnboundedBitArray(BACKUP_PREFIX + "c0"),
            UnboundedBitArray(BACKUP_PREFIX + "c1"),
        ])
        for r in range(1, cap + 1):
            recorder_mem.execute(write("a0", r, 1))
            recorder_mem.execute(write("a1", r, 1))
        run_solo(m, recorder_mem)
        assert m.decision is not None


class TestAgreementAcrossBoundary:
    def test_mixed_main_and_backup_deciders_agree(self):
        """One process decides in the main phase; a laggard overflows into
        the backup.  Lemma 2/4 reasoning forces the same value."""
        fast = make_bounded(0, 1, cap=4, coin_seed=1)
        slow = make_bounded(1, 0, cap=4, coin_seed=2)
        mem = make_memory_for([fast, slow])
        run_solo(fast, mem)  # decides 1 in the main phase
        run_solo(slow, mem)
        assert fast.decision.value == 1
        assert not fast.used_backup
        assert slow.decision is not None
        assert slow.decision.value == 1

    def test_both_overflow_agree(self):
        a = make_bounded(0, 0, cap=3, coin_seed=3)
        b = make_bounded(1, 1, cap=3, coin_seed=4)
        mem = make_memory_for([a, b])
        # Poison both racing arrays so both machines hit the cutoff.
        for r in range(1, 64):
            mem.execute(write("a0", r, 1))
            mem.execute(write("a1", r, 1))
        run_solo(a, mem)
        run_solo(b, mem)
        assert a.used_backup and b.used_backup
        assert a.decision.value == b.decision.value


class TestSnapshots:
    def test_roundtrip_main_phase(self):
        m = make_bounded(0, 0, cap=6)
        mem = make_memory_for([m])
        step(m, mem)
        snap = m.snapshot()
        expected = m.peek()
        step(m, mem)
        m.restore(snap)
        assert m.peek() == expected

    def test_roundtrip_backup_phase(self):
        m = make_bounded(0, 0, cap=3)
        mem = poisoned_memory(m)
        while not m.used_backup:
            step(m, mem)
        snap = m.snapshot()
        expected = m.peek()
        step(m, mem)
        m.restore(snap)
        assert m.peek() == expected
        assert m.used_backup
