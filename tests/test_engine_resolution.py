"""Engine selection: the widened fast family, the auto rule, and reasons.

``resolve_engine_info`` must (a) admit every protocol in
``FAST_VARIANTS`` (with crash failures) to the vectorized engine, (b)
keep inherently event-driven features off it with a *structured* reason
rather than a silent fallback, and (c) pin the n-threshold boundary of
the ``"auto"`` rule so a narrow miss (n = 255) is explained on the
result.
"""

import pytest

from repro.api import (
    AdversarySpec,
    FailureSpec,
    NoiseSpec,
    NoisyModelSpec,
    ProtocolSpec,
    TrialSpec,
    compile_spec,
    fast_ineligibility,
    resolve_engine,
    resolve_engine_info,
    run_trial,
)
from repro.api.compile import FAST_AUTO_MIN_N
from repro.errors import ConfigurationError
from repro.sim.fast import FAST_VARIANTS

EXPO = NoiseSpec.of("exponential", mean=1.0)


def noisy_spec(n=8, **kwargs):
    return TrialSpec(n=n, model=NoisyModelSpec(noise=EXPO), **kwargs)


class TestAutoBoundary:
    def test_boundary_is_pinned(self):
        assert FAST_AUTO_MIN_N == 256
        below = resolve_engine_info(noisy_spec(n=FAST_AUTO_MIN_N - 1))
        at = resolve_engine_info(noisy_spec(n=FAST_AUTO_MIN_N))
        assert below.engine == "event"
        assert at.engine == "fast" and at.reason is None

    def test_narrow_miss_reason_names_the_threshold(self):
        info = resolve_engine_info(noisy_spec(n=255))
        assert "n=255" in info.reason
        assert str(FAST_AUTO_MIN_N) in info.reason
        assert "fast" in info.reason  # tells the caller how to override

    def test_reason_lands_on_the_result(self):
        result = run_trial(noisy_spec(n=255), seed=1)
        assert result.engine == "event"
        assert "n=255" in result.engine_reason
        fast = run_trial(noisy_spec(n=256), seed=1)
        assert fast.engine == "fast" and fast.engine_reason is None

    def test_explicit_fast_overrides_threshold(self):
        result = run_trial(noisy_spec(n=8, engine="fast"), seed=1)
        assert result.engine == "fast"
        assert result.engine_reason is None
        assert result.agreed

    def test_explicit_event_has_no_reason(self):
        info = resolve_engine_info(noisy_spec(n=4, engine="event"))
        assert info.engine == "event" and info.reason is None
        result = run_trial(noisy_spec(n=4, engine="event"), seed=1)
        assert result.engine_reason is None


class TestFastFamily:
    @pytest.mark.parametrize("protocol", sorted(FAST_VARIANTS))
    def test_all_variants_compile_on_fast(self, protocol):
        spec = noisy_spec(n=12, engine="fast",
                          protocol=ProtocolSpec(name=protocol),
                          check=(protocol != "eager"))
        compiled = compile_spec(spec, seed=1)
        assert compiled.engine == "fast"
        assert compiled.machines is None  # no event assembly
        result = compiled.run()
        assert result.engine == "fast"
        assert result.total_ops > 0

    def test_crash_failures_run_on_fast(self):
        spec = noisy_spec(n=40, engine="fast", failures=FailureSpec(h=0.05))
        result = run_trial(spec, seed=6)
        assert result.engine == "fast"
        assert result.halted or result.all_decided

    @pytest.mark.parametrize("protocol", ["shared-coin", "bounded"])
    def test_protocols_without_replay_raise_on_explicit_fast(self, protocol):
        spec = noisy_spec(engine="fast", protocol=ProtocolSpec(name=protocol))
        with pytest.raises(ConfigurationError, match="vectorized replay"):
            compile_spec(spec, seed=1)

    def test_auto_falls_back_with_reason_per_blocker(self):
        cases = {
            "shared-coin": noisy_spec(
                n=400, protocol=ProtocolSpec(name="shared-coin")),
            "adversary": noisy_spec(
                n=400, failures=FailureSpec(
                    adversary=AdversarySpec(budget=1))),
            "record": noisy_spec(n=400, record=True),
            "write noise": TrialSpec(n=400, model=NoisyModelSpec(
                noise=EXPO, write_noise=NoiseSpec.of("uniform",
                                                     low=0.0, high=1.0))),
        }
        for label, spec in cases.items():
            info = resolve_engine_info(spec)
            assert info.engine == "event", label
            assert info.reason, label
            assert fast_ineligibility(spec) == info.reason

    def test_explicit_fast_raises_per_blocker(self):
        spec = noisy_spec(n=400, engine="fast", record=True)
        with pytest.raises(ConfigurationError, match="record"):
            resolve_engine(spec)

    def test_eligible_spec_has_no_ineligibility(self):
        for protocol in sorted(FAST_VARIANTS):
            spec = noisy_spec(protocol=ProtocolSpec(name=protocol),
                              failures=FailureSpec(h=0.01))
            assert fast_ineligibility(spec) is None


class TestVariantSanity:
    """Coarse behavioural checks on the vectorized variants themselves."""

    def test_conservative_decides_later_than_lean(self):
        lean = run_trial(noisy_spec(n=64, engine="fast"), seed=9)
        cons = run_trial(noisy_spec(n=64, engine="fast",
                                    protocol=ProtocolSpec(
                                        name="conservative")), seed=9)
        # Identical schedules (same seed => same presample stream), so the
        # lag-2 rule can only delay the first decision.
        assert cons.first_decision_round >= lean.first_decision_round

    def test_optimized_elides_operations(self):
        lean = run_trial(noisy_spec(n=64, engine="fast"), seed=10)
        opt = run_trial(noisy_spec(n=64, engine="fast",
                                   protocol=ProtocolSpec(
                                       name="optimized")), seed=10)
        assert opt.total_ops < lean.total_ops

    def test_random_tie_is_seed_deterministic(self):
        spec = noisy_spec(n=32, engine="fast",
                          protocol=ProtocolSpec(name="random-tie"))
        assert run_trial(spec, seed=11) == run_trial(spec, seed=11)


class TestIneligibilityReportsEveryBlocker:
    """Regression: fast_ineligibility used to stop at the first blocking
    reason; ``engine_reason`` now names *everything* the user must change
    to unlock the vectorized path."""

    def test_all_reasons_joined(self):
        # Every remaining blocker at once, with the exact strings pinned:
        # round caps and op budgets replay vectorized since PR 7, so a
        # spec carrying both alongside real blockers must not mention
        # them.
        spec = TrialSpec(
            n=8,
            model=NoisyModelSpec(
                noise=EXPO,
                write_noise=NoiseSpec.of("uniform", low=0.0, high=1.0)),
            protocol=ProtocolSpec(name="shared-coin", round_cap=5),
            max_total_ops=10,
            record=True,
            failures=FailureSpec(h=0.1, adversary=AdversarySpec(budget=1)),
        )
        why = fast_ineligibility(spec)
        assert why == "; ".join([
            "protocol 'shared-coin' has no vectorized replay "
            f"(supported: {sorted(FAST_VARIANTS)})",
            "adaptive crash adversaries observe the execution and "
            "cannot be presampled obliviously",
            "record=True history capture requires the event engine",
            "per-op-kind write noise requires the event engine",
        ])
        assert "round_cap" not in why
        assert "max_total_ops" not in why

    def test_auto_reason_carries_the_full_list(self):
        spec = noisy_spec(
            n=300, record=True,
            failures=FailureSpec(adversary=AdversarySpec(budget=1)))
        info = resolve_engine_info(spec)
        assert info.engine == "event"
        assert "record=True" in info.reason
        assert "adaptive crash adversaries" in info.reason

    def test_explicit_fast_error_names_everything(self):
        spec = noisy_spec(
            n=300, engine="fast", record=True,
            failures=FailureSpec(adversary=AdversarySpec(budget=1)))
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_engine_info(spec)
        assert "record=True" in str(excinfo.value)
        assert "adaptive crash adversaries" in str(excinfo.value)

    def test_single_blocker_unchanged(self):
        why = fast_ineligibility(noisy_spec(record=True))
        assert why == ("record=True history capture requires the event "
                       "engine")


class TestRetiredBlockers:
    """PR 7: round caps and operation budgets replay exactly on the
    vectorized engines, so neither blocks the fast family any more."""

    def test_round_cap_is_fast_eligible(self):
        spec = noisy_spec(n=400,
                          protocol=ProtocolSpec(name="lean", round_cap=64))
        assert fast_ineligibility(spec) is None
        assert resolve_engine_info(spec).engine == "fast"

    def test_max_total_ops_is_fast_eligible(self):
        spec = noisy_spec(n=400, max_total_ops=50)
        assert fast_ineligibility(spec) is None
        assert resolve_engine_info(spec).engine == "fast"

    def test_budget_stop_is_exact_on_fast(self):
        result = run_trial(noisy_spec(n=400, max_total_ops=50), seed=3)
        assert result.engine == "fast"
        assert result.total_ops == 50
        assert result.budget_exhausted

    def test_round_cap_bounds_rounds_on_fast(self):
        spec = noisy_spec(n=12, engine="fast",
                          protocol=ProtocolSpec(name="lean", round_cap=3))
        result = run_trial(spec, seed=4)
        assert result.engine == "fast"
        assert result.max_round <= 3
