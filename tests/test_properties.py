"""Property-based tests (hypothesis): the schedule itself is the input.

Safety must hold for *every* interleaving; these tests let hypothesis hunt
for a counterexample schedule, which complements the exhaustive model
checker (bounded but complete) with randomized depth.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._rng import make_rng
from repro.analysis.renewal import exactly_one_probability, lemma5_bound
from repro.core.invariants import (
    check_agreement,
    check_decision_gap,
    check_round_ladder,
    check_validity,
)
from repro.core.machine import LeanConsensus, ScriptedCoin, SharedCoinLean
from repro.core.variants import ConservativeLean, OptimizedLean
from repro.memory import HistoryRecorder
from repro.sched.pickers import ScriptedPicker
from repro.sim.engine import StepEngine
from repro.sim.runner import make_machines, make_memory_for
from repro.noise import Exponential, Geometric, TwoPoint, Uniform

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

inputs_strategy = st.lists(st.integers(0, 1), min_size=2, max_size=5)
schedule_strategy = st.lists(st.integers(0, 9), min_size=1, max_size=300)


def run_scripted(protocol_factory, input_bits, schedule, record=False):
    machines = [protocol_factory(pid, bit)
                for pid, bit in enumerate(input_bits)]
    memory = make_memory_for(machines, record=record)
    engine = StepEngine(machines, memory, ScriptedPicker(schedule),
                        max_total_ops=2000)
    result = engine.run()
    return result, memory


# ---------------------------------------------------------------------------
# Safety under arbitrary schedules
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(input_bits=inputs_strategy, schedule=schedule_strategy)
def test_lean_safety_under_arbitrary_schedules(input_bits, schedule):
    result, memory = run_scripted(LeanConsensus, input_bits, schedule)
    check_agreement(result.decisions)
    check_validity(result.inputs, result.decisions)
    check_decision_gap(result.decisions)
    check_round_ladder(memory)


@settings(max_examples=60, deadline=None)
@given(input_bits=inputs_strategy, schedule=schedule_strategy)
def test_optimized_safety_under_arbitrary_schedules(input_bits, schedule):
    result, memory = run_scripted(OptimizedLean, input_bits, schedule)
    check_agreement(result.decisions)
    check_validity(result.inputs, result.decisions)
    check_round_ladder(memory)


@settings(max_examples=60, deadline=None)
@given(input_bits=inputs_strategy, schedule=schedule_strategy)
def test_conservative_safety_under_arbitrary_schedules(input_bits, schedule):
    result, memory = run_scripted(ConservativeLean, input_bits, schedule)
    check_agreement(result.decisions)
    check_validity(result.inputs, result.decisions)


@settings(max_examples=60, deadline=None)
@given(input_bits=inputs_strategy, schedule=schedule_strategy,
       coin_script=st.lists(st.integers(0, 1), min_size=1, max_size=8))
def test_shared_coin_safety_under_arbitrary_schedules(input_bits, schedule,
                                                      coin_script):
    """Safety of the coin protocol must hold for every coin outcome too —
    the adversary picks both the schedule and the coins here."""
    def factory(pid, bit):
        return SharedCoinLean(pid, bit, coin=ScriptedCoin(coin_script))

    result, _ = run_scripted(factory, input_bits, schedule)
    check_agreement(result.decisions)
    check_validity(result.inputs, result.decisions)


@settings(max_examples=60, deadline=None)
@given(input_bits=inputs_strategy, schedule=schedule_strategy)
def test_history_is_linearizable(input_bits, schedule):
    result, memory = run_scripted(LeanConsensus, input_bits, schedule,
                                  record=True)
    assert isinstance(memory.recorder, HistoryRecorder)
    assert memory.recorder.check_read_your_writes()


# ---------------------------------------------------------------------------
# Machine-level properties
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(input_bits=inputs_strategy, schedule=schedule_strategy,
       cut=st.integers(0, 200))
def test_snapshot_restore_is_transparent(input_bits, schedule, cut):
    """Running, snapshotting at an arbitrary point, restoring, and resuming
    must be observationally identical to running straight through."""
    machines = [LeanConsensus(pid, bit)
                for pid, bit in enumerate(input_bits)]
    memory = make_memory_for(machines)
    picker = ScriptedPicker(schedule)
    engine = StepEngine(machines, memory, picker, max_total_ops=400)

    # Run `cut` steps manually, snapshot+restore mid-flight, then finish.
    steps = 0
    while steps < cut:
        enabled = sorted(m.pid for m in machines if not m.done)
        if not enabled:
            break
        pid = picker.pick(enabled)
        machine = next(m for m in machines if m.pid == pid)
        snap = machine.snapshot()
        machine.restore(snap)  # must be a no-op
        res = memory.execute(machine.peek(), pid=pid)
        machine.apply(res)
        steps += 1
    decisions = {m.pid: m.decision for m in machines
                 if m.decision is not None}
    check_agreement(decisions)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 1), st.integers(1, 30))
def test_lean_op_kind_pattern(bit, steps):
    """Operation j of a solo round follows read,read,write,read cyclically
    until a decision."""
    machine = LeanConsensus(0, bit)
    memory = make_memory_for([machine])
    pattern = ["read", "read", "write", "read"]
    for j in range(steps):
        if machine.done:
            break
        op = machine.peek()
        assert op.kind.value == pattern[j % 4]
        machine.apply(memory.execute(op))


# ---------------------------------------------------------------------------
# Distribution properties
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**32 - 1),
       dist_idx=st.integers(0, 3),
       size=st.integers(1, 64))
def test_distributions_nonnegative_and_seeded(seed, dist_idx, size):
    dists = [Exponential(1.0), Uniform(0.0, 2.0), Geometric(0.5),
             TwoPoint(2 / 3, 4 / 3)]
    dist = dists[dist_idx]
    a = dist.sample_array(make_rng(seed), size)
    b = dist.sample_array(make_rng(seed), size)
    assert (a >= 0).all()
    assert (a == b).all()


# ---------------------------------------------------------------------------
# Lemma 5 as a universal inequality
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(qs=st.lists(st.floats(0.01, 0.999), min_size=1, max_size=8))
def test_lemma5_inequality_universal(qs):
    x = math.prod(qs)
    assert exactly_one_probability(qs) >= lemma5_bound(x) - 1e-9
