"""Tests for the seeded RNG plumbing."""

import numpy as np
import pytest

from repro._rng import derive_seed, make_rng, spawn, stream, trial_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).random(8)
        b = make_rng(42).random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(8), make_rng(2).random(8))

    def test_passthrough_generator(self):
        g = make_rng(7)
        assert make_rng(g) is g

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        g = make_rng(seq)
        assert isinstance(g, np.random.Generator)

    def test_none_gives_fresh_entropy(self):
        assert not np.array_equal(make_rng(None).random(4),
                                  make_rng(None).random(4))


class TestSpawn:
    def test_children_are_independent_and_reproducible(self):
        kids_a = spawn(make_rng(9), 3)
        kids_b = spawn(make_rng(9), 3)
        for a, b in zip(kids_a, kids_b):
            assert np.array_equal(a.random(4), b.random(4))

    def test_children_differ_from_each_other(self):
        kids = spawn(make_rng(9), 2)
        assert not np.array_equal(kids[0].random(8), kids[1].random(8))

    def test_spawn_zero(self):
        assert spawn(make_rng(1), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(make_rng(1), -1)

    def test_prefix_stability(self):
        """Adding more spawned children never perturbs earlier ones."""
        first_of_3 = spawn(make_rng(11), 3)[0].random(4)
        first_of_10 = spawn(make_rng(11), 10)[0].random(4)
        assert np.array_equal(first_of_3, first_of_10)


class TestStream:
    def test_yields_generators(self):
        it = stream(make_rng(3))
        a, b = next(it), next(it)
        assert not np.array_equal(a.random(4), b.random(4))


class TestTrialRngs:
    def test_count_and_reproducibility(self):
        a = trial_rngs(13, 5)
        b = trial_rngs(13, 5)
        assert len(a) == 5
        assert np.array_equal(a[4].random(4), b[4].random(4))


class TestDeriveSeed:
    def test_in_range_and_deterministic(self):
        s1 = derive_seed(make_rng(21))
        s2 = derive_seed(make_rng(21))
        assert s1 == s2
        assert 0 <= s1 < 2**63
