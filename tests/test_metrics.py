"""Tests for trial-result records and aggregation."""

import pytest

from repro.sim.metrics import summarize
from repro.sim.results import TrialResult
from repro.types import Decision


def trial(n=2, decisions=(), halted=(), total_ops=10, used_backup=0):
    result = TrialResult(n=n, inputs={pid: pid % 2 for pid in range(n)})
    for pid, value, rnd, ops in decisions:
        result.note_decision(pid, Decision(value, rnd, ops))
    result.halted = set(halted)
    result.total_ops = total_ops
    result.used_backup = used_backup
    return result


class TestTrialResult:
    def test_note_decision_tracks_first_and_last(self):
        r = trial(decisions=[(0, 1, 3, 12), (1, 1, 4, 16)])
        assert r.first_decision_round == 3
        assert r.first_decision_ops == 12
        assert r.last_decision_round == 4
        assert r.max_round == 4

    def test_agreed_and_decided_values(self):
        r = trial(decisions=[(0, 1, 2, 8), (1, 1, 2, 8)])
        assert r.agreed and r.decided_values == {1}
        r2 = trial(decisions=[(0, 0, 2, 8), (1, 1, 2, 8)])
        assert not r2.agreed

    def test_all_decided_counts_halted(self):
        r = trial(decisions=[(0, 1, 2, 8)], halted=[1])
        assert r.all_decided

    def test_not_all_decided(self):
        r = trial(decisions=[(0, 1, 2, 8)])
        assert not r.all_decided

    def test_empty_trial_not_all_decided(self):
        assert not trial().all_decided


class TestSummarize:
    def test_basic_aggregation(self):
        trials = [
            trial(decisions=[(0, 1, 2, 8), (1, 1, 3, 12)], total_ops=20),
            trial(decisions=[(0, 1, 4, 16), (1, 1, 4, 16)], total_ops=32),
        ]
        stats = summarize(trials)
        assert stats.trials == 2
        assert stats.decided_trials == 2
        assert stats.mean_first_round == pytest.approx(3.0)
        assert stats.mean_last_round == pytest.approx(3.5)
        assert stats.mean_total_ops == pytest.approx(26.0)
        assert stats.agreement_rate == 1.0

    def test_agreement_rate_counts_disagreements(self):
        trials = [trial(decisions=[(0, 0, 2, 8), (1, 1, 2, 8)]),
                  trial(decisions=[(0, 1, 2, 8), (1, 1, 2, 8)])]
        assert summarize(trials).agreement_rate == pytest.approx(0.5)

    def test_undecided_trials_do_not_poison_means(self):
        trials = [trial(), trial(decisions=[(0, 1, 5, 20)])]
        stats = summarize(trials)
        assert stats.decided_trials == 1
        assert stats.mean_first_round == pytest.approx(5.0)

    def test_all_undecided(self):
        stats = summarize([trial(), trial()])
        assert stats.mean_first_round is None
        assert stats.ci95_first_round is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_backup_rate(self):
        trials = [trial(n=4, used_backup=2), trial(n=4, used_backup=0)]
        assert summarize(trials).backup_rate == pytest.approx(0.25)

    def test_row_renders(self):
        stats = summarize([trial(decisions=[(0, 1, 2, 8), (1, 1, 2, 8)])])
        assert "agree=" in stats.row()
