"""Deterministic chaos: seeded fault plans against the sweep service.

The property this suite enforces (the PR's acceptance bar): under ANY
seeded :class:`~repro.serve.chaos.FaultPlan`, a job either completes
with frames **bit-identical** to ``run_sweep`` — corruption can never
leak into a result — or surfaces a *typed* terminal state
(``JobFailedError`` on an exhausted retry budget, ``JobCancelledError``
after a cancel).  No hangs, no silent data loss, no third outcome.

Every test here is seeded and deterministic: a failure reproduces from
its printed plan alone.
"""

import json
import threading
import time

import pytest

from repro.api import (
    NoiseSpec,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    run_sweep,
)
from repro.serve import (
    JobRunner,
    JobState,
    ResultStore,
    SweepJob,
    effective_state,
)
from repro.serve.chaos import (
    FAULT_KINDS,
    ChaosOutcome,
    FaultInjection,
    FaultPlan,
    ThreadDispatcher,
    run_with_chaos,
)
from repro.serve.executor import JobFailedError, run_chunk_task

EXPO = NoiseSpec.of("exponential", mean=1.0)
UNIF = NoiseSpec.of("uniform", low=0.0, high=2.0)


def chaos_sweep(trials=24):
    return SweepSpec(
        base=TrialSpec(n=4, model=NoisyModelSpec(noise=EXPO)),
        axes=(SweepAxis("model.noise", (EXPO, UNIF), name="distribution",
                        labels=("expo", "unif")),),
        trials=trials)


def make_job(store, trials=24, seed=99, chunk_size=8):
    sweep = chaos_sweep(trials)
    job = SweepJob.from_sweep(sweep, seed=seed, chunk_size=chunk_size)
    job.save(store)
    return sweep, job


def assert_bit_identical(sweep, seed, result):
    ref = run_sweep(sweep, seed=seed)
    for cell, frame in result:
        assert frame == ref.frames[cell.index]


class TestFaultPlan:
    def test_generation_is_deterministic(self):
        a = FaultPlan.generate(7, chunk_count=6)
        b = FaultPlan.generate(7, chunk_count=6)
        assert a == b
        assert FaultPlan.generate(8, chunk_count=6) != a

    def test_json_roundtrip(self):
        plan = FaultPlan.generate(3, chunk_count=6)
        assert FaultPlan.from_json(plan.to_json()) == plan
        # and the wire form is plain JSON (CI artifacts carry it)
        json.loads(plan.to_json())

    def test_generated_plans_respect_retry_budget(self):
        # charging faults per chunk stay strictly under the budget, so
        # every *generated* plan is recoverable by construction
        for seed in range(50):
            plan = FaultPlan.generate(seed, chunk_count=4, max_faults=8)
            charged = {}
            for fault in plan.faults:
                if fault.kind in ("kill_worker", "torn_write",
                                  "slow_worker"):
                    charged[fault.chunk] = charged.get(fault.chunk, 0) + 1
            assert all(count < JobRunner.MAX_CHUNK_RETRIES
                       for count in charged.values())


class TestSingleFaultKinds:
    """One test per fault kind: recovery + bit-identity, every seam."""

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_recovers_bit_identical(self, tmp_path, kind):
        store = ResultStore(str(tmp_path))
        sweep, job = make_job(store, seed=31 + hash(kind) % 100)
        plan = FaultPlan(seed=0, faults=(
            FaultInjection(kind=kind, chunk=1),))
        outcome = run_with_chaos(store, job, plan,
                                 lease_seconds=0.3,
                                 chunk_timeout=(1.0 if kind == "slow_worker"
                                                else None))
        assert isinstance(outcome, ChaosOutcome)
        assert any(f["kind"] == kind for f in outcome.fired), outcome.fired
        state = JobState.load(store, job.job_id)
        assert effective_state(state) == "done"
        assert state.trials_done == job.total_trials
        assert_bit_identical(sweep, job.entropy, outcome.result)

    def test_stale_claim_all_variants(self, tmp_path):
        for variant in ("dead_pid", "expired", "pid_reuse"):
            store = ResultStore(str(tmp_path / variant))
            sweep, job = make_job(store, seed=7)
            plan = FaultPlan(seed=0, faults=(
                FaultInjection("stale_claim", 0, variant),
                FaultInjection("stale_claim", 2, variant)))
            outcome = run_with_chaos(store, job, plan, lease_seconds=0.3)
            assert_bit_identical(sweep, job.entropy, outcome.result)

    def test_torn_write_both_variants_repair(self, tmp_path):
        for variant in ("truncated", "bit_flipped"):
            store = ResultStore(str(tmp_path / variant))
            sweep, job = make_job(store, seed=13)
            plan = FaultPlan(seed=0, faults=(
                FaultInjection("torn_write", 0, variant),))
            outcome = run_with_chaos(store, job, plan, lease_seconds=0.3)
            assert any(f["kind"] == "torn_write" for f in outcome.fired)
            # the torn object was repaired: every chunk now validates
            for task in job.chunks():
                frame = store.get(task.key)
                assert frame is not None and len(frame) == task.count
            assert_bit_identical(sweep, job.entropy, outcome.result)

    def test_coordinator_crash_resumes_and_folds_once(self, tmp_path):
        store = ResultStore(str(tmp_path))
        sweep, job = make_job(store, seed=17)
        plan = FaultPlan(seed=0, faults=(
            FaultInjection("coordinator_crash", 0),
            FaultInjection("coordinator_crash", 3)))
        outcome = run_with_chaos(store, job, plan, lease_seconds=0.3)
        assert outcome.resumes >= 1
        state = JobState.load(store, job.job_id)
        # exactly-once folding: the resumed run counts every trial once
        assert state.trials_done == job.total_trials
        assert state.chunks_done == len(job.chunks())
        assert_bit_identical(sweep, job.entropy, outcome.result)


class TestSeededPropertyGrid:
    """Generated plans across seeds: the actual property sweep."""

    @pytest.mark.parametrize("seed", list(range(8)))
    def test_any_generated_plan_recovers_bit_identical(self, tmp_path,
                                                       seed):
        store = ResultStore(str(tmp_path))
        sweep, job = make_job(store, seed=1000 + seed)
        plan = FaultPlan.generate(seed, chunk_count=len(job.chunks()))
        outcome = run_with_chaos(store, job, plan, lease_seconds=0.3,
                                 chunk_timeout=2.0)
        state = JobState.load(store, job.job_id)
        assert effective_state(state) == "done", plan.to_json()
        assert state.trials_done == job.total_trials, plan.to_json()
        assert_bit_identical(sweep, job.entropy, outcome.result)


class TestTypedTerminalStates:
    def test_retry_budget_exhaustion_is_typed_failure(self, tmp_path):
        store = ResultStore(str(tmp_path))
        _sweep, job = make_job(store, seed=23)
        # hand-built (not generatable) plan: kill one chunk's worker
        # MAX_CHUNK_RETRIES times — must fail typed, not hang
        plan = FaultPlan(seed=0, faults=tuple(
            FaultInjection("kill_worker", 1)
            for _ in range(JobRunner.MAX_CHUNK_RETRIES)))
        with pytest.raises(JobFailedError, match="3 times; giving up"):
            run_with_chaos(store, job, plan, lease_seconds=0.3)
        state = JobState.load(store, job.job_id)
        assert effective_state(state) == "failed"
        assert "giving up" in state.error
        # the budget is persisted: the doomed chunk's ledger survives
        doomed = job.chunks()[1].key
        assert state.retry_state(doomed).attempts == \
            JobRunner.MAX_CHUNK_RETRIES

    def test_failed_job_resubmission_recovers(self, tmp_path):
        # after a typed failure, a clean resubmission (no chaos) adopts
        # the stored chunks and completes — failure is never a dead end
        store = ResultStore(str(tmp_path))
        sweep, job = make_job(store, seed=23)
        plan = FaultPlan(seed=0, faults=tuple(
            FaultInjection("kill_worker", 1)
            for _ in range(JobRunner.MAX_CHUNK_RETRIES)))
        with pytest.raises(JobFailedError):
            run_with_chaos(store, job, plan, lease_seconds=0.3)
        result = JobRunner(store).run(job)
        assert_bit_identical(sweep, job.entropy, result)


class TestTwoCoordinators:
    def test_adopted_resume_across_coordinators(self, tmp_path):
        """Two coordinators drive one job concurrently: leases elect one
        computer per chunk, the other adopts, both finish bit-identical,
        and no chunk is computed by both."""
        store = ResultStore(str(tmp_path))
        sweep, job = make_job(store, trials=32, seed=41, chunk_size=8)
        computed_by = []
        lock = threading.Lock()

        def counting_chunk_fn(payload):
            time.sleep(0.03)  # widen the overlap window
            out = run_chunk_task(payload)
            if out["computed"]:
                with lock:
                    computed_by.append((threading.get_ident(),
                                        payload["key"]))
            return out

        results = {}
        errors = []

        def drive(name):
            try:
                runner = JobRunner(
                    store,
                    dispatcher=ThreadDispatcher(
                        workers=2, chunk_fn=counting_chunk_fn),
                    lease_seconds=5.0)
                results[name] = runner.run(job)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((name, exc))

        a = threading.Thread(target=drive, args=("a",))
        b = threading.Thread(target=drive, args=("b",))
        a.start()
        b.start()
        a.join(timeout=120)
        b.join(timeout=120)
        assert not a.is_alive() and not b.is_alive()
        assert not errors, errors
        # every chunk computed exactly once across BOTH coordinators
        keys = [key for _, key in computed_by]
        assert sorted(keys) == sorted(t.key for t in job.chunks())
        for name in ("a", "b"):
            assert_bit_identical(sweep, job.entropy, results[name])
        state = JobState.load(store, job.job_id)
        assert effective_state(state) == "done"
