"""Smoke tests for every experiment harness (tiny scale).

Each experiment must run, return the documented dataclasses, and print a
paper-shaped table.  The benchmarks exercise them at real scale; these
tests pin the API.
"""

import pytest

from repro.experiments import (
    ablations,
    bounded_space,
    failures,
    figure1,
    hybrid,
    lower_bound,
    renewal_race,
    scaling,
    unfairness,
)


class TestFigure1:
    def test_run_and_format(self):
        result = figure1.run(ns=(1, 8), trials=4, seed=1)
        assert set(result.series) == set(
            figure1.figure1_distributions().keys())
        point = result.point("exponential(1)", 1)
        assert point.mean_round == pytest.approx(2.0)  # Lemma 3 solo case
        table = figure1.format_result(result)
        assert "Figure 1" in table and "exponential(1)" in table

    def test_ascii_plot_renders(self):
        result = figure1.run(ns=(1, 8), trials=3, seed=2)
        plot = figure1.ascii_plot(result)
        assert "legend:" in plot

    def test_custom_distribution_subset(self):
        from repro.noise import Exponential
        result = figure1.run(ns=(4,), trials=3, seed=3,
                             distributions={"expo": Exponential(1.0)})
        assert list(result.series) == ["expo"]

    def test_unknown_point_raises(self):
        result = figure1.run(ns=(4,), trials=2, seed=4)
        with pytest.raises(KeyError):
            result.point("exponential(1)", 999)


class TestScaling:
    def test_run_and_fit(self):
        result = scaling.run(ns=(4, 16, 64), trials=8, seed=1)
        assert result.fit_first.model == "a*ln(n)+b"
        assert set(result.mean_first) == {4, 16, 64}
        assert "Theorem 12" in scaling.format_result(result)

    def test_tail(self):
        tail = scaling.run_tail(n=16, trials=30, seed=2)
        assert tail.fit.a < 0  # decaying tail
        assert len(tail.ks) == len(tail.probs)


class TestLowerBound:
    def test_run(self):
        result = lower_bound.run(ns=(4, 16), trials=8, seed=1)
        assert set(result.mean_first) == {4, 16}
        assert 0 <= result.fast_pair_prob[4] <= 1
        assert "Theorem 13" in lower_bound.format_result(result)

    def test_analytic_limit(self):
        import math
        assert lower_bound.analytic_fast_pair(10**6) == pytest.approx(
            (1 - math.exp(-0.5)) ** 2, rel=1e-3)


class TestHybrid:
    def test_exhaustive_sweep_small(self):
        rows = hybrid.exhaustive_sweep(n=2, quanta=(8,), budget=16)
        assert rows[0].max_decision_ops <= 12
        assert not rows[0].truncated
        assert rows[0].safe

    def test_run_and_format(self):
        result = hybrid.run(quanta=(8,), randomized_ns=(4,), trials=4,
                            include_permissive=False, seed=1)
        assert result.randomized_max_ops[4] <= 12
        assert "EXP-T14" in hybrid.format_result(result)


class TestBoundedSpace:
    def test_run(self):
        result = bounded_space.run(ns=(4,), trials=6, stress_trials=4, seed=1)
        row = result.rows[0]
        assert row.agreement_rate == 1.0
        assert row.max_main_round <= row.r_max
        stress = result.stress_rows[0]
        assert stress.agreement_rate == 1.0
        assert "Theorem 15" in bounded_space.format_result(result)


class TestUnfairness:
    def test_heavy_tail_grows_with_cap(self):
        result = unfairness.run(caps=(2, 5), trials=60, seed=1)
        assert result.heavy[5] > result.heavy[2]
        assert "Theorem 1" in unfairness.format_result(result)


class TestRenewalRace:
    def test_run(self):
        result = renewal_race.run(ns=(2, 8), trials=20, seed=1)
        assert result.mean_r[8] >= result.mean_r[2] * 0.5
        assert result.unique_leader_prob >= 0
        assert "EXP-R10" in renewal_race.format_result(result)


class TestFailures:
    def test_run(self):
        result = failures.run(n=8, hs=(0.0, 0.05), budgets=(0, 1),
                              trials=6, seed=1)
        assert result.halting[0].mean_halted == 0.0
        assert result.halting[1].mean_halted > 0.0
        assert result.crashes[1].mean_crashes_used <= 1.0
        assert "EXP-FAIL" in failures.format_result(result)


class TestAblations:
    def test_run(self):
        result = ablations.run(n=8, trials=6,
                               protocols=("lean", "optimized"),
                               sigmas=(0.2, 0.4),
                               delay_bounds=(0.0, 1.0), seed=1)
        names = [r.protocol for r in result.protocols]
        assert names == ["lean", "optimized"]
        assert len(result.sigmas) == 2
        assert "ABL2a" in ablations.format_result(result)

    def test_smaller_sigma_is_slower(self):
        result = ablations.run(n=16, trials=20,
                               protocols=("lean",),
                               sigmas=(0.1, 0.4),
                               delay_bounds=(0.0,), seed=2)
        by_sigma = {r.sigma: r.mean_first_round for r in result.sigmas}
        assert by_sigma[0.1] > by_sigma[0.4]


class TestCliMains:
    """Each experiment main() must run end to end at tiny scale."""

    def test_figure1_main(self, capsys):
        figure1.main(["--ns", "4", "--trials", "2", "--seed", "1"])
        assert "Figure 1" in capsys.readouterr().out

    def test_scaling_main(self, capsys):
        scaling.main(["--ns", "4", "8", "--trials", "4", "--seed", "1",
                      "--tail-n", "8"])
        assert "Theorem 12" in capsys.readouterr().out

    def test_unfairness_main(self, capsys):
        unfairness.main(["--trials", "20", "--seed", "1"])
        assert "Theorem 1" in capsys.readouterr().out
