"""Exactness of the vectorized SeedSequence->PCG64 seeding.

``repro._seedhash`` reimplements numpy's seed-sequence hash vectorized
across trials; every property here compares it against the reference
object path (``Generator(PCG64(SeedSequence(...)))``) bit for bit.
"""

import numpy as np
import pytest

from repro._seedhash import (
    ReusablePCG64,
    block_spawn_keys,
    entropy_words,
    pcg64_states,
)
from repro.api import trial_seed_sequences


def reference_stream(entropy, spawn_key, k=8):
    seq = np.random.SeedSequence(entropy, spawn_key=spawn_key)
    return np.random.Generator(np.random.PCG64(seq)).random(k)


class TestPcg64States:
    @pytest.mark.parametrize("entropy", [
        0, 1, 2000, 2**31 - 1, 2**64 + 17,
        123456789012345678901234567890,  # > 64-bit entropy (multi-word)
    ])
    @pytest.mark.parametrize("child", [0, 1, 2, 3])
    def test_matches_reference_construction(self, entropy, child):
        keys = np.array([[0], [1], [7], [1000]], dtype=np.uint64)
        reusable = ReusablePCG64()
        for row, state in zip(keys, pcg64_states(entropy, keys, child)):
            got = reusable.reset(state).random(8)
            want = reference_stream(entropy, tuple(int(v) for v in row)
                                    + (child,))
            assert np.array_equal(got, want)

    def test_multi_element_spawn_keys(self):
        # Grid roots spawn trial seqs with longer keys: (cell..., trial).
        keys = np.array([[3, 0], [3, 1], [4, 2]], dtype=np.uint64)
        reusable = ReusablePCG64()
        for row, state in zip(keys, pcg64_states(42, keys, 1)):
            got = reusable.reset(state).random(8)
            want = reference_stream(42, (int(row[0]), int(row[1]), 1))
            assert np.array_equal(got, want)

    def test_entropy_words(self):
        assert entropy_words(0) == [0]
        assert entropy_words(5) == [5]
        assert entropy_words(2**32 + 9) == [9, 1]


class TestBlockRecognition:
    def test_recognizes_batch_runner_blocks(self):
        seqs = trial_seed_sequences(2000, 5)
        recognized = block_spawn_keys(seqs)
        assert recognized is not None
        entropy, matrix = recognized
        assert entropy == 2000
        assert matrix.tolist() == [[0], [1], [2], [3], [4]]

    def test_rejects_non_sequences_and_mixed_blocks(self):
        # (int seeds now yield an analytic SeedBlock; materialize it to
        # exercise the object-path recognition loop.)
        seqs = list(trial_seed_sequences(2000, 2))
        assert block_spawn_keys([]) is None
        assert block_spawn_keys([1, 2]) is None
        assert block_spawn_keys(seqs + [np.random.SeedSequence(3)]) is None

    def test_rejects_already_spawned_sequences(self):
        seqs = list(trial_seed_sequences(2000, 2))
        seqs[0].spawn(1)  # a consumed child counter disables the fast lane
        assert block_spawn_keys(seqs) is None

    def test_rejects_huge_key_elements(self):
        seqs = [np.random.SeedSequence(1, spawn_key=(2**33,)),
                np.random.SeedSequence(1, spawn_key=(2**33 + 1,))]
        assert block_spawn_keys(seqs) is None


class TestReusablePCG64:
    def test_reset_clears_cached_draws(self):
        seq = np.random.SeedSequence(77, spawn_key=(0, 0))
        words = seq.generate_state(4, np.uint64)
        state = pcg64_states(77, np.array([[0]], dtype=np.uint64), 0)[0]
        reusable = ReusablePCG64()
        gen = reusable.reset(state)
        gen.integers(0, 2, size=3)  # leaves a cached uint32 internally
        gen = reusable.reset(state)
        want = np.random.Generator(np.random.PCG64(seq)).integers(
            0, 1000, size=6)
        assert np.array_equal(gen.integers(0, 1000, size=6), want)
        assert words is not None
