"""Benchtool hardening: ledger robustness, GC discipline, backend keys.

The ledger is advisory trajectory data — a missing, empty, or torn
``BENCH_results.json`` must load as an empty ledger (with a warning for
the corrupt case) instead of wedging every later benchmark, and
recording over it must go through an atomic rename so a killed run can
never tear it further.  ``_timed`` must restore the garbage collector
even when the workload raises, and ``run_suite`` must keep the numpy
workload keys byte-stable while suffixing other backends.
"""

import gc
import json
import os

import pytest

from repro import benchtool
from repro.sim import backend as backend_mod


class TestLoadLedger:
    def test_missing_file_is_an_empty_ledger(self, tmp_path):
        path = str(tmp_path / "BENCH_results.json")
        assert benchtool.load_ledger(path) == {"entries": []}
        assert benchtool.latest_result(path, "figure1_shaped") is None

    def test_empty_file_is_an_empty_ledger(self, tmp_path):
        path = tmp_path / "BENCH_results.json"
        path.write_text("")
        assert benchtool.load_ledger(str(path)) == {"entries": []}
        path.write_text("   \n")
        assert benchtool.load_ledger(str(path)) == {"entries": []}

    def test_truncated_file_warns_and_loads_empty(self, tmp_path, capsys):
        path = tmp_path / "BENCH_results.json"
        # A torn write: valid prefix, cut mid-token.
        path.write_text('{"entries": [{"label": "bench-ci", "resu')
        assert benchtool.load_ledger(str(path)) == {"entries": []}
        err = capsys.readouterr().err
        assert "warning" in err and str(path) in err
        # The corrupt file is left in place for forensics.
        assert path.read_text().startswith('{"entries"')
        assert benchtool.latest_result(str(path), "anything") is None

    def test_pre_ledger_payload_imports_as_first_entry(self, tmp_path):
        path = tmp_path / "BENCH_results.json"
        path.write_text(json.dumps({"figure1_shaped": {"n": 1}}))
        ledger = benchtool.load_ledger(str(path))
        assert ledger["entries"][0]["label"] == "imported"
        assert ledger["entries"][0]["results"]["figure1_shaped"] == {"n": 1}


class TestAppendEntry:
    def test_append_over_corrupt_file_recovers(self, tmp_path, capsys):
        path = tmp_path / "BENCH_results.json"
        path.write_text('{"entries": [{"lab')
        entry = benchtool.append_entry(str(path), "PR 10",
                                       {"w": {"x": 1}})
        assert entry["label"] == "PR 10"
        ledger = benchtool.load_ledger(str(path))
        assert [e["label"] for e in ledger["entries"]] == ["PR 10"]

    def test_write_format_is_stable(self, tmp_path):
        # indent=2, insertion order, trailing newline: the committed
        # ledger must not reflow when appended to.
        path = str(tmp_path / "BENCH_results.json")
        benchtool.append_entry(path, "a", {"w": {"x": 1}})
        with open(path) as fh:
            text = fh.read()
        assert text.endswith("\n") and not text.endswith("\n\n")
        assert text == json.dumps(json.loads(text), indent=2) + "\n"

    def test_rolling_labels_replace_in_place(self, tmp_path):
        path = str(tmp_path / "BENCH_results.json")
        benchtool.append_entry(path, "bench-ci", {"w": {"x": 1}})
        benchtool.append_entry(path, "PR 10", {"w": {"x": 2}})
        benchtool.append_entry(path, "bench-ci", {"w": {"x": 3}})
        entries = benchtool.load_ledger(path)["entries"]
        assert [e["label"] for e in entries] == ["bench-ci", "PR 10"]
        assert entries[0]["results"]["w"]["x"] == 3
        assert benchtool.latest_result(path, "w")["x"] == 2


class TestTimedGC:
    def test_gc_restored_when_the_workload_raises(self):
        def boom():
            raise RuntimeError("boom")

        assert gc.isenabled()
        with pytest.raises(RuntimeError, match="boom"):
            benchtool._timed(boom)
        assert gc.isenabled()

    def test_gc_left_disabled_if_it_started_disabled(self):
        gc.disable()
        try:
            with pytest.raises(ValueError):
                benchtool._timed(lambda: int("x"))
            assert not gc.isenabled()
        finally:
            gc.enable()


class TestRunSuiteBackendKeys:
    @pytest.fixture
    def stubbed(self, monkeypatch):
        def stub(name):
            def _run(*args, backend="numpy", **kwargs):
                return {"workload": name, "backend": backend,
                        "identical": True}
            return _run

        for name in ("figure1_shaped", "scaling_shaped", "scaling_wide",
                     "figure1_distributions"):
            monkeypatch.setattr(benchtool, name, stub(name))
        monkeypatch.setattr(benchtool, "serve_throughput",
                            lambda **kw: {"workload": "serve",
                                          "identical": True})

    def test_numpy_keys_are_unsuffixed(self, stubbed):
        results = benchtool.run_suite()
        assert set(results) == {"figure1_shaped", "scaling_shaped",
                                "scaling_wide", "figure1_distributions",
                                "serve_throughput"}

    def test_other_backends_suffix_and_skip_serve(self, stubbed):
        results = benchtool.run_suite(backend="numba")
        assert set(results) == {"figure1_shaped[numba]",
                                "scaling_shaped[numba]",
                                "scaling_wide[numba]",
                                "figure1_distributions[numba]"}
        assert all(r["backend"] == "numba" for r in results.values())


class TestFormatTable:
    def test_backend_column(self):
        results = {"scaling_wide[numba]": {
            "backend": "numba", "n": 1024, "trials": 100,
            "frame_trials_per_sec": 1000.0,
            "kernel_trials_per_sec": 2000.0, "kernel_speedup": 2.0,
            "identical": True}}
        table = benchtool.format_table(results)
        assert "backend" in table and "numba" in table
        # Entries recorded before the backend key default to numpy.
        legacy = {"scaling_wide": {
            "n": 1024, "trials": 100, "frame_trials_per_sec": 1000.0,
            "kernel_trials_per_sec": 2000.0, "kernel_speedup": 2.0,
            "identical": True}}
        assert "numpy" in benchtool.format_table(legacy)


class TestCliBackendGuard:
    def test_unavailable_backend_exits_2(self, monkeypatch, tmp_path,
                                         capsys):
        monkeypatch.setitem(backend_mod._probe_cache, "cupy",
                            "the cupy import failed (No module named "
                            "'cupy')")
        out = str(tmp_path / "ledger.json")
        code = benchtool.main(["--backend", "cupy", "--out", out,
                               "--no-append"])
        assert code == 2
        assert "cannot benchmark" in capsys.readouterr().err
        assert not os.path.exists(out)
