"""Tests for the statistics toolkit."""

import math

import numpy as np
import pytest

from repro._rng import make_rng
from repro.analysis.stats import (
    bootstrap_mean_ci,
    fit_exponential_tail,
    fit_log,
    mean_confidence_interval,
    tail_probabilities,
)
from repro.errors import ConfigurationError


class TestFitLog:
    def test_recovers_exact_coefficients(self):
        ns = [10, 100, 1000, 10000]
        ys = [2.5 * math.log(n) + 1.75 for n in ns]
        fit = fit_log(ns, ys)
        assert fit.a == pytest.approx(2.5)
        assert fit.b == pytest.approx(1.75)
        assert fit.r2 == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_log([10, 100, 1000], [1.0, 2.0, 3.0])
        assert fit.predict(100) == pytest.approx(2.0, abs=1e-6)

    def test_noisy_fit_reasonable_r2(self, rng):
        ns = np.array([2 ** k for k in range(2, 12)])
        ys = 3.0 * np.log(ns) + rng.normal(0, 0.1, size=ns.size)
        fit = fit_log(ns, ys)
        assert fit.a == pytest.approx(3.0, abs=0.2)
        assert fit.r2 > 0.98

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            fit_log([10], [1.0])


class TestFitExponentialTail:
    def test_recovers_decay_rate(self):
        ks = list(range(1, 12))
        probs = [math.exp(-0.7 * k + 0.2) for k in ks]
        fit = fit_exponential_tail(ks, probs)
        assert fit.a == pytest.approx(-0.7)
        assert fit.b == pytest.approx(0.2)
        assert fit.r2 == pytest.approx(1.0)

    def test_zero_probabilities_dropped(self):
        ks = [1, 2, 3, 4]
        probs = [0.5, 0.25, 0.0, 0.125]
        fit = fit_exponential_tail(ks, probs)
        assert fit.a < 0

    def test_predict_model(self):
        fit = fit_exponential_tail([1, 2, 3], [0.5, 0.25, 0.125])
        assert fit.predict(2) == pytest.approx(math.log(0.25), abs=1e-9)


class TestMeanCi:
    def test_known_values(self):
        mean, half = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert mean == pytest.approx(2.5)
        assert half > 0

    def test_single_sample_infinite_halfwidth(self):
        mean, half = mean_confidence_interval([7.0])
        assert mean == 7.0
        assert half == math.inf

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([])

    def test_ci_shrinks_with_samples(self, rng):
        small = mean_confidence_interval(rng.normal(0, 1, 50))[1]
        large = mean_confidence_interval(rng.normal(0, 1, 5000))[1]
        assert large < small


class TestBootstrap:
    def test_ci_brackets_mean(self, rng):
        xs = rng.exponential(2.0, size=400)
        mean, lo, hi = bootstrap_mean_ci(xs, make_rng(1))
        assert lo <= mean <= hi
        assert hi - lo < 1.0

    def test_reproducible(self, rng):
        xs = rng.normal(0, 1, 100)
        a = bootstrap_mean_ci(xs, make_rng(2))
        b = bootstrap_mean_ci(xs, make_rng(2))
        assert a == b

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bootstrap_mean_ci([], make_rng(1))


class TestTailProbabilities:
    def test_basic(self):
        probs = tail_probabilities([1, 2, 3, 4], ks=[0, 2, 4])
        assert list(probs) == [1.0, 0.5, 0.0]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            tail_probabilities([], ks=[1])
