"""Tests for the declarative TrialSpec tree: validation and round-trips."""

import json

import pytest

from repro.api import (
    AdversarySpec,
    DeltaSpec,
    FailureSpec,
    HybridModelSpec,
    NoiseSpec,
    NoisyModelSpec,
    PickerSpec,
    ProtocolSpec,
    StepModelSpec,
    TrialSpec,
    noise_to_spec,
    resolve_engine,
)
from repro.errors import ConfigurationError
from repro.noise.distributions import (
    Constant,
    Exponential,
    Geometric,
    HeavyTail,
    LogNormal,
    Mixture,
    NoiseDistribution,
    Pareto,
    ShiftedExponential,
    SumOf,
    TruncatedNormal,
    TwoPoint,
    Uniform,
)
from repro.sched.delta import StaggeredStart
from repro.sched.pickers import RoundRobinPicker


def simple_spec(**kwargs):
    defaults = dict(n=8, model=NoisyModelSpec(
        noise=NoiseSpec.of("exponential", mean=1.0)))
    defaults.update(kwargs)
    return TrialSpec(**defaults)


class TestNoiseSpec:
    @pytest.mark.parametrize("dist", [
        Exponential(1.0),
        ShiftedExponential(0.5, 0.5),
        Uniform(0.0, 2.0),
        Geometric(0.5),
        TwoPoint(2.0 / 3.0, 4.0 / 3.0),
        TruncatedNormal(1.0, 0.2, 0.0, 2.0),
        HeavyTail(k_cap=5),
        HeavyTail(),
        Constant(1.0),
        LogNormal(0.0, 0.5),
        Pareto(2.0),
        SumOf(Exponential(1.0), 4),
        Mixture([Exponential(1.0), Uniform(0.0, 2.0)], weights=[0.3, 0.7]),
    ])
    def test_to_spec_round_trip(self, dist):
        spec = noise_to_spec(dist)
        assert spec.serializable
        assert NoiseSpec.from_dict(spec.to_dict()) == spec
        rebuilt = spec.build()
        assert type(rebuilt) is type(dist)
        assert rebuilt.name == dist.name
        assert rebuilt.mean == dist.mean

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseSpec.of("gaussian", mu=0.0)

    def test_bad_param_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseSpec.of("exponential", rate=2.0)

    def test_invalid_value_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            NoiseSpec.of("geometric", p=3.0)

    def test_opaque_wraps_unknown_subclass(self):
        class Custom(NoiseDistribution):
            name = "custom"

            def sample_array(self, rng, size):
                return rng.random(size)

            @property
            def mean(self):
                return 0.5

        spec = noise_to_spec(Custom())
        assert not spec.serializable
        with pytest.raises(ConfigurationError):
            spec.to_dict()


class TestComponentSpecs:
    def test_delta_round_trip(self):
        for spec in (DeltaSpec.of("zero"),
                     DeltaSpec.of("constant", delay=0.5, start_time=1.0),
                     DeltaSpec.of("staggered", stagger=0.25),
                     DeltaSpec.of("dithered", epsilon=1e-6),
                     DeltaSpec.of("random", bound=1.0, max_ops=100),
                     DeltaSpec.of("statistical", mean_bound=0.5,
                                  style="bursts", burst_every=8)):
            assert DeltaSpec.from_dict(spec.to_dict()) == spec

    def test_opaque_delta_not_serializable(self):
        spec = DeltaSpec(kind="opaque", instance=StaggeredStart(0.5))
        assert not spec.serializable
        with pytest.raises(ConfigurationError):
            spec.to_dict()

    def test_picker_round_trip(self):
        for spec in (PickerSpec.of("random"),
                     PickerSpec.of("round-robin"),
                     PickerSpec.of("scripted", script=(0, 1, 2),
                                   exhausted="first")):
            assert PickerSpec.from_dict(spec.to_dict()) == spec

    def test_protocol_validation(self):
        with pytest.raises(ConfigurationError):
            ProtocolSpec(name="paxos")
        with pytest.raises(ConfigurationError):
            ProtocolSpec(round_cap=0)

    def test_adversary_round_trip(self):
        spec = AdversarySpec(budget=3, lead=1)
        assert AdversarySpec.from_dict(spec.to_dict()) == spec

    def test_failure_validation(self):
        with pytest.raises(ConfigurationError):
            FailureSpec(h=1.5)


class TestTrialSpecRoundTrip:
    @pytest.mark.parametrize("spec", [
        TrialSpec(n=8, model=NoisyModelSpec(
            noise=NoiseSpec.of("exponential", mean=1.0))),
        TrialSpec(n=16,
                  model=NoisyModelSpec(
                      noise=NoiseSpec.of("uniform", low=0.0, high=2.0),
                      write_noise=NoiseSpec.of("geometric", p=0.5),
                      delta=DeltaSpec.of("staggered", stagger=0.5),
                      allow_degenerate=False),
                  protocol=ProtocolSpec(name="bounded", round_cap=9),
                  failures=FailureSpec(h=0.01,
                                       adversary=AdversarySpec(budget=2)),
                  engine="event",
                  stop_after_first_decision=True,
                  record=True,
                  max_total_ops=500,
                  check=False),
        TrialSpec(n=4, model=StepModelSpec(
            picker=PickerSpec.of("scripted", script=(0, 1, 2, 3)))),
        TrialSpec(n=4, model=HybridModelSpec(
            quantum=8, priorities=(2, 1, 0, 0), initial_used=((0, 8),),
            debt_policy="giver")),
        TrialSpec(n=6, model=NoisyModelSpec(
            noise=NoiseSpec.of("exponential", mean=1.0)),
            inputs=[0, 1, 0, 1, 0, 1]),
    ])
    def test_round_trip(self, spec):
        data = spec.to_dict()
        assert TrialSpec.from_dict(data) == spec
        # And through an actual JSON wire format.
        assert TrialSpec.from_dict(json.loads(json.dumps(data))) == spec

    def test_unsupported_version_rejected(self):
        data = simple_spec().to_dict()
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            TrialSpec.from_dict(data)

    def test_inputs_normalization(self):
        by_list = simple_spec(n=4, inputs=[0, 1, 1, 0])
        by_dict = simple_spec(n=4, inputs={0: 0, 1: 1, 2: 1, 3: 0})
        by_pairs = simple_spec(n=4, inputs=((0, 0), (1, 1), (2, 1), (3, 0)))
        assert by_list == by_dict == by_pairs
        assert by_list.input_map() == {0: 0, 1: 1, 2: 1, 3: 0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simple_spec(n=0)
        with pytest.raises(ConfigurationError):
            simple_spec(engine="warp")
        with pytest.raises(ConfigurationError):
            TrialSpec(n=4, model=StepModelSpec(), engine="fast")
        with pytest.raises(ConfigurationError):
            # An explicit engine on a non-noisy model is a config error,
            # not a silently ignored field.
            TrialSpec(n=4, model=StepModelSpec(), engine="event")
        with pytest.raises(ConfigurationError):
            simple_spec(inputs=[0, 2, 1])

    def test_replace(self):
        spec = simple_spec()
        bigger = spec.replace(n=128)
        assert bigger.n == 128 and spec.n == 8
        assert bigger.model == spec.model

    def test_specs_are_hashable_grid_keys(self):
        grid = {simple_spec(n=n): n for n in (2, 4, 8)}
        assert grid[simple_spec(n=4)] == 4


class TestResolveEngine:
    def test_auto_small_n_event(self):
        assert resolve_engine(simple_spec(n=8)) == "event"

    def test_auto_large_n_fast(self):
        assert resolve_engine(simple_spec(n=512)) == "fast"

    def test_features_force_event(self):
        assert resolve_engine(simple_spec(n=512, record=True)) == "event"
        assert resolve_engine(simple_spec(
            n=512, protocol=ProtocolSpec(name="shared-coin"))) == "event"
        assert resolve_engine(simple_spec(
            n=512,
            failures=FailureSpec(adversary=AdversarySpec(budget=1)))) == "event"

    def test_vectorized_variants_resolve_fast(self):
        # The fast family is wider than plain lean: every protocol with a
        # vectorized replay (and random halting) stays on the fast engine.
        assert resolve_engine(simple_spec(
            n=512, protocol=ProtocolSpec(name="optimized"))) == "fast"
        assert resolve_engine(simple_spec(
            n=512, failures=FailureSpec(h=0.01))) == "fast"

    def test_step_and_hybrid(self):
        assert resolve_engine(TrialSpec(n=4, model=StepModelSpec())) == "step"
        assert resolve_engine(
            TrialSpec(n=4, model=HybridModelSpec(quantum=8))) == "hybrid"

    def test_step_model_accepts_picker_instance(self):
        spec = TrialSpec(n=4, model=StepModelSpec(picker=RoundRobinPicker()))
        assert spec.model.picker.kind == "opaque"
        assert not spec.serializable
