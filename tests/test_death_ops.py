"""FailureSpec -> death_ops compilation and its engine agreement.

The fast engine consumes random halting as a presampled per-process
death-op schedule (the H_ij of Section 3.1.2).  These tests pin:

* determinism — the same seed stream always compiles the same schedule;
* the ``FailureSpec`` serialization round-trip that ships the failure
  configuration across the batch runner's process pool;
* exact agreement with the event engines when the same schedule is
  injected through :class:`PresampledDeaths`;
* consistency of the *adaptive* path (which the fast engine refuses):
  the event engine's halted set matches ``AdaptiveCrashAdversary``'s own
  crash accounting.
"""

import numpy as np
import pytest

from repro._rng import make_rng
from repro.api import FailureSpec, AdversarySpec, compile_death_ops
from repro.errors import ConfigurationError
from repro.failures import PresampledDeaths, RandomHalting
from repro.failures.injection import KillLeaderAdversary
from repro.noise import Exponential
from repro.sched.noisy import NoisyScheduler, PresampledScheduler
from repro.sim.engine import NoisyEngine
from repro.sim.fast import replay_lean
from repro.sim.runner import (
    half_and_half,
    make_machines,
    make_memory_for,
    run_noisy_trial,
)


class TestCompilation:
    def test_deterministic_per_seed(self):
        spec = FailureSpec(h=0.1)
        a = compile_death_ops(spec, 50, make_rng(7))
        b = compile_death_ops(spec, 50, make_rng(7))
        c = compile_death_ops(spec, 50, make_rng(8))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_no_halting_compiles_to_none(self):
        assert compile_death_ops(FailureSpec(), 10, make_rng(1)) is None
        assert compile_death_ops(FailureSpec(h=0.0), 10, make_rng(1)) is None

    def test_matches_random_halting_presample(self):
        # compile_death_ops is exactly the RandomHalting presample — the
        # same stream the event engine's failure model would consume.
        ours = compile_death_ops(FailureSpec(h=0.2), 32, make_rng(3))
        theirs = RandomHalting(0.2, make_rng(3)).presample_death_ops(32)
        assert np.array_equal(ours, theirs)

    def test_schedule_is_geometric_and_one_based(self):
        deaths = compile_death_ops(FailureSpec(h=0.5), 2000, make_rng(5))
        assert deaths.dtype == np.int64
        assert int(deaths.min()) >= 1
        # Geometric(0.5) mean is 2; a loose band catches unit slips
        # (0-based indexing would shift the mean by a full unit).
        assert 1.8 < float(deaths.mean()) < 2.2

    def test_round_trip_through_spec_serialization(self):
        spec = FailureSpec(h=0.25)
        clone = FailureSpec.from_dict(spec.to_dict())
        assert clone == spec
        a = compile_death_ops(spec, 20, make_rng(11))
        b = compile_death_ops(clone, 20, make_rng(11))
        assert np.array_equal(a, b)

    def test_round_trip_preserves_adversary(self):
        spec = FailureSpec(h=0.1, adversary=AdversarySpec(budget=3, lead=1))
        clone = FailureSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.adversary.budget == 3


class TestPresampledDeathsModel:
    def test_halts_at_exact_boundary(self):
        model = PresampledDeaths(np.array([3, np.iinfo(np.int64).max]))
        assert not model.halts_before(0, 2)
        assert model.halts_before(0, 3)  # dies before its 3rd op
        assert model.halts_before(0, 4)
        assert not model.halts_before(1, 10_000)

    def test_rejects_bad_schedules(self):
        with pytest.raises(ConfigurationError):
            PresampledDeaths(np.array([[1, 2], [3, 4]]))
        with pytest.raises(ConfigurationError):
            PresampledDeaths(np.array([0, 5]))

    def test_engines_agree_on_compiled_schedule(self):
        """The same death_ops through fast replay and event engine."""
        n = 12
        sched = NoisyScheduler(Exponential(1.0), make_rng(21))
        times = sched.presample(n, 400)
        inputs = [half_and_half(n)[pid] for pid in range(n)]
        deaths = compile_death_ops(FailureSpec(h=0.03), n, make_rng(22))
        fast = replay_lean(times, inputs, death_ops=deaths,
                           stop_after_first_decision=False)
        machines = make_machines("lean", dict(enumerate(inputs)))
        memory = make_memory_for(machines)
        ref = NoisyEngine(machines, memory, PresampledScheduler(times),
                          failures=PresampledDeaths(deaths)).run()
        assert fast is not None
        assert fast.halted == ref.halted
        assert fast.decisions == ref.decisions
        assert fast.total_ops == ref.total_ops


class TestAdaptiveAdversaryAccounting:
    def test_event_halted_set_matches_adversary_crashes(self):
        for seed in range(5):
            adversary = KillLeaderAdversary(budget=3, lead=1)
            result = run_noisy_trial(16, Exponential(1.0), seed=seed,
                                     crash_adversary=adversary,
                                     engine="event")
            assert result.halted == adversary.crashed
            assert len(adversary.crashed) <= adversary.budget

    def test_fast_engine_refuses_adaptive_adversaries(self):
        with pytest.raises(ConfigurationError, match="adaptive"):
            run_noisy_trial(16, Exponential(1.0), seed=1,
                            crash_adversary=KillLeaderAdversary(budget=1),
                            engine="fast")
