"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro._rng import make_rng


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return make_rng(0xC0FFEE)


@pytest.fixture
def rng2() -> np.random.Generator:
    """A second independent deterministic generator."""
    return make_rng(0xBEEF)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (excluded by -m 'not slow')")
