"""Tests for the dependency-free SVG plot renderer."""

import pytest

from repro.analysis.svgplot import figure1_svg, line_plot_svg
from repro.errors import ConfigurationError


SERIES = {
    "alpha": [(1, 2.0), (10, 3.0), (100, 4.0)],
    "beta": [(1, 2.0), (10, 5.0), (100, 3.5)],
}


class TestLinePlot:
    def test_produces_valid_svg_skeleton(self):
        svg = line_plot_svg(SERIES, title="T", x_label="n", y_label="r")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_contains_series_and_legend(self):
        svg = line_plot_svg(SERIES)
        assert svg.count("<polyline") == 2
        assert "alpha" in svg and "beta" in svg
        assert svg.count("<circle") == 6

    def test_title_and_labels_escaped(self):
        svg = line_plot_svg({"a<b": [(1, 1.0), (2, 2.0)]},
                            title="x & y", log_x=False)
        assert "a&lt;b" in svg
        assert "x &amp; y" in svg

    def test_log_ticks_are_decades(self):
        svg = line_plot_svg(SERIES)
        assert ">1<" in svg and ">10<" in svg and ">100<" in svg

    def test_linear_mode(self):
        svg = line_plot_svg({"s": [(0.0, 1.0), (4.0, 2.0)]}, log_x=False)
        assert "<polyline" in svg

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            line_plot_svg({})

    def test_rejects_nonpositive_x_on_log_axis(self):
        with pytest.raises(ConfigurationError):
            line_plot_svg({"s": [(0.0, 1.0), (1.0, 2.0)]}, log_x=True)

    def test_flat_series_does_not_divide_by_zero(self):
        svg = line_plot_svg({"s": [(1, 2.0), (10, 2.0)]})
        assert "<polyline" in svg


class TestFigure1Svg:
    def test_renders_experiment_result(self):
        from repro.experiments import figure1
        result = figure1.run(ns=(1, 8), trials=3, seed=1)
        svg = figure1_svg(result)
        assert svg.count("<polyline") == len(result.series)
        assert "Figure 1" in svg

    def test_roundtrips_to_disk(self, tmp_path):
        from repro.experiments import figure1
        result = figure1.run(ns=(1, 8), trials=2, seed=2)
        path = tmp_path / "figure1.svg"
        path.write_text(figure1_svg(result))
        assert path.read_text().startswith("<svg")
