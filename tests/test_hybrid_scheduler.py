"""Tests for the hybrid quantum/priority uniprocessor scheduler (§3.2)."""

import pytest

from repro.errors import ConfigurationError, SchedulerError
from repro.sched.hybrid import HybridScheduler


def fresh(priorities=(0, 0), quantum=4, **kw):
    return HybridScheduler(list(priorities), quantum, **kw)


class TestConstruction:
    def test_quantum_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            fresh(quantum=0)

    def test_debt_within_quantum(self):
        with pytest.raises(ConfigurationError):
            fresh(initial_used={0: 5})

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            fresh(debt_policy="whatever")


class TestLegality:
    def test_first_dispatch_anyone(self):
        sched = fresh()
        assert sched.legal_next([0, 1]) == [0, 1]

    def test_running_process_protected_within_quantum(self):
        sched = fresh(quantum=4)
        sched.dispatch(0, [0, 1])
        assert sched.legal_next([0, 1]) == [0]  # p1 equal prio, not exhausted

    def test_equal_priority_preemption_after_quantum(self):
        sched = fresh(quantum=2)
        sched.dispatch(0, [0, 1])
        sched.dispatch(0, [0, 1])
        assert sched.legal_next([0, 1]) == [0, 1]

    def test_higher_priority_preempts_any_time(self):
        sched = fresh(priorities=(0, 5), quantum=8)
        sched.dispatch(0, [0, 1])
        assert sched.legal_next([0, 1]) == [0, 1]

    def test_lower_priority_never_preempts(self):
        sched = fresh(priorities=(5, 0), quantum=2)
        sched.dispatch(0, [0, 1])
        sched.dispatch(0, [0, 1])
        sched.dispatch(0, [0, 1])  # exhausted, but p1 is lower priority
        assert sched.legal_next([0, 1]) == [0]

    def test_current_finished_frees_cpu(self):
        sched = fresh(quantum=8)
        sched.dispatch(0, [0, 1])
        # p0 decides: it is no longer in the alive set.
        assert sched.legal_next([1]) == [1]

    def test_illegal_dispatch_raises(self):
        sched = fresh(quantum=8)
        sched.dispatch(0, [0, 1])
        with pytest.raises(SchedulerError):
            sched.dispatch(1, [0, 1])


class TestQuantumAccounting:
    def test_rewake_gets_fresh_quantum(self):
        sched = fresh(quantum=2)
        sched.dispatch(0, [0, 1])
        sched.dispatch(0, [0, 1])   # p0 exhausted
        sched.dispatch(1, [0, 1])   # p1 wakes fresh
        assert sched.state.used_in_quantum == 1
        # p0 may not preempt p1 until p1 exhausts its fresh quantum.
        assert sched.legal_next([0, 1]) == [1]
        sched.dispatch(1, [0, 1])
        assert sched.legal_next([0, 1]) == [0, 1]

    def test_second_wake_of_same_process_fresh(self):
        sched = fresh(quantum=2, initial_used={0: 2, 1: 2})
        sched.dispatch(0, [0, 1])   # debt 2 + 1 -> immediately exhausted
        sched.dispatch(1, [0, 1])
        sched.dispatch(1, [0, 1])   # p1 (fresh wake) exhausts its 2
        sched.dispatch(0, [0, 1])   # p0 re-wakes FRESH (no debt now)
        assert sched.state.used_in_quantum == 1
        assert sched.legal_next([0, 1]) == [0]


class TestDebtPolicies:
    def test_holder_policy_only_first_dispatch_debted(self):
        sched = fresh(quantum=4, initial_used={0: 4, 1: 4},
                      debt_policy="holder")
        sched.dispatch(0, [0, 1])          # debt applies: exhausted
        assert sched.legal_next([0, 1]) == [0, 1]
        sched.dispatch(1, [0, 1])          # first wake but NOT first ever
        assert sched.state.used_in_quantum == 1  # fresh, no debt

    def test_per_process_policy_debts_every_first_wake(self):
        sched = fresh(quantum=4, initial_used={0: 4, 1: 4},
                      debt_policy="per-process")
        sched.dispatch(0, [0, 1])
        sched.dispatch(1, [0, 1])
        assert sched.state.used_in_quantum == 5  # debt 4 + 1 op

    def test_default_policy_is_holder(self):
        assert fresh().debt_policy == "holder"


class TestSnapshots:
    def test_roundtrip(self):
        sched = fresh(quantum=3)
        sched.dispatch(0, [0, 1])
        snap = sched.snapshot()
        sched.dispatch(0, [0, 1])
        sched.restore(snap)
        assert sched.state.current == 0
        assert sched.state.used_in_quantum == 1

    def test_woken_set_restored(self):
        sched = fresh(quantum=3, initial_used={1: 2})
        snap = sched.snapshot()
        sched.dispatch(1, [0, 1])
        sched.restore(snap)
        # p1 not woken anymore: its debt applies again on dispatch.
        sched.dispatch(1, [0, 1])
        assert sched.state.used_in_quantum == 3

    def test_state_key(self):
        sched = fresh()
        assert sched.state.key() == (None, 0)
