"""Failure-semantics satellites: leases, retries, cancel, GC, torn reads.

Everything around the chaos property grid (``test_serve_chaos.py``)
that deserves a direct, single-seam test: pid-reuse liveness at the job
level, the bounded event ring, persisted retry ledgers with seeded
backoff, torn objects on every local read path, cooperative
cancellation, store garbage collection, and the self-managed
``WorkerPoolDispatcher`` backend.
"""

import json
import os
import threading
import time

import pytest

from repro.api import (
    NoiseSpec,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    run_sweep,
)
from repro.errors import JobCancelledError
from repro.serve import (
    InlineDispatcher,
    JobRunner,
    JobState,
    ResultStore,
    RetryState,
    SweepJob,
    WorkerPoolDispatcher,
    effective_state,
    job_status,
    load_result,
    process_start_marker,
    request_cancel,
)
from repro.serve.executor import run_chunk_task

EXPO = NoiseSpec.of("exponential", mean=1.0)
UNIF = NoiseSpec.of("uniform", low=0.0, high=2.0)


def small_sweep(trials=32):
    return SweepSpec(
        base=TrialSpec(n=2, model=NoisyModelSpec(noise=EXPO),
                       stop_after_first_decision=True),
        axes=(SweepAxis("model.noise", (EXPO, UNIF), name="distribution",
                        labels=("expo", "unif")),),
        trials=trials)


def make_job(store, trials=32, seed=3, chunk_size=8):
    job = SweepJob.from_sweep(small_sweep(trials), seed=seed,
                              chunk_size=chunk_size)
    job.save(store)
    return job


def assert_bit_identical(result, sweep, seed):
    ref = run_sweep(sweep, seed=seed)
    for cell, frame in result:
        assert frame == ref.frames[cell.index]


class TestPidReuseLiveness:
    def test_forged_runner_with_wrong_start_marker_reads_partial(self):
        # a recorded "running" coordinator whose pid is alive (ours!)
        # but whose start marker belongs to another incarnation is DEAD:
        # the classic pid-reuse hazard must read as partial, not running
        state = JobState(state="running", runner_pid=os.getpid(),
                         runner_start="some-other-incarnation")
        assert effective_state(state) == "partial"

    def test_live_runner_with_matching_marker_reads_running(self):
        state = JobState(state="running", runner_pid=os.getpid(),
                         runner_start=process_start_marker(os.getpid()))
        assert effective_state(state) == "running"

    def test_runner_records_its_start_marker(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = make_job(store)
        result = JobRunner(store).run(job)
        # done states clear the runner identity...
        assert result.state.runner_pid is None
        assert result.state.runner_start is None
        # ...but the owner id remains for diagnostics
        assert result.state.runner_owner is not None


class TestEventRing:
    def test_ring_is_bounded_on_append(self):
        state = JobState()
        for index in range(JobState.MAX_EVENTS * 3):
            state.record_event("chunk", index=index)
        assert len(state.events) == JobState.MAX_EVENTS
        # the *newest* events survive
        assert state.events[-1]["index"] == JobState.MAX_EVENTS * 3 - 1

    def test_ring_is_bounded_on_load(self, tmp_path):
        # a foreign writer that appended without trimming is re-bounded
        store = ResultStore(str(tmp_path))
        state = JobState()
        state.events = [{"type": "chunk", "i": i} for i in range(500)]
        state.save(store, "someid")
        loaded = JobState.load(store, "someid")
        assert len(loaded.events) == JobState.MAX_EVENTS
        assert loaded.events[-1]["i"] == 499

    def test_long_job_state_file_stays_small(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = make_job(store, trials=64, chunk_size=4)  # 32 chunks
        JobRunner(store).run(job)
        state_path = os.path.join(store.job_dir(job.job_id), "state.json")
        assert len(JobState.load(store, job.job_id).events) <= \
            JobState.MAX_EVENTS
        assert os.path.getsize(state_path) < 64 * 1024


class TestRetryLedger:
    def test_retry_state_roundtrip(self):
        retry = RetryState(attempts=2, last_error="boom",
                           next_eligible_at=123.5)
        assert RetryState.from_dict(retry.to_dict()) == retry

    def test_backoff_is_deterministic_and_exponential(self, tmp_path):
        runner = JobRunner(ResultStore(str(tmp_path)))
        key = "ab" * 32
        first = runner._backoff_seconds(key, 1)
        assert first == runner._backoff_seconds(key, 1)  # seeded jitter
        assert runner._backoff_seconds(key, 2) > first
        base = JobRunner.RETRY_BACKOFF_BASE
        assert base <= first < 2 * base
        # the cap bounds the schedule
        assert runner._backoff_seconds(key, 30) <= \
            JobRunner.RETRY_BACKOFF_CAP + base
        # different chunks get different jitter (no stampede)
        assert runner._backoff_seconds("cd" * 32, 1) != first

    def test_worker_loss_persists_attempts_and_backoff(self, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        store = ResultStore(str(tmp_path))
        job = make_job(store, trials=16, chunk_size=8)
        doomed = job.chunks()[0].key
        fired = {"n": 0}

        def die_once(payload):
            if payload["key"] == doomed and not fired["n"]:
                fired["n"] += 1
                raise BrokenProcessPool("injected")
            return run_chunk_task(payload)

        result = JobRunner(
            store, dispatcher=InlineDispatcher(chunk_fn=die_once)).run(job)
        assert result.state.state == "done"
        # the ledger was cleared on success...
        assert result.state.retries == {}
        # ...but the loss left its event, with the backoff recorded
        died = [e for e in result.state.events if e["type"] == "worker_died"]
        assert len(died) == 1
        assert died[0]["attempts"] == 1
        assert died[0]["backoff_s"] > 0


class TestTornObjectReadPaths:
    """A torn object must read as a miss on EVERY path, never bad data."""

    def _tear(self, store, key, mode="truncate"):
        path = store.object_path(key)
        if mode == "truncate":
            with open(path, "r+b") as handle:
                handle.truncate(16)
        else:  # bit flip
            with open(path, "r+b") as handle:
                blob = bytearray(handle.read())
                blob[len(blob) // 2] ^= 0xFF
                handle.seek(0)
                handle.write(blob)

    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_runner_adoption_recomputes_torn_chunk(self, tmp_path, mode):
        store = ResultStore(str(tmp_path))
        job = make_job(store, seed=11)
        JobRunner(store).run(job)
        key = job.chunks()[1].key
        self._tear(store, key, mode)
        assert store.get(key) is None  # reads as a miss
        # a resume must recompute (not adopt) the torn chunk and repair it
        computed = []

        def counting(payload):
            computed.append(payload["key"])
            return run_chunk_task(payload)

        result = JobRunner(
            store, dispatcher=InlineDispatcher(chunk_fn=counting)).run(job)
        assert computed == [key]
        frame = store.get(key)
        assert frame is not None and len(frame) == job.chunks()[1].count
        assert_bit_identical(result, small_sweep(), 11)

    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_worker_dedup_path_rejects_torn_object(self, tmp_path, mode):
        # the worker-side adoption check (run_chunk_task's store hit)
        store = ResultStore(str(tmp_path))
        job = make_job(store, seed=13)
        JobRunner(store).run(job)
        task = job.chunks()[0].key
        self._tear(store, task, mode)
        from repro.serve.executor import _task_payload
        payload = _task_payload(job, job.chunks()[0], store)
        outcome = run_chunk_task(payload)
        assert outcome["computed"] is True  # recomputed, not adopted
        assert store.get(task) is not None  # and repaired in place

    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_check_local_path_refuses_torn_chunk(self, tmp_path, mode):
        # `repro result --check-local` assembles through load_result:
        # a torn chunk must raise, never verify against bad data
        store = ResultStore(str(tmp_path))
        job = make_job(store, seed=17)
        JobRunner(store).run(job)
        self._tear(store, job.chunks()[2].key, mode)
        with pytest.raises(KeyError, match="incomplete"):
            load_result(store, job.job_id)

    def test_put_repairs_torn_object(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = make_job(store, seed=19)
        JobRunner(store).run(job)
        task = job.chunks()[0]
        good = store.get(task.key)
        self._tear(store, task.key)
        # put() on a torn object overwrites instead of deferring to it
        assert store.put(task.key, good) is True
        assert store.get(task.key) == good


class TestCancellation:
    def test_cancel_queued_job_finalizes_immediately(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = make_job(store)
        doc = request_cancel(store, job.job_id, reason="nvm")
        assert doc["state"] == "cancelled"
        events = JobState.load(store, job.job_id).events
        assert any(e["type"] == "cancelled" for e in events)
        # terminal no-op on repeat
        assert request_cancel(store, job.job_id)["state"] == "cancelled"

    def test_cancel_mid_run_drains_and_keeps_chunks(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = make_job(store, trials=64, chunk_size=8)  # 16 chunks
        seen = []

        def slow_chunk(payload):
            seen.append(payload["key"])
            if len(seen) == 3:
                # cancel arrives while the runner is mid-job
                request_cancel(store, job.job_id, reason="operator")
            time.sleep(0.01)
            return run_chunk_task(payload)

        runner = JobRunner(store,
                           dispatcher=InlineDispatcher(chunk_fn=slow_chunk))
        with pytest.raises(JobCancelledError, match="operator"):
            runner.run(job)
        state = JobState.load(store, job.job_id)
        assert effective_state(state) == "cancelled"
        # stored chunks were kept (>= the 3 computed before the cancel)
        stored = sum(1 for t in job.chunks() if store.has(t.key))
        assert 3 <= stored < len(job.chunks())
        # all leases were released on the way out
        assert not any(store.lease_live(t.key) for t in job.chunks())
        assert job_status(store, job.job_id)["state"] == "cancelled"
        # resubmission clears the cancel and adopts the stored chunks
        computed = []

        def counting(payload):
            computed.append(payload["key"])
            return run_chunk_task(payload)

        result = JobRunner(
            store, dispatcher=InlineDispatcher(chunk_fn=counting)).run(job)
        assert result.state.state == "done"
        assert len(computed) == len(job.chunks()) - stored
        assert_bit_identical(result, small_sweep(64), 3)


class TestStoreGC:
    def _run_job(self, store, seed):
        job = make_job(store, seed=seed)
        JobRunner(store).run(job)
        return job

    def test_gc_keeps_referenced_sweeps_unreferenced(self, tmp_path):
        import shutil

        store = ResultStore(str(tmp_path))
        keep = self._run_job(store, seed=101)
        drop = self._run_job(store, seed=202)
        # retire the second job: its manifest disappears, its objects
        # become unreferenced garbage
        shutil.rmtree(store.job_dir(drop.job_id))
        report = store.gc()
        assert report.deleted == len(drop.chunks())
        assert report.bytes_freed > 0
        assert all(store.has(t.key) for t in keep.chunks())
        assert not any(store.has(t.key) for t in drop.chunks())
        # the kept job still assembles + verifies
        assert load_result(store, keep.job_id)

    def test_gc_age_policy_protects_young_objects(self, tmp_path):
        import shutil

        store = ResultStore(str(tmp_path))
        drop = self._run_job(store, seed=303)
        shutil.rmtree(store.job_dir(drop.job_id))
        report = store.gc(max_age_seconds=3600)
        assert report.deleted == 0
        assert report.kept_young == len(drop.chunks())

    def test_gc_never_deletes_under_live_lease(self, tmp_path):
        import shutil

        store = ResultStore(str(tmp_path))
        drop = self._run_job(store, seed=404)
        shutil.rmtree(store.job_dir(drop.job_id))
        leased = drop.chunks()[0].key
        token = store.claim(leased, owner="live", lease_seconds=60.0)
        assert token is not None
        report = store.gc()
        assert report.kept_leased >= 1
        assert store.has(leased)
        assert report.deleted == len(drop.chunks()) - 1

    def test_gc_size_pressure_evicts_oldest_referenced(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = self._run_job(store, seed=505)
        report = store.gc(max_bytes=1)  # force eviction of everything
        assert report.deleted == len(job.chunks())
        # content-addressed: a resubmission simply recomputes
        result = JobRunner(store).run(job)
        assert result.state.state == "done"

    def test_gc_sweeps_stale_locks_and_tmp(self, tmp_path):
        store = ResultStore(str(tmp_path))
        lock = store.lock_path("aa" * 32)
        os.makedirs(os.path.dirname(lock))
        with open(lock, "w") as handle:
            json.dump({"pid": 2 ** 22 + 999, "deadline": 0}, handle)
        stray = os.path.join(store.root, "objects", "zz.tmp")
        os.makedirs(os.path.dirname(stray), exist_ok=True)
        with open(stray, "w") as handle:
            handle.write("half-written")
        report = store.gc()
        assert report.locks_removed == 1
        assert report.tmp_removed == 1
        assert not os.path.exists(lock)
        assert not os.path.exists(stray)

    def test_dry_run_reports_without_deleting(self, tmp_path):
        import shutil

        store = ResultStore(str(tmp_path))
        drop = self._run_job(store, seed=606)
        shutil.rmtree(store.job_dir(drop.job_id))
        report = store.gc(dry_run=True)
        assert report.dry_run and report.deleted == len(drop.chunks())
        assert all(store.has(t.key) for t in drop.chunks())


class TestWorkerPoolDispatcher:
    def test_basic_run_is_bit_identical(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        job = make_job(store, seed=21)
        result = JobRunner(store, workers=2,
                           backend="worker-pool").run(job)
        assert result.state.state == "done"
        assert_bit_identical(result, small_sweep(), 21)

    def test_worker_sigkill_is_detected_and_requeued(self, tmp_path,
                                                     monkeypatch):
        sweep = small_sweep(trials=48)
        job = SweepJob.from_sweep(sweep, seed=22, chunk_size=8)
        marker = str(tmp_path / "killed-once")
        monkeypatch.setenv("REPRO_SERVE_TEST_KILL_ONCE", marker)
        store = ResultStore(str(tmp_path / "store"))
        result = JobRunner(store, workers=2,
                           backend="worker-pool").run(job)
        assert os.path.exists(marker), "the kill seam never fired"
        assert result.state.state == "done"
        assert any(e["type"] == "worker_died" for e in result.state.events)
        assert_bit_identical(result, sweep, 22)

    def test_slow_worker_times_out_but_late_store_is_adopted(
            self, tmp_path, monkeypatch):
        # a worker that stalls past chunk_timeout is requeued — but when
        # the straggler *eventually* stores its chunk, the retry adopts
        # it (idempotent writes) and the job completes, never fails
        sweep = small_sweep(trials=8)
        job = SweepJob.from_sweep(sweep, seed=23, chunk_size=8)
        monkeypatch.setenv("REPRO_SERVE_TEST_CHUNK_DELAY", "0.6")
        store = ResultStore(str(tmp_path / "store"))
        result = JobRunner(store, workers=2, backend="worker-pool",
                           chunk_timeout=0.2).run(job)
        assert result.state.state == "done"
        timed_out = [e for e in result.state.events
                     if e["type"] == "worker_died"
                     and "chunk_timeout" in e.get("error", "")]
        assert timed_out, "the chunk timeout never fired"
        assert_bit_identical(result, sweep, 23)

    def test_forever_stuck_worker_fails_typed_after_retry_cap(
            self, tmp_path):
        # a chunk whose worker NEVER delivers (not even late) exhausts
        # its persisted retry budget and fails typed — no hang
        from repro.serve import JobFailedError

        def never_finishes(payload):
            time.sleep(60)
            raise RuntimeError("unreachable")

        sweep = small_sweep(trials=8)
        job = SweepJob.from_sweep(sweep, seed=24, chunk_size=8)
        store = ResultStore(str(tmp_path / "store"))
        runner = JobRunner(
            store, dispatcher=WorkerPoolDispatcher(
                2, chunk_fn=never_finishes),
            chunk_timeout=0.2)
        started = time.monotonic()
        with pytest.raises(JobFailedError, match="timed out"):
            runner.run(job)
        assert time.monotonic() - started < 30  # bounded, not hung
        state = JobState.load(store, job.job_id)
        assert state.state == "failed"
        assert "3 times; giving up" in state.error


class TestMultiCoordinatorThreads:
    def test_second_coordinator_waits_and_adopts(self, tmp_path):
        # coordinator B starts while A holds live leases: B waits on
        # A's chunks, adopts the stored objects, and never recomputes
        store = ResultStore(str(tmp_path))
        job = make_job(store, trials=48, seed=31, chunk_size=8)
        a_computed, b_computed = [], []
        barrier = threading.Barrier(2, timeout=30)

        def a_fn(payload):
            a_computed.append(payload["key"])
            if len(a_computed) == 1:
                barrier.wait()  # let B start mid-run
                time.sleep(0.05)
            out = run_chunk_task(payload)
            return out

        def run_a():
            JobRunner(store, dispatcher=InlineDispatcher(chunk_fn=a_fn),
                      lease_seconds=30.0).run(job)

        thread = threading.Thread(target=run_a)
        thread.start()
        barrier.wait()

        def b_fn(payload):
            b_computed.append(payload["key"])
            return run_chunk_task(payload)

        result_b = JobRunner(store,
                             dispatcher=InlineDispatcher(chunk_fn=b_fn),
                             lease_seconds=30.0).run(job)
        thread.join(timeout=60)
        assert not thread.is_alive()
        # no chunk ran twice across the two coordinators
        all_computed = a_computed + b_computed
        assert len(all_computed) == len(set(all_computed)) == \
            len(job.chunks())
        assert result_b.state.state == "done"
        assert_bit_identical(result_b, small_sweep(48), 31)
