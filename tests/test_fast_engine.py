"""Cross-validation of the vectorized engine against the reference engine.

The two engines consume *identical* pre-sampled schedules; every observable
(decision values, rounds, per-process op counts) must match exactly.
"""

import numpy as np
import pytest

from repro._rng import make_rng
from repro.noise import (
    Exponential,
    Geometric,
    TruncatedNormal,
    TwoPoint,
    Uniform,
)
from repro.sched.noisy import NoisyScheduler, PresampledScheduler
from repro.sim.engine import NoisyEngine
from repro.sim.fast import lean_horizon_ops, replay_lean
from repro.sim.runner import half_and_half, make_machines, make_memory_for

DISTS = [Exponential(1.0), Uniform(0.0, 2.0), Geometric(0.5),
         TwoPoint(2 / 3, 4 / 3), TruncatedNormal(1.0, 0.2)]


def presample(dist, n, max_ops, seed):
    sched = NoisyScheduler(dist, make_rng(seed))
    return sched.presample(n, max_ops)


def run_reference(times, inputs, stop_first):
    machines = make_machines("lean", dict(enumerate(inputs)))
    memory = make_memory_for(machines)
    engine = NoisyEngine(machines, memory, PresampledScheduler(times),
                         stop_after_first_decision=stop_first)
    return engine.run()


@pytest.mark.parametrize("dist", DISTS, ids=lambda d: d.name)
@pytest.mark.parametrize("n", [2, 5, 16])
@pytest.mark.parametrize("seed", [1, 2, 3])
class TestCrossValidation:
    def test_full_runs_match(self, dist, n, seed):
        inputs = [half_and_half(n)[pid] for pid in range(n)]
        times = presample(dist, n, 400, seed)
        ref = run_reference(times, inputs, stop_first=False)
        fast = replay_lean(times, inputs, stop_after_first_decision=False)
        assert fast is not None
        assert {p: d.value for p, d in fast.decisions.items()} == \
            {p: d.value for p, d in ref.decisions.items()}
        assert {p: d.round for p, d in fast.decisions.items()} == \
            {p: d.round for p, d in ref.decisions.items()}
        assert {p: d.ops for p, d in fast.decisions.items()} == \
            {p: d.ops for p, d in ref.decisions.items()}
        assert fast.total_ops == ref.total_ops

    def test_first_decision_matches(self, dist, n, seed):
        inputs = [half_and_half(n)[pid] for pid in range(n)]
        times = presample(dist, n, 400, seed)
        ref = run_reference(times, inputs, stop_first=True)
        fast = replay_lean(times, inputs, stop_after_first_decision=True)
        assert fast is not None
        assert fast.first_decision_round == ref.first_decision_round
        assert fast.first_decision_ops == ref.first_decision_ops


class TestHorizon:
    def test_overflow_returns_none(self):
        # Two processes in a near-lockstep two-point schedule with a tiny
        # horizon: the replay must refuse rather than truncate silently.
        times = np.cumsum(np.ones((2, 8)), axis=1)
        times[1] += 0.5  # offset to avoid exact ties
        out = replay_lean(times, [0, 1], stop_after_first_decision=True)
        assert out is None

    def test_horizon_helper_grows_with_n(self):
        assert lean_horizon_ops(10) < lean_horizon_ops(10_000)
        assert lean_horizon_ops(4) % 4 == 0

    def test_input_length_mismatch_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            replay_lean(np.ones((2, 4)), [0])


class TestDeaths:
    def test_all_dead_returns_empty_decisions(self):
        times = presample(Exponential(1.0), 3, 100, seed=5)
        deaths = np.array([1, 1, 1])  # everyone dies before op 1
        out = replay_lean(times, [0, 1, 1], death_ops=deaths,
                          stop_after_first_decision=False)
        assert out is not None
        assert not out.decisions
        assert out.halted == {0, 1, 2}

    def test_survivor_decides(self):
        times = presample(Exponential(1.0), 3, 200, seed=6)
        big = np.iinfo(np.int64).max
        deaths = np.array([1, 1, big])
        out = replay_lean(times, [0, 0, 1], death_ops=deaths,
                          stop_after_first_decision=False)
        assert out is not None
        assert out.decisions[2].value == 1  # validity among survivors

    def test_deaths_match_reference_engine(self):
        from repro.failures import ScriptedFailures
        times = presample(Uniform(0.0, 2.0), 4, 300, seed=7)
        big = np.iinfo(np.int64).max
        deaths = np.array([5, big, big, big])
        fast = replay_lean(times, [0, 1, 0, 1], death_ops=deaths,
                           stop_after_first_decision=False)
        machines = make_machines("lean", {0: 0, 1: 1, 2: 0, 3: 1})
        memory = make_memory_for(machines)
        engine = NoisyEngine(machines, memory, PresampledScheduler(times),
                             failures=ScriptedFailures({0: 5}))
        ref = engine.run()
        assert fast is not None
        assert fast.halted == ref.halted
        assert {p: d.value for p, d in fast.decisions.items()} == \
            {p: d.value for p, d in ref.decisions.items()}
        assert {p: d.ops for p, d in fast.decisions.items()} == \
            {p: d.ops for p, d in ref.decisions.items()}
