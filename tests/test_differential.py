"""The cross-engine differential oracle and its property-style sweep.

Every vectorized replay in ``FAST_VARIANTS`` must match the reference
event engine *bit-for-bit* on identical pre-sampled schedules — decisions
(value, round, op count), halted sets, total operations, max round, and
preference adoptions.  The seeded grid sweeps (n, noise distribution,
protocol variant, failure fraction); any divergence is a one-line repro
(spec + seed) raised as :class:`DifferentialMismatch`.
"""

import dataclasses
import itertools

import numpy as np
import pytest

from repro.api import (
    FailureSpec,
    NoiseSpec,
    NoisyModelSpec,
    ProtocolSpec,
    StepModelSpec,
    TrialSpec,
)
from repro.errors import ConfigurationError
from repro.sim.differential import (
    DifferentialMismatch,
    assert_equivalent,
    compare_results,
    run_differential,
)
from repro.sim.fast import FAST_VARIANTS

DISTS = {
    "exponential": NoiseSpec.of("exponential", mean=1.0),
    "uniform": NoiseSpec.of("uniform", low=0.0, high=2.0),
    "geometric": NoiseSpec.of("geometric", p=0.5),
    "two-point": NoiseSpec.of("two-point", a=0.5, b=2.0, p=0.5),
    "truncated-normal": NoiseSpec.of("truncated-normal", mu=1.0,
                                     sigma=0.2, low=0.0, high=2.0),
}

VARIANTS = sorted(FAST_VARIANTS)

GRID = [
    pytest.param(n, dist_name, variant, h,
                 id=f"n{n}-{dist_name}-{variant}-h{h}")
    for n, (dist_name, variant, h) in zip(
        itertools.cycle((2, 7, 33)),
        itertools.product(sorted(DISTS), VARIANTS, (0.0, 0.05)))
]


def grid_spec(n, dist_name, variant, h, **overrides):
    kwargs = dict(
        n=n,
        model=NoisyModelSpec(noise=DISTS[dist_name]),
        protocol=ProtocolSpec(name=variant),
        failures=FailureSpec(h=h),
        engine="fast",
        # The eager variant is the unsafe negative control; the oracle
        # checks engine *equivalence*, not protocol safety.
        check=(variant != "eager"),
    )
    kwargs.update(overrides)
    return TrialSpec(**kwargs)


class TestPropertyGrid:
    @pytest.mark.parametrize("n,dist_name,variant,h", GRID)
    def test_full_runs_bit_identical(self, n, dist_name, variant, h):
        spec = grid_spec(n, dist_name, variant, h)
        report = assert_equivalent(spec, seed=97 * n + len(dist_name) + int(h * 100))
        assert report.ok
        assert report.fast.engine == "fast"
        assert report.event.engine == "event"

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_first_decision_stop_bit_identical(self, variant):
        spec = grid_spec(16, "exponential", variant, 0.0,
                         stop_after_first_decision=True)
        report = assert_equivalent(spec, seed=7)
        assert report.fast.first_decision_round is not None

    @pytest.mark.parametrize("seed", range(6))
    def test_seed_sweep_with_failures(self, seed):
        spec = grid_spec(21, "uniform", "lean", 0.04)
        report = assert_equivalent(spec, seed=seed)
        # With h=0.04 over ~hundreds of ops some trials lose processes;
        # the halted sets must still coincide exactly.
        assert report.fast.halted == report.event.halted


class TestWideNAndRetiredBlockers:
    """PR 7: the oracle pins kernel == fast == event on the widened
    process axis (n in {256, 1024}) and on the retired round_cap /
    max_total_ops refusals — the two features the vectorized engines
    used to refuse outright."""

    @pytest.mark.parametrize("n", [256, 1024])
    def test_wide_n_bit_identical(self, n):
        spec = grid_spec(n, "exponential", "lean", 0.0,
                         stop_after_first_decision=True)
        report = assert_equivalent(spec, seed=n)
        assert report.ok

    @pytest.mark.parametrize("dist_name", ["geometric", "two-point",
                                           "truncated-normal"])
    def test_wide_n_figure1_lanes_bit_identical(self, dist_name):
        # PR 8: the remaining Figure-1 distributions gained inverse-CDF
        # lanes; the oracle pins kernel == fast == event inside the
        # widened auto-promotion window for each of them.
        spec = grid_spec(256, dist_name, "lean", 0.0,
                         stop_after_first_decision=True)
        report = assert_equivalent(spec, seed=256 + len(dist_name))
        assert report.ok

    @pytest.mark.parametrize("n", [33, 256, 1024])
    def test_round_cap_bit_identical(self, n):
        spec = grid_spec(n, "exponential", "lean", 0.0,
                         protocol=ProtocolSpec(name="lean", round_cap=3),
                         stop_after_first_decision=True)
        report = assert_equivalent(spec, seed=5 + n)
        assert report.ok
        assert report.event.max_round <= 3

    @pytest.mark.parametrize("n", [33, 256, 1024])
    def test_max_total_ops_bit_identical(self, n):
        spec = grid_spec(n, "exponential", "lean", 0.0, max_total_ops=64,
                         stop_after_first_decision=True)
        report = assert_equivalent(spec, seed=7 + n)
        assert report.ok

    def test_budget_exhausted_flag_matches(self):
        spec = grid_spec(64, "uniform", "optimized", 0.0,
                         max_total_ops=32,
                         stop_after_first_decision=False)
        report = run_differential(spec, seed=11)
        assert report.ok
        assert report.fast.budget_exhausted
        assert report.event.budget_exhausted
        assert report.fast.total_ops == 32

    @pytest.mark.parametrize("variant", ["optimized", "conservative",
                                         "random-tie"])
    def test_capped_variants_at_wide_n(self, variant):
        spec = grid_spec(256, "exponential", variant, 0.0,
                         protocol=ProtocolSpec(name=variant, round_cap=2),
                         stop_after_first_decision=False)
        report = assert_equivalent(spec, seed=29)
        assert report.ok


class TestOracleContract:
    def test_rejects_non_noisy_models(self):
        spec = TrialSpec(n=4, model=StepModelSpec())
        with pytest.raises(ConfigurationError):
            run_differential(spec, seed=1)

    def test_rejects_protocols_without_fast_replay(self):
        spec = TrialSpec(n=4, model=NoisyModelSpec(noise=DISTS["exponential"]),
                         protocol=ProtocolSpec(name="shared-coin"))
        with pytest.raises(ConfigurationError):
            run_differential(spec, seed=1)

    def test_report_carries_both_results(self):
        spec = grid_spec(12, "exponential", "lean", 0.0)
        report = run_differential(spec, seed=3)
        assert report.ok and not report.mismatches
        assert report.fast.total_ops == report.event.total_ops
        assert report.horizon > 0

    def test_compare_results_detects_divergence(self):
        # The oracle's comparator itself must catch every observable.
        spec = grid_spec(12, "exponential", "lean", 0.0)
        report = run_differential(spec, seed=3)
        doctored = dataclasses.replace(report.event,
                                       total_ops=report.event.total_ops + 1,
                                       max_round=report.event.max_round + 1)
        mismatches = compare_results(report.fast, doctored)
        assert any("total_ops" in m for m in mismatches)
        assert any("max_round" in m for m in mismatches)

    def test_assert_equivalent_raises_on_divergence(self, monkeypatch):
        import repro.sim.differential as differential
        spec = grid_spec(12, "exponential", "lean", 0.0)

        def broken_compare(fast, event):
            return ["injected divergence"]

        monkeypatch.setattr(differential, "compare_results", broken_compare)
        with pytest.raises(DifferentialMismatch):
            differential.assert_equivalent(spec, seed=3)

    def test_oracle_ignores_spec_engine_field(self):
        # engine="auto" at small n resolves to "event" for run_trial, but
        # the oracle always runs both engines on the shared schedule.
        spec = grid_spec(10, "uniform", "lean", 0.0, engine="auto")
        assert run_differential(spec, seed=2).ok


class TestPrefixTruncation:
    """The production argsort-prefix path must be invisible.

    A truncated replay may return ``None`` (the caller grows the prefix)
    but never a result that differs from the full-schedule replay.  The
    dangerous case is a first-decision stop with a *starved* process —
    one that consumed its whole prefix before the stop, whose dropped
    events could precede (and change) it.  Heterogeneous per-process
    speeds make starvation common; the optimized variant's 2-op rounds
    make it consequential (this was a real bug caught in review).
    """

    @pytest.mark.parametrize("variant", ["lean", "optimized", "eager"])
    def test_truncated_completion_matches_full_replay(self, variant):
        from repro._rng import make_rng
        from repro.sim.fast import replay

        rng = make_rng(0xFA57)
        checked = 0
        for _ in range(150):
            n = int(rng.integers(2, 6))
            max_ops = 64
            # Wildly heterogeneous speeds: some processes burn through
            # their prefix long before others decide.
            rates = rng.uniform(0.05, 2.0, size=n)
            incs = rng.exponential(1.0, size=(n, max_ops)) * rates[:, None]
            times = np.cumsum(incs, axis=1)
            inputs = [int(b) for b in rng.integers(0, 2, size=n)]
            k = int(rng.integers(8, 33))
            full = replay(times, inputs, variant=variant,
                          stop_after_first_decision=True)
            trunc = replay(times[:, :k], inputs, variant=variant,
                           stop_after_first_decision=True, truncated=True)
            if trunc is None:
                continue  # guard refused — the caller would grow k
            checked += 1
            assert trunc.decisions == (full.decisions if full else None), \
                f"{variant}: truncated k={k} diverged from full replay"
            assert trunc.total_ops == full.total_ops
        assert checked > 20  # the sweep actually exercised completions

    def test_oracle_covers_the_prefix_path(self):
        # run_differential drives replay_schedule over the shared
        # schedule, so prefix bugs surface as "prefix ..." mismatches.
        spec = grid_spec(40, "exponential", "optimized", 0.0,
                         stop_after_first_decision=True)
        report = run_differential(spec, seed=13)
        assert report.ok
