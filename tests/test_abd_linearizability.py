"""Real-time consistency checks for the ABD register emulation.

ABD's guarantee is linearizability.  Checking it in full is expensive;
these tests verify precise *necessary* conditions via the protocol's own
timestamps (exposed as ``AbdClient.last_stamp``), which catch the classic
implementation bugs — stale reads, lost write-backs, timestamp regressions:

1. **Read freshness**: a read whose transaction begins after a write's
   transaction commits (in real time) returns a stamp >= that write's.
2. **Read monotonicity**: for non-overlapping reads of the same location,
   the later read's stamp is >= the earlier read's (the property the
   read's write-back phase buys).
3. **Write stamps strictly increase per location** in commit order when
   the writes do not overlap.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import pytest

from repro._rng import make_rng
from repro.netsim.abd import AbdClient, AbdServer
from repro.netsim.network import Network
from repro.noise import Exponential
from repro.types import OpKind, Operation, read, write


@dataclass
class TxnRecord:
    client: str
    op: Operation
    value: int
    stamp: Tuple[int, int]
    begin: float
    commit: float


@dataclass
class Workload:
    ops: List[Operation]
    records: List[TxnRecord] = field(default_factory=list)


class RecordingClient(AbdClient):
    """Executes a scripted workload, recording times and stamps."""

    def __init__(self, servers, workload: Workload):
        super().__init__(servers, on_complete=self._advance)
        self.workload = workload
        self._pos = 0
        self._begin = 0.0

    def on_start(self, now):
        return self._issue(now)

    def _issue(self, now):
        if self._pos >= len(self.workload.ops):
            return []
        self._begin = now
        return self.begin(self.workload.ops[self._pos])

    def _advance(self, op, value, now):
        self.workload.records.append(
            TxnRecord(self.name, op, value, self.last_stamp,
                      self._begin, now))
        self._pos += 1
        return self._issue(now)


def run_workloads(n_clients=4, n_servers=5, ops_per_client=30, seed=1,
                  locations=3, crash=()):
    rng = make_rng(seed)
    net = Network(Exponential(1.0), make_rng(seed + 1))
    servers = [f"s{i}" for i in range(n_servers)]
    for name in servers:
        net.add_node(name, AbdServer())
    workloads = []
    for c in range(n_clients):
        ops = []
        for _ in range(ops_per_client):
            loc = int(rng.integers(0, locations))
            if rng.random() < 0.5:
                ops.append(read("reg", loc))
            else:
                ops.append(write("reg", loc, int(rng.integers(1, 100))))
        workload = Workload(ops)
        workloads.append(workload)
        net.add_node(f"client{c}", RecordingClient(servers, workload))
    for name in crash:
        net.crash(name)
    net.start()
    net.run()
    return [r for w in workloads for r in w.records]


def by_location(records):
    out: Dict[Tuple[str, int], List[TxnRecord]] = {}
    for rec in records:
        out.setdefault((rec.op.array, rec.op.index), []).append(rec)
    return out


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
@pytest.mark.parametrize("crash", [(), ("s0", "s1")])
class TestAbdRealTimeConsistency:
    def test_workloads_complete(self, seed, crash):
        records = run_workloads(seed=seed, crash=crash)
        assert len(records) == 4 * 30

    def test_reads_return_written_or_initial_values(self, seed, crash):
        records = run_workloads(seed=seed, crash=crash)
        locs = by_location(records)
        for loc, recs in locs.items():
            written = {r.value for r in recs
                       if r.op.kind is OpKind.WRITE} | {0}
            for rec in recs:
                if rec.op.kind is OpKind.READ:
                    assert rec.value in written

    def test_read_freshness(self, seed, crash):
        """Reads beginning after a write committed carry a stamp >= it."""
        records = run_workloads(seed=seed, crash=crash)
        for loc, recs in by_location(records).items():
            writes = [r for r in recs if r.op.kind is OpKind.WRITE]
            reads = [r for r in recs if r.op.kind is OpKind.READ]
            for rd in reads:
                for wr in writes:
                    if wr.commit < rd.begin:
                        assert rd.stamp >= wr.stamp, \
                            f"stale read at {loc}: {rd} vs {wr}"

    def test_read_monotonicity(self, seed, crash):
        """Non-overlapping reads of a location never go back in time."""
        records = run_workloads(seed=seed, crash=crash)
        for loc, recs in by_location(records).items():
            reads = sorted((r for r in recs if r.op.kind is OpKind.READ),
                           key=lambda r: r.begin)
            for early in reads:
                for late in reads:
                    if early.commit < late.begin:
                        assert late.stamp >= early.stamp

    def test_write_stamps_advance(self, seed, crash):
        """A write beginning after another committed gets a larger stamp."""
        records = run_workloads(seed=seed, crash=crash)
        for loc, recs in by_location(records).items():
            writes = [r for r in recs if r.op.kind is OpKind.WRITE]
            for a in writes:
                for b in writes:
                    if a.commit < b.begin:
                        assert b.stamp > a.stamp
