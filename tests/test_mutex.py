"""Tests for the Fischer timing-based mutex under noisy timing."""

import pytest

from repro._rng import make_rng
from repro.errors import ConfigurationError
from repro.mutex import simulate_fischer
from repro.noise import Constant, Exponential, Uniform


class TestValidation:
    def test_bad_params(self):
        rng = make_rng(1)
        with pytest.raises(ConfigurationError):
            simulate_fischer(0, Uniform(0, 2), 1.0, rng)
        with pytest.raises(ConfigurationError):
            simulate_fischer(2, Uniform(0, 2), -1.0, rng)
        with pytest.raises(ConfigurationError):
            simulate_fischer(2, Uniform(0, 2), 1.0, rng, target_entries=0)


class TestSingleProcess:
    def test_never_violates_and_enters_freely(self):
        result = simulate_fischer(1, Exponential(1.0), pause=0.0,
                                  rng=make_rng(2), target_entries=50)
        assert result.entries == 50
        assert result.violations == 0
        assert result.entries_by_pid[0] == 50


class TestBoundedNoise:
    def test_safe_when_pause_clears_bound(self):
        """Uniform(0,2) has essential sup 2: pause 3 makes Fischer safe."""
        result = simulate_fischer(4, Uniform(0.0, 2.0), pause=3.0,
                                  rng=make_rng(3), target_entries=300)
        assert result.entries == 300
        assert result.violations == 0
        assert result.max_concurrent == 1

    def test_unsafe_when_pause_below_bound(self):
        result = simulate_fischer(4, Uniform(0.0, 2.0), pause=0.05,
                                  rng=make_rng(4), target_entries=300)
        assert result.violations > 0
        assert result.max_concurrent >= 2

    def test_degenerate_noise_with_any_pause_is_safe(self):
        """Constant op time 1 and pause 1.5 > 1: deterministic safety."""
        result = simulate_fischer(3, Constant(1.0), pause=1.5,
                                  rng=make_rng(5), target_entries=100)
        assert result.violations == 0


class TestUnboundedNoise:
    def test_violation_rate_decays_with_pause(self):
        rates = []
        for pause in (0.25, 2.0, 6.0):
            result = simulate_fischer(4, Exponential(1.0), pause=pause,
                                      rng=make_rng(6), target_entries=500)
            rates.append(result.violations / result.entries)
        assert rates[0] > rates[1] >= rates[2]

    def test_no_finite_pause_guaranteed_safe(self):
        """With a modest pause, exponential noise still violates
        occasionally — the paper's anticipated constraint."""
        result = simulate_fischer(6, Exponential(1.0), pause=0.5,
                                  rng=make_rng(7), target_entries=500)
        assert result.violations > 0


class TestProgressAndFairness:
    def test_all_processes_make_entries(self):
        result = simulate_fischer(4, Uniform(0.0, 2.0), pause=3.0,
                                  rng=make_rng(8), target_entries=200)
        assert all(count > 0 for count in result.entries_by_pid.values())

    def test_larger_pause_means_longer_waits(self):
        short = simulate_fischer(4, Uniform(0.0, 2.0), pause=2.5,
                                 rng=make_rng(9), target_entries=200)
        long = simulate_fischer(4, Uniform(0.0, 2.0), pause=10.0,
                                rng=make_rng(9), target_entries=200)
        assert long.mean_wait > short.mean_wait

    def test_op_budget_respected(self):
        result = simulate_fischer(2, Uniform(0.0, 2.0), pause=1.0,
                                  rng=make_rng(10), target_entries=10**9,
                                  max_ops=5_000)
        assert result.total_ops <= 5_000

    def test_reproducible(self):
        a = simulate_fischer(4, Exponential(1.0), pause=1.0,
                             rng=make_rng(11), target_entries=100)
        b = simulate_fischer(4, Exponential(1.0), pause=1.0,
                             rng=make_rng(11), target_entries=100)
        assert (a.entries, a.violations, a.total_ops) == \
            (b.entries, b.violations, b.total_ops)


class TestExperimentHarness:
    def test_run_and_format(self):
        from repro.experiments import mutual_exclusion
        result = mutual_exclusion.run(n=3, pauses=(0.25, 3.0),
                                      entries_per_cell=80, seed=1)
        rows = {(r.noise, r.pause): r for r in result.rows}
        assert rows[("uniform [0,2]", 3.0)].violations == 0
        assert rows[("uniform [0,2]", 0.25)].violations > 0
        assert "EXP-MUTEX" in mutual_exclusion.format_result(result)

    def test_main(self, capsys):
        from repro.experiments import mutual_exclusion
        mutual_exclusion.main(["--trials", "20", "--seed", "1"])
        assert "Fischer" in capsys.readouterr().out
