"""Tests for the noisy scheduler (Section 3.1 timing model)."""

import numpy as np
import pytest

from repro._rng import make_rng
from repro.errors import ConfigurationError, DistributionError
from repro.noise import Constant, Exponential, PerOpKindNoise, Uniform
from repro.sched.delta import ConstantDelta, DitheredStart
from repro.sched.noisy import NoisyScheduler, PresampledScheduler
from repro.types import OpKind


class TestValidation:
    def test_degenerate_rejected_by_default(self):
        with pytest.raises(DistributionError):
            NoisyScheduler(Constant(1.0), make_rng(1))

    def test_degenerate_allowed_explicitly(self):
        sched = NoisyScheduler(Constant(1.0), make_rng(1),
                               allow_degenerate=True)
        t = sched.next_time(0, 1, OpKind.READ, 0.0)
        assert t >= 1.0

    def test_per_kind_noise_accepted(self):
        per = PerOpKindNoise(Exponential(1.0), Uniform(0.0, 2.0))
        sched = NoisyScheduler(per, make_rng(2))
        assert sched.noise.for_kind(OpKind.WRITE) is per.write


class TestTiming:
    def test_times_strictly_increase(self):
        sched = NoisyScheduler(Exponential(1.0), make_rng(3))
        t = sched.start_time(0)
        for j in range(1, 50):
            t2 = sched.next_time(0, j, OpKind.READ, t)
            assert t2 > t
            t = t2

    def test_delay_schedule_added(self):
        sched = NoisyScheduler(Exponential(1.0), make_rng(4),
                               delta=ConstantDelta(5.0))
        t = sched.next_time(0, 1, OpKind.READ, 0.0)
        assert t >= 5.0

    def test_start_time_comes_from_delta(self):
        sched = NoisyScheduler(Exponential(1.0), make_rng(5),
                               delta=ConstantDelta(0.0, start_time=9.0))
        assert sched.start_time(3) == 9.0

    def test_reproducible(self):
        a = NoisyScheduler(Exponential(1.0), make_rng(6))
        b = NoisyScheduler(Exponential(1.0), make_rng(6))
        assert a.next_time(0, 1, OpKind.READ, 0.0) == \
            b.next_time(0, 1, OpKind.READ, 0.0)


class TestPresample:
    def test_shape_and_monotone_rows(self):
        sched = NoisyScheduler(Uniform(0.0, 2.0), make_rng(7))
        times = sched.presample(n=5, max_ops=40)
        assert times.shape == (5, 40)
        assert (np.diff(times, axis=1) > 0).all()

    def test_includes_starts(self):
        sched = NoisyScheduler(Exponential(1.0), make_rng(8),
                               delta=DitheredStart(3, make_rng(9), base=100.0))
        times = sched.presample(n=3, max_ops=4)
        assert (times >= 100.0).all()

    def test_includes_delays(self):
        sched = NoisyScheduler(Exponential(0.001), make_rng(10),
                               delta=ConstantDelta(10.0))
        times = sched.presample(n=2, max_ops=3)
        # Each op gains at least the 10-unit delay.
        assert times[0, 0] >= 10.0
        assert times[0, 2] >= 30.0

    def test_no_exact_ties_across_processes(self):
        sched = NoisyScheduler(Uniform(0.0, 2.0), make_rng(11))
        times = sched.presample(n=50, max_ops=20)
        flat = times.ravel()
        assert len(np.unique(flat)) == flat.size


class TestPresampledScheduler:
    def test_replays_exact_times(self):
        times = np.array([[1.0, 2.0, 3.0], [1.5, 2.5, 3.5]])
        sched = PresampledScheduler(times)
        assert sched.n == 2
        assert sched.max_ops == 3
        assert sched.next_time(1, 2, OpKind.READ, 0.0) == 2.5
        assert sched.start_time(0) == 0.0

    def test_horizon_exhaustion_raises(self):
        sched = PresampledScheduler(np.array([[1.0]]))
        with pytest.raises(ConfigurationError):
            sched.next_time(0, 2, OpKind.READ, 1.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            PresampledScheduler(np.array([1.0, 2.0]))
