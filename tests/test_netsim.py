"""Tests for the message-passing substrate and the ABD emulation."""

import pytest

from repro._rng import make_rng
from repro.errors import ConfigurationError
from repro.netsim import Message, Network, quorum_size, run_mp_trial
from repro.netsim.abd import (
    QUERY,
    QUERY_REPLY,
    UPDATE,
    UPDATE_ACK,
    AbdClient,
    AbdServer,
)
from repro.netsim.network import Node
from repro.noise import Constant, Exponential, ShiftedExponential
from repro.types import read, write


class Echo(Node):
    """Replies to every 'ping' with one 'pong' to the sender."""

    def __init__(self):
        self.received = []

    def on_message(self, msg, now):
        self.received.append((msg.payload, now))
        if msg.payload[0] == "ping":
            return [Message(self.name, msg.src, ("pong",))]
        return []


class Starter(Node):
    def __init__(self, target):
        self.target = target
        self.pongs = 0

    def on_start(self, now):
        return [Message(self.name, self.target, ("ping",))]

    def on_message(self, msg, now):
        if msg.payload[0] == "pong":
            self.pongs += 1
        return []


class TestNetwork:
    def test_ping_pong(self):
        net = Network(Exponential(1.0), make_rng(1))
        net.add_node("a", Starter("b"))
        net.add_node("b", Echo())
        net.start()
        net.run()
        assert net.nodes["a"].pongs == 1
        assert net.delivered == 2

    def test_latencies_advance_time(self):
        net = Network(ShiftedExponential(1.0, 0.5), make_rng(2))
        net.add_node("a", Starter("b"))
        net.add_node("b", Echo())
        net.start()
        net.run()
        assert net.now >= 2.0  # two hops, >= 1.0 latency floor each

    def test_crashed_destination_drops(self):
        net = Network(Exponential(1.0), make_rng(3))
        net.add_node("a", Starter("b"))
        net.add_node("b", Echo())
        net.crash("b")
        net.start()
        net.run()
        assert net.nodes["a"].pongs == 0
        assert net.delivered == 0

    def test_crashed_source_does_not_send(self):
        net = Network(Exponential(1.0), make_rng(4))
        net.add_node("a", Starter("b"))
        net.add_node("b", Echo())
        net.crash("a")
        net.start()
        net.run()
        assert net.nodes["b"].received == []

    def test_degenerate_latency_rejected_by_default(self):
        from repro.errors import DistributionError
        with pytest.raises(DistributionError):
            Network(Constant(1.0), make_rng(5))

    def test_duplicate_node_rejected(self):
        net = Network(Exponential(1.0), make_rng(6))
        net.add_node("a", Echo())
        with pytest.raises(ConfigurationError):
            net.add_node("a", Echo())

    def test_until_predicate_stops_early(self):
        net = Network(Exponential(1.0), make_rng(7))
        net.add_node("a", Starter("b"))
        net.add_node("b", Echo())
        net.start()
        stopped = net.run(until=lambda: net.delivered >= 1)
        assert stopped
        assert net.delivered <= 2


class TestQuorum:
    @pytest.mark.parametrize("n, q", [(1, 1), (2, 2), (3, 2), (5, 3), (7, 4)])
    def test_majority(self, n, q):
        assert quorum_size(n) == q

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            quorum_size(0)


class TestAbdServer:
    def test_query_of_default(self):
        server = AbdServer()
        server.name = "s"
        out = list(server.on_message(
            Message("c", "s", (QUERY, 1, "a0", 3)), 0.0))
        assert out[0].payload == (QUERY_REPLY, 1, "a0", 3, 0, -1, 0)

    def test_update_then_query(self):
        server = AbdServer()
        server.name = "s"
        server.on_message(Message("c", "s", (UPDATE, 1, "a0", 3, 1, 2, 1)), 0.0)
        out = list(server.on_message(
            Message("c", "s", (QUERY, 2, "a0", 3)), 0.0))
        assert out[0].payload == (QUERY_REPLY, 2, "a0", 3, 1, 2, 1)

    def test_stale_update_ignored(self):
        server = AbdServer()
        server.name = "s"
        server.on_message(Message("c", "s", (UPDATE, 1, "a0", 3, 5, 0, 1)), 0.0)
        server.on_message(Message("c", "s", (UPDATE, 2, "a0", 3, 4, 9, 0)), 0.0)
        assert server.store[("a0", 3)] == ((5, 0), 1)

    def test_timestamp_ties_break_by_pid(self):
        server = AbdServer()
        server.name = "s"
        server.on_message(Message("c", "s", (UPDATE, 1, "a0", 3, 5, 1, 7)), 0.0)
        server.on_message(Message("c", "s", (UPDATE, 2, "a0", 3, 5, 2, 8)), 0.0)
        assert server.store[("a0", 3)] == ((5, 2), 8)

    def test_defaults_callable(self):
        server = AbdServer(defaults=lambda a, i: 1 if i == 0 else 0)
        server.name = "s"
        out = list(server.on_message(
            Message("c", "s", (QUERY, 1, "a0", 0)), 0.0))
        assert out[0].payload[-1] == 1


class TestAbdClient:
    def run_transaction(self, op, servers=3, prime=None, crash=()):
        """Drive one transaction through a real network; return its value."""
        completed = []
        net = Network(Exponential(1.0), make_rng(11))
        names = [f"s{i}" for i in range(servers)]
        for name in names:
            net.add_node(name, AbdServer())
        if prime is not None:
            for name in names:
                net.nodes[name].store[(op.array, op.index)] = prime

        class Driver(AbdClient):
            def on_start(self, now):
                return self.begin(op)

        client = Driver(names, on_complete=lambda o, v, now:
                        completed.append((o, v)) or [])
        net.add_node("client7", client)
        for name in crash:
            net.crash(name)
        net.start()
        net.run()
        return completed

    def test_read_returns_default(self):
        done = self.run_transaction(read("a0", 4))
        assert done == [(read("a0", 4), 0)]

    def test_read_returns_primed_value(self):
        done = self.run_transaction(read("a0", 4), prime=((3, 1), 1))
        assert done[0][1] == 1

    def test_write_commits(self):
        done = self.run_transaction(write("a1", 2, 1))
        assert done == [(write("a1", 2, 1), 1)]

    def test_tolerates_minority_crash(self):
        done = self.run_transaction(read("a0", 1), servers=3, crash=("s0",))
        assert len(done) == 1

    def test_blocks_on_majority_crash(self):
        done = self.run_transaction(read("a0", 1), servers=3,
                                    crash=("s0", "s1"))
        assert done == []  # cannot assemble a quorum; waits forever

    def test_one_transaction_at_a_time(self):
        client = AbdClient(["s0"], on_complete=lambda o, v, t: [])
        client.name = "client0"
        client.begin(read("a0", 1))
        with pytest.raises(ConfigurationError):
            client.begin(read("a0", 2))

    def test_writer_pid_from_name(self):
        client = AbdClient(["s0"], on_complete=lambda o, v, t: [])
        client.name = "client42"
        assert client._writer_pid() == 42


class TestMpConsensus:
    def test_basic_run_agrees(self):
        trial = run_mp_trial(4, Exponential(1.0), seed=1)
        assert trial.all_decided and trial.agreed
        assert trial.transactions >= 4 * 8  # at least 8 register ops each

    def test_validity(self):
        trial = run_mp_trial(3, Exponential(1.0), seed=2, inputs=[1, 1, 1])
        assert {d.value for d in trial.decisions.values()} == {1}

    def test_minority_server_crashes_tolerated(self):
        trial = run_mp_trial(4, Exponential(1.0), seed=3,
                             n_servers=5, crash_servers=2)
        assert trial.all_decided and trial.agreed

    def test_majority_crash_rejected(self):
        with pytest.raises(ConfigurationError):
            run_mp_trial(2, Exponential(1.0), seed=4,
                         n_servers=4, crash_servers=2)

    def test_reproducible(self):
        a = run_mp_trial(4, Exponential(1.0), seed=77)
        b = run_mp_trial(4, Exponential(1.0), seed=77)
        assert a.delivered_messages == b.delivered_messages
        assert {p: d.value for p, d in a.decisions.items()} == \
            {p: d.value for p, d in b.decisions.items()}

    def test_message_cost_scales_with_servers(self):
        small = run_mp_trial(2, Exponential(1.0), seed=5, n_servers=3)
        large = run_mp_trial(2, Exponential(1.0), seed=5, n_servers=9)
        msgs_per_txn_small = small.delivered_messages / small.transactions
        msgs_per_txn_large = large.delivered_messages / large.transactions
        assert msgs_per_txn_large > msgs_per_txn_small

    def test_other_protocols_compose(self):
        trial = run_mp_trial(3, Exponential(1.0), seed=6,
                             protocol="conservative")
        assert trial.all_decided and trial.agreed
