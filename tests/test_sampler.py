"""The inverse sampling lane: exactness, extension, and lane selection."""

import math

import numpy as np
import pytest

from repro._rng import make_rng
from repro._seedhash import SeedBlock, block_spawn_keys
from repro.noise.distributions import (
    Exponential,
    Geometric,
    ShiftedExponential,
    TruncatedNormal,
    Uniform,
)
from repro.sim.sampler import (
    draw_starts,
    draw_times,
    extend_times,
    inverse_sampler_for,
)


class TestLaneSelection:
    def test_invertible_types(self):
        assert inverse_sampler_for(Exponential(1.0)) is not None
        assert inverse_sampler_for(ShiftedExponential(0.5, 0.5)) is not None
        assert inverse_sampler_for(Uniform(0.0, 2.0)) is not None

    def test_non_invertible_types_stay_legacy(self):
        assert inverse_sampler_for(Geometric(0.5)) is None
        assert inverse_sampler_for(TruncatedNormal()) is None

    def test_subclasses_stay_legacy(self):
        class Custom(Uniform):
            def sample_array(self, rng, size):  # pragma: no cover
                return super().sample_array(rng, size) * 2

        assert inverse_sampler_for(Custom(0.0, 1.0)) is None


class TestTransforms:
    def test_exponential_inverse_cdf(self):
        sampler = inverse_sampler_for(Exponential(2.0))
        u = np.array([0.0, 0.5, 1.0 - 2.0 ** -53])
        out = sampler.transform(u)
        assert out[0] == 0.0
        assert out[1] == pytest.approx(-2.0 * math.log(0.5))
        assert np.isfinite(out[2])

    def test_shift_and_uniform(self):
        shifted = inverse_sampler_for(ShiftedExponential(0.5, 1.0))
        assert shifted.transform(np.zeros(1))[0] == 0.5
        uni = inverse_sampler_for(Uniform(1.0, 3.0))
        assert np.allclose(uni.transform(np.array([0.0, 0.5])),
                           [1.0, 2.0])

    def test_inplace_matches_out_of_place(self):
        rng = make_rng(1)
        for dist in (Exponential(1.3), Uniform(0.2, 1.7)):
            sampler = inverse_sampler_for(dist)
            u = rng.random((5, 7))
            expected = sampler.transform(u)
            got = sampler.transform_inplace(u.copy())
            assert np.array_equal(expected, got)

    def test_statistical_sanity(self):
        # The lane's draws must follow the declared distribution.
        sampler = inverse_sampler_for(Exponential(1.0))
        u = make_rng(3).random(200_000)
        x = sampler.transform(u)
        assert x.mean() == pytest.approx(1.0, rel=0.02)
        assert np.var(x) == pytest.approx(1.0, rel=0.05)


class TestColumnMajorExtension:
    """The load-bearing property: growing the horizon (or redrawing the
    whole matrix from the stream's start at a larger k) never changes an
    already-drawn completion time."""

    @pytest.mark.parametrize("delta_kind", ["zero", "dithered"])
    def test_redraw_prefix_identity(self, delta_kind):
        sampler = inverse_sampler_for(Exponential(1.0))
        n, k1, k2 = 5, 12, 40

        def build(k):
            rng = make_rng(42)
            starts = draw_starts(rng, n, delta_kind, 0.0, 1e-8)
            return draw_times(rng, sampler, starts, k)

        small, big = build(k1), build(k2)
        assert np.array_equal(small, big[:, :k1])

    def test_extend_equals_bigger_draw(self):
        sampler = inverse_sampler_for(Uniform(0.0, 2.0))
        n = 4
        rng1, rng2 = make_rng(9), make_rng(9)
        starts = draw_starts(rng1, n, "dithered", 0.0, 1e-8)
        draw_starts(rng2, n, "dithered", 0.0, 1e-8)
        t1 = draw_times(rng1, sampler, starts, 8)
        t1 = extend_times(rng1, sampler, t1, 8)
        t2 = draw_times(rng2, sampler, starts, 16)
        assert np.array_equal(t1, t2)

    def test_rows_strictly_increasing(self):
        sampler = inverse_sampler_for(Exponential(1.0))
        times = draw_times(make_rng(5), sampler, np.zeros(3), 50)
        assert (np.diff(times, axis=1) >= 0).all()


class TestSeedBlock:
    def test_materialized_children_match_spawn(self):
        parent = np.random.SeedSequence(2000)
        spawned = parent.spawn(5)
        block = SeedBlock(2000, (), 0, 5)
        for seq, lazy in zip(spawned, block):
            assert (seq.entropy, seq.spawn_key) == \
                (lazy.entropy, lazy.spawn_key)
            a = np.random.Generator(np.random.PCG64(seq)).random(4)
            b = np.random.Generator(np.random.PCG64(lazy)).random(4)
            assert np.array_equal(a, b)

    def test_slicing_offsets(self):
        block = SeedBlock(7, (3,), 10, 20)
        tail = block[5:9]
        assert isinstance(tail, SeedBlock)
        assert len(tail) == 4
        assert tail[0].spawn_key == (3, 15)
        assert block[-1].spawn_key == (3, 29)
        with pytest.raises(IndexError):
            block[20]

    def test_block_spawn_keys_matches_object_path(self):
        block = SeedBlock(11, (), 3, 6)
        recognized = block_spawn_keys(block)
        assert recognized is not None
        entropy, matrix = recognized
        object_path = block_spawn_keys(list(block))
        assert object_path is not None
        assert entropy == object_path[0]
        assert np.array_equal(matrix, object_path[1])

    def test_unrecognizable_blocks_fall_back(self):
        assert block_spawn_keys(SeedBlock(-1, (), 0, 3)) is None
        assert block_spawn_keys(SeedBlock(5, (), 0, 0)) is None
        assert block_spawn_keys(SeedBlock(5, (2 ** 40,), 0, 3)) is None
