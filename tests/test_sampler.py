"""The inverse sampling lane: exactness, extension, and lane selection."""

import math

import numpy as np
import pytest

from repro._rng import make_rng
from repro._seedhash import SeedBlock, block_spawn_keys
from repro.noise.distributions import (
    Exponential,
    Geometric,
    ShiftedExponential,
    TruncatedNormal,
    TwoPoint,
    Uniform,
)
from repro.sim.sampler import (
    _TIE_QUANT_BITS,
    draw_starts,
    draw_times,
    extend_times,
    inverse_sampler_for,
    quantize_times,
)


class TestLaneSelection:
    def test_invertible_types(self):
        assert inverse_sampler_for(Exponential(1.0)) is not None
        assert inverse_sampler_for(ShiftedExponential(0.5, 0.5)) is not None
        assert inverse_sampler_for(Uniform(0.0, 2.0)) is not None

    def test_figure1_distribution_lanes(self):
        # The PR-8 lanes: every Figure-1 distribution inverts.
        assert inverse_sampler_for(Geometric(0.5)) is not None
        assert inverse_sampler_for(TwoPoint(0.5, 2.0, 0.5)) is not None
        assert inverse_sampler_for(TruncatedNormal()) is not None

    def test_tie_exact_flags(self):
        # Discrete lanes quantize their cumulative chains (exact cross-
        # process ties are common); the continuous ones must not.
        assert inverse_sampler_for(Geometric(0.5)).tie_exact
        assert inverse_sampler_for(TwoPoint(0.5, 2.0, 0.5)).tie_exact
        assert not inverse_sampler_for(TruncatedNormal()).tie_exact
        assert not inverse_sampler_for(Exponential(1.0)).tie_exact

    def test_infinite_truncation_stays_legacy(self):
        # The quantile transform needs both truncation CDFs finite.
        assert inverse_sampler_for(
            TruncatedNormal(low=-math.inf)) is None
        assert inverse_sampler_for(
            TruncatedNormal(high=math.inf)) is None

    def test_subclasses_stay_legacy(self):
        class Custom(Uniform):
            def sample_array(self, rng, size):  # pragma: no cover
                return super().sample_array(rng, size) * 2

        class CustomGeo(Geometric):
            def sample_array(self, rng, size):  # pragma: no cover
                return super().sample_array(rng, size) + 1

        assert inverse_sampler_for(Custom(0.0, 1.0)) is None
        assert inverse_sampler_for(CustomGeo(0.5)) is None


class TestTransforms:
    def test_exponential_inverse_cdf(self):
        sampler = inverse_sampler_for(Exponential(2.0))
        u = np.array([0.0, 0.5, 1.0 - 2.0 ** -53])
        out = sampler.transform(u)
        assert out[0] == 0.0
        assert out[1] == pytest.approx(-2.0 * math.log(0.5))
        assert np.isfinite(out[2])

    def test_shift_and_uniform(self):
        shifted = inverse_sampler_for(ShiftedExponential(0.5, 1.0))
        assert shifted.transform(np.zeros(1))[0] == 0.5
        uni = inverse_sampler_for(Uniform(1.0, 3.0))
        assert np.allclose(uni.transform(np.array([0.0, 0.5])),
                           [1.0, 2.0])

    def test_inplace_matches_out_of_place(self):
        rng = make_rng(1)
        for dist in (Exponential(1.3), Uniform(0.2, 1.7)):
            sampler = inverse_sampler_for(dist)
            u = rng.random((5, 7))
            expected = sampler.transform(u)
            got = sampler.transform_inplace(u.copy())
            assert np.array_equal(expected, got)

    def test_statistical_sanity(self):
        # The lane's draws must follow the declared distribution.
        sampler = inverse_sampler_for(Exponential(1.0))
        u = make_rng(3).random(200_000)
        x = sampler.transform(u)
        assert x.mean() == pytest.approx(1.0, rel=0.02)
        assert np.var(x) == pytest.approx(1.0, rel=0.05)


class TestColumnMajorExtension:
    """The load-bearing property: growing the horizon (or redrawing the
    whole matrix from the stream's start at a larger k) never changes an
    already-drawn completion time."""

    @pytest.mark.parametrize("delta_kind", ["zero", "dithered"])
    def test_redraw_prefix_identity(self, delta_kind):
        sampler = inverse_sampler_for(Exponential(1.0))
        n, k1, k2 = 5, 12, 40

        def build(k):
            rng = make_rng(42)
            starts = draw_starts(rng, n, delta_kind, 0.0, 1e-8)
            return draw_times(rng, sampler, starts, k)

        small, big = build(k1), build(k2)
        assert np.array_equal(small, big[:, :k1])

    def test_extend_equals_bigger_draw(self):
        sampler = inverse_sampler_for(Uniform(0.0, 2.0))
        n = 4
        rng1, rng2 = make_rng(9), make_rng(9)
        starts = draw_starts(rng1, n, "dithered", 0.0, 1e-8)
        draw_starts(rng2, n, "dithered", 0.0, 1e-8)
        t1 = draw_times(rng1, sampler, starts, 8)
        t1 = extend_times(rng1, sampler, t1, 8)
        t2 = draw_times(rng2, sampler, starts, 16)
        assert np.array_equal(t1, t2)

    def test_rows_strictly_increasing(self):
        sampler = inverse_sampler_for(Exponential(1.0))
        times = draw_times(make_rng(5), sampler, np.zeros(3), 50)
        assert (np.diff(times, axis=1) >= 0).all()


class TestFigure1LaneTransforms:
    """Inverse-CDF correctness of the PR-8 lanes, against closed forms."""

    def test_geometric_quantile_bins(self):
        sampler = inverse_sampler_for(Geometric(0.5))
        u = np.array([0.0, 0.49, 0.51, 0.74, 0.76])
        assert np.array_equal(sampler.transform(u), [1, 1, 2, 2, 3])

    def test_geometric_pmf(self):
        sampler = inverse_sampler_for(Geometric(0.3))
        x = sampler.transform(make_rng(11).random(200_000))
        assert x.min() == 1.0
        for j in (1, 2, 3):
            pmf = 0.3 * 0.7 ** (j - 1)
            assert (x == j).mean() == pytest.approx(pmf, rel=0.05)

    def test_two_point_split(self):
        sampler = inverse_sampler_for(TwoPoint(0.5, 2.0, 0.25))
        u = np.array([0.0, 0.24, 0.26, 0.99])
        assert np.array_equal(sampler.transform(u), [0.5, 0.5, 2.0, 2.0])

    def test_two_point_reversed_support(self):
        # a > b: the lane reorders, so P(a) rides the upper quantiles.
        sampler = inverse_sampler_for(TwoPoint(2.0, 0.5, 0.25))
        x = sampler.transform(make_rng(12).random(100_000))
        assert set(np.unique(x)) == {0.5, 2.0}
        assert (x == 2.0).mean() == pytest.approx(0.25, abs=0.01)

    def test_truncated_normal_support_and_cdf(self):
        dist = TruncatedNormal(mu=1.0, sigma=0.2, low=0.5, high=1.5)
        sampler = inverse_sampler_for(dist)
        x = sampler.transform(make_rng(13).random(200_000))
        assert x.min() >= 0.5 and x.max() <= 1.5

        def phi(v):
            return 0.5 * math.erfc(-(v - 1.0) / (0.2 * math.sqrt(2.0)))

        lo, hi = phi(0.5), phi(1.5)
        for q in (0.7, 1.0, 1.3):
            closed = (phi(q) - lo) / (hi - lo)
            assert (x <= q).mean() == pytest.approx(closed, abs=0.005)

    def test_truncated_normal_extreme_quantiles_stay_finite(self):
        sampler = inverse_sampler_for(TruncatedNormal())
        x = sampler.transform(np.array([0.0, 1.0 - 2.0 ** -53]))
        assert np.isfinite(x).all()
        assert x[0] >= 0.0 and x[1] <= 2.0

    @pytest.mark.parametrize("dist", [
        Geometric(0.4),
        TwoPoint(0.5, 2.0, 0.5),
        TruncatedNormal(),
    ], ids=["geometric", "two-point", "truncated-normal"])
    def test_inplace_matches_out_of_place(self, dist):
        sampler = inverse_sampler_for(dist)
        u = make_rng(14).random((5, 7))
        assert np.array_equal(sampler.transform(u),
                              sampler.transform_inplace(u.copy()))


class TestTieExactChain:
    """The quantized cumulative chain behind the discrete lanes."""

    DISTS = [Geometric(0.5), TwoPoint(0.5, 2.0, 0.5)]

    def test_quantize_idempotent_on_drawn_times(self):
        # Every emitted completion time already has its low mantissa
        # bits cleared — re-quantizing is a no-op.
        for dist in self.DISTS:
            sampler = inverse_sampler_for(dist)
            rng = make_rng(21)
            starts = draw_starts(rng, 6, "dithered", 0.0, 1e-8)
            times = draw_times(rng, sampler, starts, 30)
            low = times.copy().view(np.uint64) & np.uint64(
                (1 << _TIE_QUANT_BITS) - 1)
            assert (low == 0).all()
            assert np.array_equal(quantize_times(times.copy()), times)

    def test_redraw_prefix_identity(self):
        for dist in self.DISTS:
            sampler = inverse_sampler_for(dist)

            def build(k):
                rng = make_rng(22)
                starts = draw_starts(rng, 5, "dithered", 0.0, 1e-8)
                return draw_times(rng, sampler, starts, k)

            small, big = build(10), build(32)
            assert np.array_equal(small, big[:, :10])

    def test_extend_equals_bigger_draw(self):
        for dist in self.DISTS:
            sampler = inverse_sampler_for(dist)
            rng1, rng2 = make_rng(23), make_rng(23)
            starts = draw_starts(rng1, 4, "dithered", 0.0, 1e-8)
            draw_starts(rng2, 4, "dithered", 0.0, 1e-8)
            t1 = draw_times(rng1, sampler, starts, 8)
            t1 = extend_times(rng1, sampler, t1, 8)
            t2 = draw_times(rng2, sampler, starts, 16)
            assert np.array_equal(t1, t2)

    def test_rows_nondecreasing(self):
        for dist in self.DISTS:
            sampler = inverse_sampler_for(dist)
            times = draw_times(make_rng(24), sampler, np.zeros(3), 50)
            assert (np.diff(times, axis=1) >= 0).all()


class TestFigure1LaneEngineIdentity:
    """Each new lane is bit-identical across scalar, frame, and kernel."""

    NOISES = [
        pytest.param({"name": "geometric", "p": 0.5}, id="geometric"),
        pytest.param({"name": "two-point", "a": 0.5, "b": 2.0, "p": 0.5},
                     id="two-point"),
        pytest.param({"name": "truncated-normal", "mu": 1.0, "sigma": 0.2,
                      "low": 0.0, "high": 2.0}, id="truncated-normal"),
    ]

    @pytest.mark.parametrize("noise", NOISES)
    def test_scalar_frame_kernel_identity(self, noise):
        from repro.api import NoiseSpec, NoisyModelSpec, TrialSpec, run_batch

        params = dict(noise)
        spec = TrialSpec(
            n=300,
            model=NoisyModelSpec(
                noise=NoiseSpec.of(params.pop("name"), **params)),
            engine="fast", stop_after_first_decision=True)
        scalar = run_batch(spec, 10, seed=2000)
        frame = run_batch(spec, 10, seed=2000, as_frame=True)
        kernel = run_batch(spec.replace(engine="kernel"), 10, seed=2000,
                           as_frame=True)
        assert frame.to_trial_results() == scalar
        for col in ("total_ops", "max_round", "preference_changes",
                    "n_decided", "first_decision_round",
                    "first_decision_ops"):
            assert np.array_equal(frame.column(col), kernel.column(col)), col


class TestSeedBlock:
    def test_materialized_children_match_spawn(self):
        parent = np.random.SeedSequence(2000)
        spawned = parent.spawn(5)
        block = SeedBlock(2000, (), 0, 5)
        for seq, lazy in zip(spawned, block):
            assert (seq.entropy, seq.spawn_key) == \
                (lazy.entropy, lazy.spawn_key)
            a = np.random.Generator(np.random.PCG64(seq)).random(4)
            b = np.random.Generator(np.random.PCG64(lazy)).random(4)
            assert np.array_equal(a, b)

    def test_slicing_offsets(self):
        block = SeedBlock(7, (3,), 10, 20)
        tail = block[5:9]
        assert isinstance(tail, SeedBlock)
        assert len(tail) == 4
        assert tail[0].spawn_key == (3, 15)
        assert block[-1].spawn_key == (3, 29)
        with pytest.raises(IndexError):
            block[20]

    def test_block_spawn_keys_matches_object_path(self):
        block = SeedBlock(11, (), 3, 6)
        recognized = block_spawn_keys(block)
        assert recognized is not None
        entropy, matrix = recognized
        object_path = block_spawn_keys(list(block))
        assert object_path is not None
        assert entropy == object_path[0]
        assert np.array_equal(matrix, object_path[1])

    def test_unrecognizable_blocks_fall_back(self):
        assert block_spawn_keys(SeedBlock(-1, (), 0, 3)) is None
        assert block_spawn_keys(SeedBlock(5, (), 0, 0)) is None
        assert block_spawn_keys(SeedBlock(5, (2 ** 40,), 0, 3)) is None
