"""The HTTP job API: an in-thread server exercised end to end.

Spins up ``repro.serve.server`` on an ephemeral port and drives it with
:class:`repro.serve.client.ServeClient` — submit, watch, aggregates,
manifest, frame reassembly (bit-identical to in-process ``run_sweep``),
dedup on resubmission, cancellation, torn-object 404s, client timeout
typing, and the error surface.
"""

import os
import socket
import threading

import pytest

from repro.api import (
    NoiseSpec,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    run_sweep,
)
from repro.serve import SweepJob
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import make_server

EXPO = NoiseSpec.of("exponential", mean=1.0)
UNIF = NoiseSpec.of("uniform", low=0.0, high=2.0)


def small_sweep(trials=40):
    return SweepSpec(
        base=TrialSpec(n=1, model=NoisyModelSpec(noise=EXPO),
                       stop_after_first_decision=True),
        axes=(SweepAxis("model.noise", (EXPO, UNIF), name="distribution",
                        labels=("expo", "unif")),
              SweepAxis("n", (2, 8))),
        trials=trials)


@pytest.fixture()
def service(tmp_path):
    server, svc = make_server(str(tmp_path / "store"), workers=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}")
    try:
        yield client
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestJobLifecycle:
    def test_submit_wait_fetch_is_bit_identical(self, service):
        sweep = small_sweep()
        ref = run_sweep(sweep, seed=4242)
        job = SweepJob.from_sweep(sweep, seed=4242, chunk_size=16)

        reply = service.submit_job(job)
        assert reply["accepted"] is True
        assert reply["job_id"] == job.job_id

        final = service.wait(job.job_id, interval=0.05, timeout=60)
        assert final["state"] == "done"
        assert final["trials_done"] == final["trials_total"]

        manifest = service.manifest(job.job_id)
        assert manifest["complete"] is True

        frames = service.result_frames(job.job_id)
        assert len(frames) == len(ref.cells)
        for (labels, frame), cell in zip(frames, ref.cells):
            assert frame == ref.frames[cell.index], \
                f"HTTP frame diverged from run_sweep in cell {labels}"

    def test_resubmit_is_deduplicated(self, service):
        job = SweepJob.from_sweep(small_sweep(trials=16), seed=7,
                                  chunk_size=8)
        first = service.submit_job(job)
        assert first["accepted"] is True
        service.wait(job.job_id, interval=0.05, timeout=60)

        again = service.submit_job(job)
        assert again["accepted"] is False
        assert again["state"] == "done"

    def test_jobs_listing_and_healthz(self, service):
        assert service.healthz()["ok"] is True
        job = SweepJob.from_sweep(small_sweep(trials=16), seed=3,
                                  chunk_size=8)
        service.submit_job(job)
        service.wait(job.job_id, interval=0.05, timeout=60)
        listing = service.jobs()
        assert [j["job_id"] for j in listing] == [job.job_id]
        assert listing[0]["state"] == "done"

    def test_aggregates_match_frames(self, service):
        from repro.analysis.aggregate import MeanCI

        sweep = small_sweep()
        ref = run_sweep(sweep, seed=11)
        job = SweepJob.from_sweep(sweep, seed=11, chunk_size=16)
        service.submit_job(job)
        service.wait(job.job_id, interval=0.05, timeout=60)

        stat = MeanCI("first_decision_round")
        doc = service.aggregates(job.job_id)
        assert doc["state"] == "done"
        for cell_doc, cell in zip(doc["cells"], ref.cells):
            table = cell_doc["aggregate"]
            assert table is not None
            mean, _ = stat(ref.frames[cell.index])
            got = table["first_decision_round"]["mean"]
            assert got == pytest.approx(mean, rel=1e-12)


class TestPresetSubmission:
    def test_figure1_preset_runs(self, service):
        reply = service.submit({
            "preset": {"name": "figure1", "ns": [2],
                       "trials": 8,
                       "distributions": ["exponential(1)"]},
            "seed": 99, "chunk_size": 8})
        final = service.wait(reply["job_id"], interval=0.05, timeout=60)
        assert final["state"] == "done"

    def test_unknown_distribution_is_400(self, service):
        with pytest.raises(ServeError, match="unknown figure1"):
            service.submit({"preset": {"name": "figure1",
                                       "distributions": ["exponential"]},
                            "seed": 1})

    def test_unknown_preset_is_400(self, service):
        with pytest.raises(ServeError, match="unknown sweep preset"):
            service.submit({"preset": {"name": "nope"}})

    def test_empty_submission_is_400(self, service):
        with pytest.raises(ServeError, match="needs a 'job'"):
            service.submit({})


class TestErrorSurface:
    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServeError, match="404"):
            service.status("deadbeef" * 3)

    def test_unknown_object_is_404(self, service):
        with pytest.raises(ServeError, match="404"):
            service.object_bytes("0" * 64)

    def test_unknown_route_is_404(self, service):
        with pytest.raises(ServeError, match="404"):
            service._json("/nope")

    def test_unreachable_server_raises(self, tmp_path):
        client = ServeClient("http://127.0.0.1:1", timeout=2,
                             retries=1, backoff=0.01)
        with pytest.raises(ServeError, match="cannot reach"):
            client.healthz()

    def test_hung_server_raises_typed_timeout(self):
        # a socket that accepts connections but never answers: the
        # client's read deadline + bounded retries must surface a typed
        # ServeTimeoutError, never block forever
        from repro.errors import ServeTimeoutError

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        try:
            client = ServeClient(f"http://{host}:{port}", timeout=0.2,
                                 retries=1, backoff=0.01)
            with pytest.raises(ServeTimeoutError, match="did not answer"):
                client.healthz()
        finally:
            listener.close()


@pytest.fixture()
def bound_service(tmp_path):
    """Like ``service`` but also exposes the server-side store."""
    from repro.serve import ResultStore
    from repro.serve.server import make_server as _make

    store_dir = str(tmp_path / "store")
    server, svc = _make(store_dir, workers=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}")
    try:
        yield client, ResultStore(store_dir)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestFailureSemanticsOverHTTP:
    def test_torn_object_is_404_not_corrupt_bytes(self, bound_service):
        client, store = bound_service
        job = SweepJob.from_sweep(small_sweep(trials=16), seed=5,
                                  chunk_size=8)
        client.submit_job(job)
        client.wait(job.job_id, interval=0.05, timeout=60)
        key = job.chunks()[0].key
        assert client.object_bytes(key)  # healthy object serves fine
        with open(store.object_path(key), "r+b") as handle:
            handle.truncate(16)  # tear it
        with pytest.raises(ServeError, match="404"):
            client.object_bytes(key)
        # and the manifest-driven result fetch refuses rather than
        # silently assembling from a torn chunk
        with pytest.raises(ServeError):
            client.result_frames(job.job_id)

    def test_cancel_route(self, bound_service):
        client, store = bound_service
        # a job that exists but is not running (document only, queued)
        job = SweepJob.from_sweep(small_sweep(trials=16), seed=77,
                                  chunk_size=8)
        job.save(store)
        doc = client.cancel(job.job_id, reason="operator says stop")
        assert doc["state"] == "cancelled"
        # cancel is idempotent on terminal jobs
        assert client.cancel(job.job_id)["state"] == "cancelled"
        # watch() treats cancelled as terminal
        assert client.wait(job.job_id, interval=0.05,
                           timeout=10)["state"] == "cancelled"
        # resubmission un-cancels: the job resumes and completes
        client.submit_job(job)
        final = client.wait(job.job_id, interval=0.05, timeout=60)
        assert final["state"] == "done"
        assert not os.path.exists(
            os.path.join(store.job_dir(job.job_id), "cancel.json"))

    def test_cancel_unknown_job_is_404(self, bound_service):
        client, _store = bound_service
        with pytest.raises(ServeError, match="404"):
            client.cancel("deadbeef" * 3)
