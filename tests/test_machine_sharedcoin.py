"""Tests for the shared-coin machine (Chandra-style baseline / backup)."""

import pytest

from repro.core.machine import RandomCoin, RandomTie, ScriptedCoin, SharedCoinLean, LeanConsensus
from repro._rng import make_rng
from repro.memory import SharedMemory, UnboundedBitArray
from repro.types import read, write


def memory_for_sharedcoin(prefix=""):
    return SharedMemory(arrays=[
        UnboundedBitArray(prefix + "a0", prefix_value=1),
        UnboundedBitArray(prefix + "a1", prefix_value=1),
        UnboundedBitArray(prefix + "c0"),
        UnboundedBitArray(prefix + "c1"),
    ])


def step(machine, memory):
    res = memory.execute(machine.peek(), pid=machine.pid)
    machine.apply(res)
    return res


def run_solo(machine, memory, max_ops=200):
    while not machine.done and machine.ops < max_ops:
        step(machine, memory)
    return machine


class TestScriptedCoin:
    def test_replays_and_cycles(self):
        coin = ScriptedCoin([1, 0])
        assert [coin.flip() for _ in range(4)] == [1, 0, 1, 0]
        assert coin.flips == 4

    def test_rejects_empty_or_non_bits(self):
        with pytest.raises(ValueError):
            ScriptedCoin([])
        with pytest.raises(ValueError):
            ScriptedCoin([2])


class TestRandomCoin:
    def test_produces_bits_deterministically(self):
        coin_a = RandomCoin(make_rng(3))
        coin_b = RandomCoin(make_rng(3))
        a = [coin_a.flip() for _ in range(16)]
        b = [coin_b.flip() for _ in range(16)]
        assert a == b
        assert set(a) <= {0, 1}
        assert len(set(a)) == 2  # both outcomes appear in 16 fair flips


class TestRandomTie:
    def test_flips_only_on_contended_tie(self):
        coin = ScriptedCoin([1])
        rule = RandomTie(coin)
        assert rule.resolve(0, 0, 0) == 0   # empty tie: keep (validity!)
        assert coin.flips == 0
        assert rule.resolve(0, 1, 1) == 1   # contended tie: flip
        assert coin.flips == 1

    def test_forced_adoption_not_handled_here(self):
        """One-sided observations never reach the tie rule in the machine;
        resolve() just keeps preference for them."""
        rule = RandomTie(ScriptedCoin([1]))
        assert rule.resolve(0, 1, 0) == 0


class TestSharedCoinSolo:
    def test_no_contention_means_no_coin(self):
        m = run_solo(SharedCoinLean(0, 1, coin=ScriptedCoin([0])),
                     memory_for_sharedcoin())
        assert m.decision is not None
        assert m.decision.value == 1
        assert m.coin_uses == 0
        # lean's 4 ops per round plus one contention-detection read.
        assert m.decision.ops == 10

    def test_solo_round_structure(self):
        m = SharedCoinLean(0, 1, coin=ScriptedCoin([0]))
        mem = memory_for_sharedcoin()
        ops = []
        for _ in range(5):
            ops.append(str(m.peek()))
            step(m, mem)
        assert ops == ["read a0[1]", "read a1[1]", "write a1[1] := 1",
                       "read a0[1]", "read a0[0]"]
        assert m.round == 2

    def test_validity_unanimous_inputs(self):
        mem = memory_for_sharedcoin()
        first = run_solo(SharedCoinLean(0, 0, coin=ScriptedCoin([1])), mem)
        second = run_solo(SharedCoinLean(1, 0, coin=ScriptedCoin([1])), mem)
        assert first.decision.value == 0
        assert second.decision.value == 0
        assert first.coin_uses == 0 and second.coin_uses == 0


class TestSharedCoinContendedPath:
    def make_contended_memory(self):
        """Both round-1 bits and the behind-read target marked, so a
        0-preferring process neither decides nor escapes contention."""
        mem = memory_for_sharedcoin()
        mem.execute(write("a0", 1, 1))
        mem.execute(write("a1", 1, 1))
        return mem

    def test_coin_fires_at_round_end_when_contended(self):
        mem = self.make_contended_memory()
        m = SharedCoinLean(0, 0, coin=ScriptedCoin([1]))
        step(m, mem)  # read a0[1] = 1
        step(m, mem)  # read a1[1] = 1 -> contended (no coin yet)
        assert m.coin_uses == 0
        assert m.peek() == write("a0", 1, 1)
        step(m, mem)  # write; contention known, post-read skipped
        assert m.peek() == read("a1", 0)
        step(m, mem)  # behind-read = 1 (prefix): no decision -> coin
        assert m.coin_uses == 1
        assert m.peek() == write("c1", 1, 1)
        step(m, mem)
        assert m.peek() == read("c0", 1)
        step(m, mem)
        assert m.peek() == read("c1", 1)
        step(m, mem)
        assert m.preference == 1  # only c1 set -> adopt the flip
        assert m.round == 2
        assert m.ops == 7  # 2 reads + write + behind-read + 3 coin ops

    def test_post_write_detection_catches_lockstep_contention(self):
        """The rival bit set *after* the round-start reads is still
        detected — the property the round-start-tie design lacked."""
        mem = memory_for_sharedcoin()
        m = SharedCoinLean(0, 0, coin=ScriptedCoin([1]))
        step(m, mem)  # read a0[1] = 0
        step(m, mem)  # read a1[1] = 0 (not contended yet)
        step(m, mem)  # write a0[1]
        mem.execute(write("a1", 1, 1))  # rival writes now
        assert m.peek() == read("a1", 1)
        step(m, mem)  # post-read sees 1 -> contended
        step(m, mem)  # behind-read a1[0] = 1 -> no decision -> coin
        assert m.coin_uses == 1

    def test_adopts_majority_coin_vote_over_local_flip(self):
        mem = self.make_contended_memory()
        mem.execute(write("c0", 1, 1))  # earlier process voted 0
        m = SharedCoinLean(0, 1, coin=ScriptedCoin([0]))
        # Contended round -> coin: writes c0 (flip), reads c0=1, c1=0.
        for _ in range(7):
            step(m, mem)
        assert m.preference == 0

    def test_keeps_local_flip_when_votes_split(self):
        mem = self.make_contended_memory()
        mem.execute(write("c0", 1, 1))
        mem.execute(write("c1", 1, 1))
        m = SharedCoinLean(0, 0, coin=ScriptedCoin([1]))
        for _ in range(7):
            step(m, mem)
        assert m.preference == 1  # both coin bits set: keep the local flip

    def test_decision_preempts_coin(self):
        """A decidable round never reaches the coin even if contended."""
        mem = memory_for_sharedcoin()
        mem.execute(write("a0", 2, 1))
        mem.execute(write("a1", 2, 1))
        mem.execute(write("a0", 1, 1))  # a1[1] stays 0: round-2 decision
        m = SharedCoinLean(0, 0, coin=ScriptedCoin([1]))
        m.round = 2  # jump straight to the contended round
        run_solo(m, mem, max_ops=6)
        assert m.decision is not None
        assert m.decision.value == 0
        assert m.coin_uses == 0

    def test_two_process_lockstep_converges(self):
        """The signature liveness property: a strict per-op alternation
        (which stalls lean-consensus forever) lets the shared-coin
        protocol converge once two local flips agree."""
        from repro._rng import make_rng
        from repro.core.machine import RandomCoin
        mem = memory_for_sharedcoin()
        machines = [SharedCoinLean(0, 0, coin=RandomCoin(make_rng(1))),
                    SharedCoinLean(1, 1, coin=RandomCoin(make_rng(2)))]
        for _ in range(400):
            for m in machines:
                if not m.done:
                    step(m, mem)
            if all(m.done for m in machines):
                break
        values = {m.decision.value for m in machines if m.decision}
        assert len(values) == 1
        assert all(m.decision is not None for m in machines)


class TestArrayPrefix:
    def test_prefixed_arrays(self):
        mem = memory_for_sharedcoin(prefix="bk_")
        m = SharedCoinLean(0, 1, coin=ScriptedCoin([0]), array_prefix="bk_")
        assert m.peek() == read("bk_a0", 1)
        run_solo(m, mem)
        assert m.decision is not None

    def test_required_arrays_with_prefix(self):
        names = [n for n, _ in SharedCoinLean.required_arrays("bk_")]
        assert names == ["bk_a0", "bk_a1", "bk_c0", "bk_c1"]


class TestSnapshotRestore:
    def test_roundtrip_through_coin_state(self):
        mem = TestSharedCoinContendedPath().make_contended_memory()
        m = SharedCoinLean(0, 0, coin=ScriptedCoin([1]))
        for _ in range(5):
            step(m, mem)  # inside the coin sub-state now
        assert m.coin_uses == 1
        snap = m.snapshot()
        expected = m.peek()
        step(m, mem)
        m.restore(snap)
        assert m.peek() == expected
        assert m.coin_uses == 1
