"""Tests for the executable invariant checks (Lemmas 2-4, consensus spec)."""

import pytest

from repro.errors import InvariantViolation
from repro.core.invariants import (
    check_agreement,
    check_all,
    check_decided_round_silenced,
    check_decision_gap,
    check_round_ladder,
    check_validity,
)
from repro.memory import make_racing_arrays
from repro.types import Decision, write


def D(value, round_=2, ops=8):
    return Decision(value, round_, ops)


class TestAgreement:
    def test_passes_on_unanimous(self):
        check_agreement({0: D(1), 1: D(1), 2: D(1)})

    def test_passes_on_empty_and_single(self):
        check_agreement({})
        check_agreement({0: D(0)})

    def test_fails_on_split(self):
        with pytest.raises(InvariantViolation) as err:
            check_agreement({0: D(0), 1: D(1)})
        assert "agreement" in str(err.value)
        assert err.value.witness is not None


class TestValidity:
    def test_passes_when_inputs_mixed(self):
        check_validity({0: 0, 1: 1}, {0: D(1), 1: D(1)})

    def test_passes_on_matching_unanimous(self):
        check_validity({0: 1, 1: 1}, {0: D(1)})

    def test_fails_on_fabricated_value(self):
        with pytest.raises(InvariantViolation):
            check_validity({0: 0, 1: 0}, {0: D(1)})


class TestDecisionGap:
    def test_passes_within_one_round(self):
        check_decision_gap({0: D(1, 3), 1: D(1, 4)})

    def test_fails_beyond_gap(self):
        with pytest.raises(InvariantViolation):
            check_decision_gap({0: D(1, 2), 1: D(1, 4)})

    def test_custom_gap(self):
        check_decision_gap({0: D(1, 2), 1: D(1, 4)}, max_gap=2)

    def test_ignores_roundless_decisions(self):
        check_decision_gap({0: Decision(1, 0, 1), 1: D(1, 9)})


class TestRoundLadder:
    def test_passes_on_contiguous_prefix(self):
        mem = make_racing_arrays()
        for r in (1, 2, 3):
            mem.execute(write("a0", r, 1))
        check_round_ladder(mem)

    def test_fails_on_gap(self):
        mem = make_racing_arrays()
        mem.execute(write("a1", 1, 1))
        mem.execute(write("a1", 3, 1))  # skipped 2
        with pytest.raises(InvariantViolation):
            check_round_ladder(mem)

    def test_empty_arrays_pass(self):
        check_round_ladder(make_racing_arrays())


class TestSilencedRound:
    def test_passes_when_rival_unmarked(self):
        mem = make_racing_arrays()
        mem.execute(write("a1", 1, 1))
        mem.execute(write("a1", 2, 1))
        check_decided_round_silenced(mem, {0: D(1, 2)})

    def test_fails_when_rival_marked_at_decision_round(self):
        mem = make_racing_arrays()
        mem.execute(write("a1", 2, 1))
        mem.execute(write("a0", 2, 1))
        with pytest.raises(InvariantViolation):
            check_decided_round_silenced(mem, {0: D(1, 2)})


class TestCheckAll:
    def test_full_pass(self):
        mem = make_racing_arrays()
        mem.execute(write("a1", 1, 1))
        mem.execute(write("a1", 2, 1))
        check_all({0: 1, 1: 1}, {0: D(1, 2)}, memory=mem)

    def test_memory_optional(self):
        check_all({0: 0, 1: 1}, {0: D(0), 1: D(0)})

    def test_detects_agreement_breach(self):
        with pytest.raises(InvariantViolation):
            check_all({0: 0, 1: 1}, {0: D(0), 1: D(1)})
