"""Tests for the renewal-race analysis substrate (Section 6 lemmas)."""

import itertools
import math

import numpy as np
import pytest

from repro._rng import make_rng
from repro.analysis.renewal import (
    exactly_one_probability,
    lemma5_bound,
    lemma6_critical_time,
    race_until_lead,
    simulate_race_rounds,
)
from repro.errors import ConfigurationError
from repro.noise import Exponential, SumOf, TwoPoint, Uniform


def brute_force_exactly_one(qs):
    """Sum over all outcome vectors with exactly one event on."""
    total = 0.0
    for i in range(len(qs)):
        term = 1.0 - qs[i]
        for j, q in enumerate(qs):
            if j != i:
                term *= q
        total += term
    return total


class TestExactlyOne:
    @pytest.mark.parametrize("qs", [
        (0.5, 0.5), (0.9, 0.1), (0.3, 0.3, 0.3), (0.99, 0.98, 0.5, 0.01),
    ])
    def test_matches_brute_force(self, qs):
        assert exactly_one_probability(qs) == \
            pytest.approx(brute_force_exactly_one(qs))

    def test_certain_event_cases(self):
        # One event certain, others' q = 1: exactly-one holds certainly.
        assert exactly_one_probability([0.0, 1.0]) == pytest.approx(1.0)
        # Two certain events: exactly-one impossible.
        assert exactly_one_probability([0.0, 0.0]) == pytest.approx(0.0)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigurationError):
            exactly_one_probability([1.5])


class TestLemma5:
    def test_bound_holds_on_grid(self):
        """Lemma 5: P[exactly one] >= -x ln x, over a grid of q-vectors."""
        grid = [0.2, 0.5, 0.9]
        for qs in itertools.product(grid, repeat=3):
            x = math.prod(qs)
            assert exactly_one_probability(qs) >= lemma5_bound(x) - 1e-12

    def test_bound_tight_for_identical_qs_limit(self):
        """For q_i = x^(1/n) with n large, the bound approaches equality."""
        x = 0.3
        n = 4000
        qs = [x ** (1 / n)] * n
        assert exactly_one_probability(qs) == \
            pytest.approx(lemma5_bound(x), rel=1e-3)

    def test_bound_input_validation(self):
        with pytest.raises(ConfigurationError):
            lemma5_bound(0.0)
        with pytest.raises(ConfigurationError):
            lemma5_bound(1.5)

    def test_paper_constant_2e_minus_2(self):
        """The proof of Lemma 6 uses -x ln x >= 2 e^-2 at x = e^-2."""
        assert lemma5_bound(math.exp(-2)) == pytest.approx(2 * math.exp(-2))


class TestLemma6:
    def test_critical_time_found_for_continuous_noise(self, rng):
        dist = SumOf(Uniform(0.0, 2.0), 4)
        samples = np.cumsum(dist.sample_array(rng, (4000, 16, 3)), axis=2)[:, :, -1]
        t0 = lemma6_critical_time(samples)
        assert t0 is not None
        none_prob = float(np.mean((samples > t0).all(axis=1)))
        assert none_prob <= math.exp(-1) + 0.02

    def test_unique_leader_probability_meets_bound(self, rng):
        """At t0, exactly-one-finished holds with probability >= ~0.20
        (the lemma guarantees 1/5 in the worst case)."""
        dist = SumOf(Uniform(0.0, 2.0), 4)
        samples = np.cumsum(dist.sample_array(rng, (4000, 16, 3)), axis=2)[:, :, -1]
        t0 = lemma6_critical_time(samples)
        exactly_one = float(np.mean((samples <= t0).sum(axis=1) == 1))
        assert exactly_one >= 0.2

    def test_none_when_all_far(self):
        samples = np.full((10, 3), 5.0)
        # All finish at the same time: none-prob jumps 1 -> 0 at 5.0,
        # so a critical time still exists (t0 = 5.0).
        assert lemma6_critical_time(samples) == 5.0


class TestRaceSimulation:
    def test_single_racer_wins_immediately(self, rng):
        out = simulate_race_rounds(Exponential(1.0), n=1, c=2, rng=rng)
        assert out.winner == 0
        assert out.winning_round == 1

    def test_race_ends_and_reports_winner(self, rng):
        out = simulate_race_rounds(SumOf(Exponential(1.0), 4), n=8, c=2,
                                   rng=rng)
        assert out.winner is not None
        assert 1 <= out.winning_round < 10_000
        assert not out.all_dead

    def test_all_dead_with_certain_halting(self, rng):
        out = simulate_race_rounds(Exponential(1.0), n=4, c=2, rng=rng,
                                   h=0.999)
        assert out.all_dead
        assert out.winner is None

    def test_race_respects_adversary_deltas(self, rng):
        """A huge head start makes racer 0 the guaranteed winner."""
        starts = np.array([0.0, 1000.0, 1000.0])
        out = simulate_race_rounds(Uniform(0.5, 1.5), n=3, c=2, rng=rng,
                                   starts=starts)
        assert out.winner == 0

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_race_rounds(Exponential(1.0), n=0, c=2, rng=rng)
        with pytest.raises(ConfigurationError):
            simulate_race_rounds(Exponential(1.0), n=2, c=0, rng=rng)

    def test_degenerate_race_never_ends(self, rng):
        from repro.noise import Constant
        with pytest.raises(ConfigurationError):
            simulate_race_rounds(Constant(1.0), n=2, c=2, rng=rng,
                                 max_rounds=50)


class TestRaceScaling:
    def test_expected_rounds_grow_slowly_with_n(self):
        """E[R] for n=64 stays within a few multiples of n=4 — the O(log n)
        behaviour (a linear-in-n race would grow 16x)."""
        dist = SumOf(Uniform(0.0, 2.0), 4)
        small = race_until_lead(dist, 4, 2, 40, make_rng(1)).mean()
        large = race_until_lead(dist, 64, 2, 40, make_rng(2)).mean()
        assert large < small * 6

    def test_batch_shape(self):
        rounds = race_until_lead(Exponential(1.0), 4, 1, 10, make_rng(3))
        assert rounds.shape == (10,)
        assert (rounds >= 1).all()
