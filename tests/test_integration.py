"""Integration tests: whole-system executions across the substrate matrix.

Every admissible (protocol, noise distribution) pair is run end-to-end and
validated against the full invariant set, including the Lemma-2 ladder and
Lemma-4 silenced-round checks on the final memory image.
"""

import pytest

from repro._rng import make_rng
from repro.core.invariants import check_all
from repro.noise import (
    Exponential,
    Geometric,
    ShiftedExponential,
    TruncatedNormal,
    TwoPoint,
    Uniform,
    figure1_distributions,
)
from repro.sched.delta import StaggeredStart
from repro.sched.pickers import LaggardPicker, LeaderPicker, RandomPicker
from repro.sim.runner import run_noisy_trial, run_step_trial

SAFE_PROTOCOLS = ["lean", "optimized", "conservative", "random-tie",
                  "shared-coin", "bounded"]
DISTS = list(figure1_distributions().items())


@pytest.mark.parametrize("protocol", SAFE_PROTOCOLS)
@pytest.mark.parametrize("seed", [1, 2, 3])
class TestProtocolMatrix:
    def test_noisy_execution_safe(self, protocol, seed):
        result = run_noisy_trial(7, Exponential(1.0), seed=seed,
                                 protocol=protocol, engine="event")
        assert result.all_decided
        assert result.agreed

    def test_unanimous_validity(self, protocol, seed):
        result = run_noisy_trial(5, Uniform(0.0, 2.0), seed=seed,
                                 protocol=protocol, inputs=[0] * 5,
                                 engine="event")
        assert result.decided_values == {0}


@pytest.mark.parametrize("dist_name, dist", DISTS, ids=[n for n, _ in DISTS])
class TestDistributionMatrix:
    def test_lean_terminates_and_agrees(self, dist_name, dist):
        result = run_noisy_trial(12, dist, seed=5, engine="event",
                                 record=True)
        assert result.all_decided and result.agreed
        check_all(result.inputs, result.decisions, memory=result.memory)

    def test_full_invariants_on_memory(self, dist_name, dist):
        result = run_noisy_trial(6, dist, seed=9, engine="event",
                                 record=True)
        check_all(result.inputs, result.decisions, memory=result.memory)
        assert result.memory.recorder.check_read_your_writes()


class TestLemma4OnRealRuns:
    @pytest.mark.parametrize("seed", range(8))
    def test_decision_gap_at_most_one_round(self, seed):
        result = run_noisy_trial(10, Exponential(1.0), seed=seed,
                                 engine="event", record=True)
        rounds = [d.round for d in result.decisions.values()]
        assert max(rounds) - min(rounds) <= 1

    @pytest.mark.parametrize("seed", range(4))
    def test_first_setter_ladder_on_history(self, seed):
        """Lemma 2 at history level: the first set of a_b[r] happens after
        the first set of a_b[r-1]."""
        result = run_noisy_trial(8, Geometric(0.5), seed=seed,
                                 engine="event", record=True)
        rec = result.memory.recorder
        for array in ("a0", "a1"):
            prev_seq = 0
            r = 1
            while True:
                evt = rec.first_setter(array, r)
                if evt is None:
                    break
                assert evt.seq > prev_seq
                prev_seq = evt.seq
                r += 1


class TestScheduleShapes:
    def test_staggered_start_lets_leader_decide_minimum_ops(self):
        """With a big stagger the first process runs alone: 8 ops."""
        result = run_noisy_trial(4, Uniform(0.0, 2.0), seed=3,
                                 delta=StaggeredStart(1000.0),
                                 engine="event")
        assert result.first_decision_ops == 8
        assert result.agreed

    def test_leader_picker_is_best_case(self):
        result = run_step_trial(
            5, LeaderPicker(lambda pid: 0), seed=4)
        # LeaderPicker with constant score degenerates to pid 0 running
        # solo first: minimum 8 ops to the first decision.
        assert result.decisions[0].ops == 8

    def test_laggard_picker_still_safe(self):
        result = run_step_trial(4, LaggardPicker(lambda pid: 0), seed=5,
                                max_total_ops=400, check=True)
        # Laggard with constant score is round-robin lockstep: either the
        # budget exhausts (split inputs) or everyone agreed.
        assert result.budget_exhausted or result.agreed

    @pytest.mark.parametrize("seed", range(6))
    def test_random_schedules_agree(self, seed):
        result = run_step_trial(6, RandomPicker(make_rng(seed)), seed=seed)
        assert result.all_decided and result.agreed


class TestShiftedExponentialDelayedPoisson:
    def test_delayed_poisson_process_terminates(self):
        result = run_noisy_trial(32, ShiftedExponential(0.5, 0.5), seed=6)
        assert result.all_decided and result.agreed


class TestNormalInversionPhenomenon:
    """The paper's intriguing observation: with normal(1, 0.04) noise the
    mean first-termination round *decreases* as n grows large."""

    @pytest.mark.slow
    def test_round_decreases_from_small_to_large_n(self):
        from repro.sim.metrics import summarize
        from repro.sim.runner import run_noisy_trials
        dist = TruncatedNormal(1.0, 0.2, 0.0, 2.0)
        small = summarize(run_noisy_trials(
            40, 8, dist, seed=7, stop_after_first_decision=True))
        large = summarize(run_noisy_trials(
            40, 2048, dist, seed=8, stop_after_first_decision=True))
        assert large.mean_first_round < small.mean_first_round
