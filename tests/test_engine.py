"""Tests for the reference simulation engines."""

import pytest

from repro._rng import make_rng
from repro.core.machine import LeanConsensus
from repro.errors import SimulationError
from repro.failures import KillLeaderAdversary, ScriptedFailures
from repro.noise import Constant, Exponential
from repro.sched.noisy import NoisyScheduler
from repro.sched.pickers import RandomPicker, RoundRobinPicker, ScriptedPicker
from repro.sim.engine import NoisyEngine, StepEngine
from repro.sim.runner import make_machines, make_memory_for


def lean_machines(inputs):
    return make_machines("lean", dict(enumerate(inputs)))


class TestNoisyEngine:
    def test_single_process_decides_in_8_ops(self):
        machines = lean_machines([1])
        memory = make_memory_for(machines)
        sched = NoisyScheduler(Exponential(1.0), make_rng(1))
        result = NoisyEngine(machines, memory, sched).run()
        assert result.decisions[0].value == 1
        assert result.decisions[0].ops == 8
        assert result.total_ops == 8
        assert result.sim_time > 0

    def test_all_processes_decide_and_agree(self):
        machines = lean_machines([0, 1, 0, 1, 0, 1])
        memory = make_memory_for(machines)
        sched = NoisyScheduler(Exponential(1.0), make_rng(2))
        result = NoisyEngine(machines, memory, sched).run()
        assert result.all_decided
        assert result.agreed
        assert len(result.decisions) == 6

    def test_stop_after_first_decision(self):
        machines = lean_machines([0, 1, 0, 1])
        memory = make_memory_for(machines)
        sched = NoisyScheduler(Exponential(1.0), make_rng(3))
        result = NoisyEngine(machines, memory, sched,
                             stop_after_first_decision=True).run()
        assert result.first_decision_round is not None
        assert len(result.decisions) == 1

    def test_lockstep_constant_noise_exhausts_budget(self):
        """The degenerate distribution lets the adversary run a lockstep:
        lean-consensus never terminates — the model's noise requirement is
        load-bearing."""
        machines = lean_machines([0, 1])
        memory = make_memory_for(machines)
        sched = NoisyScheduler(Constant(1.0), make_rng(4),
                               allow_degenerate=True, tie_dither=0.0)
        # Identical constant times would be simultaneous; stagger starts
        # slightly so the interleaving alternates deterministically.
        from repro.sched.delta import StaggeredStart
        sched.delta = StaggeredStart(0.25)
        result = NoisyEngine(machines, memory, sched,
                             max_total_ops=400).run()
        assert result.budget_exhausted
        assert not result.decisions

    def test_scripted_failure_halts_process(self):
        machines = lean_machines([0, 1])
        memory = make_memory_for(machines)
        sched = NoisyScheduler(Exponential(1.0), make_rng(5))
        engine = NoisyEngine(machines, memory, sched,
                             failures=ScriptedFailures({0: 1}))
        result = engine.run()
        assert 0 in result.halted
        assert 0 not in result.decisions
        assert result.decisions[1].value == 1

    def test_crash_adversary_consumes_budget(self):
        machines = lean_machines([0, 1, 0, 1])
        memory = make_memory_for(machines)
        sched = NoisyScheduler(Exponential(1.0), make_rng(6))
        adversary = KillLeaderAdversary(budget=2, lead=1)
        result = NoisyEngine(machines, memory, sched,
                             crash_adversary=adversary).run()
        assert len(result.halted) == len(adversary.crashed)
        # Survivors still reach consensus.
        assert result.agreed
        assert len(result.decisions) + len(result.halted) == 4

    def test_duplicate_pids_rejected(self):
        machines = [LeanConsensus(0, 0), LeanConsensus(0, 1)]
        memory = make_memory_for(machines)
        sched = NoisyScheduler(Exponential(1.0), make_rng(7))
        with pytest.raises(SimulationError):
            NoisyEngine(machines, memory, sched)

    def test_empty_machines_rejected(self):
        with pytest.raises(SimulationError):
            NoisyEngine([], make_memory_for(lean_machines([0])),
                        NoisyScheduler(Exponential(1.0), make_rng(8)))

    def test_deterministic_given_seed(self):
        def once(seed):
            machines = lean_machines([0, 1, 0, 1])
            memory = make_memory_for(machines)
            sched = NoisyScheduler(Exponential(1.0), make_rng(seed))
            return NoisyEngine(machines, memory, sched).run()

        a, b = once(99), once(99)
        assert {p: d.value for p, d in a.decisions.items()} == \
            {p: d.value for p, d in b.decisions.items()}
        assert a.total_ops == b.total_ops
        assert a.sim_time == b.sim_time


class TestStepEngine:
    def test_random_picker_terminates_and_agrees(self):
        machines = lean_machines([0, 1, 0, 1, 1])
        memory = make_memory_for(machines)
        result = StepEngine(machines, memory, RandomPicker(make_rng(1))).run()
        assert result.all_decided
        assert result.agreed

    def test_round_robin_lockstep_exhausts_budget(self):
        machines = lean_machines([0, 1])
        memory = make_memory_for(machines)
        result = StepEngine(machines, memory, RoundRobinPicker(),
                            max_total_ops=200).run()
        assert result.budget_exhausted
        assert not result.decisions

    def test_round_robin_unanimous_decides_in_8_rounds_of_steps(self):
        """Lockstep is harmless when inputs agree (Lemma 3)."""
        machines = lean_machines([1, 1, 1])
        memory = make_memory_for(machines)
        result = StepEngine(machines, memory, RoundRobinPicker()).run()
        assert result.all_decided
        assert result.decided_values == {1}
        assert all(d.ops == 8 for d in result.decisions.values())

    def test_scripted_schedule_reproducible(self):
        script = [0, 0, 1, 0, 1, 1, 0, 1] * 30
        def once():
            machines = lean_machines([0, 1])
            memory = make_memory_for(machines)
            return StepEngine(machines, memory,
                              ScriptedPicker(script),
                              max_total_ops=200).run()
        a, b = once(), once()
        assert {p: d.value for p, d in a.decisions.items()} == \
            {p: d.value for p, d in b.decisions.items()}

    def test_sequential_schedule_decides_fast_then_drags_laggard(self):
        machines = lean_machines([1, 0])
        memory = make_memory_for(machines)
        picker = ScriptedPicker([0] * 8, exhausted="first")
        result = StepEngine(machines, memory, picker).run()
        assert result.decisions[0].ops == 8
        assert result.decisions[1].value == 1
