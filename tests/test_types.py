"""Unit tests for the shared primitive types."""

import pytest

from repro.types import (
    ARRAY_FOR_BIT,
    Decision,
    OpKind,
    Operation,
    OpResult,
    array_for,
    read,
    write,
)


class TestOperation:
    def test_read_constructor(self):
        op = read("a0", 3)
        assert op.kind is OpKind.READ
        assert op.array == "a0"
        assert op.index == 3
        assert op.value is None

    def test_write_constructor(self):
        op = write("a1", 2, 1)
        assert op.kind is OpKind.WRITE
        assert op.value == 1

    def test_is_read_is_write(self):
        assert read("a0", 0).is_read
        assert not read("a0", 0).is_write
        assert write("a0", 0, 1).is_write
        assert not write("a0", 0, 1).is_read

    def test_write_requires_value(self):
        with pytest.raises(ValueError):
            Operation(OpKind.WRITE, "a0", 1)

    def test_read_rejects_value(self):
        with pytest.raises(ValueError):
            Operation(OpKind.READ, "a0", 1, value=1)

    def test_operations_are_hashable_and_comparable(self):
        assert read("a0", 1) == read("a0", 1)
        assert read("a0", 1) != read("a0", 2)
        assert len({read("a0", 1), read("a0", 1), write("a0", 1, 1)}) == 2

    def test_str_forms(self):
        assert "read a0[1]" in str(read("a0", 1))
        assert "write a1[2] := 1" in str(write("a1", 2, 1))


class TestOpResult:
    def test_carries_op_and_value(self):
        op = read("a0", 1)
        res = OpResult(op, 0)
        assert res.op is op
        assert res.value == 0

    def test_equality(self):
        assert OpResult(read("a0", 1), 0) == OpResult(read("a0", 1), 0)


class TestDecision:
    def test_fields(self):
        d = Decision(1, 3, 12)
        assert (d.value, d.round, d.ops) == (1, 3, 12)

    @pytest.mark.parametrize("bad", [-1, 2, 7])
    def test_rejects_non_bit(self, bad):
        with pytest.raises(ValueError):
            Decision(bad, 1, 4)

    def test_zero_round_allowed_for_roundless_protocols(self):
        assert Decision(0, 0, 1).round == 0


class TestArrayFor:
    def test_mapping(self):
        assert array_for(0) == "a0"
        assert array_for(1) == "a1"
        assert ARRAY_FOR_BIT == ("a0", "a1")

    @pytest.mark.parametrize("bad", [-1, 2, "0"])
    def test_rejects_non_bit(self, bad):
        with pytest.raises(ValueError):
            array_for(bad)


class TestOpKind:
    def test_str(self):
        assert str(OpKind.READ) == "read"
        assert str(OpKind.WRITE) == "write"
