"""Tests for the protocol variants (ablations and negative controls)."""

import pytest

from repro.errors import ProtocolError
from repro.core.machine import LeanConsensus
from repro.core.variants import (
    ConservativeLean,
    EagerDecideLean,
    LagLean,
    OptimizedLean,
)
from repro.memory import make_racing_arrays
from repro.types import read, write


def step(machine, memory):
    res = memory.execute(machine.peek(), pid=machine.pid)
    machine.apply(res)
    return res


def run_solo(machine, memory, max_ops=200):
    while not machine.done and machine.ops < max_ops:
        step(machine, memory)
    return machine


class TestLagLean:
    def test_lag1_behaves_like_paper_protocol(self):
        a = run_solo(LeanConsensus(0, 1), make_racing_arrays())
        b = run_solo(LagLean(0, 1, lag=1), make_racing_arrays())
        assert (a.decision.value, a.decision.round, a.decision.ops) == \
            (b.decision.value, b.decision.round, b.decision.ops)

    def test_negative_lag_rejected(self):
        with pytest.raises(ProtocolError):
            LagLean(0, 0, lag=-1)

    def test_final_read_targets_lagged_round(self):
        m = LagLean(0, 0, lag=2)
        mem = make_racing_arrays()
        for _ in range(3):
            step(m, mem)
        assert m.peek() == read("a1", 0)  # round 1, lag 2, clamped to 0

    def test_snapshot_roundtrip_preserves_lag(self):
        m = LagLean(0, 0, lag=2)
        snap = m.snapshot()
        m2 = LagLean(0, 0, lag=1)
        m2.restore(snap)
        assert m2.lag == 2


class TestConservative:
    def test_solo_decides_in_round_3(self):
        """lag=2 forbids deciding before round 3 (a[0] prefix blocks)."""
        m = run_solo(ConservativeLean(0, 1), make_racing_arrays())
        assert m.decision.round == 3
        assert m.decision.ops == 12

    def test_sequential_two_processes_agree(self):
        mem = make_racing_arrays()
        fast = run_solo(ConservativeLean(0, 0), mem)
        slow = run_solo(ConservativeLean(1, 1), mem)
        assert fast.decision.value == slow.decision.value == 0


class TestEagerUnsafe:
    def test_solo_decides_fast(self):
        """Eager decides at round 1 alone — that speed is exactly the bug."""
        m = run_solo(EagerDecideLean(0, 1), make_racing_arrays())
        assert m.decision.round == 1
        assert m.decision.ops == 4

    def test_known_disagreement_interleaving(self):
        """A concrete schedule where eager deciders disagree.

        p0 and p1 read both arrays (seeing zeros), then p0 writes and
        decides on its own value; p1 writes and, seeing p0's mark, runs on
        to decide... differently a couple of rounds later.
        """
        mem = make_racing_arrays()
        p0 = EagerDecideLean(0, 0)
        p1 = EagerDecideLean(1, 1)
        # Interleave the round-1 reads of both processes first.
        step(p0, mem)  # p0: read a0[1] = 0
        step(p0, mem)  # p0: read a1[1] = 0
        step(p1, mem)  # p1: read a0[1] = 0
        step(p1, mem)  # p1: read a1[1] = 0
        step(p0, mem)  # p0: write a0[1]
        step(p0, mem)  # p0: read a1[1] = 0 -> DECIDES 0
        assert p0.decision is not None and p0.decision.value == 0
        run_solo(p1, mem)
        assert p1.decision is not None
        assert p1.decision.value != p0.decision.value, \
            "eager variant must disagree on this schedule (negative control)"


class TestOptimized:
    def test_solo_matches_canonical_decision(self):
        a = run_solo(LeanConsensus(0, 1), make_racing_arrays())
        b = run_solo(OptimizedLean(0, 1), make_racing_arrays())
        assert a.decision.value == b.decision.value
        assert a.decision.round == b.decision.round

    def test_elides_write_when_bit_already_set(self):
        mem = make_racing_arrays()
        mem.execute(write("a0", 1, 1))
        m = OptimizedLean(0, 0)
        step(m, mem)  # read a0[1] = 1
        step(m, mem)  # read a1[1] = 0 -> own bit set, skip write
        assert m.elided_writes == 1
        assert m.peek() == read("a1", 0)  # straight to the final read

    def test_elides_final_read_when_rival_set(self):
        mem = make_racing_arrays()
        mem.execute(write("a1", 1, 1))
        mem.execute(write("a1", 2, 1))
        m = OptimizedLean(0, 0)
        # Round 1: reads (0, 1) -> adopts 1, own bit (a1) is set, rival
        # (a0) is not; skip the write, final read of a0[0] = 1 -> round 2.
        step(m, mem)
        step(m, mem)
        assert m.preference == 1
        assert m.elided_writes == 1

    def test_elides_both_on_double_mark(self):
        mem = make_racing_arrays()
        mem.execute(write("a0", 1, 1))
        mem.execute(write("a1", 1, 1))
        m = OptimizedLean(0, 0)
        step(m, mem)
        step(m, mem)  # both set: skip write AND final read, go to round 2
        assert m.round == 2
        assert m.elided_writes == 1
        assert m.elided_reads == 1
        assert m.ops == 2

    def test_sequential_two_processes_agree(self):
        mem = make_racing_arrays()
        fast = run_solo(OptimizedLean(0, 1), mem)
        slow = run_solo(OptimizedLean(1, 0), mem)
        assert fast.decision.value == slow.decision.value == 1

    def test_laggard_uses_fewer_ops_than_canonical(self):
        """The elisions fire for processes that are behind — the paper's
        point: the optimization helps exactly the wrong processes."""
        mem = make_racing_arrays()
        run_solo(OptimizedLean(0, 1), mem)           # build a lead
        laggard = run_solo(OptimizedLean(1, 0), mem)  # chases it
        mem2 = make_racing_arrays()
        run_solo(LeanConsensus(0, 1), mem2)
        laggard_canonical = run_solo(LeanConsensus(1, 0), mem2)
        assert laggard.ops < laggard_canonical.ops

    def test_snapshot_roundtrip(self):
        mem = make_racing_arrays()
        mem.execute(write("a0", 1, 1))
        m = OptimizedLean(0, 0)
        step(m, mem)
        snap = m.snapshot()
        step(m, mem)
        m.restore(snap)
        assert m.ops == 1
        assert m.elided_writes == 0
