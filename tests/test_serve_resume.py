"""Crash/resume correctness: SIGKILLed workers and coordinators.

The satellite acceptance tests: a figure1-shaped sweep submitted as a
job must survive (a) a worker SIGKILL and (b) a coordinator SIGKILL,
resume from the content-addressed store, and produce frames
*bit-identical* to an uninterrupted in-process ``run_sweep``.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.api import (
    NoiseSpec,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    run_sweep,
)
from repro.serve import (
    InlineDispatcher,
    JobRunner,
    JobState,
    ResultStore,
    SweepJob,
    effective_state,
)
from repro.serve.executor import run_chunk_task

EXPO = NoiseSpec.of("exponential", mean=1.0)
UNIF = NoiseSpec.of("uniform", low=0.0, high=2.0)


def figure1_shaped_sweep(trials=60):
    """Two distributions x two ns — the figure1 grid shape, test scale."""
    return SweepSpec(
        base=TrialSpec(n=1, model=NoisyModelSpec(noise=EXPO),
                       stop_after_first_decision=True),
        axes=(SweepAxis("model.noise", (EXPO, UNIF), name="distribution",
                        labels=("expo", "unif")),
              SweepAxis("n", (2, 8))),
        trials=trials)


def assert_bit_identical(result, ref):
    for cell, frame in result:
        assert frame == ref.frames[cell.index], \
            f"frames diverged in cell {cell.labels}"


class TestWorkerSigkill:
    def test_worker_death_requeues_and_result_is_identical(self, tmp_path,
                                                           monkeypatch):
        sweep = figure1_shaped_sweep(trials=60)
        ref = run_sweep(sweep, seed=777)
        job = SweepJob.from_sweep(sweep, seed=777, chunk_size=16)

        marker = str(tmp_path / "killed-once")
        monkeypatch.setenv("REPRO_SERVE_TEST_KILL_ONCE", marker)
        store = ResultStore(str(tmp_path / "store"))
        result = JobRunner(store, workers=2).run(job)

        assert os.path.exists(marker), "the chaos seam never fired"
        assert result.state.state == "done"
        assert any(e["type"] == "worker_died"
                   for e in result.state.events), \
            "worker death was not detected/requeued"
        assert_bit_identical(result, ref)

    def test_pool_gives_up_after_retry_cap(self, tmp_path, monkeypatch):
        """A chunk that kills its worker every time fails the job."""
        from repro.serve import JobFailedError

        sweep = figure1_shaped_sweep(trials=8)
        job = SweepJob.from_sweep(sweep, seed=5, chunk_size=8)
        # point the marker at a path that can never be created, so the
        # seam fires on every attempt
        monkeypatch.setenv("REPRO_SERVE_TEST_KILL_ONCE",
                           str(tmp_path / "no" / "such" / "dir" / "marker"))
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(JobFailedError, match="lost its worker"):
            JobRunner(store, workers=2).run(job)
        assert JobState.load(store, job.job_id).state == "failed"


COORDINATOR_SCRIPT = textwrap.dedent("""
    import json, sys
    from repro.api import (NoiseSpec, NoisyModelSpec, SweepAxis, SweepSpec,
                           TrialSpec)
    from repro.serve import JobRunner, ResultStore, SweepJob

    store_dir, job_path = sys.argv[1], sys.argv[2]
    job = SweepJob.from_dict(json.load(open(job_path)))
    print("ready", flush=True)
    JobRunner(ResultStore(store_dir), workers=1).run(job)
    print("done", flush=True)
""")


class TestCoordinatorSigkill:
    def test_sigkill_coordinator_then_resume_is_identical(self, tmp_path):
        sweep = figure1_shaped_sweep(trials=60)
        ref = run_sweep(sweep, seed=888)
        job = SweepJob.from_sweep(sweep, seed=888, chunk_size=10)
        store = ResultStore(str(tmp_path / "store"))

        script = tmp_path / "coordinator.py"
        script.write_text(COORDINATOR_SCRIPT)
        job_path = tmp_path / "job.json"
        job_path.write_text(json.dumps(job.to_dict()))

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"),) if p]
            + [os.path.join(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))), "src")])
        env["REPRO_SERVE_TEST_CHUNK_DELAY"] = "0.15"  # ~24 chunks -> ~3.6s
        proc = subprocess.Popen(
            [sys.executable, str(script), store.root, str(job_path)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            # wait until the coordinator has real progress, then SIGKILL
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                state = JobState.load(store, job.job_id)
                if state.chunks_done >= 2:
                    break
                if proc.poll() is not None:
                    out, err = proc.communicate()
                    pytest.fail(f"coordinator exited early: {err.decode()}")
                time.sleep(0.05)
            else:
                pytest.fail("coordinator made no progress before deadline")
            proc.kill()
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()

        # the job reads as interrupted, with partial progress in the store
        state = JobState.load(store, job.job_id)
        assert state.state == "running"  # it never got to write "done"
        assert effective_state(state) == "partial"
        stored = sum(1 for t in job.chunks() if store.has(t.key))
        assert 0 < stored < len(job.chunks()), \
            f"want a genuine partial, got {stored}/{len(job.chunks())}"

        # resume in-process: adopted chunks are NOT recomputed
        computed = []

        def counting(payload):
            computed.append(payload["key"])
            return run_chunk_task(payload)

        runner = JobRunner(store,
                           dispatcher=InlineDispatcher(chunk_fn=counting))
        result = runner.run(job)
        assert result.state.state == "done"
        assert len(computed) == len(job.chunks()) - stored
        assert any(e["type"] == "resume" for e in result.state.events)
        assert_bit_identical(result, ref)

    def test_resume_after_inline_interrupt(self, tmp_path):
        """KeyboardInterrupt mid-run leaves a resumable partial job."""
        sweep = figure1_shaped_sweep(trials=40)
        ref = run_sweep(sweep, seed=999)
        job = SweepJob.from_sweep(sweep, seed=999, chunk_size=10)
        store = ResultStore(str(tmp_path))

        count = {"n": 0}

        def interrupt_after_three(payload):
            if count["n"] == 3:
                raise KeyboardInterrupt
            count["n"] += 1
            return run_chunk_task(payload)

        runner = JobRunner(store, dispatcher=InlineDispatcher(
            chunk_fn=interrupt_after_three))
        with pytest.raises(KeyboardInterrupt):
            runner.run(job)
        state = JobState.load(store, job.job_id)
        assert effective_state(state) == "partial"

        result = JobRunner(store, workers=1).run(job)
        assert result.state.state == "done"
        assert_bit_identical(result, ref)
