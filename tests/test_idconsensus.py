"""Tests for the footnote-2 id-consensus tree construction."""

import pytest

from repro._rng import make_rng
from repro.core.idconsensus import IdConsensus, id_bits
from repro.errors import ProtocolError
from repro.noise import Exponential, Uniform
from repro.sched.pickers import RandomPicker, ScriptedPicker
from repro.sim.engine import StepEngine
from repro.sim.runner import make_memory_for, run_noisy_trial


def id_factory(bits, n):
    return lambda pid, bit: IdConsensus(pid, pid, bits, n)


def run_noisy_ids(n, seed, noise=None):
    noise = noise if noise is not None else Exponential(1.0)
    bits = id_bits(n)
    trial = run_noisy_trial(n, noise, seed=seed,
                            protocol=id_factory(bits, n),
                            engine="event", check=False)
    return [m.winner for m in trial.machines]


class TestIdBits:
    @pytest.mark.parametrize("n, bits", [(1, 1), (2, 1), (3, 2), (4, 2),
                                         (5, 3), (8, 3), (9, 4), (16, 4)])
    def test_widths(self, n, bits):
        assert id_bits(n) == bits

    def test_invalid(self):
        with pytest.raises(ProtocolError):
            id_bits(0)


class TestConstruction:
    def test_candidate_must_fit(self):
        with pytest.raises(ProtocolError):
            IdConsensus(0, candidate=4, bits=2, n_slots=5)

    def test_pid_must_have_slot(self):
        with pytest.raises(ProtocolError):
            IdConsensus(9, candidate=0, bits=2, n_slots=4)

    def test_required_arrays_tree_shape(self):
        names = [n for n, _ in IdConsensus.required_arrays(bits=2)]
        assert "idreg" in names
        assert "id0__a0" in names            # root instance
        assert "id1_0_a0" in names           # left child
        assert "id1_1_a1" in names           # right child
        # 1 registry + 2 arrays per node, 3 nodes for bits=2.
        assert len(names) == 1 + 2 * 3


class TestSoloExecution:
    def test_single_process_elects_itself(self):
        machine = IdConsensus(0, candidate=0, bits=1, n_slots=1)
        memory = make_memory_for([machine])
        while not machine.done:
            res = memory.execute(machine.peek(), pid=0)
            machine.apply(res)
        assert machine.winner == 0
        assert machine.candidate_alive

    def test_announce_happens_first(self):
        machine = IdConsensus(2, candidate=2, bits=2, n_slots=3)
        op = machine.peek()
        assert op.array == "idreg"
        assert op.index == 2
        assert op.value == 3  # candidate + 1 (0 marks empty)

    def test_ops_scale_with_bits(self):
        def solo_ops(bits):
            machine = IdConsensus(0, candidate=0, bits=bits, n_slots=1)
            memory = make_memory_for([machine])
            while not machine.done:
                machine.apply(memory.execute(machine.peek(), pid=0))
            return machine.ops

        # 1 announce + 8 ops per level (solo lean decides in 8).
        assert solo_ops(1) == 1 + 8
        assert solo_ops(3) == 1 + 3 * 8


class TestMultiProcess:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_agreement_and_id_validity(self, n, seed):
        winners = run_noisy_ids(n, seed)
        assert len(set(winners)) == 1
        (winner,) = set(winners)
        assert winner in range(n)  # id validity: a real participant

    def test_under_random_step_schedules(self):
        n = 4
        bits = id_bits(n)
        machines = [IdConsensus(pid, pid, bits, n) for pid in range(n)]
        memory = make_memory_for(machines)
        StepEngine(machines, memory, RandomPicker(make_rng(5))).run()
        winners = {m.winner for m in machines}
        assert len(winners) == 1 and winners <= set(range(n))

    def test_sequential_schedule_elects_first_runner(self):
        """A process that runs alone to completion elects itself."""
        n = 3
        bits = id_bits(n)
        machines = [IdConsensus(pid, pid, bits, n) for pid in range(n)]
        memory = make_memory_for(machines)
        picker = ScriptedPicker([0] * 60, exhausted="first")
        StepEngine(machines, memory, picker).run()
        assert machines[0].winner == 0
        assert all(m.winner == 0 for m in machines)

    def test_non_contiguous_candidates(self):
        """Candidates need not equal pids; winner is one of them."""
        n = 3
        candidates = {0: 5, 1: 2, 2: 7}
        factory = lambda pid, bit: IdConsensus(pid, candidates[pid], 3, n)
        trial = run_noisy_trial(n, Uniform(0.0, 2.0), seed=9,
                                protocol=factory, engine="event",
                                check=False)
        winners = {m.winner for m in trial.machines}
        assert len(winners) == 1
        assert winners <= set(candidates.values())


class TestSnapshots:
    def test_roundtrip_mid_run(self):
        machine = IdConsensus(0, candidate=1, bits=2, n_slots=2)
        memory = make_memory_for([machine])
        for _ in range(5):
            machine.apply(memory.execute(machine.peek(), pid=0))
        snap = machine.snapshot()
        expected = machine.peek()
        machine.apply(memory.execute(machine.peek(), pid=0))
        machine.restore(snap)
        assert machine.peek() == expected
