"""Tests for the adversary delay schedules (Delta_ij of Section 3.1)."""

import numpy as np
import pytest

from repro._rng import make_rng
from repro.errors import ConfigurationError
from repro.sched.delta import (
    ConstantDelta,
    DitheredStart,
    RandomDelta,
    StaggeredStart,
    ZeroDelta,
)


class TestZeroDelta:
    def test_everything_zero(self):
        d = ZeroDelta()
        assert d.start(5) == 0.0
        assert d.delay(5, 3) == 0.0
        assert (d.delays_array(0, 10) == 0).all()
        assert d.bound == 0.0


class TestConstantDelta:
    def test_constant_everywhere(self):
        d = ConstantDelta(0.5, start_time=2.0)
        assert d.start(0) == 2.0
        assert d.delay(3, 7) == 0.5
        assert (d.delays_array(1, 4) == 0.5).all()
        assert d.bound == 0.5

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantDelta(-0.1)


class TestStaggeredStart:
    def test_starts_scale_with_pid(self):
        d = StaggeredStart(1.5)
        assert d.start(0) == 0.0
        assert d.start(4) == 6.0
        assert d.delay(4, 1) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            StaggeredStart(-1.0)


class TestDitheredStart:
    def test_starts_within_epsilon(self):
        d = DitheredStart(16, make_rng(1), epsilon=1e-8)
        starts = [d.start(i) for i in range(16)]
        assert all(0 < s < 1e-8 for s in starts)

    def test_starts_distinct(self):
        d = DitheredStart(64, make_rng(2))
        starts = [d.start(i) for i in range(64)]
        assert len(set(starts)) == 64

    def test_reproducible(self):
        a = DitheredStart(8, make_rng(3))
        b = DitheredStart(8, make_rng(3))
        assert a.start(5) == b.start(5)

    def test_base_offset(self):
        d = DitheredStart(4, make_rng(4), base=10.0)
        assert d.start(0) >= 10.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DitheredStart(0, make_rng(1))
        with pytest.raises(ConfigurationError):
            DitheredStart(4, make_rng(1), epsilon=0.0)


class TestRandomDelta:
    def test_within_bound(self):
        d = RandomDelta(0.7, make_rng(5), n=4, max_ops=32)
        arr = d.delays_array(2, 32)
        assert (arr >= 0).all() and (arr <= 0.7).all()

    def test_oblivious_and_reproducible(self):
        a = RandomDelta(1.0, make_rng(6), n=2, max_ops=8)
        b = RandomDelta(1.0, make_rng(6), n=2, max_ops=8)
        assert a.delay(1, 3) == b.delay(1, 3)

    def test_beyond_horizon_repeats_last(self):
        d = RandomDelta(1.0, make_rng(7), n=1, max_ops=4)
        assert d.delay(0, 100) == d.delay(0, 4)

    def test_delays_array_extends(self):
        d = RandomDelta(1.0, make_rng(8), n=1, max_ops=4)
        arr = d.delays_array(0, 6)
        assert arr.shape == (6,)
        assert arr[4] == arr[3] and arr[5] == arr[3]

    def test_custom_starts(self):
        d = RandomDelta(1.0, make_rng(9), n=2, max_ops=4, starts=[0.0, 3.0])
        assert d.start(1) == 3.0

    def test_negative_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomDelta(-1.0, make_rng(1), n=1, max_ops=1)
