"""Tests for the memory-contention model (Section 10)."""

import pytest

from repro._rng import make_rng
from repro.errors import ConfigurationError
from repro.memory.contention import ContentionMeter, ContentiousScheduler
from repro.noise import Exponential
from repro.sched.noisy import NoisyScheduler
from repro.sim.engine import NoisyEngine
from repro.sim.runner import half_and_half, make_machines, make_memory_for
from repro.types import OpKind, read


class TestMeter:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ContentionMeter(penalty=-0.1)
        with pytest.raises(ConfigurationError):
            ContentionMeter(window=0.0)

    def test_first_access_free(self):
        meter = ContentionMeter(penalty=0.5)
        assert meter.charge(read("a0", 1), pid=0, now=0.0) == 0.0

    def test_rival_access_charged(self):
        meter = ContentionMeter(penalty=0.5, window=10.0)
        meter.charge(read("a0", 1), pid=0, now=0.0)
        assert meter.charge(read("a0", 1), pid=1, now=1.0) == 0.5

    def test_own_accesses_not_charged(self):
        meter = ContentionMeter(penalty=0.5, window=10.0)
        meter.charge(read("a0", 1), pid=0, now=0.0)
        assert meter.charge(read("a0", 1), pid=0, now=1.0) == 0.0

    def test_window_expires(self):
        meter = ContentionMeter(penalty=0.5, window=2.0)
        meter.charge(read("a0", 1), pid=0, now=0.0)
        assert meter.charge(read("a0", 1), pid=1, now=5.0) == 0.0

    def test_different_locations_independent(self):
        meter = ContentionMeter(penalty=0.5, window=10.0)
        meter.charge(read("a0", 1), pid=0, now=0.0)
        assert meter.charge(read("a0", 2), pid=1, now=0.5) == 0.0
        assert meter.charge(read("a1", 1), pid=1, now=0.6) == 0.0

    def test_penalty_scales_with_crowd(self):
        meter = ContentionMeter(penalty=0.5, window=10.0)
        for pid in range(4):
            meter.charge(read("a0", 1), pid=pid, now=float(pid))
        assert meter.charge(read("a0", 1), pid=9, now=4.0) == 4 * 0.5

    def test_totals_and_hot_locations(self):
        meter = ContentionMeter(penalty=1.0, window=10.0)
        meter.charge(read("a0", 1), pid=0, now=0.0)
        meter.charge(read("a0", 1), pid=1, now=0.5)
        assert meter.accesses == 2
        assert meter.total_penalty == 1.0
        assert meter.hot_locations(1) == [("a0", 1, 2)]


class TestContentiousScheduler:
    def make(self, penalty=0.5):
        meter = ContentionMeter(penalty=penalty, window=10.0)
        base = NoisyScheduler(Exponential(1.0), make_rng(1))
        return ContentiousScheduler(base, meter), meter

    def test_stall_applies_to_next_op_once(self):
        sched, meter = self.make(penalty=5.0)
        meter.charge(read("a0", 1), pid=1, now=0.0)  # crowd the location
        sched.observe(read("a0", 1), pid=0, now=0.1)  # p0 pays
        base = NoisyScheduler(Exponential(1.0), make_rng(1))
        unstalled = base.next_time(0, 2, OpKind.READ, 0.1)
        stalled = sched.next_time(0, 2, OpKind.READ, 0.1)
        assert stalled == pytest.approx(unstalled + 5.0)
        # The stall is consumed; the following op is back to baseline.
        again = sched.next_time(0, 3, OpKind.READ, stalled)
        base_again = base.next_time(0, 3, OpKind.READ, stalled)
        assert again == pytest.approx(base_again)

    def test_start_time_passthrough(self):
        sched, _ = self.make()
        assert sched.start_time(0) == 0.0


class TestEndToEnd:
    def run_with_penalty(self, penalty, seed=7, n=12):
        machines = make_machines("lean", half_and_half(n))
        memory = make_memory_for(machines)
        meter = ContentionMeter(penalty=penalty, window=2.0)
        sched = ContentiousScheduler(
            NoisyScheduler(Exponential(1.0), make_rng(seed)), meter)
        result = NoisyEngine(machines, memory, sched).run()
        return result, meter

    def test_safe_under_contention(self):
        result, meter = self.run_with_penalty(0.5)
        assert result.all_decided and result.agreed
        assert meter.total_penalty > 0

    def test_zero_penalty_charges_nothing(self):
        result, meter = self.run_with_penalty(0.0)
        assert result.all_decided
        assert meter.total_penalty == 0.0

    def test_hot_locations_are_early_rounds(self):
        """The paper's intuition: congestion concentrates on early-round
        registers (everyone passes them), while late rounds stay clear."""
        _, meter = self.run_with_penalty(0.2, n=16)
        hot = meter.hot_locations(3)
        assert hot, "some location must be contended"
        hottest_indices = [index for _, index, _ in hot]
        assert min(hottest_indices) <= 2
