"""Smoke tests for the Section-10 extension experiments."""

import pytest

from repro.experiments import extensions, message_passing


class TestMessagePassing:
    def test_run_and_format(self):
        result = message_passing.run(ns=(2, 3), trials=4, seed=1)
        assert len(result.rows) == 2
        assert all(r.agreement_rate == 1.0 for r in result.rows)
        assert all(r.agreement_rate == 1.0 for r in result.crash_rows)
        text = message_passing.format_result(result)
        assert "EXP-MP" in text and "crashed" in text

    def test_crash_rows_use_crashed_servers(self):
        result = message_passing.run(ns=(2,), trials=3, seed=2,
                                     n_servers=5, crash_servers=2)
        assert result.crash_servers == 2
        # Fewer live servers means fewer delivered messages per decision.
        assert result.crash_rows[0].mean_messages < \
            result.rows[0].mean_messages * 1.5


class TestStatistical:
    def test_rows_cover_styles(self):
        rows = extensions.run_statistical(n=8, trials=4,
                                          burst_everies=(4,), seed=1)
        assert {r.style for r in rows} == {"bursts", "frontrunner"}
        assert all(r.agreement_rate == 1.0 for r in rows)


class TestContention:
    def test_penalty_sweep(self):
        rows = extensions.run_contention(n=8, trials=4,
                                         penalties=(0.0, 0.5), seed=1)
        assert [r.penalty for r in rows] == [0.0, 0.5]
        assert rows[0].mean_total_penalty == 0.0
        assert rows[1].mean_total_penalty > 0.0
        assert all(r.agreement_rate == 1.0 for r in rows)


class TestIdConsensusExperiment:
    def test_rows(self):
        rows = extensions.run_id_consensus(ns=(2, 4), trials=4, seed=1)
        assert [r.n for r in rows] == [2, 4]
        assert all(r.winner_always_valid for r in rows)
        assert all(r.agreement_rate == 1.0 for r in rows)
        assert rows[1].mean_ops_per_proc > rows[0].mean_ops_per_proc


class TestCombined:
    def test_run_and_format(self):
        result = extensions.run(n=8, trials=4, seed=3)
        text = extensions.format_result(result)
        assert "EXP-STAT" in text
        assert "EXP-CONT" in text
        assert "EXP-ID" in text

    def test_main(self, capsys):
        extensions.main(["--trials", "3", "--seed", "1"])
        assert "EXP-STAT" in capsys.readouterr().out

    def test_mp_main(self, capsys):
        message_passing.main(["--ns", "2", "--trials", "2", "--seed", "1"])
        assert "EXP-MP" in capsys.readouterr().out
