"""The trial-parallel lockstep kernel: bit-identity on every axis.

The kernel's acceptance property is that it is *invisible*: for every
``FAST_VARIANTS`` protocol, crash model, seed, stopping rule, tensor
layout, and worker count, its results equal the scalar fast replay's —
bit for bit, including the chronological decision payloads.  The tests
here drive :func:`repro.sim.kernel.replay_chunk` against
:func:`repro.sim.fast.replay` on shared schedule tensors, and the
batch-level ``engine="kernel"`` pipelines against ``engine="fast"``.
"""

import dataclasses

import numpy as np
import pytest

from repro._rng import make_rng
from repro.api import (
    BatchRunner,
    FailureSpec,
    NoiseSpec,
    NoisyModelSpec,
    ProtocolSpec,
    TrialSpec,
    run_batch,
    run_trial,
)
from repro.api.compile import (
    KERNEL_AUTO_MAX_N,
    KERNEL_AUTO_MAX_N_INVERSE,
    KERNEL_AUTO_MIN_TRIALS,
    resolve_engine_info,
)
from repro.errors import ConfigurationError
from repro.sim.fast import FAST_VARIANTS, replay
from repro.sim.kernel import lean_flip_bound, replay_chunk

EXPO = NoiseSpec.of("exponential", mean=1.0)


def noisy(n=12, **kwargs):
    kwargs.setdefault("stop_after_first_decision", True)
    kwargs.setdefault("model", NoisyModelSpec(noise=EXPO))
    return TrialSpec(n=n, **kwargs)


def scalar_reference(times, inputs, variant, stop, death_ops=None,
                     tie_rngs=None, round_cap=None, max_total_ops=None):
    result = replay(times, inputs, variant=variant, death_ops=death_ops,
                    tie_rngs=tie_rngs, stop_after_first_decision=stop,
                    round_cap=round_cap, max_total_ops=max_total_ops)
    if result is None:
        return None
    return (
        tuple((pid, d.value, d.round, d.ops)
              for pid, d in result.decisions.items()),
        result.total_ops, result.max_round, result.preference_changes,
        sorted(result.halted),
    )


def kernel_fields(out, t):
    return (out.decisions[t], int(out.total_ops[t]),
            int(out.max_round[t]), int(out.preference_changes[t]),
            sorted(out.halted[t]))


class TestChunkVsScalarReplay:
    """replay_chunk == per-trial replay on identical tensors."""

    @pytest.mark.parametrize("variant", sorted(FAST_VARIANTS))
    @pytest.mark.parametrize("stop", [True, False])
    def test_variant_grid(self, variant, stop):
        rng = make_rng(sum(map(ord, variant)) * 2 + int(stop))
        checked = 0
        for _ in range(6):
            n = int(rng.integers(2, 11))
            trials = int(rng.integers(2, 40))
            k = 64
            times = np.cumsum(rng.exponential(1.0, size=(trials, n, k)),
                              axis=2)
            inputs = [int(b) for b in rng.integers(0, 2, size=n)]
            flips = tie_seqs = None
            if FAST_VARIANTS[variant].random_tie:
                tie_seqs = [np.random.SeedSequence(7, spawn_key=(t, i))
                            for t in range(trials) for i in range(n)]
                flips = np.empty((n, trials, lean_flip_bound(k)), np.int8)
                for t in range(trials):
                    for i in range(n):
                        flips[i, t] = make_rng(
                            tie_seqs[t * n + i]).integers(
                                0, 2, size=flips.shape[2])
            out = replay_chunk(
                np.ascontiguousarray(np.moveaxis(times, 0, 1)), inputs,
                variant=variant, tie_flips=flips,
                stop_after_first_decision=stop)
            for t in range(trials):
                if out.overflow[t]:
                    continue
                tie_rngs = ([make_rng(tie_seqs[t * n + i])
                             for i in range(n)] if tie_seqs else None)
                ref = scalar_reference(times[t], inputs, variant, stop,
                                       tie_rngs=tie_rngs)
                assert ref is not None
                assert kernel_fields(out, t) == ref, (variant, stop, t)
                checked += 1
        assert checked > 50

    @pytest.mark.parametrize("trials_major", [False, True])
    def test_crash_schedules(self, trials_major):
        rng = make_rng(77)
        for variant in ("lean", "optimized"):
            n, trials, k = 8, 30, 64
            times = np.cumsum(rng.exponential(1.0, size=(trials, n, k)),
                              axis=2)
            inputs = [i % 2 for i in range(n)]
            deaths = np.where(rng.random((trials, n)) < 0.3,
                              rng.integers(1, 30, size=(trials, n)),
                              np.int64(10 ** 9))
            tensor = (np.ascontiguousarray(np.moveaxis(times, 1, 2))
                      if trials_major
                      else np.ascontiguousarray(np.moveaxis(times, 0, 1)))
            out = replay_chunk(tensor, inputs, variant=variant,
                               death_ops=np.ascontiguousarray(deaths.T),
                               stop_after_first_decision=False,
                               trials_major=trials_major)
            for t in range(trials):
                if out.overflow[t]:
                    continue
                ref = scalar_reference(times[t], inputs, variant, False,
                                       death_ops=deaths[t])
                assert kernel_fields(out, t) == ref

    def test_single_process_broadcast_matches_scalar(self):
        # n=1 outcomes are schedule-independent; the kernel broadcasts
        # one scalar replay.  Pin that against per-trial replays of
        # *different* schedules.
        rng = make_rng(3)
        for variant in sorted(FAST_VARIANTS):
            times = np.cumsum(rng.exponential(1.0, size=(5, 1, 32)),
                              axis=2)
            out = replay_chunk(np.ascontiguousarray(
                np.moveaxis(times, 0, 1)), [1], variant=variant)
            assert not out.overflow.any()
            for t in range(5):
                tie_rngs = ([make_rng(0)]
                            if FAST_VARIANTS[variant].random_tie else None)
                ref = scalar_reference(times[t], [1], variant, True,
                                       tie_rngs=tie_rngs)
                assert kernel_fields(out, t) == ref

    def test_overflow_flags_prefix_exhaustion(self):
        # A two-process near-lockstep race with a tiny horizon cannot
        # finish; the kernel must flag it rather than truncate.
        times = np.cumsum(np.ones((1, 2, 8)), axis=2)
        times[0, 1] += 0.5
        out = replay_chunk(np.ascontiguousarray(np.moveaxis(times, 0, 1)),
                           [0, 1], stop_after_first_decision=True)
        assert out.overflow.all()

    @pytest.mark.parametrize("variant", ["lean", "optimized",
                                         "conservative"])
    @pytest.mark.parametrize("stop", [True, False])
    def test_round_cap_grid(self, variant, stop):
        # PR 7: round_cap on the kernel freezes a capped process at the
        # cap exactly like the event engine's overflowed flag — no
        # decision, round clamped, trial still runs to its stop rule.
        rng = make_rng(410 + int(stop))
        checked = 0
        for cap in (1, 2, 5):
            n, trials, k = 6, 25, 96
            times = np.cumsum(rng.exponential(1.0, size=(trials, n, k)),
                              axis=2)
            inputs = [int(b) for b in rng.integers(0, 2, size=n)]
            out = replay_chunk(
                np.ascontiguousarray(np.moveaxis(times, 0, 1)), inputs,
                variant=variant, stop_after_first_decision=stop,
                round_cap=cap)
            for t in range(trials):
                if out.overflow[t]:
                    continue
                ref = scalar_reference(times[t], inputs, variant, stop,
                                       round_cap=cap)
                assert ref is not None
                assert kernel_fields(out, t) == ref, (variant, cap, t)
                assert out.max_round[t] <= cap
                checked += 1
        assert checked > 30

    @pytest.mark.parametrize("variant", ["lean", "optimized"])
    def test_op_budget_grid(self, variant):
        # max_total_ops: the kernel stops at exactly the budgeted event
        # count and raises budget_exhausted iff some process was still
        # running — the event engine's _should_stop order.
        rng = make_rng(420)
        checked = 0
        for budget in (1, 7, 40, 100_000):
            n, trials, k = 6, 20, 96
            times = np.cumsum(rng.exponential(1.0, size=(trials, n, k)),
                              axis=2)
            inputs = [int(b) for b in rng.integers(0, 2, size=n)]
            out = replay_chunk(
                np.ascontiguousarray(np.moveaxis(times, 0, 1)), inputs,
                variant=variant, stop_after_first_decision=False,
                max_total_ops=budget)
            for t in range(trials):
                if out.overflow[t]:
                    continue
                result = replay(times[t], inputs, variant=variant,
                                stop_after_first_decision=False,
                                max_total_ops=budget)
                assert result is not None
                ref = (
                    tuple((pid, d.value, d.round, d.ops)
                          for pid, d in result.decisions.items()),
                    result.total_ops, result.max_round,
                    result.preference_changes, sorted(result.halted),
                )
                assert kernel_fields(out, t) == ref, (variant, budget, t)
                assert bool(out.budget_exhausted[t]) == \
                    result.budget_exhausted
                if result.budget_exhausted:
                    assert out.total_ops[t] == budget
                checked += 1
        assert checked > 30

    def test_final_horizon_matches_full_matrix_semantics(self):
        # horizon_is_final: the kernel continues past a drained process
        # exactly like the scalar replay of the full matrix.
        rng = make_rng(11)
        rates = np.array([[0.05], [2.0], [1.0]])
        times = np.cumsum(rng.exponential(1.0, size=(20, 3, 40)) * rates,
                          axis=2)
        inputs = [0, 1, 1]
        out = replay_chunk(np.ascontiguousarray(np.moveaxis(times, 0, 1)),
                           inputs, stop_after_first_decision=True,
                           horizon_is_final=True)
        for t in range(20):
            ref = scalar_reference(times[t], inputs, "lean", True)
            if out.overflow[t]:
                assert ref is None
            else:
                assert kernel_fields(out, t) == ref


def strip_engine(results):
    return [dataclasses.replace(r, engine="x") for r in results]


KERNEL_SPECS = [
    pytest.param(noisy(n=12, engine="kernel"), id="lean"),
    pytest.param(noisy(n=12, engine="kernel",
                       stop_after_first_decision=False), id="quiescence"),
    pytest.param(noisy(n=24, engine="kernel",
                       failures=FailureSpec(h=0.03)), id="halting"),
    pytest.param(noisy(n=10, engine="kernel",
                       protocol=ProtocolSpec(name="random-tie")),
                 id="random-tie"),
    pytest.param(noisy(n=10, engine="kernel",
                       protocol=ProtocolSpec(name="optimized")),
                 id="optimized"),
    pytest.param(noisy(n=10, engine="kernel",
                       protocol=ProtocolSpec(name="conservative")),
                 id="conservative"),
    pytest.param(noisy(n=1, engine="kernel"), id="solo"),
    pytest.param(noisy(n=12, engine="kernel", model=NoisyModelSpec(
        noise=NoiseSpec.of("geometric", p=0.5))), id="legacy-lane"),
    pytest.param(noisy(n=12, engine="kernel", model=NoisyModelSpec(
        noise=NoiseSpec.of("uniform", low=0.0, high=2.0))),
        id="uniform-lane"),
    pytest.param(noisy(n=12, engine="kernel",
                       protocol=ProtocolSpec(name="lean", round_cap=3),
                       stop_after_first_decision=False), id="round-cap"),
    pytest.param(noisy(n=12, engine="kernel",
                       protocol=ProtocolSpec(name="optimized",
                                             round_cap=2)),
                 id="round-cap-optimized"),
    pytest.param(noisy(n=12, engine="kernel", max_total_ops=150,
                       stop_after_first_decision=False), id="op-budget"),
    pytest.param(noisy(n=400, engine="kernel"), id="wide-inverse"),
]


class TestBatchPipelines:
    """engine="kernel" batches equal engine="fast" batches everywhere."""

    @pytest.mark.parametrize("spec", KERNEL_SPECS)
    def test_kernel_equals_fast_modulo_label(self, spec):
        kernel = run_batch(spec, 40, seed=2000)
        fast = run_batch(spec.replace(engine="fast"), 40, seed=2000)
        assert all(r.engine == "kernel" for r in kernel)
        assert strip_engine(kernel) == strip_engine(fast)

    @pytest.mark.parametrize("spec", KERNEL_SPECS)
    def test_frame_equals_list(self, spec):
        frame = run_batch(spec, 30, seed=7, as_frame=True)
        assert frame.to_trial_results() == run_batch(spec, 30, seed=7)

    def test_worker_invariance(self):
        spec = noisy(n=16, engine="kernel", failures=FailureSpec(h=0.02))
        serial = run_batch(spec, 20, seed=5, as_frame=True)
        pooled = run_batch(spec, 20, seed=5, workers=2, as_frame=True)
        chunky = BatchRunner(workers=3, chunk_size=1).run_frame(
            spec, 20, seed=5)
        assert serial == pooled == chunky

    @pytest.mark.parametrize("protocol", ["lean", "random-tie",
                                          "optimized"])
    def test_ragged_fallback_is_invisible(self, monkeypatch, protocol):
        # Force overflow fallbacks by shrinking the kernel's sampled
        # horizon: per-trial scalar regrowth must keep the frame
        # bit-identical to the fast path.  random-tie is the regression
        # case: the fallback must reuse the *already-spawned* coin
        # children (re-spawning would hand it the wrong streams).
        import repro.api.compile as compile_mod
        monkeypatch.setattr(compile_mod, "_kernel_horizon_ops",
                            lambda n: 16)
        spec = noisy(n=16, engine="kernel",
                     protocol=ProtocolSpec(name=protocol))
        frame = run_batch(spec, 50, seed=3, as_frame=True)
        fast = run_batch(spec.replace(engine="fast"), 50, seed=3)
        assert strip_engine(frame.to_trial_results()) == strip_engine(fast)

    def test_wide_n_ragged_fallback_is_invisible(self, monkeypatch):
        # Satellite: force horizon overflow on n=1024 trials; the
        # per-trial scalar regrowth must stay bit-identical to the fast
        # path even with the tournament tree and packed pids engaged.
        import repro.api.compile as compile_mod
        monkeypatch.setattr(compile_mod, "_kernel_horizon_ops",
                            lambda n: 20)
        spec = noisy(n=1024, engine="kernel")
        frame = run_batch(spec, 6, seed=3, as_frame=True)
        fast = run_batch(spec.replace(engine="fast"), 6, seed=3)
        assert strip_engine(frame.to_trial_results()) == strip_engine(fast)

    def test_wide_n_capped_and_budgeted_batches_equal_fast(self):
        for spec in (
            noisy(n=512, engine="kernel",
                  protocol=ProtocolSpec(name="lean", round_cap=4)),
            noisy(n=512, engine="kernel", max_total_ops=3000,
                  stop_after_first_decision=False),
        ):
            kernel = run_batch(spec, 8, seed=21)
            fast = run_batch(spec.replace(engine="fast"), 8, seed=21)
            assert all(r.engine == "kernel" for r in kernel)
            assert strip_engine(kernel) == strip_engine(fast)

    def test_single_trial_kernel_engine_runs_scalar(self):
        result = run_trial(noisy(n=12, engine="kernel"), seed=4)
        assert result.engine == "kernel"
        fast = run_trial(noisy(n=12, engine="fast"), seed=4)
        assert dataclasses.replace(result, engine="x") == \
            dataclasses.replace(fast, engine="x")


class TestKernelResolution:
    def test_explicit_kernel_resolves(self):
        assert resolve_engine_info(noisy(engine="kernel")).engine == \
            "kernel"

    def test_auto_promotes_large_batches(self):
        spec = noisy(n=32)
        assert resolve_engine_info(spec).engine == "event"
        assert resolve_engine_info(
            spec, trials=KERNEL_AUTO_MIN_TRIALS - 1).engine == "event"
        assert resolve_engine_info(
            spec, trials=KERNEL_AUTO_MIN_TRIALS).engine == "kernel"

    def test_auto_promotes_wide_inverse_lane_specs(self):
        # PR 7: the tournament min makes wide inverse-lane batches
        # kernel-profitable through n=1024; past that the scalar fast
        # replay takes over.
        assert KERNEL_AUTO_MAX_N < 300 <= KERNEL_AUTO_MAX_N_INVERSE
        wide = noisy(n=300)
        assert resolve_engine_info(wide, trials=10_000).engine == "kernel"
        past = noisy(n=KERNEL_AUTO_MAX_N_INVERSE + 1)
        assert resolve_engine_info(past, trials=10_000).engine == "fast"

    @pytest.mark.parametrize("params", [
        pytest.param({"name": "geometric", "p": 0.5}, id="geometric"),
        pytest.param({"name": "two-point", "a": 0.5, "b": 2.0, "p": 0.5},
                     id="two-point"),
        pytest.param({"name": "truncated-normal", "mu": 1.0, "sigma": 0.2,
                      "low": 0.0, "high": 2.0}, id="truncated-normal"),
    ])
    def test_auto_promotes_every_figure1_distribution(self, params):
        # PR 8: the non-exponential Figure-1 distributions gained
        # inverse-CDF lanes, so they auto-promote over the same widened
        # n <= 1024 window as the exponential lane.
        params = dict(params)
        spec = noisy(
            n=KERNEL_AUTO_MAX_N_INVERSE,
            model=NoisyModelSpec(noise=NoiseSpec.of(params.pop("name"),
                                                    **params)))
        info = resolve_engine_info(spec, trials=KERNEL_AUTO_MIN_TRIALS)
        assert info.engine == "kernel" and info.reason is None
        past = dataclasses.replace(spec, n=KERNEL_AUTO_MAX_N_INVERSE + 1)
        assert resolve_engine_info(
            past, trials=KERNEL_AUTO_MIN_TRIALS).engine == "fast"

    def test_tie_exact_lanes_refuse_kernel_past_packed_range(self):
        # The discrete lanes' exact-tie discipline needs the packed-pid
        # tie break, which tops out at n = 2048; explicit kernel past
        # that must refuse loudly instead of silently mis-tying.
        from repro.sim.kernel import _PACK_MAX_N
        two_point = NoiseSpec.of("two-point", a=0.5, b=2.0, p=0.5)
        spec = noisy(n=_PACK_MAX_N + 1, engine="kernel",
                     model=NoisyModelSpec(noise=two_point))
        with pytest.raises(ConfigurationError, match="packed-pid"):
            resolve_engine_info(spec)
        # At the boundary itself the packed tie break still holds.
        at = dataclasses.replace(spec, n=_PACK_MAX_N)
        assert resolve_engine_info(at).engine == "kernel"
        # Continuous lanes (measure-zero ties) stay eligible past it.
        cont = noisy(n=_PACK_MAX_N + 1, engine="kernel")
        assert resolve_engine_info(cont).engine == "kernel"

    def test_auto_keeps_wide_legacy_lane_specs_off_the_kernel(self):
        # The legacy sampling lane pays an O(n*horizon) presample per
        # trial either way, so its width cap stays at n=128.
        from repro.api import DeltaSpec
        from repro.sched.delta import ZeroDelta
        legacy = TrialSpec(
            n=300, stop_after_first_decision=True,
            model=NoisyModelSpec(
                noise=EXPO,
                delta=DeltaSpec(kind="opaque", instance=ZeroDelta())))
        assert resolve_engine_info(legacy, trials=10_000).engine == "fast"

    def test_explicit_fast_is_never_promoted(self):
        spec = noisy(n=32, engine="fast")
        assert resolve_engine_info(spec, trials=10_000).engine == "fast"

    def test_auto_promotion_threads_through_run_batch(self):
        spec = noisy(n=32)
        results = run_batch(spec, KERNEL_AUTO_MIN_TRIALS, seed=1)
        assert all(r.engine == "kernel" for r in results)
        pooled = run_batch(spec, KERNEL_AUTO_MIN_TRIALS, seed=1,
                           workers=2)
        assert results == pooled  # labels worker-invariant

    def test_ineligible_kernel_raises_naming_all_blockers(self):
        from repro.api import AdversarySpec
        spec = noisy(engine="kernel", record=True,
                     failures=FailureSpec(
                         adversary=AdversarySpec(budget=1)))
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_engine_info(spec)
        message = str(excinfo.value)
        assert "record=True" in message
        assert "adaptive crash adversaries" in message

    def test_capped_and_budgeted_specs_are_kernel_eligible(self):
        capped = noisy(protocol=ProtocolSpec(name="lean", round_cap=8))
        budgeted = noisy(max_total_ops=64)
        for spec in (capped, budgeted):
            assert resolve_engine_info(
                dataclasses.replace(spec, engine="kernel")).engine == \
                "kernel"


class TestPidColumnBoundary:
    """Satellite: the unpacked event pick extracts the winning pid with
    a multiply-sum over ``pid_col``, whose dtype may be uint8 only while
    n <= 255 (pids reach n - 1).  Pin the 255/256/257 boundary with
    schedules where the *highest* pids win events, so a silently
    truncated pid plane (256 -> 0) would route their state writes to row
    0 and diverge from the scalar replay."""

    @pytest.mark.parametrize("n", [255, 256, 257])
    def test_unpacked_pick_at_the_uint8_boundary(self, n):
        from repro.sim.kernel import _lockstep_lean
        rng = make_rng(900 + n)
        trials, k = 3, 48
        scale = np.linspace(3.0, 0.05, n)[:, None]
        times = np.cumsum(
            rng.exponential(1.0, size=(trials, n, k)) * scale, axis=2)
        inputs = [int(b) for b in rng.integers(0, 2, size=n)]
        out = _lockstep_lean(
            np.ascontiguousarray(np.moveaxis(times, 0, 1)), False,
            inputs, FAST_VARIANTS["lean"], None, None, True, False, False)
        finished = 0
        for t in range(trials):
            if out.overflow[t]:
                continue
            ref = scalar_reference(times[t], inputs, "lean", True)
            assert ref is not None
            assert kernel_fields(out, t) == ref
            finished += 1
        assert finished > 0
