"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_help(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "usage" in out

    def test_help_flag(self, capsys):
        assert main(["--help"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_dispatch_runs_experiment(self, capsys):
        code = main(["unfairness", "--trials", "10", "--seed", "1"])
        assert code == 0
        assert "Theorem 1" in capsys.readouterr().out

    def test_experiment_registry_complete(self):
        # Every experiment module with a main() is registered.
        import repro.experiments as exps
        registered = set(EXPERIMENTS.values())
        for name in exps.__all__:
            module = getattr(exps, name)
            if hasattr(module, "main"):
                assert module in registered, f"{name} missing from CLI"
