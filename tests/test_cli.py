"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, _split_all_args, main
from repro.experiments import registry


class TestCli:
    def test_help(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "usage" in out

    def test_help_flag(self, capsys):
        assert main(["--help"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_dispatch_runs_experiment(self, capsys):
        code = main(["unfairness", "--trials", "10", "--seed", "1"])
        assert code == 0
        assert "Theorem 1" in capsys.readouterr().out

    def test_experiment_registry_complete(self):
        # Every experiment module with a main() is registered.
        import repro.experiments as exps
        registered = set(EXPERIMENTS.values())
        for name in exps.__all__:
            module = getattr(exps, name)
            if hasattr(module, "main"):
                assert module in registered, f"{name} missing from CLI"

    def test_list_is_machine_readable(self, capsys):
        assert main(["--list"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert {r["name"] for r in records} == set(registry.names())
        for record in records:
            assert set(record) == {"name", "module", "artifact", "summary",
                                   "batched"}
        batched = {r["name"] for r in records if r["batched"]}
        assert {"figure1", "scaling", "lower-bound", "failures",
                "ablations"} <= batched

    def test_workers_flag_accepted(self, capsys):
        code = main(["figure1", "--ns", "4", "--trials", "2", "--seed", "1",
                     "--workers", "2"])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out


class TestAllForwarding:
    def test_split_all_args(self):
        shared, extras = _split_all_args(
            ["--trials", "5", "figure1:--plot", "scaling:--tail-n",
             "scaling:8", "not:an-experiment"])
        assert shared == ["--trials", "5", "not:an-experiment"]
        assert extras == {"figure1": ["--plot"],
                          "scaling": ["--tail-n", "8"]}

    def test_registry_infos_sorted_and_loadable(self):
        infos = registry.infos()
        assert [i.name for i in infos] == registry.names()
        for info in infos:
            assert hasattr(info.load(), "main")
