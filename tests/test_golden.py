"""Golden stdout pins: the sweep rebase is provably output-identical.

The SHA-256 hashes below were captured from the **pre-refactor seed
checkout** (the PR-2 tree, whose experiment harnesses still hand-rolled
their grid loops over ``BatchRunner``) by running each experiment's
``main`` at smoke scale and hashing the printed tables.  The rebased
harnesses — now one ``SweepSpec`` declaration each, executed columnar
through ``run_sweep`` — must print byte-identical output.

If one of these fails after an intentional output change, regenerate the
hash with::

    PYTHONPATH=src python - <<'PY'
    import hashlib, io, contextlib
    from repro.experiments import figure1
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        figure1.main([...])
    print(hashlib.sha256(buf.getvalue().encode()).hexdigest())
    PY

and say so in the commit message — silently re-pinning defeats the test.
"""

import contextlib
import hashlib
import io

import numpy as np
import pytest

from repro.errors import AggregationError
from repro.experiments import (
    ablations,
    extensions,
    failures,
    figure1,
    lower_bound,
    scaling,
)

#: experiment -> (main argv, sha256 of stdout on the pre-refactor seed
#: checkout).  Smoke scale: every case runs in a few seconds.
GOLDEN = {
    "figure1": (
        figure1,
        ["--ns", "4", "8", "--trials", "6", "--seed", "1"],
        "77fb1d37f442b58e163e510bacdecd8f8c053463e75007b8bfe6db78c574037c"),
    "scaling": (
        scaling,
        ["--ns", "4", "8", "--trials", "6", "--seed", "1", "--tail-n", "8"],
        "6ccde0e1779f1733863ba7d182e1f8d95b939f9ec018aa5c68c9a39e378f2341"),
    "failures": (
        failures,
        ["--trials", "6", "--seed", "1"],
        "78a216500af524de6f7772bb245bc4a983f5946e82fe24551fd4278486626868"),
    "ablations": (
        ablations,
        ["--trials", "6", "--seed", "1"],
        "2ff2cb742ff4e931d958169fc52259261bf951c3e690fe63917c2db9fd0745f3"),
    "lower_bound": (
        lower_bound,
        ["--trials", "6", "--seed", "1"],
        # Re-pinned when two-point noise gained its inverse-CDF lane: the
        # n >= 256 rows run on the fast engine, whose sample path moved
        # from the legacy row-major presample to the lane's column-major
        # quantile draws (same distribution, different stream use).
        "89e0c25ad4aaec0487539481b00dab379680a5e63002369d2eb089203ac270e9"),
    "extensions": (
        extensions,
        ["--trials", "6", "--seed", "1"],
        "877e140ac5b862c01f2d51c84b6b531e3cc8324cc10b1c759ec42f2d6697f7be"),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_stdout_matches_pre_refactor_seed(name):
    module, argv, expected = GOLDEN[name]
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        module.main(argv)
    text = buf.getvalue()
    digest = hashlib.sha256(text.encode()).hexdigest()
    assert digest == expected, (
        f"{name} stdout diverged from the pre-refactor seed checkout "
        f"(got sha256 {digest}); output was:\n{text}")


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_kernel_stdout_byte_identical_to_fast(name):
    """--engine kernel must print exactly what --engine fast prints.

    The lockstep kernel is required to be bit-identical to the scalar
    fast replay, so forcing either engine onto a smoke-scale experiment
    must yield byte-identical tables (experiments that pin their engine
    internally are equally covered: both flags then print the pinned
    engine's table).
    """
    module, argv, _ = GOLDEN[name]
    outs = []
    for engine in ("fast", "kernel"):
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            module.main(argv + ["--engine", engine])
        outs.append(buf.getvalue())
    assert outs[0] == outs[1], (
        f"{name}: --engine kernel stdout diverged from --engine fast")


def test_golden_output_survives_worker_fanout():
    """--workers must not perturb a golden table (spot check)."""
    outs = []
    for extra in ([], ["--workers", "2"]):
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            figure1.main(["--ns", "4", "8", "--trials", "6", "--seed", "1"]
                         + extra)
        outs.append(buf.getvalue())
    assert outs[0] == outs[1]


def test_golden_output_survives_cache(tmp_path):
    """A cache-warm re-run must print the identical table."""
    argv = ["--ns", "4", "8", "--trials", "6", "--seed", "1",
            "--cache-dir", str(tmp_path)]
    outs = []
    for _ in range(2):
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            figure1.main(argv)
        outs.append(buf.getvalue())
    assert outs[0] == outs[1]
    expected = GOLDEN["figure1"][2]
    digest = hashlib.sha256(outs[1].encode()).hexdigest()
    assert digest == expected


class TestFigure1AggregationGuard:
    """Regression: mean_ops_first used to crash with a bare TypeError on
    undecided (budget-exhausted) trials; it now raises an explicit
    AggregationError naming the offending spec."""

    def test_budget_exhausted_cell_raises_named_error(self):
        from repro.noise import Exponential
        with pytest.raises(AggregationError) as excinfo:
            figure1.run(ns=(8,), trials=4, seed=1, engine="event",
                        distributions={"expo": Exponential(1.0)},
                        max_total_ops=3)
        message = str(excinfo.value)
        assert "max_total_ops" in message  # names the offending spec
        assert "first_decision_round" in message

    def test_partially_decided_cells_filter(self):
        # A generous budget decides every smoke trial; the guard only
        # filters, never changes values, when everything decided.
        from repro.noise import Exponential
        result = figure1.run(ns=(4,), trials=5, seed=1, engine="event",
                             distributions={"expo": Exponential(1.0)},
                             max_total_ops=100_000)
        baseline = figure1.run(ns=(4,), trials=5, seed=1, engine="event",
                               distributions={"expo": Exponential(1.0)})
        assert result.point("expo", 4) == baseline.point("expo", 4)


class TestSeedAttribution:
    """Regression: non-int seeds used to record ``seed=-1``; experiment
    results now carry the root SeedSequence entropy."""

    def test_int_seed_round_trips(self):
        from repro.noise import Exponential
        result = figure1.run(ns=(4,), trials=2, seed=2000,
                             distributions={"expo": Exponential(1.0)})
        assert result.seed == 2000

    def test_generator_seed_records_entropy(self):
        from repro.noise import Exponential
        root = np.random.Generator(np.random.PCG64(np.random.SeedSequence(77)))
        result = figure1.run(ns=(4,), trials=2, seed=root,
                             distributions={"expo": Exponential(1.0)})
        assert result.seed == 77

    def test_other_experiment_results_record_entropy(self):
        assert scaling.run(ns=(4, 8), trials=3, seed=9).seed == 9
        assert lower_bound.run(ns=(4, 16), trials=3, seed=9).seed == 9
        assert failures.run(n=8, hs=(0.0,), budgets=(0,), trials=2,
                            seed=9).seed == 9
        assert ablations.run(n=8, trials=2, protocols=("lean",),
                             sigmas=(0.2,), delay_bounds=(0.0,),
                             seed=9).seed == 9
