"""Trial-batched fast replay: bit-identity across every execution path.

``run_batch`` on a fast-engine spec presamples the chunk's schedule
tensor and argsorts it in one numpy call; the results must be
bit-identical to per-trial ``run_trial`` calls, to the parallel pool, and
— via the differential oracle on overlapping seeds — to the reference
event engine on the same schedules.
"""

import pytest

from repro.api import (
    BatchRunner,
    FailureSpec,
    NoiseSpec,
    NoisyModelSpec,
    ProtocolSpec,
    TrialSpec,
    run_batch,
    run_trial,
    run_trials,
    trial_seed_sequences,
)
from repro.sim.differential import assert_equivalent

EXPO = NoiseSpec.of("exponential", mean=1.0)


def fast_spec(n=300, **kwargs):
    kwargs.setdefault("stop_after_first_decision", True)
    return TrialSpec(n=n, model=NoisyModelSpec(noise=EXPO), **kwargs)


class TestChunkedBitIdentity:
    def test_chunked_equals_serial_per_trial(self):
        spec = fast_spec()
        seqs = trial_seed_sequences(11, 8)
        serial = [run_trial(spec, seq) for seq in seqs]
        chunked = run_batch(spec, 8, seed=11)
        assert chunked == serial
        assert all(r.engine == "fast" for r in chunked)

    def test_chunked_equals_parallel_pool(self):
        spec = fast_spec()
        assert run_batch(spec, 8, seed=11) == \
            run_batch(spec, 8, seed=11, workers=2)

    def test_tiny_pool_chunks_are_identical(self):
        spec = fast_spec()
        one_per_chunk = BatchRunner(workers=2, chunk_size=1).run(
            spec, 6, seed=4)
        assert one_per_chunk == run_batch(spec, 6, seed=4)

    def test_run_trials_matches_run_trial_loop(self):
        spec = fast_spec(n=280, failures=FailureSpec(h=0.01),
                         stop_after_first_decision=False)
        # Fresh SeedSequences per run: spawning children advances a
        # sequence's spawn counter, so the objects are single-use.
        chunked = run_trials(spec, trial_seed_sequences(21, 5))
        serial = [run_trial(spec, s) for s in trial_seed_sequences(21, 5)]
        assert chunked == serial

    @pytest.mark.parametrize("protocol", ["conservative", "random-tie",
                                          "optimized"])
    def test_variants_batch_identically(self, protocol):
        spec = fast_spec(n=270, protocol=ProtocolSpec(name=protocol),
                         stop_after_first_decision=False)
        seqs = trial_seed_sequences(33, 4)
        serial = [run_trial(spec, s) for s in seqs]
        assert run_batch(spec, 4, seed=33) == serial

    def test_event_engine_agrees_on_overlapping_seeds(self):
        # The same child seeds the batch consumed, replayed through the
        # differential oracle: fast and event agree schedule-for-schedule.
        spec = fast_spec(n=64, engine="fast",
                         stop_after_first_decision=False)
        for seq in trial_seed_sequences(11, 3):
            assert assert_equivalent(spec, seed=seq).ok

    def test_batch_with_failures_matches_per_trial(self):
        spec = fast_spec(n=300, failures=FailureSpec(h=0.02))
        seqs = trial_seed_sequences(5, 6)
        serial = [run_trial(spec, s) for s in seqs]
        batch = run_batch(spec, 6, seed=5)
        assert batch == serial
        assert batch == run_batch(spec, 6, seed=5, workers=2)


class TestEventChunksUnaffected:
    def test_event_specs_still_run_per_trial(self):
        spec = fast_spec(n=16, engine="event")
        chunked = run_trials(spec, trial_seed_sequences(2, 3))
        serial = [run_trial(spec, s) for s in trial_seed_sequences(2, 3)]
        assert chunked == serial

    def test_serial_event_batch_keeps_artifacts(self):
        # The serial path must still expose result.memory / machines.
        spec = fast_spec(n=8, engine="event",
                         stop_after_first_decision=False)
        results = run_batch(spec, 2, seed=1)
        assert all(hasattr(r, "memory") for r in results)
