"""Tests for the high-level trial runners."""

import pytest

from repro._rng import make_rng
from repro.errors import ConfigurationError, InvariantViolation
from repro.core.bounded import BoundedLeanConsensus
from repro.core.machine import LeanConsensus, SharedCoinLean
from repro.core.variants import ConservativeLean, EagerDecideLean, OptimizedLean
from repro.noise import Exponential, Uniform
from repro.sched.pickers import RandomPicker, RoundRobinPicker
from repro.sim.runner import (
    half_and_half,
    make_machines,
    make_memory_for,
    run_hybrid_trial,
    run_noisy_trial,
    run_noisy_trials,
    run_step_trial,
)


class TestHalfAndHalf:
    def test_even_split(self):
        inputs = half_and_half(6)
        assert sum(inputs.values()) == 3
        assert inputs[0] == 0 and inputs[5] == 1

    def test_odd_split(self):
        inputs = half_and_half(5)
        assert sum(1 for b in inputs.values() if b == 0) == 2

    def test_single(self):
        assert half_and_half(1) == {0: 1}


class TestMakeMachines:
    @pytest.mark.parametrize("name, cls", [
        ("lean", LeanConsensus),
        ("optimized", OptimizedLean),
        ("eager", EagerDecideLean),
        ("conservative", ConservativeLean),
        ("shared-coin", SharedCoinLean),
        ("bounded", BoundedLeanConsensus),
    ])
    def test_builtin_names(self, name, cls, rng):
        machines = make_machines(name, {0: 0, 1: 1}, rng=rng)
        assert all(isinstance(m, cls) for m in machines)
        assert [m.pid for m in machines] == [0, 1]

    def test_random_tie_uses_tie_rule(self, rng):
        from repro.core.machine import RandomTie
        machines = make_machines("random-tie", {0: 0}, rng=rng)
        assert isinstance(machines[0].tie_rule, RandomTie)

    def test_unknown_name_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            make_machines("paxos", {0: 0}, rng=rng)

    def test_custom_factory(self):
        machines = make_machines(lambda p, b: LeanConsensus(p, b, round_cap=3),
                                 {0: 1})
        assert machines[0].round_cap == 3

    def test_round_cap_passthrough(self, rng):
        machines = make_machines("lean", {0: 0}, rng=rng, round_cap=7)
        assert machines[0].round_cap == 7

    def test_factory_ignoring_round_cap_is_rejected(self, rng):
        # round_cap used to be silently dropped for callable factories.
        with pytest.raises(ConfigurationError):
            make_machines(lambda p, b: LeanConsensus(p, b), {0: 0},
                          rng=rng, round_cap=7)

    def test_factory_accepting_round_cap_receives_it(self, rng):
        machines = make_machines(
            lambda p, b, round_cap: LeanConsensus(p, b, round_cap=round_cap),
            {0: 0}, rng=rng, round_cap=7)
        assert machines[0].round_cap == 7

    def test_factory_accepting_rng_receives_it(self, rng):
        seen = []

        def factory(pid, bit, rng):
            seen.append(rng)
            return LeanConsensus(pid, bit)

        make_machines(factory, {0: 0, 1: 1}, rng=rng)
        assert seen == [rng, rng]

    def test_var_kwargs_factory_receives_nothing(self, rng):
        # A bare **kwargs must not have rng injected (legacy factories
        # with **kwargs never received it).
        machines = make_machines(
            lambda p, b, **kw: LeanConsensus(p, b, **kw), {0: 0}, rng=rng)
        assert machines[0].pid == 0


class TestMakeMemory:
    def test_lean_arrays(self):
        mem = make_memory_for(make_machines("lean", {0: 0}))
        assert set(mem.arrays) == {"a0", "a1"}
        assert mem.arrays["a0"].prefix_value == 1

    def test_shared_coin_arrays(self, rng):
        mem = make_memory_for(make_machines("shared-coin", {0: 0}, rng=rng))
        assert set(mem.arrays) == {"a0", "a1", "c0", "c1"}
        assert mem.arrays["c0"].prefix_value is None

    def test_bounded_arrays_include_backup(self, rng):
        mem = make_memory_for(make_machines("bounded", {0: 0}, rng=rng))
        assert {"a0", "a1", "bk_a0", "bk_a1", "bk_c0", "bk_c1"} <= set(mem.arrays)

    def test_recorder_attached(self):
        mem = make_memory_for(make_machines("lean", {0: 0}), record=True)
        assert mem.recorder is not None


class TestRunNoisyTrial:
    def test_basic_agreement(self):
        result = run_noisy_trial(8, Exponential(1.0), seed=1)
        assert result.all_decided and result.agreed

    def test_reproducible(self):
        a = run_noisy_trial(8, Exponential(1.0), seed=42)
        b = run_noisy_trial(8, Exponential(1.0), seed=42)
        assert a.total_ops == b.total_ops
        assert a.first_decision_round == b.first_decision_round

    def test_validity_with_unanimous_inputs(self):
        result = run_noisy_trial(5, Exponential(1.0), seed=2,
                                 inputs=[1, 1, 1, 1, 1])
        assert result.decided_values == {1}
        assert all(d.ops == 8 for d in result.decisions.values())

    def test_explicit_inputs_dict(self):
        result = run_noisy_trial(2, Exponential(1.0), seed=3,
                                 inputs={0: 0, 1: 0})
        assert result.decided_values == {0}

    def test_engine_auto_small_n_uses_event(self):
        result = run_noisy_trial(4, Exponential(1.0), seed=4, record=True)
        assert result.memory.recorder is not None  # event engine artifacts

    def test_legacy_positional_call_still_works(self):
        # The historical signature allowed positional inputs/protocol.
        result = run_noisy_trial(5, Exponential(1.0), 2, [1, 1, 1, 1, 1],
                                 "lean")
        assert result.decided_values == {1}
        assert result == run_noisy_trial(5, Exponential(1.0), seed=2,
                                         inputs=[1, 1, 1, 1, 1])

    def test_engine_auto_resolution_is_recorded(self):
        assert run_noisy_trial(4, Exponential(1.0), seed=4).engine == "event"
        assert run_noisy_trial(300, Exponential(1.0), seed=4).engine == "fast"
        assert run_noisy_trial(300, Exponential(1.0), seed=4,
                               engine="event").engine == "event"

    def test_engine_fast_explicit(self):
        result = run_noisy_trial(32, Uniform(0.0, 2.0), seed=5,
                                 engine="fast")
        assert result.all_decided and result.agreed

    def test_fast_engine_rejects_protocols_without_replay(self):
        with pytest.raises(ConfigurationError):
            run_noisy_trial(8, Exponential(1.0), seed=6, engine="fast",
                            protocol="shared-coin")

    def test_fast_engine_runs_vectorized_variants(self):
        for protocol in ("optimized", "conservative", "random-tie"):
            result = run_noisy_trial(8, Exponential(1.0), seed=6,
                                     engine="fast", protocol=protocol)
            assert result.engine == "fast" and result.agreed

    def test_fast_and_event_same_distribution_family(self):
        """Not bit-identical (different sampling order) but same shape."""
        fast = run_noisy_trial(64, Exponential(1.0), seed=7, engine="fast")
        event = run_noisy_trial(64, Exponential(1.0), seed=7, engine="event")
        assert fast.agreed and event.agreed

    def test_check_flag_catches_eager_disagreement(self):
        saw_violation = False
        for seed in range(40):
            try:
                run_noisy_trial(6, Exponential(1.0), seed=seed,
                                protocol="eager", engine="event")
            except InvariantViolation:
                saw_violation = True
                break
        assert saw_violation, \
            "eager variant should disagree on some noisy schedule"

    def test_h_failures(self):
        result = run_noisy_trial(16, Exponential(1.0), seed=8, h=0.02)
        assert result.agreed
        assert len(result.decisions) + len(result.halted) == 16

    def test_round_cap_produces_overflow_without_decision(self):
        # A tiny cap with many processes in contention can overflow; the
        # run must still return (machines stop at the cap).
        result = run_noisy_trial(2, Exponential(1.0), seed=9,
                                 protocol="lean", round_cap=1,
                                 check=False)
        # Round cap 1: nobody can decide before round 2, so all overflow.
        assert not result.decisions


class TestRunNoisyTrials:
    def test_batch_independent_and_reproducible(self):
        a = run_noisy_trials(5, 8, Exponential(1.0), seed=11)
        b = run_noisy_trials(5, 8, Exponential(1.0), seed=11)
        assert len(a) == 5
        assert [r.total_ops for r in a] == [r.total_ops for r in b]
        assert len({r.total_ops for r in a}) > 1  # trials differ


class TestRunStepTrial:
    def test_random_schedule(self):
        result = run_step_trial(6, RandomPicker(make_rng(1)), seed=1)
        assert result.all_decided and result.agreed

    def test_lockstep_budget(self):
        result = run_step_trial(2, RoundRobinPicker(), seed=2,
                                max_total_ops=100, check=False)
        assert result.budget_exhausted


class TestRunHybridTrial:
    def test_default_run_to_completion(self):
        result = run_hybrid_trial(4, quantum=8, seed=1)
        assert result.all_decided and result.agreed
        assert all(d.ops <= 12 for d in result.decisions.values())

    def test_priorities_and_debt(self):
        result = run_hybrid_trial(3, quantum=8, priorities=[2, 1, 0],
                                  initial_used={0: 8}, seed=2)
        assert result.agreed

    def test_chooser_must_be_legal(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            run_hybrid_trial(2, quantum=8, chooser=lambda legal: -5, seed=3)
