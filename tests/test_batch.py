"""Tests for compile_spec/run_trial and the parallel batch runner.

The determinism proof required of the batch runner: for a fixed seed,
``run_batch(spec, ..., workers=k)`` returns trial results bit-identical
(decisions, first_decision_round, total ops — the full dataclass) for
every ``k``, and identical to the legacy ``run_noisy_trials`` loop.
"""

import pytest

from repro._rng import make_rng
from repro.api import (
    BatchRunner,
    DeltaSpec,
    FailureSpec,
    HybridModelSpec,
    NoiseSpec,
    NoisyModelSpec,
    PickerSpec,
    ProtocolSpec,
    StepModelSpec,
    TrialSpec,
    compile_spec,
    run_batch,
    run_trial,
    trial_seed_sequences,
)
from repro.errors import ConfigurationError
from repro.noise import Exponential, Uniform
from repro.sim.runner import (
    run_hybrid_trial,
    run_noisy_trial,
    run_noisy_trials,
    run_step_trial,
)

EXPO = NoiseSpec.of("exponential", mean=1.0)


def noisy_spec(n=8, **kwargs):
    return TrialSpec(n=n, model=NoisyModelSpec(noise=EXPO), **kwargs)


class TestRunTrial:
    def test_agreement(self):
        result = run_trial(noisy_spec(), seed=1)
        assert result.all_decided and result.agreed

    def test_engine_recorded(self):
        assert run_trial(noisy_spec(n=8), seed=1).engine == "event"
        assert run_trial(noisy_spec(n=300), seed=1).engine == "fast"
        assert run_trial(noisy_spec(n=300, engine="event"),
                         seed=1).engine == "event"
        step = TrialSpec(n=4, model=StepModelSpec())
        assert run_trial(step, seed=1).engine == "step"
        hybrid = TrialSpec(n=4, model=HybridModelSpec(quantum=8))
        assert run_trial(hybrid, seed=1).engine == "hybrid"

    def test_compiled_trial_exposes_assembly(self):
        compiled = compile_spec(noisy_spec(), seed=1)
        assert compiled.engine == "event"
        assert len(compiled.machines) == 8
        assert set(compiled.memory.arrays) == {"a0", "a1"}
        result = compiled.run()
        assert result.agreed

    def test_fast_engine_has_no_event_assembly(self):
        compiled = compile_spec(noisy_spec(n=300), seed=1)
        assert compiled.engine == "fast"
        assert compiled.machines is None

    def test_fast_engine_requires_vectorized_replay(self):
        # Variants with a vectorized replay (optimized, conservative, ...)
        # now compile on the fast engine; shared-coin does not.
        spec = noisy_spec(engine="fast",
                          protocol=ProtocolSpec(name="shared-coin"))
        with pytest.raises(ConfigurationError):
            compile_spec(spec, seed=1)
        variant = noisy_spec(engine="fast",
                             protocol=ProtocolSpec(name="optimized"))
        assert compile_spec(variant, seed=1).run().engine == "fast"


class TestWrapperEquivalence:
    """Legacy runners and their spec equivalents are bit-identical."""

    def test_run_noisy_trial_matches_run_trial(self):
        for seed in (0, 1, 42):
            legacy = run_noisy_trial(8, Exponential(1.0), seed=seed)
            spec = run_trial(noisy_spec(), seed=seed)
            assert legacy == spec

    def test_run_noisy_trial_matches_run_batch_serial_and_parallel(self):
        trials = 4
        legacy = run_noisy_trials(trials, 8, Exponential(1.0), seed=7)
        serial = run_batch(noisy_spec(), trials, seed=7)
        parallel = run_batch(noisy_spec(), trials, seed=7, workers=2)
        assert legacy == serial == parallel

    def test_fast_engine_equivalence(self):
        legacy = run_noisy_trial(300, Uniform(0.0, 2.0), seed=3)
        spec = TrialSpec(n=300, model=NoisyModelSpec(
            noise=NoiseSpec.of("uniform", low=0.0, high=2.0)))
        assert legacy == run_trial(spec, seed=3)
        assert legacy.engine == "fast"

    def test_step_equivalence(self):
        spec = TrialSpec(n=6, model=StepModelSpec(
            picker=PickerSpec.of("scripted", script=(0, 1, 2, 3, 4, 5))))
        from repro.sched.pickers import ScriptedPicker
        legacy = run_step_trial(6, ScriptedPicker([0, 1, 2, 3, 4, 5]), seed=2)
        assert legacy == run_trial(spec, seed=2)

    def test_hybrid_equivalence(self):
        legacy = run_hybrid_trial(3, quantum=8, priorities=[2, 1, 0],
                                  initial_used={0: 8}, seed=2)
        spec = TrialSpec(n=3, model=HybridModelSpec(
            quantum=8, priorities=(2, 1, 0), initial_used=((0, 8),)))
        assert legacy == run_trial(spec, seed=2)


class TestDeterminism:
    """The acceptance-criterion determinism proof."""

    def test_workers_do_not_change_results(self):
        spec = noisy_spec(n=16, stop_after_first_decision=True)
        trials = 12
        serial = run_batch(spec, trials, seed=2000, workers=1)
        two = run_batch(spec, trials, seed=2000, workers=2)
        four = run_batch(spec, trials, seed=2000, workers=4)
        legacy = run_noisy_trials(trials, 16, Exponential(1.0), seed=2000,
                                  stop_after_first_decision=True)
        assert serial == two == four == legacy
        # The comparison covers every field of the dataclass, among them:
        assert [r.decisions for r in four] == [r.decisions for r in serial]
        assert ([r.first_decision_round for r in four]
                == [r.first_decision_round for r in serial])
        assert [r.total_ops for r in four] == [r.total_ops for r in serial]

    def test_generator_seed_continues_stream(self):
        # Two consecutive batches from one root generator must equal the
        # historical pattern of two consecutive spawn() loops.
        spec = noisy_spec()
        root = make_rng(5)
        first = run_batch(spec, 3, seed=root)
        second = run_batch(spec, 3, seed=root)
        legacy_root = make_rng(5)
        legacy = run_noisy_trials(3, 8, Exponential(1.0), seed=legacy_root)
        legacy += run_noisy_trials(3, 8, Exponential(1.0), seed=legacy_root)
        assert first + second == legacy
        assert first != second  # independent child streams

    def test_trial_seed_sequences_match_spawn(self):
        from repro._rng import spawn
        seqs = trial_seed_sequences(9, 4)
        rngs = spawn(make_rng(9), 4)
        for seq, rng in zip(seqs, rngs):
            assert make_rng(seq).integers(0, 2**31) == rng.integers(0, 2**31)


class TestBatchRunner:
    def test_opaque_spec_requires_serial(self):
        spec = TrialSpec(n=4, model=NoisyModelSpec(
            noise=EXPO, delta=DeltaSpec(kind="opaque",
                                        instance=__import__(
                                            "repro.sched.delta",
                                            fromlist=["ZeroDelta"]).ZeroDelta())))
        assert run_batch(spec, 2, seed=1, workers=1)  # serial fine
        with pytest.raises(ConfigurationError):
            run_batch(spec, 2, seed=1, workers=2)

    def test_record_spec_requires_serial(self):
        spec = noisy_spec(record=True, engine="event")
        serial = run_batch(spec, 2, seed=1, workers=1)
        assert all(r.memory.recorder is not None for r in serial)
        with pytest.raises(ConfigurationError):
            run_batch(spec, 2, seed=1, workers=2)

    def test_zero_trials(self):
        assert run_batch(noisy_spec(), 0, seed=1) == []

    def test_negative_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch(noisy_spec(), -1, seed=1)

    def test_parallel_results_preserve_order(self):
        spec = noisy_spec(n=4)
        runner = BatchRunner(workers=3, chunk_size=1)
        assert runner.run(spec, 7, seed=11) == run_batch(spec, 7, seed=11)

    def test_failures_and_halting_cross_process(self):
        spec = noisy_spec(n=16, failures=FailureSpec(h=0.02), engine="event")
        serial = run_batch(spec, 6, seed=8)
        parallel = run_batch(spec, 6, seed=8, workers=2)
        assert serial == parallel
        assert any(r.halted for r in serial) or all(r.agreed for r in serial)

    def test_run_grid(self):
        specs = [noisy_spec(n=n) for n in (2, 4)]
        grids = BatchRunner(workers=None).run_grid(specs, 3, seed=4)
        assert len(grids) == 2 and all(len(g) == 3 for g in grids)

    def test_run_grid_cells_use_distinct_seed_blocks(self):
        # An int seed must not correlate grid cells: two identical specs
        # must consume different child-seed blocks.
        specs = [noisy_spec(n=8), noisy_spec(n=8)]
        a, b = BatchRunner(workers=None).run_grid(specs, 5, seed=4)
        assert a != b
        # And the whole grid stays reproducible from the int seed.
        a2, b2 = BatchRunner(workers=None).run_grid(specs, 5, seed=4)
        assert a == a2 and b == b2
