"""The pluggable kernel array backends: registry, resolution, identity.

The backend shim (:mod:`repro.sim.backend`) must be *safe by default*:
an unavailable or non-covering backend degrades to numpy with the
reason on ``engine_reason`` — never silently, never by crashing —
unless ``engine="kernel"`` was pinned explicitly, which raises a
:class:`ConfigurationError` naming the blocker.  The lanes themselves
must be invisible: the numba merge lane is bitwise-identical to the
numpy lockstep (it runs un-jitted pure Python when the wheel is
absent, so the identity is testable everywhere), and the cupy lane is
exercised against ``xp=numpy`` (same code path, host arrays).

Availability is forced through ``repro.sim.backend._probe_cache`` —
the documented test seam — so these tests are deterministic on hosts
with or without the optional wheels.
"""

import dataclasses
import importlib.util

import numpy as np
import pytest

from repro._rng import make_rng
from repro.api import (
    NoiseSpec,
    NoisyModelSpec,
    ProtocolSpec,
    StepModelSpec,
    TrialSpec,
    run_batch,
    run_trial,
)
from repro.api.compile import KERNEL_AUTO_MIN_TRIALS, resolve_engine_info
from repro.errors import ConfigurationError
from repro.sim import _kernel_xp, backend as backend_mod
from repro.sim.backend import (
    BACKEND_NAMES,
    BACKENDS,
    backend_spec_gap,
    backend_unavailability,
    kernel_backend_gap,
)
from repro.sim.differential import assert_equivalent, run_differential
from repro.sim.frame import ResultFrame
from repro.sim.kernel import _PACK_MAX_N, replay_chunk

EXPO = NoiseSpec.of("exponential", mean=1.0)


def noisy(n=12, **kwargs):
    kwargs.setdefault("stop_after_first_decision", True)
    kwargs.setdefault("model", NoisyModelSpec(noise=EXPO))
    return TrialSpec(n=n, **kwargs)


def strip(results):
    """Normalize the labelling fields for cross-backend comparison."""
    return [dataclasses.replace(r, engine="x", engine_reason=None,
                                backend=None)
            for r in results]


@pytest.fixture
def available(monkeypatch):
    """Force a backend's availability probe (None = available)."""

    def _force(name, blocker=None):
        monkeypatch.setitem(backend_mod._probe_cache, name, blocker)

    return _force


@pytest.fixture
def numpy_xp(monkeypatch):
    """Run the cupy lane's code path on host numpy arrays."""
    monkeypatch.setattr(_kernel_xp, "get_xp", lambda: np)


CUPY_BLOCKER = "the cupy import failed (No module named 'cupy')"
NUMBA_BLOCKER = "the numba import failed (No module named 'numba')"


class TestRegistry:
    def test_numpy_is_always_available(self):
        assert backend_unavailability("numpy") is None

    def test_tiers(self):
        assert tuple(BACKENDS) == BACKEND_NAMES
        assert BACKENDS["numpy"].tier == "bitwise"
        assert BACKENDS["numba"].tier == "bitwise"
        assert BACKENDS["cupy"].tier == "float-tolerance"

    def test_real_probe_names_the_missing_import(self):
        # Only meaningful on a host without the wheel (the CI baseline);
        # the deterministic degrade tests below force the cache instead.
        for name in ("numba", "cupy"):
            if importlib.util.find_spec(name) is not None:
                continue
            backend_mod._probe_cache.pop(name, None)
            blocker = backend_unavailability(name)
            assert blocker is not None and f"{name} import failed" in blocker

    def test_unknown_backend_probe(self):
        assert "unknown backend" in backend_mod._probe("jax")

    def test_bitwise_lanes_have_no_coverage_gap(self):
        for name in ("numpy", "numba"):
            assert kernel_backend_gap(
                name, variant="optimized", n=100_000, has_death_ops=True,
                has_tie_flips=True, round_cap=3, max_total_ops=9) is None

    def test_cupy_gap_names_every_blocker(self):
        gap = kernel_backend_gap(
            "cupy", variant="optimized", n=_PACK_MAX_N + 1,
            has_death_ops=True, has_tie_flips=False, round_cap=3,
            max_total_ops=9)
        for needle in ("elision variant", "crash schedules", "round caps",
                       "op budgets", "packed-pid"):
            assert needle in gap
        assert kernel_backend_gap(
            "cupy", variant="lean", n=_PACK_MAX_N, has_death_ops=False,
            has_tie_flips=False, round_cap=None, max_total_ops=None) is None

    def test_spec_gap_derives_from_the_spec(self):
        capped = noisy(protocol=ProtocolSpec(name="lean", round_cap=4))
        assert "round caps" in backend_spec_gap("cupy", capped)
        assert backend_spec_gap("cupy", noisy()) is None
        assert backend_spec_gap("numba", capped) is None


class TestSpecField:
    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            noisy(backend="jax")

    def test_backend_is_noisy_model_only(self):
        with pytest.raises(ConfigurationError, match="noisy"):
            TrialSpec(n=4, model=StepModelSpec(), backend="numba")

    def test_to_dict_omits_the_default(self):
        # Serialized specs — and the job ids / cache keys hashed from
        # them — must be byte-stable across the field's introduction.
        assert "backend" not in noisy().to_dict()
        data = noisy(backend="numba").to_dict()
        assert data["backend"] == "numba"
        assert TrialSpec.from_dict(data) == noisy(backend="numba")
        assert TrialSpec.from_dict(noisy().to_dict()).backend == "numpy"


class TestResolutionDegrades:
    """Satellite: unavailable backends degrade, explicit pins raise."""

    def test_unavailable_backend_degrades_on_auto(self, available):
        available("cupy", CUPY_BLOCKER)
        spec = noisy(backend="cupy")
        info = resolve_engine_info(spec, trials=KERNEL_AUTO_MIN_TRIALS)
        assert info.engine == "kernel"
        assert info.backend == "numpy"
        assert 'backend="cupy" degraded to numpy' in info.backend_reason
        assert CUPY_BLOCKER in info.backend_reason

    def test_degrade_reason_lands_on_results(self, available):
        available("cupy", CUPY_BLOCKER)
        spec = noisy(n=8, backend="cupy")
        results = run_batch(spec, KERNEL_AUTO_MIN_TRIALS, seed=3)
        baseline = run_batch(noisy(n=8), KERNEL_AUTO_MIN_TRIALS, seed=3)
        assert strip(results) == strip(baseline)
        for r in results:
            assert r.backend == "numpy"
            assert CUPY_BLOCKER in r.engine_reason

    def test_explicit_kernel_pin_raises_naming_the_import(self, available):
        available("cupy", CUPY_BLOCKER)
        available("numba", NUMBA_BLOCKER)
        for name, blocker in (("cupy", CUPY_BLOCKER),
                              ("numba", NUMBA_BLOCKER)):
            spec = noisy(engine="kernel", backend=name)
            with pytest.raises(ConfigurationError) as excinfo:
                resolve_engine_info(spec)
            assert blocker in str(excinfo.value)
            with pytest.raises(ConfigurationError):
                run_trial(spec, seed=1)

    def test_non_kernel_engine_degrades_with_reason(self, available):
        available("numba")
        info = resolve_engine_info(noisy(engine="fast", backend="numba"))
        assert (info.engine, info.backend) == ("fast", "numpy")
        assert "applies to the lockstep kernel" in info.backend_reason

    def test_coverage_gap_degrades_or_raises(self, available):
        available("cupy")
        capped = noisy(protocol=ProtocolSpec(name="lean", round_cap=4),
                       backend="cupy")
        info = resolve_engine_info(capped, trials=KERNEL_AUTO_MIN_TRIALS)
        assert info.backend == "numpy"
        assert "round caps" in info.backend_reason
        with pytest.raises(ConfigurationError, match="round caps"):
            resolve_engine_info(capped.replace(engine="kernel"))

    def test_numpy_requests_resolve_reasonlessly(self):
        info = resolve_engine_info(noisy(engine="kernel"))
        assert (info.backend, info.backend_reason) == ("numpy", None)


class TestNumbaLane:
    """The JIT merge lane, run un-jitted (the wheel is optional)."""

    def test_batch_bit_identical_and_labelled(self, available):
        available("numba")
        spec = noisy(n=24, engine="kernel", backend="numba")
        frame = run_batch(spec, 40, seed=7, as_frame=True)
        results = frame.to_trial_results()
        assert all(r.backend == "numba" for r in results)
        assert all(r.engine == "kernel" for r in results)
        assert all(r.engine_reason is None for r in results)
        baseline = run_batch(spec.replace(backend="numpy"), 40, seed=7)
        assert strip(results) == strip(baseline)

    def test_crashes_caps_and_budgets_covered(self, available):
        from repro.api import FailureSpec
        available("numba")
        for spec in (
            noisy(n=16, engine="kernel", backend="numba",
                  failures=FailureSpec(h=0.05),
                  stop_after_first_decision=False),
            noisy(n=16, engine="kernel", backend="numba",
                  protocol=ProtocolSpec(name="lean", round_cap=4)),
            noisy(n=16, engine="kernel", backend="numba",
                  max_total_ops=200, stop_after_first_decision=False),
        ):
            got = run_batch(spec, 30, seed=11)
            ref = run_batch(spec.replace(backend="numpy"), 30, seed=11)
            assert strip(got) == strip(ref)

    def test_overflow_fallback_bit_identity(self, available, monkeypatch):
        # Force horizon overflow: the per-trial scalar regrowth must be
        # as invisible under the numba lane as under numpy.
        import repro.api.compile as compile_mod
        available("numba")
        monkeypatch.setattr(compile_mod, "_kernel_horizon_ops",
                            lambda n: 16)
        spec = noisy(n=16, engine="kernel", backend="numba")
        got = run_batch(spec, 50, seed=3, as_frame=True)
        ref = run_batch(spec.replace(engine="fast", backend="numpy"),
                        50, seed=3)
        assert strip(got.to_trial_results()) == strip(ref)


class TestCupyLaneOnHostArrays:
    """The device-array lane's code path, with ``xp`` = numpy."""

    def test_batch_bit_identical_and_labelled(self, available, numpy_xp):
        available("cupy")
        spec = noisy(n=24, engine="kernel", backend="cupy")
        frame = run_batch(spec, 40, seed=7, as_frame=True)
        results = frame.to_trial_results()
        assert all(r.backend == "cupy" for r in results)
        baseline = run_batch(spec.replace(backend="numpy"), 40, seed=7)
        assert strip(results) == strip(baseline)

    def test_overflow_fallback_bit_identity(self, available, numpy_xp,
                                            monkeypatch):
        import repro.api.compile as compile_mod
        available("cupy")
        monkeypatch.setattr(compile_mod, "_kernel_horizon_ops",
                            lambda n: 16)
        spec = noisy(n=16, engine="kernel", backend="cupy")
        got = run_batch(spec, 50, seed=3, as_frame=True)
        ref = run_batch(spec.replace(engine="fast", backend="numpy"),
                        50, seed=3)
        assert strip(got.to_trial_results()) == strip(ref)


def boundary_chunk(n, trials=2, k=48, seed=0):
    """A chunk whose *highest* pids win events (pid-plane stress)."""
    rng = make_rng(7000 + n + seed)
    scale = np.linspace(3.0, 0.05, n)[:, None]
    times = np.cumsum(rng.exponential(1.0, size=(trials, n, k)) * scale,
                      axis=2)
    inputs = [int(b) for b in rng.integers(0, 2, size=n)]
    tensor = np.ascontiguousarray(np.moveaxis(times, 0, 1))
    return tensor, inputs


def chunk_fields(out, t):
    return (out.decisions[t], int(out.total_ops[t]),
            int(out.max_round[t]), int(out.preference_changes[t]),
            sorted(out.halted[t]))


class TestPackedBoundaryGrid:
    """Satellite: the packed-pid boundary (n = 2047/2048/2049) on every
    backend.  The numpy lane is the reference; the numba lane must match
    it bit for bit across the boundary; the cupy lane must match inside
    the packed range and *refuse* past it (its tie discipline requires
    the packed plane)."""

    @pytest.mark.parametrize("n", [_PACK_MAX_N - 1, _PACK_MAX_N,
                                   _PACK_MAX_N + 1])
    def test_numba_matches_numpy(self, n):
        tensor, inputs = boundary_chunk(n)
        ref = replay_chunk(tensor, inputs, variant="lean")
        out = replay_chunk(tensor, inputs, variant="lean",
                           backend="numba")
        assert out.overflow.tolist() == ref.overflow.tolist()
        finished = 0
        for t in range(len(ref.overflow)):
            if ref.overflow[t]:
                continue
            assert chunk_fields(out, t) == chunk_fields(ref, t), (n, t)
            finished += 1
        assert finished > 0

    @pytest.mark.parametrize("n", [_PACK_MAX_N - 1, _PACK_MAX_N])
    def test_cupy_matches_numpy_in_packed_range(self, n, numpy_xp):
        tensor, inputs = boundary_chunk(n)
        ref = replay_chunk(tensor, inputs, variant="lean")
        out = replay_chunk(tensor, inputs, variant="lean", backend="cupy")
        assert out.overflow.tolist() == ref.overflow.tolist()
        for t in range(len(ref.overflow)):
            if not ref.overflow[t]:
                assert chunk_fields(out, t) == chunk_fields(ref, t)

    def test_cupy_refuses_past_packed_range(self, numpy_xp):
        tensor, inputs = boundary_chunk(_PACK_MAX_N + 1, trials=1, k=4)
        with pytest.raises(ConfigurationError, match="packed-pid"):
            replay_chunk(tensor, inputs, variant="lean", backend="cupy")

    @pytest.mark.parametrize("backend", ["numba", "cupy"])
    def test_overflow_prefix_matches_numpy(self, backend, numpy_xp):
        # A horizon too short to finish: the overflow markers (which
        # drive the batch-level scalar fallback) must agree per trial.
        tensor, inputs = boundary_chunk(64, trials=6, k=4)
        ref = replay_chunk(tensor, inputs, variant="lean")
        out = replay_chunk(tensor, inputs, variant="lean", backend=backend)
        assert ref.overflow.any()
        assert out.overflow.tolist() == ref.overflow.tolist()


class TestDifferentialBackendAxis:
    """The oracle gates every backend — and never degrades."""

    def test_numpy_report_records_the_axis(self):
        spec = noisy(n=7, engine="fast")
        report = assert_equivalent(spec, seed=3)
        assert report.ok
        assert (report.backend, report.backend_tier) == ("numpy", "bitwise")

    def test_numba_axis_bitwise(self):
        spec = noisy(n=9, engine="fast")
        report = run_differential(spec, seed=5, backend="numba")
        assert report.ok
        assert (report.backend, report.backend_tier) == ("numba", "bitwise")

    def test_cupy_axis_on_host_arrays(self, numpy_xp):
        spec = noisy(n=9, engine="fast")
        report = run_differential(spec, seed=5, backend="cupy")
        assert report.ok
        assert (report.backend, report.backend_tier) == \
            ("cupy", "float-tolerance")

    def test_oracle_refuses_uncovered_backends(self):
        capped = noisy(n=7, engine="fast",
                       protocol=ProtocolSpec(name="lean", round_cap=4))
        with pytest.raises(ConfigurationError, match="cannot drive"):
            run_differential(capped, seed=1, backend="cupy")

    def test_oracle_rejects_unknown_backends(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            run_differential(noisy(n=7, engine="fast"), seed=1,
                             backend="jax")


class TestFrameCompat:
    def test_payload_without_backend_column_loads(self):
        frame = run_batch(noisy(n=6, engine="fast"), 4, seed=2,
                          as_frame=True)
        payload = frame.to_payload()
        del payload["backend"]
        loaded = ResultFrame.from_payload(payload)
        assert loaded.column("backend").tolist() == [None] * 4
        results = loaded.to_trial_results()
        assert all(r.backend is None for r in results)

    def test_backend_column_round_trips(self, available):
        available("numba")
        spec = noisy(n=8, engine="kernel", backend="numba")
        frame = run_batch(spec, 5, seed=2, as_frame=True)
        loaded = ResultFrame.from_payload(frame.to_payload())
        assert loaded == frame
        assert loaded.column("backend").tolist() == ["numba"] * 5
