"""Tests for the shared-memory substrate."""

import pytest

from repro.errors import MemoryError_
from repro.memory import (
    AtomicRegister,
    SharedMemory,
    UnboundedBitArray,
    make_racing_arrays,
)
from repro.types import read, write


class TestAtomicRegister:
    def test_initial_value(self):
        assert AtomicRegister().read() == 0
        assert AtomicRegister(5).value == 5

    def test_write_then_read(self):
        reg = AtomicRegister()
        reg.write(1)
        assert reg.read() == 1

    def test_counters(self):
        reg = AtomicRegister()
        reg.read()
        reg.write(1)
        reg.write(0)
        reg.read()
        assert reg.reads == 2
        assert reg.writes == 2


class TestUnboundedBitArray:
    def test_untouched_reads_default(self):
        arr = UnboundedBitArray("a", default=0)
        assert arr.read(12345) == 0

    def test_write_then_read(self):
        arr = UnboundedBitArray("a")
        arr.write(7, 1)
        assert arr.read(7) == 1
        assert arr.read(6) == 0

    def test_prefix_is_one_and_read_only(self):
        arr = UnboundedBitArray("a0", prefix_value=1)
        assert arr.read(0) == 1
        with pytest.raises(MemoryError_):
            arr.write(0, 0)

    def test_no_prefix_index0_writable(self):
        arr = UnboundedBitArray("c0")
        arr.write(0, 1)
        assert arr.read(0) == 1

    def test_negative_index_rejected(self):
        arr = UnboundedBitArray("a")
        with pytest.raises(MemoryError_):
            arr.read(-1)
        with pytest.raises(MemoryError_):
            arr.write(-2, 1)

    def test_capacity_enforced(self):
        arr = UnboundedBitArray("a", capacity=4)
        arr.write(4, 1)
        with pytest.raises(MemoryError_):
            arr.write(5, 1)
        with pytest.raises(MemoryError_):
            arr.read(5)

    def test_max_touched_and_count(self):
        arr = UnboundedBitArray("a")
        assert arr.max_touched_index() == 0
        arr.write(3, 1)
        arr.write(9, 1)
        assert arr.max_touched_index() == 9
        assert arr.touched_count() == 2

    def test_items_sorted(self):
        arr = UnboundedBitArray("a")
        arr.write(5, 1)
        arr.write(2, 1)
        assert list(arr.items()) == [(2, 1), (5, 1)]

    def test_snapshot_restore_roundtrip(self):
        arr = UnboundedBitArray("a")
        arr.write(1, 1)
        arr.write(2, 1)
        snap = arr.snapshot()
        arr.write(3, 1)
        arr.restore(snap)
        assert arr.read(3) == 0
        assert arr.read(2) == 1

    def test_snapshot_is_hashable(self):
        arr = UnboundedBitArray("a")
        arr.write(1, 1)
        assert hash(arr.snapshot()) == hash(arr.snapshot())


class TestSharedMemory:
    def test_execute_read_write(self):
        mem = make_racing_arrays()
        res = mem.execute(write("a0", 1, 1), pid=0)
        assert res.value == 1
        res = mem.execute(read("a0", 1), pid=1)
        assert res.value == 1

    def test_read_your_writes_semantics(self):
        mem = make_racing_arrays()
        assert mem.execute(read("a1", 5)).value == 0
        mem.execute(write("a1", 5, 1))
        assert mem.execute(read("a1", 5)).value == 1

    def test_prefix_visible_through_execute(self):
        mem = make_racing_arrays()
        assert mem.execute(read("a0", 0)).value == 1
        assert mem.execute(read("a1", 0)).value == 1

    def test_total_ops_counts(self):
        mem = make_racing_arrays()
        mem.execute(read("a0", 1))
        mem.execute(write("a0", 1, 1))
        assert mem.total_ops == 2

    def test_unknown_array_rejected(self):
        mem = make_racing_arrays()
        with pytest.raises(MemoryError_):
            mem.execute(read("zz", 0))

    def test_duplicate_array_rejected(self):
        mem = make_racing_arrays()
        with pytest.raises(MemoryError_):
            mem.add_array(UnboundedBitArray("a0"))

    def test_snapshot_restore_roundtrip(self):
        mem = make_racing_arrays()
        mem.execute(write("a0", 1, 1))
        snap = mem.snapshot()
        mem.execute(write("a1", 1, 1))
        mem.restore(snap)
        assert mem.execute(read("a1", 1)).value == 0
        assert mem.execute(read("a0", 1)).value == 1

    def test_recorder_hook_called(self):
        events = []

        class Rec:
            def record(self, seq, pid, op, value):
                events.append((seq, pid, str(op), value))

        mem = make_racing_arrays(recorder=Rec())
        mem.execute(write("a0", 1, 1), pid=3)
        assert events == [(1, 3, "write a0[1] := 1", 1)]

    def test_capacity_passthrough(self):
        mem = make_racing_arrays(capacity=3)
        with pytest.raises(MemoryError_):
            mem.execute(write("a0", 4, 1))
