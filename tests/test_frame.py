"""Columnar ResultFrame: list-path bit-identity and round-trips.

The acceptance property of the frame pipeline:
``run_batch(spec, k, seed, as_frame=True).to_trial_results()`` equals
``run_batch(spec, k, seed)`` — for every engine, failure model, variant,
and ``workers`` value.  The fast-engine frame path goes through an
entirely different implementation (vectorized seeding, inline presample,
columnar sink), so these tests are the frame half of the differential
oracle.
"""

import numpy as np
import pytest

from repro._rng import make_rng
from repro.api import (
    BatchRunner,
    FailureSpec,
    HybridModelSpec,
    NoiseSpec,
    NoisyModelSpec,
    ProtocolSpec,
    ResultFrame,
    StepModelSpec,
    TrialSpec,
    run_batch,
    run_trial,
    run_trials_frame,
    trial_seed_sequences,
)
from repro.errors import ConfigurationError
from repro.sim.frame import ALL_COLUMNS, FrameBuilder

EXPO = NoiseSpec.of("exponential", mean=1.0)


def noisy(n=8, **kwargs):
    return TrialSpec(n=n, model=NoisyModelSpec(noise=EXPO), **kwargs)


FRAME_SPECS = [
    pytest.param(noisy(n=300, stop_after_first_decision=True),
                 id="fast-stop-first"),
    pytest.param(noisy(n=300), id="fast-run-to-quiescence"),
    pytest.param(noisy(n=12, engine="fast"), id="fast-small-n"),
    pytest.param(noisy(n=12), id="event-auto"),
    pytest.param(noisy(n=40, engine="fast", failures=FailureSpec(h=0.02)),
                 id="fast-halting"),
    pytest.param(noisy(n=24, engine="fast",
                       protocol=ProtocolSpec(name="random-tie")),
                 id="fast-random-tie"),
    pytest.param(noisy(n=24, engine="fast",
                       protocol=ProtocolSpec(name="optimized")),
                 id="fast-optimized"),
    pytest.param(noisy(n=24, engine="fast",
                       protocol=ProtocolSpec(name="conservative")),
                 id="fast-conservative"),
    pytest.param(TrialSpec(n=6, model=StepModelSpec()), id="step"),
    pytest.param(TrialSpec(n=4, model=HybridModelSpec(quantum=8)),
                 id="hybrid"),
]


class TestFrameListIdentity:
    @pytest.mark.parametrize("spec", FRAME_SPECS)
    def test_frame_equals_list_path(self, spec):
        results = run_batch(spec, 16, seed=2000)
        frame = run_batch(spec, 16, seed=2000, as_frame=True)
        assert len(frame) == 16
        assert frame.to_trial_results() == results

    def test_parallel_frame_identical_to_serial(self):
        spec = noisy(n=300, stop_after_first_decision=True)
        serial = run_batch(spec, 12, seed=7, as_frame=True)
        parallel = run_batch(spec, 12, seed=7, workers=2, as_frame=True)
        chunky = BatchRunner(workers=3, chunk_size=1).run_frame(
            spec, 12, seed=7)
        assert serial == parallel == chunky

    def test_generator_seed_continues_stream_like_list_path(self):
        spec = noisy(n=300, stop_after_first_decision=True)
        root_frame, root_list = make_rng(5), make_rng(5)
        frames = [run_batch(spec, 4, seed=root_frame, as_frame=True)
                  for _ in range(2)]
        lists = [run_batch(spec, 4, seed=root_list) for _ in range(2)]
        assert frames[0].to_trial_results() == lists[0]
        assert frames[1].to_trial_results() == lists[1]
        assert frames[0] != frames[1]

    def test_int_seed_direct_run_trials_frame(self):
        # The non-SeedSequence seed path (no batched seeding pattern).
        spec = noisy(n=12, engine="fast")
        frame = run_trials_frame(spec, [3, 4])
        assert frame.to_trial_results() == [run_trial(spec, 3),
                                            run_trial(spec, 4)]


class TestFrameColumns:
    def test_optional_columns_use_nan(self):
        spec = noisy(n=300, stop_after_first_decision=True)
        frame = run_batch(spec, 5, seed=1, as_frame=True)
        rounds = frame.column("first_decision_round")
        assert rounds.dtype == np.float64
        assert np.isfinite(rounds).all()
        assert np.isnan(frame.column("sim_time")).all()  # fast engine
        assert frame.column("n").dtype == np.int64
        assert frame.decided.all() and frame.agreed.all()

    def test_budget_exhausted_trials_are_nan(self):
        spec = noisy(n=8, engine="event", max_total_ops=3)
        frame = run_batch(spec, 3, seed=1, as_frame=True)
        assert frame.column("budget_exhausted").all()
        assert np.isnan(frame.column("first_decision_round")).all()
        assert not frame.decided.any()

    def test_unknown_column_raises(self):
        frame = run_batch(noisy(), 2, seed=1, as_frame=True)
        with pytest.raises(KeyError):
            frame.column("nope")

    def test_fast_path_materializes_no_trial_results(self, monkeypatch):
        # The acceptance criterion: zero TrialResult objects on the
        # fast-engine frame path (the sink writes columns directly).
        import repro.sim.results as results_mod
        constructed = []
        original = results_mod.TrialResult

        class Counting(original):
            def __init__(self, *args, **kwargs):
                constructed.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(results_mod, "TrialResult", Counting)
        monkeypatch.setattr("repro.sim.fast.TrialResult", Counting)
        monkeypatch.setattr("repro.api.compile.TrialResult", Counting)
        spec = noisy(n=300, stop_after_first_decision=True)
        frame = run_batch(spec, 8, seed=2000, as_frame=True)
        assert len(frame) == 8
        assert constructed == []


class TestFrameRoundTrips:
    def test_payload_round_trip(self):
        frame = run_batch(noisy(n=300), 6, seed=3, as_frame=True)
        clone = ResultFrame.from_payload(frame.to_payload())
        assert clone == frame

    def test_from_results_round_trip(self):
        spec = noisy(n=10, engine="event", failures=FailureSpec(h=0.05))
        results = run_batch(spec, 8, seed=9)
        frame = ResultFrame.from_results(results, spec=spec)
        assert frame.to_trial_results() == results
        assert frame.spec == spec

    def test_concat(self):
        spec = noisy(n=300, stop_after_first_decision=True)
        seqs = trial_seed_sequences(11, 6)
        whole = run_trials_frame(spec, seqs)
        parts = [run_trials_frame(spec, seqs[:2]),
                 run_trials_frame(spec, seqs[2:])]
        assert ResultFrame.concat(parts) == whole

    def test_empty_frame(self):
        frame = run_batch(noisy(), 0, seed=1, as_frame=True)
        assert len(frame) == 0
        assert frame.to_trial_results() == []
        assert ResultFrame.concat([]) == frame

    def test_builder_rejects_ragged_columns(self):
        frame = run_batch(noisy(), 2, seed=1, as_frame=True)
        payload = frame.to_payload()
        payload["total_ops"] = payload["total_ops"][:1]
        with pytest.raises(ValueError):
            ResultFrame.from_payload(payload)
        with pytest.raises(ValueError):
            ResultFrame({name: payload[name]
                         for name in ALL_COLUMNS if name != "n"})

    def test_builder_mixed_append_paths(self):
        spec = noisy(n=12, engine="fast")
        result = run_trial(spec, 5)
        builder = FrameBuilder(spec=spec)
        builder.append_result(result)
        assert builder.build().to_trial_results() == [result]


class TestBudgetedSpecsRunVectorized:
    """PR 7 (supersedes the old stay-on-event regression): the fast
    replay now enforces ``max_total_ops`` with the event engine's exact
    stop semantics, so budgeted specs resolve vectorized and the
    ``budget_exhausted`` flag rides the frame's bool column."""

    def test_auto_resolves_to_fast(self):
        from repro.api import resolve_engine_info
        info = resolve_engine_info(noisy(n=300, max_total_ops=50))
        assert info.engine == "fast" and info.reason is None

    def test_budget_is_honoured_at_large_n(self):
        result = run_trial(noisy(n=300, max_total_ops=50), seed=1)
        assert result.engine == "fast"
        assert result.budget_exhausted and result.total_ops == 50

    def test_budget_column_round_trips(self):
        spec = noisy(n=300, max_total_ops=50)
        frame = run_batch(spec, 8, seed=1, as_frame=True)
        assert frame.column("budget_exhausted").all()
        assert (frame.column("total_ops") == 50).all()
        listed = run_batch(spec, 8, seed=1)
        assert ResultFrame.from_results(listed).column(
            "budget_exhausted").all()
        assert frame.to_trial_results() == listed


class TestDisagreementColumns:
    def test_decided_value_is_nan_on_disagreement(self):
        # check=False runs of the unsafe eager variant can disagree; the
        # fast sink and from_results must then agree on NaN.
        spec = noisy(n=16, engine="fast", check=False,
                     protocol=ProtocolSpec(name="eager"))
        frame = run_batch(spec, 60, seed=0, as_frame=True)
        rebuilt = ResultFrame.from_results(frame.to_trial_results())
        assert np.array_equal(frame.column("decided_value"),
                              rebuilt.column("decided_value"),
                              equal_nan=True)
        disagreed = ~frame.agreed
        assert disagreed.any(), "expected at least one disagreement"
        assert np.isnan(frame.column("decided_value")[disagreed]).all()


class TestFrameRefusals:
    def test_record_spec_refused(self):
        spec = noisy(record=True, engine="event")
        with pytest.raises(ConfigurationError):
            run_batch(spec, 2, seed=1, as_frame=True)

    def test_opaque_spec_refused_across_processes_only(self):
        from repro.sched.delta import ZeroDelta
        from repro.api import DeltaSpec
        spec = TrialSpec(n=4, model=NoisyModelSpec(
            noise=EXPO,
            delta=DeltaSpec(kind="opaque", instance=ZeroDelta())))
        serial = run_batch(spec, 2, seed=1, as_frame=True)
        assert len(serial) == 2
        with pytest.raises(ConfigurationError):
            run_batch(spec, 2, seed=1, workers=2, as_frame=True)

    def test_check_violation_surfaces_columnar(self):
        from repro.errors import InvariantViolation
        # The eager variant is the unsafe negative control: with enough
        # trials a disagreement appears and the columnar check must
        # raise exactly like the per-trial path.
        spec = noisy(n=16, engine="fast",
                     protocol=ProtocolSpec(name="eager"))
        list_error = frame_error = None
        try:
            run_batch(spec, 40, seed=0)
        except InvariantViolation as err:
            list_error = str(err)
        try:
            run_batch(spec, 40, seed=0, as_frame=True)
        except InvariantViolation as err:
            frame_error = str(err)
        assert (list_error is None) == (frame_error is None)
        if list_error is not None:
            assert list_error == frame_error
