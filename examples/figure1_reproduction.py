"""Reproduce the paper's Figure 1 at a configurable scale.

Figure 1 plots the mean round at which the first process terminates
against the number of processes (log-x) for six interarrival
distributions.  This script runs a reduced grid by default (about a
minute) and renders the same table and an ASCII version of the plot;
``--paper`` switches to the full 10,000-trial grid up to n = 100,000
(hours).

Run:  python examples/figure1_reproduction.py [--trials T] [--paper]
"""

import argparse

from repro.experiments import figure1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=60)
    parser.add_argument("--paper", action="store_true",
                        help="full paper grid: n up to 100000, 10000 trials")
    parser.add_argument("--seed", type=int, default=2000)
    args = parser.parse_args()

    if args.paper:
        ns, trials = (1, 10, 100, 1_000, 10_000, 100_000), 10_000
    else:
        ns, trials = (1, 10, 100, 1_000, 10_000), args.trials

    print(f"running {len(ns)} x 6 grid at {trials} trials/point ...\n")
    result = figure1.run(ns=ns, trials=trials, seed=args.seed)
    print(figure1.format_result(result))
    print()
    print(figure1.ascii_plot(result))
    print("\npaper shape to look for: logarithmic growth with small "
          "constants;\nthe normal(1,0.04) series *decreases* with n "
          "(the paper's 'intriguing' inversion).")


if __name__ == "__main__":
    main()
