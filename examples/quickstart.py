"""Quickstart: run lean-consensus under noisy scheduling.

The paper's headline setting: n processes, half preferring 0 and half
preferring 1, shared-memory racing counters, an adversarial schedule
perturbed by random noise.  The deterministic protocol terminates in
O(log n) rounds because noise disperses the pack (Theorem 12).

Run:  python examples/quickstart.py
"""

from repro import run_noisy_trial, run_noisy_trials, summarize
from repro.noise import Exponential


def main() -> None:
    # One execution, fully reproducible from the seed.
    result = run_noisy_trial(n=100, noise=Exponential(1.0), seed=42)

    assert result.agreed, "agreement is guaranteed under any schedule"
    print(f"{result.n} processes, inputs half 0 / half 1")
    print(f"first process decided {next(iter(result.decided_values))} "
          f"at round {result.first_decision_round} "
          f"({result.first_decision_ops} operations)")
    print(f"last process decided at round {result.last_decision_round} "
          "(Lemma 4: at most one round later)")
    print(f"total shared-memory operations: {result.total_ops}")

    # A batch of independent trials, aggregated.
    stats = summarize(run_noisy_trials(
        50, 100, Exponential(1.0), seed=7, stop_after_first_decision=True))
    print(f"\nover {stats.trials} trials: mean first-termination round = "
          f"{stats.mean_first_round:.2f} +/- {stats.ci95_first_round:.2f}")
    print("(the paper's Figure 1 reports ~4 for exponential noise at "
          "n = 100)")


if __name__ == "__main__":
    main()
