"""Quickstart: declare a trial spec, run it, and batch it in parallel.

The paper's headline setting: n processes, half preferring 0 and half
preferring 1, shared-memory racing counters, an adversarial schedule
perturbed by random noise.  The deterministic protocol terminates in
O(log n) rounds because noise disperses the pack (Theorem 12).

A trial is described by a declarative, serializable
:class:`repro.TrialSpec`; batches of trials run through
:func:`repro.run_batch`, which fans deterministic per-trial seeds across
worker processes with results bit-identical to serial execution.

Engine selection matrix (``spec.engine``, resolved engine on
``result.engine``, fallback reasons on ``result.engine_reason``):

    spec                            auto          "kernel"  "fast"  "event"
    ------------------------------  ------------  --------  ------  -------
    lean / optimized / eager /
      conservative / random-tie,    trials>=512 &
      any noise, random halting h,    n<=128 (or
      round_cap, max_total_ops        n<=1024,
      budget                          inverse-CDF
                                      noise)      kernel    kernel  fast   event
                                    n>=256 else   fast      kernel  fast   event
                                    n<256  else   event+why kernel  fast   event
    adaptive adversary, record=True,
      per-kind write noise,
      shared-coin / bounded / factory   event+why error     error   event
    step or hybrid model                step/hybrid (engine must be auto)

The ``"kernel"`` row is the trial-parallel lockstep replay: the whole
batch advances one event per trial per numpy step, bit-identical to
``"fast"`` for every variant, crash model, and worker count (a
10,000-trial Figure-1 cell runs 5x+ the frame path; n=1 cells collapse
to a broadcast).  ``auto`` picks it when the batch is deep enough
(>= 512 trials) and the spec fits a lockstep lane: any noise at
n <= 128, or n <= 1024 when the distribution has a closed-form inverse
CDF — every Figure-1 distribution qualifies (exponential,
shifted-exponential, uniform, geometric, two-point, and truncated
normals with finite bounds) — there the per-event pick is a segmented
16-ary tournament min, O(log n) per transition instead of a flat scan
over all processes, and the measured n=1024 workload clears the frame
path ~2x (``python -m repro bench``; ``--profile`` writes the cProfile
shape).  Round caps and ``max_total_ops`` budgets, formerly
event-only, replay exactly on both vectorized engines: the budget
stops at the precise executed event and the frame records
``budget_exhausted`` per trial.  What the kernel refuses, it refuses
exactly where ``"fast"`` does (the two share eligibility, and a
refusal message lists *every* remaining blocker: adaptive adversaries,
``record=True``, per-op-kind write noise, and protocols outside the
fast family), plus one lane-specific guard: the discrete geometric and
two-point lanes break exact cross-process time ties through the
packed-pid trick, so explicit ``engine="kernel"`` refuses them past
n = 2048.  Distributions without a closed-form inverse CDF (unbounded
truncated normals, opaque instances, subclasses) keep their legacy
per-trial sampling — and the legacy n <= 128 auto cap — and only the
replay runs lockstep.

``engine="fast"``/``"kernel"`` compose with ``workers``: the engine is
resolved once per batch (never per worker chunk) and results stay
bit-identical to serial per-trial runs either way.  The experiment CLIs
expose the same choice as ``--engine fast`` / ``--engine kernel`` next
to ``--workers`` (e.g. ``python -m repro figure1 --paper --engine
kernel``).

The kernel's array math is itself pluggable — ``spec.backend`` / CLI
``--backend``, resolved backend on ``result.backend``:

    backend   oracle tier  needs        covers
    --------  -----------  -----------  ------------------------------
    numpy     bitwise      (built in)   everything (the default)
    numba     bitwise      numba wheel  every kernel lane (JIT loops)
    cupy      float-tol    cupy + GPU   lean variant, no crashes/caps/
                                        budgets, n <= 2048

An unavailable or non-covering backend degrades to numpy with the
reason appended to ``result.engine_reason``; pinning ``engine="kernel"``
alongside it raises :class:`repro.ConfigurationError` naming the
blocker instead.  The differential oracle accepts ``backend=`` and
gates each lane against the scalar reference (bitwise for numpy/numba;
documented 1e-12 tolerance tier for cupy's device libm).

Sweeps and frames: grids of trials are declared as a
:class:`repro.SweepSpec` (base spec + named axes) and executed through
:func:`repro.run_sweep`, which returns one columnar
:class:`repro.ResultFrame` per grid cell — the batch representation that
skips per-trial dataclasses on the fast engine and feeds the columnar
aggregators in :mod:`repro.analysis.aggregate`.  ``run_batch(...,
as_frame=True)`` gives the same frame for a single cell, and
``cache_dir=`` (CLI: ``--cache-dir``) persists finished cells so
``--paper``-scale sweeps resume after an interruption.

Sweeps as jobs: the same sweep submitted to :mod:`repro.serve` becomes
a persisted, content-addressed job — chunked across workers, resumable
after a SIGKILL (stored chunks are adopted, only missing ones
recompute), deduplicated against other jobs sharing chunks, with
streaming per-cell aggregates queryable mid-run — and its frames are
bit-identical to the in-process ``run_sweep``.  ``python -m repro serve
serve --store DIR`` serves the job API over HTTP; ``submit`` / ``status``
/ ``watch`` / ``result`` / ``cancel`` / ``gc`` drive it from the CLI.

Failure semantics (the short version — the full table is in
``help(repro)``): a killed worker requeues its chunk with persisted
backoff and fails typed after 3 losses; a wedged worker is cancelled at
``chunk_timeout`` and its late result, if any, is adopted idempotently;
a killed coordinator resumes from the store, and its time-bounded
chunk leases expire so a second coordinator can take over (stale claims
— dead pid, reused pid, expired deadline — never block progress); a
torn object on disk reads as a miss on every path and is recomputed;
``cancel`` drains cooperatively keeping stored chunks; the HTTP client
bounds every call with timeouts + retries and raises typed errors.
All of it is exercised by the seeded, deterministic chaos harness in
:mod:`repro.serve.chaos` — under any fault plan the frames must stay
bit-identical to ``run_sweep``.

Migrating ``run_sweep`` to multi-node: keep the sweep declaration,
point every coordinator at the same store, and run the same job from
each (``JobRunner(store, backend="worker-pool").run(job)``); leases
partition chunks between coordinators and the store dedups the rest.

Run:  python examples/quickstart.py

Migrating from the legacy kwarg API?  ``run_noisy_trial(n=100,
noise=Exponential(1.0), seed=42)`` still works and is exactly equivalent
to the spec below; see the kwarg->spec and loop->sweep migration tables
in ``help(repro)``.
"""

import json

from repro import (
    NoiseSpec,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    run_batch,
    run_sweep,
    run_trial,
    summarize,
)
from repro.analysis.aggregate import MeanCI


def main() -> None:
    # A complete description of one trial: 100 processes, exponential(1)
    # interarrival noise, the paper's half-and-half inputs.
    spec = TrialSpec(n=100, model=NoisyModelSpec(
        noise=NoiseSpec.of("exponential", mean=1.0)))

    # Specs serialize; sweeps and distributed runs ship them as JSON.
    wire = json.dumps(spec.to_dict())
    assert TrialSpec.from_dict(json.loads(wire)) == spec

    # One execution, fully reproducible from the seed.
    result = run_trial(spec, seed=42)

    assert result.agreed, "agreement is guaranteed under any schedule"
    print(f"{result.n} processes, inputs half 0 / half 1")
    print(f"first process decided {next(iter(result.decided_values))} "
          f"at round {result.first_decision_round} "
          f"({result.first_decision_ops} operations)")
    print(f"last process decided at round {result.last_decision_round} "
          "(Lemma 4: at most one round later)")
    print(f"total shared-memory operations: {result.total_ops} "
          f"(engine: {result.engine})")

    # The same spec on the vectorized engine: engine="auto" keeps n=100
    # on the event engine (and says why); engine="fast" overrides.
    print(f"auto kept the event engine because: {result.engine_reason}")
    fast = run_trial(spec.replace(engine="fast"), seed=42)
    assert fast.agreed and fast.engine == "fast"
    print(f"fast engine decided at round {fast.first_decision_round} "
          "(same O(log n) race, vectorized replay)")

    # A batch of independent trials.  workers=2 runs them across a
    # process pool; the results are bit-identical to the serial run.
    batch_spec = spec.replace(stop_after_first_decision=True)
    serial = run_batch(batch_spec, 50, seed=7)
    parallel = run_batch(batch_spec, 50, seed=7, workers=2)
    assert serial == parallel

    stats = summarize(serial)
    print(f"\nover {stats.trials} trials: mean first-termination round = "
          f"{stats.mean_first_round:.2f} +/- {stats.ci95_first_round:.2f}")
    print("(the paper's Figure 1 reports ~4 for exponential noise at "
          "n = 100)")

    # The same batch as a columnar frame: identical trials, numpy
    # columns instead of dataclasses (the fast engine writes them
    # directly — no per-trial object churn at Figure-1 scale).
    frame = run_batch(batch_spec, 50, seed=7, as_frame=True)
    assert frame.to_trial_results() == serial
    print(f"frame columns: {len(frame)} trials, mean ops at first "
          f"decision = {frame.column('first_decision_ops').mean():.1f}")

    # A mini Figure-1 sweep as a declaration: one axis over n, executed
    # grid-order-deterministically, aggregated columnar.  Add
    # cache_dir="~/.cache/repro-sweeps" to make paper-scale runs
    # resumable, and workers=8 to fan cells across processes.
    sweep = SweepSpec(base=batch_spec, axes=(SweepAxis("n", (10, 100)),),
                      trials=50)
    mean_ci = MeanCI("first_decision_round")
    print("\nmini sweep (mean first-termination round):")
    for cell, cell_frame in run_sweep(sweep, seed=7):
        mean, half = mean_ci(cell_frame)
        print(f"  n={cell.coord('n'):4d}: {mean:.2f} +/- {half:.2f}")

    # The same sweep as a *job*: persisted, chunked, content-addressed.
    # Kill this process mid-run and rerun it — stored chunks are adopted
    # and only the missing ones recompute; the frames stay bit-identical
    # to run_sweep above.  (`python -m repro serve` serves the same
    # lifecycle over HTTP.)
    import tempfile

    from repro.serve import JobRunner, ResultStore, SweepJob

    with tempfile.TemporaryDirectory() as store_dir:
        store = ResultStore(store_dir)
        job = SweepJob.from_sweep(sweep, seed=7, chunk_size=25)
        result = JobRunner(store).run(job)
        reference = dict(enumerate(run_sweep(sweep, seed=7).frames))
        assert all(frame == reference[cell.index] for cell, frame in result)
        rerun = JobRunner(store).run(job)  # everything adopted, 0 computed
        assert rerun.state.chunks_done == len(job.chunks())
        print(f"\njob {job.job_id[:12]}... done: "
              f"{result.state.trials_done} trials in "
              f"{len(job.chunks())} chunks, bit-identical to run_sweep")


if __name__ == "__main__":
    main()
