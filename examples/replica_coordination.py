"""Scenario: binary commit coordination among service replicas.

The paper's motivation: in real systems, timing is not controlled by an
intelligent demon — network delays, clock skew, and contention act as
*noise* on top of whatever the environment does.  This example models a
small replicated service whose replicas must agree on a binary decision
(e.g., apply or drop a configuration change) using lean-consensus over a
shared coordination array, under several "deployment" noise profiles:

* same-rack cluster: tight log-normal latencies;
* cross-zone cluster: wider latencies plus a shifted floor (min RTT);
* congested network: a mixture with a heavy slow tail.

It also demonstrates *adaptivity* (the paper: performance depends only on
the number of processes actually running): a deployment where only two
replicas contend decides almost immediately.

Run:  python examples/replica_coordination.py
"""

from repro import run_noisy_trials, summarize
from repro.noise import LogNormal, Mixture, ShiftedExponential

PROFILES = {
    "same-rack (lognormal 0.2)": LogNormal(0.0, 0.2),
    "cross-zone (0.5 + exp 0.5)": ShiftedExponential(0.5, 0.5),
    "congested (90/10 slow-tail mix)": Mixture(
        [LogNormal(0.0, 0.2), ShiftedExponential(3.0, 2.0)],
        weights=[0.9, 0.1]),
}


def report(label: str, n: int, noise, seed: int) -> None:
    trials = run_noisy_trials(60, n, noise, seed=seed)
    stats = summarize(trials)
    ops_per_replica = stats.mean_total_ops / n
    print(f"  {label:34s} n={n:3d}  "
          f"last-decision round {stats.mean_last_round:5.2f}  "
          f"~{ops_per_replica:5.1f} ops/replica  "
          f"agreement {stats.agreement_rate:.0%}")


def main() -> None:
    print("Commit coordination via lean-consensus "
          "(half the replicas propose 'apply', half 'drop'):\n")
    for seed, (label, noise) in enumerate(PROFILES.items(), start=1):
        report(label, 32, noise, seed)

    print("\nAdaptivity: cost tracks the number of *active* contenders "
          "(Section 1):")
    for n in (2, 8, 32, 128):
        report(f"cross-zone, {n} active replicas", n,
               PROFILES["cross-zone (0.5 + exp 0.5)"], seed=100 + n)

    print("\nNote: every run agreed — safety never depends on timing; "
          "only latency does.")


if __name__ == "__main__":
    main()
