"""Scenario: consensus with crashing participants.

Two failure regimes from the paper:

* random halting (Section 3.1.2): each process dies with probability h per
  operation; survivors still decide quickly and agree;
* an adaptive kill-the-leader adversary (Section 10): every time a process
  pulls ahead, it is crashed — costing the race a restart per crash, the
  O(f log n) bound.

Run:  python examples/fault_tolerance.py
"""

from repro import run_noisy_trial, run_noisy_trials, summarize
from repro.failures import KillLeaderAdversary
from repro.noise import Exponential

N = 48


def random_halting_demo() -> None:
    print(f"Random halting, n={N}, exponential noise:")
    for h in (0.0, 0.002, 0.01, 0.05):
        stats = summarize(run_noisy_trials(
            40, N, Exponential(1.0), seed=int(h * 10_000) + 1, h=h))
        print(f"  h={h:<6}: mean deaths/trial {stats.mean_halted:5.2f}, "
              f"survivors decide by round "
              f"{stats.mean_last_round:5.2f}, "
              f"agreement {stats.agreement_rate:.0%}")


def adaptive_adversary_demo() -> None:
    print(f"\nAdaptive kill-the-leader adversary, n={N}:")
    for budget in (0, 2, 4, 8):
        rounds = []
        crashes = []
        for seed in range(30):
            adversary = KillLeaderAdversary(budget=budget, lead=1)
            result = run_noisy_trial(N, Exponential(1.0),
                                     seed=1000 + budget * 100 + seed,
                                     crash_adversary=adversary,
                                     engine="event")
            assert result.agreed
            rounds.append(result.last_decision_round)
            crashes.append(len(adversary.crashed))
        mean_round = sum(rounds) / len(rounds)
        mean_crash = sum(crashes) / len(crashes)
        print(f"  budget f={budget}: crashes used {mean_crash:4.1f}, "
              f"mean last-decision round {mean_round:5.2f} "
              "(grows ~linearly in f: the O(f log n) bound)")


def main() -> None:
    random_halting_demo()
    adaptive_adversary_demo()
    print("\nAgreement held in every run — failures cost time, never "
          "safety.")


if __name__ == "__main__":
    main()
