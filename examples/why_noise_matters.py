"""Why the noise assumption is load-bearing (and what the backup is for).

FLP says deterministic consensus is impossible under a fully adversarial
asynchronous scheduler.  lean-consensus does not contradict that: a
noiseless (degenerate) schedule can run the two teams in perfect lockstep
forever.  This example:

1. builds that lockstep execution explicitly (constant "noise", staggered
   starts) and watches lean-consensus spin;
2. adds the paper's Section-8 construction — cut off at r_max and fall
   back to a randomized backup — and watches the *combined* protocol
   escape the same schedule;
3. shows that the tiniest admissible noise already rescues the plain
   protocol.

Run:  python examples/why_noise_matters.py
"""

from repro._rng import make_rng
from repro.noise import Constant, TruncatedNormal
from repro.sched.delta import StaggeredStart
from repro.sim.runner import run_noisy_trial


def lockstep_spins_forever() -> None:
    print("1. Degenerate (constant) noise — the adversary's lockstep:")
    result = run_noisy_trial(
        2, Constant(1.0), seed=1, allow_degenerate=True,
        delta=StaggeredStart(0.25), dither_epsilon=1e-12,
        max_total_ops=2_000, check=False)
    assert result.budget_exhausted and not result.decisions
    print(f"   2 processes, 2000 operations, decisions: "
          f"{len(result.decisions)} — lean-consensus never terminates "
          "(this is FLP, not a bug)")


def bounded_protocol_escapes() -> None:
    print("\n2. Same schedule, Section-8 combined protocol "
          "(cutoff + randomized backup):")
    result = run_noisy_trial(
        2, Constant(1.0), seed=2, allow_degenerate=True,
        delta=StaggeredStart(0.25), dither_epsilon=1e-12,
        protocol="bounded", round_cap=6, engine="event")
    assert result.all_decided and result.agreed
    print(f"   both processes decided "
          f"{next(iter(result.decided_values))} "
          f"(backup used by {result.used_backup} of 2); agreement holds "
          "across the main/backup boundary")


def modest_noise_rescues() -> None:
    print("\n3. Admissible noise on the same adversary "
          "(truncated normal around the same mean):")
    for sigma in (0.2, 0.05):
        noise = TruncatedNormal(1.0, sigma, 0.0, 2.0)
        result = run_noisy_trial(
            2, noise, seed=3, delta=StaggeredStart(0.25), engine="event",
            max_total_ops=200_000)
        assert result.all_decided and result.agreed
        print(f"   sigma={sigma}: decided at round "
              f"{result.last_decision_round}")
    print("   any non-degenerate noise eventually breaks the tie "
          "(Theorem 12); the round count\n   scales with the noise "
          "magnitude — see the EXP-ABL2a ablation for the sweep")


def main() -> None:
    lockstep_spins_forever()
    bounded_protocol_escapes()
    modest_noise_rescues()


if __name__ == "__main__":
    main()
