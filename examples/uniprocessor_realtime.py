"""Scenario: wait-free agreement on a pre-emptive uniprocessor (Section 7).

An embedded controller time-shares one CPU among tasks of different
priorities under quantum scheduling.  Theorem 14: with a quantum of at
least 8 operations, every task running lean-consensus decides within 12 of
its own operations — a *constant* bound, no noise assumption needed.

The example drives the hybrid-scheduled engine with an adversarial random
pre-emption strategy and distinct priorities, then shows what goes wrong
with a too-small quantum (lockstep, no progress bound).

Run:  python examples/uniprocessor_realtime.py
"""

from repro import run_hybrid_trial
from repro._rng import make_rng


def adversarial_chooser(rng):
    """Pick uniformly among the legal dispatch choices — a randomized
    adversary probing the pre-emption rules."""

    def choose(legal):
        return legal[int(rng.integers(0, len(legal)))]

    return choose


def main() -> None:
    print("Theorem 14: quantum >= 8 => every task decides in <= 12 ops\n")

    n = 6
    priorities = [0, 0, 1, 1, 2, 2]   # three priority bands
    for trial_seed in range(5):
        rng = make_rng(trial_seed)
        result = run_hybrid_trial(
            n, quantum=8, priorities=priorities,
            initial_used={0: 8},               # task 0 starts mid-quantum
            chooser=adversarial_chooser(rng),
            seed=trial_seed)
        worst = max(d.ops for d in result.decisions.values())
        value = next(iter(result.decided_values))
        print(f"  trial {trial_seed}: all {n} tasks decided {value}; "
              f"worst-case ops/task = {worst} (bound: 12)")
        assert worst <= 12

    print("\nWith quantum 4 the bound disappears (equal-priority tasks can "
          "lockstep):")
    rng = make_rng(99)
    result = run_hybrid_trial(
        2, quantum=4, chooser=adversarial_chooser(rng), seed=9,
        max_total_ops=200, check=False)
    if result.budget_exhausted:
        print("  2 tasks, quantum 4: no decision after 200 operations "
              "(lockstep) — the quantum threshold is load-bearing")
    else:
        worst = max(d.ops for d in result.decisions.values())
        print(f"  2 tasks, quantum 4: decided, but worst ops/task = {worst}")


if __name__ == "__main__":
    main()
