"""Scenario: consensus in a crash-prone message-passing cluster.

Section 10 of the paper asks whether noisy scheduling helps consensus in
asynchronous *message passing*.  This example composes three substrates:

    lean-consensus  (unchanged shared-memory protocol machines)
        over ABD    (atomic registers emulated on a server majority)
        over a      discrete-event network with noisy delivery latency.

Network latency noise plays the role of scheduling noise; quorums absorb a
server-minority crash; the protocol code is byte-for-byte the same state
machine that runs on the shared-memory engines.

Run:  python examples/message_passing_cluster.py
"""

from repro.netsim import run_mp_trial
from repro.noise import ShiftedExponential

LATENCY = ShiftedExponential(0.5, 0.5)  # 0.5 RTT floor + exponential jitter


def show(label: str, **kwargs) -> None:
    trial = run_mp_trial(latency=LATENCY, **kwargs)
    assert trial.all_decided and trial.agreed
    last = max(d.round for d in trial.decisions.values())
    value = next(iter({d.value for d in trial.decisions.values()}))
    print(f"  {label:42s} decided {value} by round {last:2d}; "
          f"{trial.delivered_messages:6d} msgs, "
          f"{trial.transactions:4d} register txns, "
          f"t={trial.sim_time:7.1f}")


def main() -> None:
    print("lean-consensus over ABD-emulated registers "
          "(half propose 0, half propose 1):\n")
    show("4 clients, 5 servers, no crashes", n=4, seed=1, n_servers=5)
    show("4 clients, 5 servers, 2 servers crashed", n=4, seed=2,
         n_servers=5, crash_servers=2)
    show("8 clients, 7 servers, 3 servers crashed", n=8, seed=3,
         n_servers=7, crash_servers=3)
    show("16 clients, 5 servers, no crashes", n=16, seed=4, n_servers=5)

    print("\nmessage cost anatomy: each register op = 2 phases x "
          "(n_servers requests + quorum replies);")
    print("crashing servers *reduces* traffic (fewer replicas answer) "
          "without affecting safety,")
    print("as long as a majority survives — with a crashed majority, "
          "transactions block forever.")


if __name__ == "__main__":
    main()
