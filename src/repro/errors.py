"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An experiment, scheduler, or model was configured inconsistently."""


class DistributionError(ConfigurationError):
    """A noise distribution violates the model's requirements.

    Section 3.1 of the paper requires noise distributions to produce only
    non-negative values and to not be concentrated on a single point.
    """


class ProtocolError(ReproError):
    """A protocol state machine was driven incorrectly.

    Raised, for example, when ``apply`` is called with a result that does not
    match the pending operation, or when a decided process is asked for
    another operation.
    """


class MemoryError_(ReproError):
    """An illegal shared-memory access (e.g. writing a read-only location)."""


class SchedulerError(ReproError):
    """A scheduler was asked to do something inconsistent with its model."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class InvariantViolation(ReproError):
    """A checked correctness invariant (agreement, validity, ...) failed.

    These are raised by the invariant-checking hooks in the engine and by the
    model checker; in a correct protocol they indicate a bug in the protocol
    implementation (or, for the intentionally unsafe variants shipped for
    ablation, the expected counterexample).
    """

    def __init__(self, message: str, witness: object = None) -> None:
        super().__init__(message)
        #: Arbitrary structured data describing the failure (e.g. a trace).
        self.witness = witness


class ModelCheckError(ReproError):
    """The model checker exceeded its configured state or depth budget."""


class AggregationError(ReproError):
    """A columnar aggregation over a result frame is undefined.

    Raised, for example, when a mean over ``first_decision_round`` is
    requested for a frame in which no trial decided (a budget-exhausted
    configuration); the message names the offending trial spec so sweep
    users can locate the bad grid cell.
    """


class ServeTimeoutError(ReproError):
    """The sweep service did not answer within the client's deadline.

    Raised by :class:`~repro.serve.client.ServeClient` after its bounded
    retry schedule is exhausted on a connect or read timeout — a hung
    server can no longer block ``watch``/``result`` forever.
    """


class JobCancelledError(ReproError):
    """A job was cancelled and drained cooperatively.

    The terminal ``cancelled`` state: the coordinator stopped
    dispatching, harvested what was in flight, and kept every stored
    chunk for dedup.  Resubmitting the job clears the cancellation and
    resumes from the stored chunks.
    """
