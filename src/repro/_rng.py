"""Seeded random-number-generator plumbing.

Every stochastic component of the library takes an explicit
``numpy.random.Generator``.  Experiments create one root generator from a
seed and *spawn* statistically independent child streams from it, so that:

* every run is exactly reproducible from a single integer seed;
* adding trials or processes never perturbs the randomness consumed by
  earlier trials (each trial gets its own stream);
* parallel or out-of-order execution of trials yields identical results.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from any seed-like value.

    Accepts an integer seed, an existing generator (returned unchanged), a
    ``SeedSequence``, or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators from ``rng``."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seqs = rng.bit_generator.seed_seq.spawn(n)  # type: ignore[attr-defined]
    return [np.random.Generator(np.random.PCG64(s)) for s in seqs]


def stream(rng: np.random.Generator) -> Iterator[np.random.Generator]:
    """Yield an endless sequence of independent child generators."""
    while True:
        yield spawn(rng, 1)[0]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit integer seed from ``rng``.

    Useful when a component requires an integer seed rather than a generator.
    """
    return int(rng.integers(0, 2**63 - 1))


def trial_rngs(seed: SeedLike, n_trials: int) -> list[np.random.Generator]:
    """Return one independent generator per trial, reproducibly from ``seed``."""
    root = make_rng(seed)
    return spawn(root, n_trials)


def python_tiebreak(rng: Optional[np.random.Generator]) -> float:
    """Draw a tiny dither used to break exact ties in event times.

    Section 3.1 imposes the technical constraint that two operations never
    occur at exactly the same time; implementations realize this by dithering.
    The dither is uniform in ``(0, 1e-12)`` so it never reorders events that
    differ by any physically meaningful amount.
    """
    if rng is None:
        return 0.0
    return float(rng.uniform(0.0, 1e-12))
