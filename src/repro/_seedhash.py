"""Vectorized, bit-exact PCG64 child-stream seeding.

The per-trial seed discipline (one ``SeedSequence`` child per trial, one
grandchild per RNG stream) is what makes every batch bit-identical for
any ``workers`` value — but instantiating two to four ``SeedSequence`` +
``PCG64`` + ``Generator`` objects per trial costs tens of microseconds,
which dominates the columnar fast path at Figure-1 scale (10,000 trials
per grid cell).

This module removes that cost without changing a single drawn bit:

* :func:`pcg64_states` reimplements ``SeedSequence``'s entropy-pool hash
  (`Melissa O'Neill's seed-sequence construction
  <https://www.pcg-random.org/posts/developing-a-seed_seq-alternative.html>`_,
  the algorithm numpy froze for reproducibility) *vectorized across
  trials* — one numpy pass computes the seeded PCG64 state for every
  trial's child stream at once;
* :class:`ReusablePCG64` is a single bit generator whose state is
  re-injected per trial (a dict assignment, ~1.5 us) instead of
  constructing a fresh ``Generator(PCG64(seq))`` (~15-20 us).

Exactness is pinned by ``tests/test_seedhash.py``, which compares every
drawn stream against the reference ``SeedSequence.spawn`` path, and by
the frame/list differential tests that run the whole pipeline both ways.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

# SeedSequence hash constants (numpy/random/bit_generator.pyx; frozen by
# numpy's stream-compatibility policy).
_XSHIFT = np.uint32(16)
_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = np.uint32(0x931E8875)
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = np.uint32(0x58F38DED)
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)

_POOL_SIZE = 4  # DEFAULT_POOL_SIZE; other pool sizes take the object path

#: The PCG64 128-bit LCG multiplier (pcg64.h).
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK128 = (1 << 128) - 1


def entropy_words(entropy: int) -> List[int]:
    """``entropy`` as little-endian uint32 words (``_coerce_to_uint32_array``)."""
    if entropy == 0:
        return [0]
    words = []
    while entropy:
        words.append(entropy & 0xFFFFFFFF)
        entropy >>= 32
    return words


def _hashed_pools(columns: List[np.ndarray]) -> List[np.ndarray]:
    """The 4-word entropy pool per trial, vectorized over trials.

    ``columns`` is the assembled entropy as uint32 column arrays (one per
    word position, each of length ``trials``): the entropy words (padded
    to the pool size when a spawn key follows) then the spawn-key words.
    Identical to ``SeedSequence.mix_entropy`` run per trial.
    """
    trials = len(columns[0])
    hash_const = np.full(trials, _INIT_A, np.uint32)

    def hashmix(value: np.ndarray) -> np.ndarray:
        nonlocal hash_const
        value = value ^ hash_const
        hash_const = hash_const * _MULT_A
        value = value * hash_const
        return value ^ (value >> _XSHIFT)

    def mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        result = x * _MIX_MULT_L - y * _MIX_MULT_R
        return result ^ (result >> _XSHIFT)

    zero = np.zeros(trials, np.uint32)
    pool = [hashmix(columns[i] if i < len(columns) else zero)
            for i in range(_POOL_SIZE)]
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))
    for i_src in range(_POOL_SIZE, len(columns)):
        for i_dst in range(_POOL_SIZE):
            pool[i_dst] = mix(pool[i_dst], hashmix(columns[i_src]))
    return pool


def pcg64_states(entropy: int, key_matrix: np.ndarray,
                 child: int) -> List[Tuple[int, int]]:
    """Seeded PCG64 ``(state, inc)`` per trial for one child stream.

    Equivalent to, for each row ``key`` of ``key_matrix``::

        PCG64(SeedSequence(entropy, spawn_key=tuple(key) + (child,)))

    Args:
        entropy: the shared root entropy (a non-negative int).
        key_matrix: ``(trials, key_len)`` spawn keys, all values < 2**32.
        child: index of the grandchild stream (the compiler's stream
            order: 0=noise, 1=dither, 2=failures, 3=protocol).
    """
    trials = key_matrix.shape[0]
    words = entropy_words(entropy)
    if len(words) < _POOL_SIZE:
        words = words + [0] * (_POOL_SIZE - len(words))
    columns = [np.full(trials, w, np.uint32) for w in words]
    columns += [key_matrix[:, i].astype(np.uint32)
                for i in range(key_matrix.shape[1])]
    columns.append(np.full(trials, child, np.uint32))
    pool = _hashed_pools(columns)

    # generate_state(4, uint64): 8 uint32 words, pairs combined lo | hi<<32.
    hash_const = np.full(trials, _INIT_B, np.uint32)
    out32 = []
    for i in range(8):
        value = pool[i % _POOL_SIZE] ^ hash_const
        hash_const = hash_const * _MULT_B
        value = value * hash_const
        out32.append(value ^ (value >> _XSHIFT))
    words64 = [
        (out32[2 * k].astype(np.uint64)
         | (out32[2 * k + 1].astype(np.uint64) << np.uint64(32))).tolist()
        for k in range(4)
    ]
    # pcg64_set_seed: inc = (initseq << 1) | 1; state = 0 stepped twice
    # around += initstate, i.e. (inc + initstate) * MULT + inc.
    states = []
    for w0, w1, w2, w3 in zip(*words64):
        initstate = (w0 << 64) | w1
        inc = ((((w2 << 64) | w3) << 1) | 1) & _MASK128
        states.append((((inc + initstate) * _PCG_MULT + inc) & _MASK128, inc))
    return states


class SeedBlock:
    """An analytic block of consecutive child ``SeedSequence`` identities.

    Stands in for ``parent.spawn(count)`` of a *fresh* parent: child
    ``i`` is ``SeedSequence(entropy, spawn_key + (start + i,))``, exactly
    the object ``spawn`` would construct — but nothing is materialized
    until indexed, so the fast chunk pipelines (which only need the
    ``(entropy, spawn_key)`` identities for the vectorized seeding hash)
    skip the per-child entropy-pool construction entirely (~6 us each, a
    measurable fraction of a Figure-1 grid cell).  Iteration and
    indexing materialize real sequences, so every legacy consumer works
    unchanged.
    """

    __slots__ = ("entropy", "spawn_key", "start", "count", "pool_size")

    def __init__(self, entropy, spawn_key: Tuple[int, ...] = (),
                 start: int = 0, count: int = 0,
                 pool_size: int = _POOL_SIZE) -> None:
        self.entropy = entropy
        self.spawn_key = tuple(spawn_key)
        self.start = start
        self.count = count
        self.pool_size = pool_size

    def __len__(self) -> int:
        return self.count

    def materialize(self, i: int) -> np.random.SeedSequence:
        return np.random.SeedSequence(
            self.entropy, spawn_key=self.spawn_key + (self.start + i,),
            pool_size=self.pool_size)

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.count)
            if step != 1:
                return [self[i] for i in range(start, stop, step)]
            return SeedBlock(self.entropy, self.spawn_key,
                             self.start + start, max(0, stop - start),
                             self.pool_size)
        if index < 0:
            index += self.count
        if not 0 <= index < self.count:
            raise IndexError(index)
        return self.materialize(index)

    def __iter__(self):
        return (self.materialize(i) for i in range(self.count))

    def key_matrix(self) -> np.ndarray:
        """``(count, key_len + 1)`` uint64 spawn keys, vectorized."""
        matrix = np.empty((self.count, len(self.spawn_key) + 1), np.uint64)
        matrix[:, :len(self.spawn_key)] = np.asarray(self.spawn_key,
                                                     np.uint64)
        matrix[:, -1] = np.arange(self.start, self.start + self.count,
                                  dtype=np.uint64)
        return matrix


def block_spawn_keys(seeds: Sequence) -> Optional[Tuple[int, np.ndarray]]:
    """Recognize a batch-runner seed block, returning its key matrix.

    Returns ``(entropy, key_matrix)`` when every seed is a fresh
    default-pool ``SeedSequence`` sharing one integer entropy with
    equal-length sub-2**32 spawn keys (exactly what
    :func:`repro.api.batch.trial_seed_sequences` produces) — or when
    ``seeds`` is a :class:`SeedBlock`, whose key matrix is a single
    ``arange`` — or ``None`` to send the block down the per-trial object
    path.
    """
    if isinstance(seeds, SeedBlock):
        entropy = seeds.entropy
        if (not seeds.count or not isinstance(entropy, int) or entropy < 0
                or seeds.pool_size != _POOL_SIZE):
            return None
        key_values = seeds.spawn_key + (seeds.start + seeds.count - 1,)
        if any(not 0 <= v < 2 ** 32 for v in key_values):
            return None
        return entropy, seeds.key_matrix()
    if not seeds:
        return None
    first = seeds[0]
    if not isinstance(first, np.random.SeedSequence):
        return None
    entropy = first.entropy
    if not isinstance(entropy, int) or entropy < 0:
        return None
    key_len = len(first.spawn_key)
    keys = []
    for seq in seeds:
        if (not isinstance(seq, np.random.SeedSequence)
                or seq.n_children_spawned
                or seq.pool_size != _POOL_SIZE
                or seq.entropy != entropy
                or len(seq.spawn_key) != key_len):
            return None
        keys.append(seq.spawn_key)
    if key_len == 0:
        return entropy, np.empty((len(seeds), 0), np.uint64)
    matrix = np.asarray(keys, dtype=np.uint64)
    if matrix.size and int(matrix.max()) >= 2 ** 32:
        return None
    return entropy, matrix


class ReusablePCG64:
    """One ``Generator`` whose PCG64 state is re-injected per use.

    ``reset((state, inc))`` makes the generator bit-identical to a
    freshly constructed ``Generator(PCG64(seed_sequence))`` with that
    seeded state.  The caller must finish drawing from one stream before
    resetting to the next (the fast chunk draws each trial's streams
    strictly in sequence).
    """

    def __init__(self) -> None:
        self._bit_generator = np.random.PCG64(0)
        self.generator = np.random.Generator(self._bit_generator)
        self._template = self._bit_generator.state

    def reset(self, state_inc: Tuple[int, int]) -> np.random.Generator:
        template = self._template
        inner = template["state"]
        inner["state"], inner["inc"] = state_inc
        template["has_uint32"] = 0
        template["uinteger"] = 0
        self._bit_generator.state = template
        return self.generator
