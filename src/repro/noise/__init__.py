"""Noise distributions for the noisy-scheduling model (paper Section 3.1).

The adversary perturbs its schedule with i.i.d. non-negative noise drawn from
an arbitrary distribution that is not concentrated on a point.  This package
provides:

* the six interarrival distributions used in the paper's Figure 1;
* the pathological heavy-tailed distribution from Theorem 1;
* the two-point distribution used in the Theorem 13 lower bound;
* degenerate and extra distributions for ablations and negative tests;
* :func:`validate_noise`, which enforces the Section 3.1 requirements.
"""

from repro.noise.distributions import (
    Constant,
    Exponential,
    Geometric,
    HeavyTail,
    LogNormal,
    Mixture,
    NoiseDistribution,
    Pareto,
    PerOpKindNoise,
    ShiftedExponential,
    SumOf,
    TruncatedNormal,
    TwoPoint,
    Uniform,
    figure1_distributions,
    validate_noise,
)

__all__ = [
    "Constant",
    "Exponential",
    "Geometric",
    "HeavyTail",
    "LogNormal",
    "Mixture",
    "NoiseDistribution",
    "Pareto",
    "PerOpKindNoise",
    "ShiftedExponential",
    "SumOf",
    "TruncatedNormal",
    "TwoPoint",
    "Uniform",
    "figure1_distributions",
    "validate_noise",
]
