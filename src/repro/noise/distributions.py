"""Concrete noise distributions.

Each distribution exposes scalar sampling (:meth:`NoiseDistribution.sample`),
vectorized sampling (:meth:`NoiseDistribution.sample_array`, used by the fast
engine to pre-generate whole schedules), and enough metadata
(:attr:`~NoiseDistribution.mean`, :attr:`~NoiseDistribution.is_degenerate`,
:attr:`~NoiseDistribution.min_value`) for the model-validity checks of
Section 3.1 of the paper.

The paper's requirements on a noise distribution F (Section 3.1):

1. it produces only non-negative values, and
2. it is *not* concentrated on a single point.

:func:`validate_noise` enforces both; degenerate distributions such as
:class:`Constant` can still be constructed for negative tests (they let the
adversary build lockstep executions in which lean-consensus never
terminates), but schedulers refuse them unless explicitly told otherwise.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import DistributionError
from repro.types import OpKind


class NoiseDistribution(abc.ABC):
    """A distribution of non-negative random delays.

    Subclasses implement :meth:`sample_array`; scalar sampling and all
    metadata default to sensible derived behaviour.
    """

    #: Human-readable name, used in experiment tables and plots.
    name: str = "noise"

    @abc.abstractmethod
    def sample_array(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> np.ndarray:
        """Draw an array of i.i.d. samples of the given shape."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw a single sample."""
        return float(self.sample_array(rng, 1)[0])

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """The distribution mean; ``math.inf`` if it does not exist/diverges."""

    @property
    def is_degenerate(self) -> bool:
        """True if the distribution is concentrated on a single point."""
        return False

    @property
    def min_value(self) -> float:
        """An a-priori lower bound on the support (used for validation)."""
        return 0.0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"

    def __str__(self) -> str:
        return self.name


def validate_noise(dist: NoiseDistribution) -> NoiseDistribution:
    """Check the Section 3.1 admissibility conditions, returning ``dist``.

    Raises:
        DistributionError: if the distribution may produce negative values or
            is concentrated on a point.
    """
    if dist.min_value < 0:
        raise DistributionError(
            f"noise distribution {dist} may produce negative delays "
            f"(min_value={dist.min_value}); the model requires X_ij >= 0"
        )
    if dist.is_degenerate:
        raise DistributionError(
            f"noise distribution {dist} is concentrated on a point; "
            "Section 3.1 requires a non-degenerate distribution "
            "(pass allow_degenerate=True to the scheduler to simulate "
            "lockstep executions anyway)"
        )
    return dist


class TruncatedNormal(NoiseDistribution):
    """Normal(mu, sigma^2) restricted to an interval by rejection.

    Figure 1 uses ``TruncatedNormal(1, 0.2, 0, 2)``: "Normal distribution
    with mean 1 and standard deviation 0.2 (variance 0.04), rejecting points
    outside (0, 2)".
    """

    def __init__(self, mu: float = 1.0, sigma: float = 0.2,
                 low: float = 0.0, high: float = 2.0) -> None:
        if sigma <= 0:
            raise DistributionError(f"sigma must be positive, got {sigma}")
        if not low < high:
            raise DistributionError(f"need low < high, got [{low}, {high}]")
        self.mu = mu
        self.sigma = sigma
        self.low = low
        self.high = high
        self.name = f"normal({mu},{sigma**2:g})"

    def sample_array(self, rng: np.random.Generator, size) -> np.ndarray:
        out = rng.normal(self.mu, self.sigma, size=size)
        bad = (out <= self.low) | (out >= self.high)
        # Rejection loop; for the Figure-1 parameters the rejection
        # probability is < 1e-6 so this almost never iterates.
        while bad.any():
            out[bad] = rng.normal(self.mu, self.sigma, size=int(bad.sum()))
            bad = (out <= self.low) | (out >= self.high)
        return out

    @property
    def mean(self) -> float:
        # Exact mean of the doubly-truncated normal.
        a = (self.low - self.mu) / self.sigma
        b = (self.high - self.mu) / self.sigma
        phi = lambda x: math.exp(-x * x / 2) / math.sqrt(2 * math.pi)
        cdf = lambda x: 0.5 * (1 + math.erf(x / math.sqrt(2)))
        z = cdf(b) - cdf(a)
        return self.mu + self.sigma * (phi(a) - phi(b)) / z

    @property
    def min_value(self) -> float:
        return self.low


class TwoPoint(NoiseDistribution):
    """Takes value ``a`` with probability ``p`` and ``b`` otherwise.

    Figure 1 uses ``TwoPoint(2/3, 4/3)``; the Theorem 13 lower bound uses
    ``TwoPoint(1, 2)``.
    """

    def __init__(self, a: float, b: float, p: float = 0.5) -> None:
        if not 0 <= p <= 1:
            raise DistributionError(f"p must be in [0,1], got {p}")
        self.a = float(a)
        self.b = float(b)
        self.p = float(p)
        self.name = f"{a:g},{b:g}"

    def sample_array(self, rng: np.random.Generator, size) -> np.ndarray:
        picks = rng.random(size) < self.p
        return np.where(picks, self.a, self.b)

    @property
    def mean(self) -> float:
        return self.p * self.a + (1 - self.p) * self.b

    @property
    def is_degenerate(self) -> bool:
        return self.a == self.b or self.p in (0.0, 1.0)

    @property
    def min_value(self) -> float:
        return min(self.a, self.b)


class ShiftedExponential(NoiseDistribution):
    """``shift`` plus an exponential with the given mean.

    Figure 1 uses ``ShiftedExponential(0.5, 0.5)`` ("0.5 plus an exponential
    random variable with mean 0.5 ... a delayed Poisson process").
    """

    def __init__(self, shift: float = 0.5, exp_mean: float = 0.5) -> None:
        if exp_mean <= 0:
            raise DistributionError(f"exp_mean must be positive, got {exp_mean}")
        if shift < 0:
            raise DistributionError(f"shift must be non-negative, got {shift}")
        self.shift = shift
        self.exp_mean = exp_mean
        self.name = f"{shift:g} + exponential({exp_mean:g})"

    def sample_array(self, rng: np.random.Generator, size) -> np.ndarray:
        return self.shift + rng.exponential(self.exp_mean, size=size)

    @property
    def mean(self) -> float:
        return self.shift + self.exp_mean

    @property
    def min_value(self) -> float:
        return self.shift


class Exponential(ShiftedExponential):
    """Exponential with the given mean (a Poisson process's interarrivals).

    Figure 1 uses ``Exponential(1)``, which the paper notes is equivalent to
    picking one process uniformly at random per time unit.
    """

    def __init__(self, mean: float = 1.0) -> None:
        super().__init__(shift=0.0, exp_mean=mean)
        self.name = f"exponential({mean:g})"


class Geometric(NoiseDistribution):
    """Geometric on {1, 2, 3, ...} with success probability ``p``.

    Figure 1 uses ``Geometric(0.5)``.
    """

    def __init__(self, p: float = 0.5) -> None:
        if not 0 < p <= 1:
            raise DistributionError(f"p must be in (0,1], got {p}")
        self.p = p
        self.name = f"geometric({p:g})"

    def sample_array(self, rng: np.random.Generator, size) -> np.ndarray:
        return rng.geometric(self.p, size=size).astype(float)

    @property
    def mean(self) -> float:
        return 1.0 / self.p

    @property
    def is_degenerate(self) -> bool:
        return self.p == 1.0

    @property
    def min_value(self) -> float:
        return 1.0


class Uniform(NoiseDistribution):
    """Uniform on ``(low, high)``.  Figure 1 uses ``Uniform(0, 2)``."""

    def __init__(self, low: float = 0.0, high: float = 2.0) -> None:
        if not low < high:
            raise DistributionError(f"need low < high, got [{low}, {high}]")
        self.low = low
        self.high = high
        self.name = f"uniform [{low:g},{high:g}]"

    def sample_array(self, rng: np.random.Generator, size) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2

    @property
    def min_value(self) -> float:
        return self.low


class HeavyTail(NoiseDistribution):
    """The Theorem 1 pathological distribution: X = 2^(k^2) w.p. 2^(-k).

    ``k`` ranges over 1, 2, ... .  The probabilities 2^(-k) sum to 1 and the
    expectation diverges (2^(-k) * 2^(k^2) grows without bound), which is the
    engine of the unfairness result: the expected number of operations one
    process completes between two operations of another is infinite.

    ``k_cap`` optionally truncates the support at k <= k_cap (renormalizing
    by assigning the leftover tail mass to k_cap); the unfairness experiment
    sweeps the cap to exhibit divergence empirically without overflowing
    floating point.
    """

    def __init__(self, k_cap: Optional[int] = None) -> None:
        if k_cap is not None and k_cap < 1:
            raise DistributionError(f"k_cap must be >= 1, got {k_cap}")
        self.k_cap = k_cap
        self.name = f"2^(k^2) w.p. 2^-k" + (f" (k<={k_cap})" if k_cap else "")

    def _draw_k(self, rng: np.random.Generator, size) -> np.ndarray:
        # k is geometric(1/2) on {1, 2, ...}.
        k = rng.geometric(0.5, size=size)
        if self.k_cap is not None:
            k = np.minimum(k, self.k_cap)
        else:
            # Avoid float overflow: 2^(k^2) overflows float64 for k >= 32.
            k = np.minimum(k, 31)
        return k

    def sample_array(self, rng: np.random.Generator, size) -> np.ndarray:
        k = self._draw_k(rng, size).astype(np.float64)
        return np.exp2(k * k)

    @property
    def mean(self) -> float:
        if self.k_cap is None:
            return math.inf
        return sum(2.0 ** (-k) * 2.0 ** (k * k) for k in range(1, self.k_cap)) + \
            2.0 ** (-(self.k_cap - 1)) * 2.0 ** (self.k_cap**2)

    @property
    def is_degenerate(self) -> bool:
        return self.k_cap == 1

    @property
    def min_value(self) -> float:
        return 2.0


class Constant(NoiseDistribution):
    """Degenerate distribution concentrated on a single value.

    Disallowed by the model (Section 3.1) and rejected by
    :func:`validate_noise`; provided so tests and examples can build the
    lockstep executions that motivate the noise requirement.
    """

    def __init__(self, value: float = 1.0) -> None:
        if value < 0:
            raise DistributionError(f"value must be non-negative, got {value}")
        self.value = float(value)
        self.name = f"constant({value:g})"

    def sample_array(self, rng: np.random.Generator, size) -> np.ndarray:
        return np.full(size, self.value)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def is_degenerate(self) -> bool:
        return True

    @property
    def min_value(self) -> float:
        return self.value


class LogNormal(NoiseDistribution):
    """Log-normal noise, a plausible model of contention-induced delays."""

    def __init__(self, mu: float = 0.0, sigma: float = 0.5) -> None:
        if sigma <= 0:
            raise DistributionError(f"sigma must be positive, got {sigma}")
        self.mu = mu
        self.sigma = sigma
        self.name = f"lognormal({mu:g},{sigma:g})"

    def sample_array(self, rng: np.random.Generator, size) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=size)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2)


class Pareto(NoiseDistribution):
    """Shifted Pareto with shape ``alpha`` and scale 1 (support [1, inf)).

    For ``alpha <= 1`` the mean diverges, giving a tunable family between
    well-behaved noise and the Theorem-1 pathology.
    """

    def __init__(self, alpha: float = 2.0) -> None:
        if alpha <= 0:
            raise DistributionError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        self.name = f"pareto({alpha:g})"

    def sample_array(self, rng: np.random.Generator, size) -> np.ndarray:
        return 1.0 + rng.pareto(self.alpha, size=size)

    @property
    def mean(self) -> float:
        if self.alpha <= 1:
            return math.inf
        return self.alpha / (self.alpha - 1)

    @property
    def min_value(self) -> float:
        return 1.0


class Mixture(NoiseDistribution):
    """Finite mixture of component distributions with given weights."""

    def __init__(self, components: Sequence[NoiseDistribution],
                 weights: Optional[Sequence[float]] = None) -> None:
        if not components:
            raise DistributionError("mixture requires at least one component")
        self.components = list(components)
        if weights is None:
            weights = [1.0 / len(components)] * len(components)
        if len(weights) != len(components):
            raise DistributionError("weights must match components")
        total = float(sum(weights))
        if total <= 0 or any(w < 0 for w in weights):
            raise DistributionError("weights must be non-negative and sum > 0")
        self.weights = [w / total for w in weights]
        self.name = "mix(" + ", ".join(c.name for c in self.components) + ")"

    def sample_array(self, rng: np.random.Generator, size) -> np.ndarray:
        shape = (size,) if isinstance(size, int) else tuple(size)
        n = int(np.prod(shape))
        choice = rng.choice(len(self.components), size=n, p=self.weights)
        out = np.empty(n, dtype=np.float64)
        for idx, comp in enumerate(self.components):
            mask = choice == idx
            count = int(mask.sum())
            if count:
                out[mask] = comp.sample_array(rng, count)
        return out.reshape(shape)

    @property
    def mean(self) -> float:
        return float(sum(w * c.mean for w, c in zip(self.weights, self.components)))

    @property
    def is_degenerate(self) -> bool:
        if len({(c.name, getattr(c, "value", None)) for c in self.components}) == 1:
            return all(c.is_degenerate for c in self.components)
        return False

    @property
    def min_value(self) -> float:
        return min(c.min_value for c in self.components)


class SumOf(NoiseDistribution):
    """The distribution of the sum of ``k`` i.i.d. draws from ``base``.

    Section 6 of the paper abstracts from per-operation noise to per-round
    noise by summing the delays of the four operations in a round; this class
    realizes that abstraction for the renewal-race experiments.
    """

    def __init__(self, base: NoiseDistribution, k: int) -> None:
        if k < 1:
            raise DistributionError(f"k must be >= 1, got {k}")
        self.base = base
        self.k = k
        self.name = f"sum_{k}({base.name})"

    def sample_array(self, rng: np.random.Generator, size) -> np.ndarray:
        shape = (size,) if isinstance(size, int) else tuple(size)
        draws = self.base.sample_array(rng, shape + (self.k,))
        return draws.sum(axis=-1)

    @property
    def mean(self) -> float:
        return self.k * self.base.mean

    @property
    def is_degenerate(self) -> bool:
        return self.base.is_degenerate

    @property
    def min_value(self) -> float:
        return self.k * self.base.min_value


class PerOpKindNoise:
    """A mapping from operation kind to noise distribution.

    Section 3.1 allows "a fixed common distribution F_pi of the random delay
    added to each type of operation pi (e.g., read or write)".  Most
    experiments use the same distribution for both kinds; this wrapper
    supports distinct ones.
    """

    def __init__(self, read: NoiseDistribution,
                 write: Optional[NoiseDistribution] = None) -> None:
        self.read = read
        self.write = write if write is not None else read

    def for_kind(self, kind: OpKind) -> NoiseDistribution:
        return self.read if kind is OpKind.READ else self.write

    def validate(self) -> "PerOpKindNoise":
        validate_noise(self.read)
        validate_noise(self.write)
        return self

    @property
    def uniform_across_kinds(self) -> bool:
        return self.read is self.write


def figure1_distributions() -> dict[str, NoiseDistribution]:
    """The six interarrival distributions of the paper's Figure 1.

    Keys follow the figure legend (top to bottom in the original legend
    ordering).
    """
    return {
        "exponential(1)": Exponential(1.0),
        "uniform [0,2]": Uniform(0.0, 2.0),
        "geometric(0.5)": Geometric(0.5),
        "0.5 + exponential(0.5)": ShiftedExponential(0.5, 0.5),
        "2/3,4/3": TwoPoint(2.0 / 3.0, 4.0 / 3.0),
        "normal(1,0.04)": TruncatedNormal(1.0, 0.2, 0.0, 2.0),
    }
