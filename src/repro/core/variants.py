"""Protocol variants used for ablations and negative controls.

* :class:`OptimizedLean` implements the "tempting optimization" the paper
  warns about in Section 4 — eliding the write when the target bit is known
  to be set, and eliding the final read when its value can be deduced from
  the round-start reads.  It is *safe* (the elisions are justified by
  Lemma 2) but, as the paper argues, it speeds up exactly the processes one
  wants to fall behind, so it terminates more slowly.  The ablation
  experiment EXP-ABL1 quantifies this.

* :class:`EagerDecideLean` decides one round too early (it checks
  ``a_{1-p}[r]`` instead of ``a_{1-p}[r-1]``).  It is **intentionally
  unsafe**: there are interleavings in which two processes decide different
  values.  The model checker and the property tests must find such a
  counterexample — this is the library's negative control that the safety
  checking machinery actually works.

* :class:`ConservativeLean` decides one round later (checks
  ``a_{1-p}[r-2]``).  Safe for any lag >= 1 by the same argument as the
  paper's protocol; used to ablate the decision lead.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ProtocolError
from repro.types import Decision, Operation, OpResult, array_for, read
from repro.core.machine import LeanConsensus, TieRule

_READ_A0 = 0
_READ_A1 = 1
_WRITE_PREF = 2
_READ_BEHIND = 3


class LagLean(LeanConsensus):
    """lean-consensus with a configurable decision lag.

    The final read of round ``r`` targets ``a_{1-p}[r - lag]`` (clamped at
    index 0, whose read-only 1 simply forbids deciding in the first ``lag``
    rounds).  ``lag=1`` is the paper's protocol; ``lag >= 1`` is safe;
    ``lag=0`` is :class:`EagerDecideLean` and is not.
    """

    def __init__(self, pid: int, input_bit: int, lag: int = 1,
                 tie_rule: Optional[TieRule] = None,
                 round_cap: Optional[int] = None) -> None:
        if lag < 0:
            raise ProtocolError(f"lag must be >= 0, got {lag}")
        super().__init__(pid, input_bit, tie_rule=tie_rule, round_cap=round_cap)
        self.lag = lag

    def peek(self) -> Operation:
        if self.step == _READ_BEHIND and not self.done:
            return read(array_for(1 - self.preference),
                        max(self.round - self.lag, 0))
        return super().peek()

    def snapshot(self) -> Tuple:
        return super().snapshot() + (self.lag,)

    def restore(self, snap: Tuple) -> None:
        super().restore(snap[:-1])
        self.lag = snap[-1]


class EagerDecideLean(LagLean):
    """UNSAFE: decides on a one-round lead.  Negative control only."""

    def __init__(self, pid: int, input_bit: int,
                 tie_rule: Optional[TieRule] = None,
                 round_cap: Optional[int] = None) -> None:
        super().__init__(pid, input_bit, lag=0, tie_rule=tie_rule,
                         round_cap=round_cap)


class ConservativeLean(LagLean):
    """Safe variant that requires a one-round-larger lead to decide."""

    def __init__(self, pid: int, input_bit: int,
                 tie_rule: Optional[TieRule] = None,
                 round_cap: Optional[int] = None) -> None:
        super().__init__(pid, input_bit, lag=2, tie_rule=tie_rule,
                         round_cap=round_cap)


class OptimizedLean(LeanConsensus):
    """The Section-4 "optimization" the paper recommends against.

    Elisions relative to the canonical protocol, both justified by Lemma 2:

    * if the round-start reads show ``a_p[r] = 1`` (after preference
      adoption), skip the write — the bit is already set;
    * if the round-start reads show ``a_{1-p}[r] = 1``, skip the final read —
      ``a_{1-p}[r]`` set implies ``a_{1-p}[r-1]`` set, so the read would
      return 1 and no decision is possible this round.

    Both elisions only ever fire for processes that are *behind*, which is
    exactly why the paper keeps the "superfluous" operations: eliding speeds
    up laggards and prolongs the race.  Agreement and validity still hold.
    """

    def __init__(self, pid: int, input_bit: int,
                 tie_rule: Optional[TieRule] = None,
                 round_cap: Optional[int] = None) -> None:
        super().__init__(pid, input_bit, tie_rule=tie_rule, round_cap=round_cap)
        self._skip_final_read = False
        #: Operations saved by the two elisions (for the ablation report).
        self.elided_writes = 0
        self.elided_reads = 0

    def apply(self, result: OpResult) -> None:
        self._check_result(result)
        self.ops += 1
        if self.step == _READ_A0:
            self._v0 = result.value
            self.step = _READ_A1
        elif self.step == _READ_A1:
            self._handle_round_start(self._v0, result.value)  # type: ignore[arg-type]
            self._v0 = None
        elif self.step == _WRITE_PREF:
            if self._skip_final_read:
                self.elided_reads += 1
                self._next_round()
            else:
                self.step = _READ_BEHIND
        else:  # _READ_BEHIND
            if result.value == 0:
                self.decision = Decision(self.preference, self.round, self.ops)
            else:
                self._next_round()

    def _handle_round_start(self, v0: int, v1: int) -> None:
        self._adopt(v0, v1)
        vals = (v0, v1)
        own_set = vals[self.preference] == 1
        rival_set = vals[1 - self.preference] == 1
        self._skip_final_read = rival_set
        if own_set and rival_set:
            self.elided_writes += 1
            self.elided_reads += 1
            self._next_round()
        elif own_set:
            self.elided_writes += 1
            self.step = _READ_BEHIND
        else:
            self.step = _WRITE_PREF

    def _next_round(self) -> None:
        self._skip_final_read = False
        self._advance_round()

    def snapshot(self) -> Tuple:
        return super().snapshot() + (self._skip_final_read,
                                     self.elided_writes, self.elided_reads)

    def restore(self, snap: Tuple) -> None:
        super().restore(snap[:-3])
        self._skip_final_read, self.elided_writes, self.elided_reads = snap[-3:]
