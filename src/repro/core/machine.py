"""The lean-consensus state machine and its tie-rule family.

lean-consensus (paper, Section 4).  Each process holds a preference ``p``
and a round number ``r`` (starting at 1) and repeats four operations per
round, in this exact order:

1. read ``a0[r]``;
2. read ``a1[r]``; if exactly one of the two values is 1, set ``p`` to the
   corresponding bit (a process that has "fallen behind" adopts the winning
   team's preference);
3. write 1 to ``a_p[r]``;
4. read ``a_{1-p}[r-1]``; if it is 0, **decide** ``p``; otherwise move on to
   round ``r + 1``.

Both arrays are zero-initialized with an effectively read-only 1 at index 0.
The paper stresses that the sequence is exactly two reads, a write, and a
read in *every* round, and warns against "optimizing" away apparently
superfluous operations (the optimized variant lives in
:mod:`repro.core.variants` and is benchmarked by the ablation experiments).

The safety argument (Lemmas 2-4) never inspects *how* a process chooses its
preference when it observes a tie (both or neither of ``a0[r]``/``a1[r]``
set) — it only requires the forced adoption in the one-sided case.  This
module therefore exposes the tie behaviour as a strategy object
(:class:`TieRule`); instantiations give:

* :class:`KeepTie` — keep the current preference: **lean-consensus**, fully
  deterministic, the paper's protocol;
* :class:`RandomTie` — flip a local coin: a Ben-Or-flavoured randomized
  baseline;
* :class:`SharedCoinLean` — a subclass that on a tie runs a weak shared coin
  built from two extra multi-writer bit arrays: a simplified stand-in for
  Chandra's protocol, also used as the Section-8 backup.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.types import Decision, Operation, OpResult, array_for, read, write


class CoinSource(abc.ABC):
    """A source of coin flips, abstracted so executions are replayable.

    The model checker enumerates both outcomes of every flip; simulations
    use :class:`RandomCoin`.
    """

    @abc.abstractmethod
    def flip(self) -> int:
        """Return 0 or 1."""


class RandomCoin(CoinSource):
    """Fair coin driven by a numpy generator."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def flip(self) -> int:
        return int(self._rng.integers(0, 2))


class ScriptedCoin(CoinSource):
    """Replays a fixed sequence of outcomes (cycling); for tests/modelcheck."""

    def __init__(self, script: Sequence[int]) -> None:
        if not script:
            raise ValueError("script must be non-empty")
        if any(b not in (0, 1) for b in script):
            raise ValueError("script must contain bits")
        self._script = list(script)
        self._pos = 0
        #: Number of flips consumed so far.
        self.flips = 0

    def flip(self) -> int:
        bit = self._script[self._pos % len(self._script)]
        self._pos += 1
        self.flips += 1
        return bit


class TieRule(abc.ABC):
    """Preference policy when a round-start read observes a tie.

    A *tie* means ``a0[r]`` and ``a1[r]`` were both 0 or both 1 in steps 1-2.
    Returning the current preference makes the protocol deterministic.
    """

    #: Short name used in experiment tables.
    name: str = "tie"

    @abc.abstractmethod
    def resolve(self, current_preference: int, v0: int, v1: int) -> int:
        """Return the preference to use for this round."""


class KeepTie(TieRule):
    """Keep the current preference — the lean-consensus rule."""

    name = "keep"

    def resolve(self, current_preference: int, v0: int, v1: int) -> int:
        return current_preference


class RandomTie(TieRule):
    """Flip a local coin on a *contended* tie (both bits set).

    On an empty tie (neither bit set) the process keeps its preference —
    flipping there would violate validity, since a lone-input execution
    always starts with an empty tie at round 1.
    """

    name = "local-coin"

    def __init__(self, coin: CoinSource) -> None:
        self.coin = coin

    def resolve(self, current_preference: int, v0: int, v1: int) -> int:
        if v0 == 1 and v1 == 1:
            return self.coin.flip()
        return current_preference


class ProcessMachine(abc.ABC):
    """A protocol participant, expressed as an explicit state machine.

    Drive it with::

        while not machine.done:
            result = memory.execute(machine.peek(), pid=machine.pid)
            machine.apply(result)

    Exactly one shared-memory operation happens per iteration, which is what
    makes the interleaving model exact.
    """

    def __init__(self, pid: int, input_bit: int) -> None:
        if input_bit not in (0, 1):
            raise ProtocolError(f"input must be a bit, got {input_bit!r}")
        self.pid = pid
        self.input = input_bit
        #: The decision, once made.
        self.decision: Optional[Decision] = None
        #: Count of operations applied so far.
        self.ops = 0
        #: Set True by failure injection; a halted process issues no ops.
        self.halted = False

    @property
    def done(self) -> bool:
        """True when the process will issue no further operations."""
        return self.decision is not None or self.halted

    @property
    def decided_value(self) -> Optional[int]:
        return None if self.decision is None else self.decision.value

    @abc.abstractmethod
    def peek(self) -> Operation:
        """The next operation this process will perform (pure)."""

    @abc.abstractmethod
    def apply(self, result: OpResult) -> None:
        """Consume the result of the operation returned by :meth:`peek`."""

    @abc.abstractmethod
    def snapshot(self) -> Tuple:
        """Hashable image of the full control state (for model checking)."""

    @abc.abstractmethod
    def restore(self, snap: Tuple) -> None:
        """Restore control state from a :meth:`snapshot` image."""

    def _check_result(self, result: OpResult) -> None:
        expected = self.peek()
        if result.op != expected:
            raise ProtocolError(
                f"p{self.pid}: applied result for {result.op}, "
                f"but pending operation is {expected}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "decided" if self.decision else ("halted" if self.halted else "running")
        return f"<{type(self).__name__} p{self.pid} {state} ops={self.ops}>"


# Step indices within a round (names follow the paper's step numbering).
_READ_A0 = 0     # step 1 first half: read a0[r]
_READ_A1 = 1     # step 1 second half: read a1[r], then maybe adopt
_WRITE_PREF = 2  # step 2: write 1 to a_p[r]
_READ_BEHIND = 3  # step 3: read a_{1-p}[r-1]; 0 => decide


class LeanConsensus(ProcessMachine):
    """The paper's protocol (with a pluggable tie rule; default = paper).

    Args:
        pid: process identifier (only used for attribution in traces).
        input_bit: the process's input.
        tie_rule: preference policy on ties; default :class:`KeepTie`,
            which *is* lean-consensus.  Any tie rule preserves safety
            (see the module docstring); non-default rules exist as
            baselines.
        round_cap: optional maximum round, for the Section 8 bounded
            construction.  On completing round ``round_cap`` without a
            decision the machine raises its :attr:`overflowed` flag and
            stops issuing operations; the combined protocol then feeds
            :attr:`preference` into the backup protocol.

    Attributes:
        preference: the current preferred bit ``p``.
        round: the current round ``r`` (1-based).
        preference_changes: number of times the adoption rule fired.
    """

    #: Operations per round, fixed by the protocol (2 reads, write, read).
    OPS_PER_ROUND = 4

    def __init__(self, pid: int, input_bit: int,
                 tie_rule: Optional[TieRule] = None,
                 round_cap: Optional[int] = None) -> None:
        super().__init__(pid, input_bit)
        self.tie_rule = tie_rule if tie_rule is not None else KeepTie()
        self.round_cap = round_cap
        self.preference = input_bit
        self.round = 1
        self.step = _READ_A0
        self._v0: Optional[int] = None
        self.preference_changes = 0
        #: True when round_cap was exhausted without a decision.
        self.overflowed = False

    # -- memory layout -------------------------------------------------

    @staticmethod
    def required_arrays() -> List[Tuple[str, Optional[int]]]:
        """``(name, prefix_value)`` pairs this protocol needs in memory."""
        return [("a0", 1), ("a1", 1)]

    # -- state machine --------------------------------------------------

    @property
    def done(self) -> bool:
        return self.decision is not None or self.halted or self.overflowed

    def peek(self) -> Operation:
        if self.done:
            raise ProtocolError(f"p{self.pid} is finished; no pending operation")
        r, p = self.round, self.preference
        if self.step == _READ_A0:
            return read("a0", r)
        if self.step == _READ_A1:
            return read("a1", r)
        if self.step == _WRITE_PREF:
            return write(array_for(p), r, 1)
        return read(array_for(1 - p), r - 1)

    def apply(self, result: OpResult) -> None:
        self._check_result(result)
        self.ops += 1
        if self.step == _READ_A0:
            self._v0 = result.value
            self.step = _READ_A1
        elif self.step == _READ_A1:
            self._adopt(self._v0, result.value)  # type: ignore[arg-type]
            self._v0 = None
            self.step = _WRITE_PREF
        elif self.step == _WRITE_PREF:
            self.step = _READ_BEHIND
        else:  # _READ_BEHIND
            if result.value == 0:
                self.decision = Decision(self.preference, self.round, self.ops)
            else:
                self._advance_round()

    def _adopt(self, v0: int, v1: int) -> None:
        """The step-1 preference rule: forced adoption, else the tie rule."""
        if v0 == 1 and v1 == 0:
            new_pref = 0
        elif v1 == 1 and v0 == 0:
            new_pref = 1
        else:
            new_pref = self.tie_rule.resolve(self.preference, v0, v1)
        if new_pref != self.preference:
            self.preference_changes += 1
            self.preference = new_pref

    def _advance_round(self) -> None:
        if self.round_cap is not None and self.round >= self.round_cap:
            self.overflowed = True
            return
        self.round += 1
        self.step = _READ_A0

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> Tuple:
        return (self.preference, self.round, self.step, self._v0,
                self.ops, self.preference_changes,
                None if self.decision is None else
                (self.decision.value, self.decision.round, self.decision.ops),
                self.halted, self.overflowed)

    def restore(self, snap: Tuple) -> None:
        (self.preference, self.round, self.step, self._v0,
         self.ops, self.preference_changes, dec,
         self.halted, self.overflowed) = snap
        self.decision = None if dec is None else Decision(*dec)


# Extra steps used by the shared-coin subclass.
_POST_READ_RIVAL = 9  # read a_{1-p}[r] after the round's write
_COIN_WRITE = 10      # write 1 to c_{flip}[r]
_COIN_READ_C0 = 11    # read c0[r]
_COIN_READ_C1 = 12    # read c1[r]


class SharedCoinLean(LeanConsensus):
    """Racing counters plus a weak shared coin on *contended* rounds.

    This is a simplified stand-in for Chandra's protocol — the algorithm
    lean-consensus was extracted from — and doubles as the backup protocol
    of the Section 8 bounded-space construction.  Each round is lean's
    four-step round plus contention detection and (when contended) a coin:

    1-2. read ``a0[r]``, ``a1[r]``; forced adoption exactly as in lean.
         If the rival bit was already set, the round is *contended*.
    3.   write 1 to ``a_p[r]``.
    4.   if contention is not yet established, read ``a_{1-p}[r]`` once
         more; a 1 means both bits of round r are now set — contended.
    5.   read ``a_{1-p}[r-1]``; 0 decides ``p`` exactly as in lean.
    6.   otherwise, if the round was contended, run the weak shared coin
         for the *next* round's preference: flip a local coin ``b``, write
         1 to ``c_b[r]``, read ``c0[r]`` and ``c1[r]``; adopt the uniquely
         set bit, or keep the local flip on a coin tie.

    Safety: a coin adoption of bit ``b`` happens only when ``a_b[r]`` has
    been *observed* set, so the Lemma-2 round ladder is preserved, and the
    forced-adoption rule at the next round start can always override the
    coin — the Lemma-4 agreement argument goes through verbatim.  Validity
    holds because unanimous executions never mark the rival array, so no
    round is ever contended.

    Liveness: unlike a coin fired on round-*start* ties (which a
    read-read-write-read lockstep never observes as contended), the
    post-write detection sees contention in every schedule in which both
    teams are active at the same round; each contended round then gives the
    tied processes a constant probability of adopting a common preference,
    after which they decide two rounds later.  This is what lets the
    Section-8 construction escape schedules that stall lean-consensus
    forever (see ``examples/why_noise_matters.py``).

    The arrays may be renamed via ``array_prefix`` so several instances (or
    the main/backup pair of the combined protocol) can coexist in one
    memory.
    """

    def __init__(self, pid: int, input_bit: int, coin: CoinSource,
                 round_cap: Optional[int] = None,
                 array_prefix: str = "") -> None:
        super().__init__(pid, input_bit, tie_rule=KeepTie(), round_cap=round_cap)
        self.coin = coin
        self.prefix = array_prefix
        self._flip: Optional[int] = None
        self._c0: Optional[int] = None
        self._contended = False
        #: Number of shared-coin invocations.
        self.coin_uses = 0

    def _arr(self, base: str) -> str:
        return self.prefix + base

    @staticmethod
    def required_arrays(array_prefix: str = "") -> List[Tuple[str, Optional[int]]]:
        return [(array_prefix + "a0", 1), (array_prefix + "a1", 1),
                (array_prefix + "c0", None), (array_prefix + "c1", None)]

    def peek(self) -> Operation:
        if self.done:
            raise ProtocolError(f"p{self.pid} is finished; no pending operation")
        r, p = self.round, self.preference
        if self.step == _READ_A0:
            return read(self._arr("a0"), r)
        if self.step == _READ_A1:
            return read(self._arr("a1"), r)
        if self.step == _WRITE_PREF:
            return write(self._arr(array_for(p)), r, 1)
        if self.step == _POST_READ_RIVAL:
            return read(self._arr(array_for(1 - p)), r)
        if self.step == _COIN_WRITE:
            return write(self._arr(f"c{self._flip}"), r, 1)
        if self.step == _COIN_READ_C0:
            return read(self._arr("c0"), r)
        if self.step == _COIN_READ_C1:
            return read(self._arr("c1"), r)
        return read(self._arr(array_for(1 - p)), r - 1)

    def apply(self, result: OpResult) -> None:
        self._check_result(result)
        self.ops += 1
        if self.step == _READ_A0:
            self._v0 = result.value
            self.step = _READ_A1
        elif self.step == _READ_A1:
            v0, v1 = self._v0, result.value
            self._v0 = None
            if v0 == 1 and v1 == 0:
                self._set_pref(0)
            elif v1 == 1 and v0 == 0:
                self._set_pref(1)
            # Rival bit set at round start => contended round.
            self._contended = (v0, v1)[1 - self.preference] == 1
            self.step = _WRITE_PREF
        elif self.step == _WRITE_PREF:
            self.step = _READ_BEHIND if self._contended else _POST_READ_RIVAL
        elif self.step == _POST_READ_RIVAL:
            self._contended = result.value == 1
            self.step = _READ_BEHIND
        elif self.step == _READ_BEHIND:
            if result.value == 0:
                self.decision = Decision(self.preference, self.round, self.ops)
            elif self._contended:
                self.coin_uses += 1
                self._flip = self.coin.flip()
                self.step = _COIN_WRITE
            else:
                self._next_round()
        elif self.step == _COIN_WRITE:
            self.step = _COIN_READ_C0
        elif self.step == _COIN_READ_C0:
            self._c0 = result.value
            self.step = _COIN_READ_C1
        else:  # _COIN_READ_C1
            c0, c1 = self._c0, result.value
            self._c0 = None
            if c0 == 1 and c1 == 0:
                self._set_pref(0)
            elif c1 == 1 and c0 == 0:
                self._set_pref(1)
            else:
                self._set_pref(self._flip)  # type: ignore[arg-type]
            self._flip = None
            self._next_round()

    def _next_round(self) -> None:
        self._contended = False
        self._advance_round()

    def _set_pref(self, bit: int) -> None:
        if bit != self.preference:
            self.preference_changes += 1
            self.preference = bit

    def snapshot(self) -> Tuple:
        return super().snapshot() + (self._flip, self._c0, self._contended,
                                     self.coin_uses)

    def restore(self, snap: Tuple) -> None:
        super().restore(snap[:-4])
        self._flip, self._c0, self._contended, self.coin_uses = snap[-4:]
