"""The Section-8 bounded-space combined protocol.

Run lean-consensus through round ``r_max``; a process that completes round
``r_max`` without deciding switches to a backup consensus protocol, feeding
in the preference it held at the cutoff.  Agreement across the boundary
follows from Lemmas 2 and 4: if any process decided ``b`` at or before some
round, the rival array is silenced, so *every* process that reaches the
cutoff holds preference ``b`` — the backup then runs with unanimous inputs
and its validity property forces the same decision.

With ``r_max = O(log^2 n)`` (Theorem 15) the backup runs with probability at
most ``n^-c``, so its polynomial cost contributes O(1) to the expectation,
and the racing arrays use ``O(log^2 n)`` bits.

The backup here is :class:`~repro.core.machine.SharedCoinLean` on its own
array namespace (see DESIGN.md for the substitution note); any machine
factory with the validity property can be passed instead.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.types import Decision, Operation, OpResult
from repro.core.machine import (
    CoinSource,
    LeanConsensus,
    ProcessMachine,
    RandomCoin,
    SharedCoinLean,
)

#: Prefix of the backup protocol's arrays in shared memory.
BACKUP_PREFIX = "bk_"

BackupFactory = Callable[[int, int], ProcessMachine]


def suggested_round_cap(n: int, safety_factor: float = 4.0) -> int:
    """The Theorem-15 cutoff r_max = Theta(log^2 n) for ``n`` processes.

    The constant is generous: the simulations of Section 9 terminate well
    under 2 log2(n) rounds, so ``safety_factor * (log2 n + 1)^2`` makes the
    backup path astronomically rare while keeping the arrays small.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return max(8, math.ceil(safety_factor * (math.log2(n + 1) + 1) ** 2))


def default_backup_factory(coin_rng: np.random.Generator,
                           round_cap: Optional[int] = None) -> BackupFactory:
    """Backup factory producing shared-coin machines on the ``bk_`` arrays."""

    def make(pid: int, input_bit: int) -> SharedCoinLean:
        return SharedCoinLean(pid, input_bit, coin=RandomCoin(coin_rng),
                              round_cap=round_cap,
                              array_prefix=BACKUP_PREFIX)

    return make


class BoundedLeanConsensus(ProcessMachine):
    """lean-consensus truncated at ``r_max`` with a backup protocol.

    Args:
        pid: process id.
        input_bit: consensus input.
        round_cap: the cutoff r_max (use :func:`suggested_round_cap`).
        backup_factory: builds the backup machine from (pid, preference);
            the produced machine must satisfy validity.

    Attributes:
        used_backup: True once this process switched to the backup protocol.
    """

    def __init__(self, pid: int, input_bit: int, round_cap: int,
                 backup_factory: BackupFactory) -> None:
        super().__init__(pid, input_bit)
        if round_cap < 2:
            raise ProtocolError(
                f"round_cap must be >= 2 so unanimous runs can finish "
                f"inside the main phase, got {round_cap}"
            )
        self.round_cap = round_cap
        self._backup_factory = backup_factory
        self.main = LeanConsensus(pid, input_bit, round_cap=round_cap)
        self.backup: Optional[ProcessMachine] = None
        self.used_backup = False

    @staticmethod
    def required_arrays() -> List[Tuple[str, Optional[int]]]:
        return (LeanConsensus.required_arrays()
                + SharedCoinLean.required_arrays(BACKUP_PREFIX))

    @property
    def _active(self) -> ProcessMachine:
        return self.backup if self.backup is not None else self.main

    @property
    def preference(self) -> int:
        """Current preference of whichever phase is active."""
        active = self._active
        return getattr(active, "preference", active.input)

    @property
    def round(self) -> int:
        """Round within the active phase (backup rounds restart at 1)."""
        return getattr(self._active, "round", 0)

    def peek(self) -> Operation:
        if self.done:
            raise ProtocolError(f"p{self.pid} is finished; no pending operation")
        self._maybe_switch()
        return self._active.peek()

    def apply(self, result: OpResult) -> None:
        self._maybe_switch()
        active = self._active
        active.apply(result)
        self.ops += 1
        if active.decision is not None:
            dec = active.decision
            self.decision = Decision(dec.value, dec.round, self.ops)
        elif self.backup is None and self.main.overflowed:
            self._maybe_switch()

    def _maybe_switch(self) -> None:
        if self.backup is None and self.main.overflowed:
            self.backup = self._backup_factory(self.pid, self.main.preference)
            self.used_backup = True
            if self.backup.done:  # pathological factory; fail loudly
                raise ProtocolError("backup machine terminated before starting")

    def max_round_reached(self) -> int:
        """Largest main-phase round this process entered."""
        return self.main.round

    def snapshot(self) -> Tuple:
        return (self.ops, self.halted, self.used_backup,
                None if self.decision is None else
                (self.decision.value, self.decision.round, self.decision.ops),
                self.main.snapshot(),
                None if self.backup is None else self.backup.snapshot())

    def restore(self, snap: Tuple) -> None:
        (self.ops, self.halted, self.used_backup, dec,
         main_snap, backup_snap) = snap
        self.decision = None if dec is None else Decision(*dec)
        self.main.restore(main_snap)
        if backup_snap is None:
            self.backup = None
        else:
            if self.backup is None:
                self.backup = self._backup_factory(self.pid, self.main.preference)
            self.backup.restore(backup_snap)
