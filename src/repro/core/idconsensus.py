"""Id consensus via a tree of binary lean-consensus instances.

Footnote 2 of the paper: "Some authors consider the stronger problem of id
consensus, in which the decision value is the id of some active process.
In many cases, id consensus can be solved in a natural way using a
(lg n)-depth tree of binary consensus protocols."

This module implements that construction.  Ids are ``bits``-bit values;
the protocol decides the id bit by bit, most significant first, with one
binary lean-consensus instance per decided prefix (a binary tree of
instances, each in its own array namespace).

The protocol phases per process:

1. **Announce**: write the candidate id into a single-writer registry slot
   (``idreg[pid]``).  Every candidate that ever influences an instance is
   announced first.
2. **Compete**: while the process's candidate agrees with the decided
   prefix, propose the candidate's next bit to the prefix's instance.
3. **Follow**: once the candidate is eliminated, scan the registry for an
   announced candidate consistent with the decided prefix and propose
   *that* candidate's next bit.  A consistent candidate always exists:
   inductively, every decided prefix extends some announced candidate (the
   winner bit of each instance was proposed on behalf of an announced,
   consistent candidate, and announcements are never retracted).

**Id validity** (the decided id is some participant's candidate) follows
from the induction in phase 3; **agreement** and **wait-freedom** are
inherited from the binary instances — followers keep driving instances, so
nobody ever waits on another process.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ProtocolError
from repro.types import Decision, OpKind, Operation, OpResult
from repro.core.machine import LeanConsensus, ProcessMachine

#: Registry array name; slot pid holds candidate + 1 (0 means empty).
REGISTRY = "idreg"


def id_bits(n_ids: int) -> int:
    """Number of bits needed to express ids in ``range(n_ids)``."""
    if n_ids < 1:
        raise ProtocolError(f"need at least one id, got {n_ids}")
    return max(1, (n_ids - 1).bit_length())


def _namespace(depth: int, prefix: Tuple[int, ...]) -> str:
    return "id" + str(depth) + "_" + "".join(str(b) for b in prefix) + "_"


_PH_ANNOUNCE = 0
_PH_SCAN = 1
_PH_STAGE = 2


class IdConsensus(ProcessMachine):
    """Decide on the id of some active process (footnote 2 construction).

    Args:
        pid: process identifier, also this process's registry slot.
        candidate: the proposed id (usually the process's own pid).
        bits: width of the id space (use :func:`id_bits`).
        n_slots: number of registry slots to scan (the maximum number of
            participants).

    ``decision.value`` mirrors the low bit of the winning id (the
    :class:`~repro.types.Decision` record is bit-typed); the full winning
    id is exposed as :attr:`winner`.
    """

    def __init__(self, pid: int, candidate: int, bits: int,
                 n_slots: int) -> None:
        super().__init__(pid, input_bit=candidate & 1)
        if bits < 1:
            raise ProtocolError(f"bits must be >= 1, got {bits}")
        if not 0 <= candidate < 2 ** bits:
            raise ProtocolError(
                f"candidate {candidate} outside {bits}-bit id space")
        if not 0 <= pid < n_slots:
            raise ProtocolError(f"pid {pid} outside registry of {n_slots}")
        self.candidate = candidate
        self.bits = bits
        self.n_slots = n_slots
        #: Bits decided so far, most significant first.
        self.decided_prefix: List[int] = []
        #: Whether this process's own candidate is still viable.
        self.candidate_alive = True
        #: The decided id, once done.
        self.decided_id: Optional[int] = None
        self._phase = _PH_ANNOUNCE
        self._scan_pos = 0
        self._followed: Optional[int] = None
        self._stage: Optional[LeanConsensus] = None
        self._ns = ""

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def required_arrays(bits: int = 1) -> List[Tuple[str, Optional[int]]]:
        specs: List[Tuple[str, Optional[int]]] = [(REGISTRY, None)]
        for depth in range(bits):
            for prefix_val in range(2 ** depth):
                prefix = tuple((prefix_val >> (depth - 1 - i)) & 1
                               for i in range(depth))
                ns = _namespace(depth, prefix)
                specs.append((ns + "a0", 1))
                specs.append((ns + "a1", 1))
        return specs

    def _bit_of(self, candidate: int, depth: int) -> int:
        return (candidate >> (self.bits - 1 - depth)) & 1

    def _consistent(self, candidate: int) -> bool:
        for d, bit in enumerate(self.decided_prefix):
            if self._bit_of(candidate, d) != bit:
                return False
        return True

    def _start_stage(self, proposal: int) -> None:
        depth = len(self.decided_prefix)
        self._stage = LeanConsensus(self.pid, proposal)
        self._ns = _namespace(depth, tuple(self.decided_prefix))
        self._phase = _PH_STAGE

    def _enter_next_level(self) -> None:
        """After a bit is decided: compete, or scan for a sponsor."""
        depth = len(self.decided_prefix)
        if self.candidate_alive:
            self._start_stage(self._bit_of(self.candidate, depth))
        else:
            self._phase = _PH_SCAN
            self._scan_pos = 0
            self._followed = None

    # -- machine interface ---------------------------------------------------

    def peek(self) -> Operation:
        if self.done:
            raise ProtocolError(f"p{self.pid} is finished; no pending operation")
        if self._phase == _PH_ANNOUNCE:
            return Operation(OpKind.WRITE, REGISTRY, self.pid,
                             self.candidate + 1)
        if self._phase == _PH_SCAN:
            return Operation(OpKind.READ, REGISTRY, self._scan_pos)
        inner = self._stage.peek()
        return Operation(inner.kind, self._ns + inner.array, inner.index,
                         inner.value)

    def apply(self, result: OpResult) -> None:
        expected = self.peek()
        if result.op != expected:
            raise ProtocolError(
                f"p{self.pid}: applied result for {result.op}, "
                f"expected {expected}")
        self.ops += 1
        if self._phase == _PH_ANNOUNCE:
            self._phase = _PH_STAGE
            self._start_stage(self._bit_of(self.candidate, 0))
            return
        if self._phase == _PH_SCAN:
            self._apply_scan(result.value)
            return
        inner = self._stage.peek()
        self._stage.apply(OpResult(inner, result.value))
        if self._stage.decision is not None:
            self._apply_decided_bit(self._stage.decision.value)

    def _apply_scan(self, raw: int) -> None:
        if raw != 0:
            candidate = raw - 1
            if self._consistent(candidate) and self._followed is None:
                self._followed = candidate
        self._scan_pos += 1
        if self._scan_pos >= self.n_slots:
            if self._followed is None:
                # Unreachable if the induction holds; fail loudly rather
                # than silently electing a phantom id.
                raise ProtocolError(
                    f"p{self.pid}: no announced candidate matches decided "
                    f"prefix {self.decided_prefix}")
            depth = len(self.decided_prefix)
            self._start_stage(self._bit_of(self._followed, depth))

    def _apply_decided_bit(self, bit: int) -> None:
        depth = len(self.decided_prefix)
        if self.candidate_alive and bit != self._bit_of(self.candidate, depth):
            self.candidate_alive = False
        self.decided_prefix.append(bit)
        self._stage = None
        if len(self.decided_prefix) == self.bits:
            winner = 0
            for b in self.decided_prefix:
                winner = (winner << 1) | b
            self.decided_id = winner
            self.decision = Decision(winner & 1, 0, self.ops)
        else:
            self._enter_next_level()

    @property
    def winner(self) -> Optional[int]:
        return self.decided_id

    def snapshot(self) -> Tuple:
        return (self.candidate, self.bits, self.n_slots,
                tuple(self.decided_prefix), self.candidate_alive,
                self.decided_id, self._phase, self._scan_pos,
                self._followed, self.ops, self.halted,
                None if self.decision is None else
                (self.decision.value, self.decision.round, self.decision.ops),
                None if self._stage is None else self._stage.snapshot(),
                self._ns)

    def restore(self, snap: Tuple) -> None:
        (self.candidate, self.bits, self.n_slots, prefix,
         self.candidate_alive, self.decided_id, self._phase, self._scan_pos,
         self._followed, self.ops, self.halted, dec, stage_snap,
         self._ns) = snap
        self.decided_prefix = list(prefix)
        self.decision = None if dec is None else Decision(*dec)
        if stage_snap is None:
            self._stage = None
        else:
            self._stage = LeanConsensus(self.pid, 0)
            self._stage.restore(stage_snap)
