"""Executable forms of the paper's correctness properties.

These functions check *executions* (decisions, final memory images, and
recorded histories) against the consensus specification (Section 2) and the
structural lemmas of Section 5:

* agreement — all decisions carry the same bit;
* validity — with unanimous inputs, the common input is the only decision;
* decision gap (Lemma 4b) — all decision rounds lie within one round of the
  earliest decision;
* round ladder (Lemma 2) — a racing array is only ever marked at index r if
  it is marked at r-1; equivalently the set of marked indices is a prefix.

They raise :class:`~repro.errors.InvariantViolation` with a structured
witness, so tests and the model checker can report precise counterexamples.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import InvariantViolation
from repro.memory.registers import SharedMemory
from repro.types import Decision


def check_agreement(decisions: Mapping[int, Decision]) -> None:
    """All non-faulty processes decide on the same bit.

    Args:
        decisions: map from pid to that process's decision (faulty or
            undecided processes simply absent).

    Raises:
        InvariantViolation: naming two processes that decided differently.
    """
    seen: dict[int, int] = {}
    for pid, dec in decisions.items():
        seen.setdefault(dec.value, pid)
    if len(seen) > 1:
        (b0, p0), (b1, p1) = sorted(seen.items())[:2]
        raise InvariantViolation(
            f"agreement violated: p{p0} decided {b0} but p{p1} decided {b1}",
            witness={"decisions": dict(decisions)},
        )


def check_validity(inputs: Mapping[int, int],
                   decisions: Mapping[int, Decision]) -> None:
    """If all inputs are equal, every decision must equal that input."""
    input_values = set(inputs.values())
    if len(input_values) != 1:
        return
    (common,) = input_values
    for pid, dec in decisions.items():
        if dec.value != common:
            raise InvariantViolation(
                f"validity violated: unanimous input {common} but "
                f"p{pid} decided {dec.value}",
                witness={"inputs": dict(inputs), "decisions": dict(decisions)},
            )


def check_decision_gap(decisions: Mapping[int, Decision],
                       max_gap: int = 1) -> None:
    """Lemma 4(b): every process decides at or before round r + 1.

    If some process decides at round r, all decisions happen by round r+1,
    so the spread of decision rounds is at most ``max_gap``.
    """
    rounds = [d.round for d in decisions.values() if d.round > 0]
    if len(rounds) >= 2 and max(rounds) - min(rounds) > max_gap:
        raise InvariantViolation(
            f"decision rounds spread {min(rounds)}..{max(rounds)} exceeds "
            f"allowed gap {max_gap}",
            witness={"decisions": dict(decisions)},
        )


def check_round_ladder(memory: SharedMemory,
                       arrays: Sequence[str] = ("a0", "a1")) -> None:
    """Lemma 2: marked indices of each racing array form a prefix from 1.

    Verified on the final memory image: if index r > 1 holds a 1, index r-1
    must hold a 1 as well (index 0 is the read-only prefix).
    """
    for name in arrays:
        arr = memory.array(name)
        marked = {i for i, v in arr.items() if v == 1 and i >= 1}
        for r in marked:
            if r > 1 and (r - 1) not in marked:
                raise InvariantViolation(
                    f"round ladder violated: {name}[{r}] set but "
                    f"{name}[{r - 1}] is not",
                    witness={"array": name, "marked": sorted(marked)},
                )


def check_decided_round_silenced(memory: SharedMemory,
                                 decisions: Mapping[int, Decision]) -> None:
    """Lemma 4(a): a decision of b at round r implies a_{1-b}[r] is never set.

    Checked on the final memory image, which is conclusive because the check
    runs after all processes have finished.
    """
    for pid, dec in decisions.items():
        if dec.round <= 0:
            continue
        rival = memory.array("a1" if dec.value == 0 else "a0")
        if rival.read(dec.round) == 1:
            raise InvariantViolation(
                f"p{pid} decided {dec.value} at round {dec.round} but the "
                f"rival array is marked at that round",
                witness={"pid": pid, "decision": dec},
            )


def check_all(inputs: Mapping[int, int],
              decisions: Mapping[int, Decision],
              memory: Optional[SharedMemory] = None,
              ladder_arrays: Sequence[str] = ("a0", "a1"),
              max_gap: int = 1) -> None:
    """Run every applicable invariant check in one call."""
    check_agreement(decisions)
    check_validity(inputs, decisions)
    check_decision_gap(decisions, max_gap=max_gap)
    if memory is not None:
        check_round_ladder(memory, ladder_arrays)
        check_decided_round_silenced(memory, decisions)
