"""Protocol state machines: lean-consensus and its relatives.

The primary contribution of the paper is **lean-consensus**
(:class:`~repro.core.machine.LeanConsensus`): Chandra's PODC'96 racing-counters
consensus protocol with every randomized component removed.  This package
also provides:

* the protocol *family* sharing the racing-counters skeleton but differing in
  their tie rule (:mod:`repro.core.machine`): deterministic (the paper),
  local random coin (Ben-Or-like), and weak shared coin (Chandra-like);
* the intentionally unsafe variants used as negative controls for the model
  checker and as the Section 4 ablation (:mod:`repro.core.variants`);
* the Section 8 bounded-space combined protocol (:mod:`repro.core.bounded`);
* execution-level invariant checks mirroring Lemmas 2-4
  (:mod:`repro.core.invariants`).
"""

from repro.core.machine import (
    CoinSource,
    KeepTie,
    LeanConsensus,
    ProcessMachine,
    RandomCoin,
    RandomTie,
    ScriptedCoin,
    SharedCoinLean,
    TieRule,
)
from repro.core.variants import (
    ConservativeLean,
    EagerDecideLean,
    LagLean,
    OptimizedLean,
)
from repro.core.bounded import BoundedLeanConsensus, suggested_round_cap
from repro.core.idconsensus import IdConsensus, id_bits
from repro.core.invariants import (
    check_agreement,
    check_decision_gap,
    check_round_ladder,
    check_validity,
)

__all__ = [
    "BoundedLeanConsensus",
    "CoinSource",
    "ConservativeLean",
    "EagerDecideLean",
    "IdConsensus",
    "KeepTie",
    "LagLean",
    "LeanConsensus",
    "OptimizedLean",
    "ProcessMachine",
    "RandomCoin",
    "RandomTie",
    "ScriptedCoin",
    "SharedCoinLean",
    "TieRule",
    "check_agreement",
    "check_decision_gap",
    "check_round_ladder",
    "check_validity",
    "id_bits",
    "suggested_round_cap",
]
