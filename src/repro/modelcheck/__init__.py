"""Exhaustive interleaving exploration for small configurations.

Safety (agreement, validity, the Lemma-2 ladder) must hold under *every*
schedule, not just the sampled ones.  For small process counts and bounded
operation budgets this package enumerates all interleavings — and, for the
hybrid uniprocessor model, all legal pre-emption choices including the
adversary's initial quantum debts — by depth-first search with state
de-duplication over (machines, memory, scheduler) snapshots.

The intentionally unsafe :class:`~repro.core.variants.EagerDecideLean`
variant exists precisely so the test suite can prove this checker finds
real counterexamples.
"""

from repro.modelcheck.explorer import (
    CheckOutcome,
    explore_free,
    explore_hybrid,
)

__all__ = ["CheckOutcome", "explore_free", "explore_hybrid"]
