"""Depth-first exhaustive exploration with state de-duplication.

Exploration is sound for safety properties: a protocol state (machine
control states + memory contents + scheduler bookkeeping) fully determines
future behaviour, so each state needs to be expanded once.  Budgets bound
the search: ``max_ops_per_process`` truncates infinite schedules (under a
pure adversary lean-consensus may legitimately run forever — that is the
FLP impossibility, not a bug), and ``max_states`` guards memory.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import InvariantViolation, ModelCheckError
from repro.core.invariants import check_agreement, check_validity
from repro.core.machine import ProcessMachine
from repro.memory.registers import SharedMemory
from repro.sched.hybrid import HybridScheduler
from repro.sim.runner import make_memory_for
from repro.types import Decision

MachineFactory = Callable[[int, int], ProcessMachine]


@dataclass
class CheckOutcome:
    """What an exhaustive exploration found.

    Attributes:
        states_explored: distinct states expanded.
        violation: the first safety violation found, if any.
        trace: the pid schedule reaching the violation (one pid per
            executed operation), or None.
        truncated: True when some path hit the per-process op budget while
            processes were still undecided (expected for adversarial
            schedules of a deterministic protocol).
        complete: True when the search ran to exhaustion without hitting
            the state budget.
        max_decision_ops: the largest per-process operation count observed
            at any decision, across all explored paths (drives the
            Theorem-14 bound check).
        decided_leaves: number of distinct explored states in which every
            process had decided.
    """

    states_explored: int = 0
    violation: Optional[InvariantViolation] = None
    trace: Optional[List[int]] = None
    truncated: bool = False
    complete: bool = True
    max_decision_ops: int = 0
    decided_leaves: int = 0

    @property
    def safe(self) -> bool:
        return self.violation is None


class _Search:
    """Shared DFS core for both exploration modes."""

    def __init__(self, machines: Sequence[ProcessMachine],
                 memory: SharedMemory,
                 max_ops_per_process: int,
                 max_states: int) -> None:
        self.machines = list(machines)
        self.memory = memory
        self.max_ops = max_ops_per_process
        self.max_states = max_states
        self.visited: set = set()
        self.outcome = CheckOutcome()
        self.path: List[int] = []
        self.inputs = {m.pid: m.input for m in self.machines}

    # -- state plumbing --------------------------------------------------

    def _key(self, extra: Tuple = ()) -> Tuple:
        return (tuple(m.snapshot() for m in self.machines),
                self.memory.snapshot(), extra)

    def _decisions(self) -> Dict[int, Decision]:
        return {m.pid: m.decision for m in self.machines
                if m.decision is not None}

    def _check_safety(self) -> None:
        decisions = self._decisions()
        check_agreement(decisions)
        check_validity(self.inputs, decisions)

    def _eligible(self) -> List[int]:
        return [m.pid for m in self.machines
                if not m.done and m.ops < self.max_ops]

    def _step(self, machine: ProcessMachine) -> None:
        op = machine.peek()
        res = self.memory.execute(op, pid=machine.pid)
        machine.apply(res)
        if machine.decision is not None:
            self.outcome.max_decision_ops = max(
                self.outcome.max_decision_ops, machine.decision.ops)

    # -- DFS ---------------------------------------------------------------

    def run(self, choices: Callable[[], List[int]],
            extra_key: Callable[[], Tuple],
            on_dispatch: Optional[Callable[[int, List[int]], None]] = None,
            sched_snapshot: Optional[Callable[[], Tuple]] = None,
            sched_restore: Optional[Callable[[Tuple], None]] = None) -> None:
        key = self._key(extra_key())
        if key in self.visited:
            return
        if len(self.visited) >= self.max_states:
            self.outcome.complete = False
            return
        self.visited.add(key)
        self.outcome.states_explored += 1

        opts = choices()
        if not opts:
            if all(m.decision is not None for m in self.machines):
                self.outcome.decided_leaves += 1
            if any(not m.done and m.ops >= self.max_ops
                   for m in self.machines):
                self.outcome.truncated = True
            return

        # Must match the filter used by `choices` (ops budget included),
        # otherwise the hybrid scheduler's legality re-check can disagree
        # with the options enumerated above.
        alive_now = self._eligible()
        for pid in opts:
            machine_snaps = [m.snapshot() for m in self.machines]
            mem_snap = self.memory.snapshot()
            sched_snap = sched_snapshot() if sched_snapshot else None
            machine = next(m for m in self.machines if m.pid == pid)
            if on_dispatch is not None:
                on_dispatch(pid, alive_now)
            self._step(machine)
            self.path.append(pid)
            try:
                self._check_safety()
            except InvariantViolation as violation:
                self.outcome.violation = violation
                self.outcome.trace = list(self.path)
                return
            self.run(choices, extra_key, on_dispatch,
                     sched_snapshot, sched_restore)
            self.path.pop()
            for m, snap in zip(self.machines, machine_snaps):
                m.restore(snap)
            self.memory.restore(mem_snap)
            if sched_restore is not None and sched_snap is not None:
                sched_restore(sched_snap)
            if self.outcome.violation is not None:
                return


def explore_free(factory: MachineFactory, inputs: Dict[int, int],
                 max_ops_per_process: int = 24,
                 max_states: int = 2_000_000) -> CheckOutcome:
    """Explore *every* interleaving of the machines up to the op budget.

    Args:
        factory: builds a machine from (pid, input); must be deterministic
            (coin-flipping protocols need scripted coins).
        inputs: pid -> input bit.
        max_ops_per_process: per-process operation budget bounding depth.
        max_states: distinct-state budget.

    Returns:
        The search outcome; ``outcome.safe`` is the headline verdict.
    """
    machines = [factory(pid, bit) for pid, bit in sorted(inputs.items())]
    memory = make_memory_for(machines)
    search = _Search(machines, memory, max_ops_per_process, max_states)
    search.run(choices=search._eligible, extra_key=lambda: ())
    return search.outcome


def explore_hybrid(factory: MachineFactory, inputs: Dict[int, int],
                   quantum: int,
                   priorities: Optional[Sequence[int]] = None,
                   initial_used_options: Sequence[int] = (0,),
                   debt_policy: str = "holder",
                   max_ops_per_process: int = 16,
                   max_states: int = 2_000_000) -> CheckOutcome:
    """Explore all legal hybrid-scheduled executions (Section 7).

    Enumerates every adversarial choice: the initial quantum debt(s) drawn
    from ``initial_used_options``, and at every step every legal dispatch
    (continue, or pre-empt by a higher-priority process, or by an
    equal-priority one once the quantum is exhausted).

    Under the default ``debt_policy="holder"`` only the first-dispatched
    process can carry initial debt (the Theorem-14 reading), so one debt
    value is enumerated and applied to whichever process runs first; under
    ``"per-process"`` the full cross-product of debts is enumerated.

    The Theorem-14 claim corresponds to
    ``outcome.max_decision_ops <= 12`` with no truncation when
    ``quantum >= 8`` and ``max_ops_per_process > 12``.
    """
    pids = sorted(inputs)
    n = len(pids)
    if priorities is None:
        priorities = [0] * n
    merged = CheckOutcome()
    if debt_policy == "holder":
        debt_choices = [(d,) * n for d in initial_used_options]
    else:
        debt_choices = list(itertools.product(initial_used_options, repeat=n))
    for debts in debt_choices:
        debts_map = {pid: min(d, quantum) for pid, d in zip(pids, debts)}
        machines = [factory(pid, inputs[pid]) for pid in pids]
        memory = make_memory_for(machines)
        scheduler = HybridScheduler(priorities, quantum,
                                    initial_used=debts_map,
                                    debt_policy=debt_policy)
        search = _Search(machines, memory, max_ops_per_process, max_states)

        def choices() -> List[int]:
            alive = [m.pid for m in search.machines
                     if not m.done and m.ops < search.max_ops]
            if not alive:
                return []
            return scheduler.legal_next(alive)

        search.run(
            choices=choices,
            extra_key=scheduler.snapshot,
            on_dispatch=scheduler.dispatch,
            sched_snapshot=scheduler.snapshot,
            sched_restore=scheduler.restore,
        )
        outcome = search.outcome
        merged.states_explored += outcome.states_explored
        merged.truncated |= outcome.truncated
        merged.complete &= outcome.complete
        merged.max_decision_ops = max(merged.max_decision_ops,
                                      outcome.max_decision_ops)
        merged.decided_leaves += outcome.decided_leaves
        if outcome.violation is not None and merged.violation is None:
            merged.violation = outcome.violation
            merged.trace = outcome.trace
            break
    return merged
