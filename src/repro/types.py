"""Shared primitive types: operations, results, and decisions.

Every protocol in this library is expressed as a state machine that emits
:class:`Operation` values one at a time and consumes :class:`OpResult`
values.  The simulation engines execute exactly one operation atomically per
step, which realizes the interleaving semantics of Section 3 of the paper:
operations occur in a sequence pi_1, pi_2, ... and each read returns the value
of the last preceding write to the same location.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class OpKind(enum.Enum):
    """The type of a shared-memory operation.

    The noisy-scheduling model allows a distinct noise distribution per
    operation type (Section 3.1, item 3); schedulers dispatch on this enum to
    pick the right distribution.
    """

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Operation:
    """A single atomic register operation on a named shared array.

    Attributes:
        kind: read or write.
        array: name of the shared array (e.g. ``"a0"`` or ``"a1"``).
        index: location within the array.  May be any integer key; the
            paper's arrays are unbounded in the positive direction and
            carry a read-only ``1`` at index 0.
        value: the value written; ``None`` for reads.
    """

    kind: OpKind
    array: str
    index: int
    value: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is OpKind.WRITE and self.value is None:
            raise ValueError("write operation requires a value")
        if self.kind is OpKind.READ and self.value is not None:
            raise ValueError("read operation must not carry a value")

    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_read:
            return f"read {self.array}[{self.index}]"
        return f"write {self.array}[{self.index}] := {self.value}"


def read(array: str, index: int) -> Operation:
    """Convenience constructor for a read operation."""
    return Operation(OpKind.READ, array, index)


def write(array: str, index: int, value: int) -> Operation:
    """Convenience constructor for a write operation."""
    return Operation(OpKind.WRITE, array, index, value)


@dataclass(frozen=True)
class OpResult:
    """The outcome of executing an :class:`Operation`.

    For reads, ``value`` is the value read.  For writes, ``value`` echoes the
    value written (the acknowledgement carries no information, but echoing
    makes traces self-describing).
    """

    op: Operation
    value: int


@dataclass(frozen=True)
class Decision:
    """A consensus decision by one process.

    Attributes:
        value: the decided bit (0 or 1).
        round: the protocol round at which the decision was made (1-based,
            as in the paper).  Protocols without a round structure may
            report 0.
        ops: the number of shared-memory operations the process performed
            up to and including the operation that triggered the decision.
    """

    value: int
    round: int
    ops: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"decision value must be a bit, got {self.value!r}")


#: Names of the two racing arrays used by lean-consensus and its relatives.
ARRAY_FOR_BIT = ("a0", "a1")


def array_for(bit: int) -> str:
    """Return the name of the racing array associated with preference ``bit``."""
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit!r}")
    return ARRAY_FOR_BIT[bit]
