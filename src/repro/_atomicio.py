"""Crash-safe file writes shared by the sweep cache and the serve store.

One discipline everywhere a result touches disk: write to a temp file in
the destination directory, flush + fsync, then ``os.replace`` into
place.  A writer killed at any instant — including between the write and
the rename — leaves either the old file, no file, or a stray ``*.tmp``;
never a torn file a concurrent reader could load.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Callable, Optional

#: Fault-injection seam for the chaos harness (inert in production).
#: When set, every :func:`atomic_write_bytes` consults the hook *before*
#: writing; the hook may raise (simulating a writer killed mid-write —
#: possibly after scribbling a torn file onto the final path itself, the
#: way a non-atomic filesystem would) or return ``None`` to let the
#: write proceed normally.
_write_fault_hook: Optional[Callable[[str, bytes], None]] = None


def set_write_fault_hook(hook: Optional[Callable[[str, bytes], None]]
                         ) -> Optional[Callable[[str, bytes], None]]:
    """Install (or clear, with ``None``) the write-fault hook.

    Returns the previously installed hook so callers can restore it.
    Test/chaos seam only — see :mod:`repro.serve.chaos`.
    """
    global _write_fault_hook
    previous = _write_fault_hook
    _write_fault_hook = hook
    return previous


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + fsync + rename).

    The temp file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem atomic rename; the fsync before
    the rename means a crash cannot surface a zero-length or truncated
    file under the final name.
    """
    if _write_fault_hook is not None:
        _write_fault_hook(path, data)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def atomic_write_json(path: str, payload) -> None:
    """Atomically write ``payload`` as JSON (the job/state file writer)."""
    blob = json.dumps(payload, sort_keys=True, indent=1).encode()
    atomic_write_bytes(path, blob)
