"""repro — a reproduction of Aspnes, "Fast Deterministic Consensus in a
Noisy Environment" (PODC 2000).

The package implements the paper's protocol (**lean-consensus**), both of
its scheduling models (noisy scheduling and hybrid quantum/priority
uniprocessor scheduling), the bounded-space combined protocol, failure
injection, an exhaustive interleaving model checker, and experiment
harnesses that regenerate Figure 1 and every quantitative theorem claim.

Quickstart — declare a trial as a :class:`TrialSpec` and run it::

    from repro import NoiseSpec, NoisyModelSpec, TrialSpec, run_batch

    spec = TrialSpec(n=100, model=NoisyModelSpec(
        noise=NoiseSpec.of("exponential", mean=1.0)))

    results = run_batch(spec, n_trials=50, seed=42)   # serial
    assert all(r.agreed for r in results)

    # The same batch across 4 worker processes — bit-identical results.
    assert run_batch(spec, 50, seed=42, workers=4) == results

Specs are frozen, validated, and serializable (``spec.to_dict()`` /
``TrialSpec.from_dict``), so sweeps are declared as spec grids and fanned
out by the :class:`BatchRunner`; ``result.engine`` records which engine
actually ran.  One-off runs can use :func:`run_trial`, or the legacy
one-call wrappers, which remain fully supported::

    from repro import run_noisy_trial
    from repro.noise import Exponential

    result = run_noisy_trial(n=100, noise=Exponential(1.0), seed=42)
    assert result.agreed

Engine selection — which configurations run where:

===========================  ===========================================
configuration                engine
===========================  ===========================================
step / hybrid model          ``"step"`` / ``"hybrid"`` (always)
noisy, protocol in the fast  ``engine="fast"``: the vectorized replay at
family (lean, optimized,     any n.  ``engine="auto"``: fast when
eager, conservative,         n >= 256, else event —
random-tie), any noise       ``result.engine_reason`` explains fallbacks
distribution, random         (e.g. a narrow n miss).  Random halting
halting (``h``)              compiles to per-process death schedules.
noisy + adaptive adversary,  event engine only.  ``engine="auto"`` falls
recorder, round cap,         back silently-but-explained
per-op-kind write noise,     (``engine_reason``); ``engine="fast"``
shared-coin / bounded /      raises :class:`ConfigurationError` naming
factory protocols            the blocker.
===========================  ===========================================

``engine="fast"`` composes with the batch runner's ``workers``: each
worker chunk presamples its ``(trials, n, max_ops)`` schedule tensor and
argsorts it in a single numpy call, and results stay bit-identical to
serial per-trial runs for every ``workers`` value.  The differential
oracle (:mod:`repro.sim.differential`) cross-validates the two engines on
shared schedules.

Migration note — legacy kwargs map onto spec fields as follows:

=============================  =============================================
``run_noisy_trial(...)`` kwarg  ``TrialSpec`` field
=============================  =============================================
``n``                          ``n``
``noise``                      ``model.noise`` (``NoiseSpec`` /
                               ``noise_to_spec``); ``model.write_noise``
                               for per-op-kind noise
``inputs``                     ``inputs``
``protocol`` / ``round_cap``   ``protocol`` (``ProtocolSpec``)
``delta`` / ``dither_epsilon`` ``model.delta`` (``DeltaSpec``, e.g.
                               ``DeltaSpec.of("dithered", epsilon=...)``)
``h`` / ``crash_adversary``    ``failures`` (``FailureSpec`` /
                               ``AdversarySpec``)
``engine``                     ``engine``
``allow_degenerate``           ``model.allow_degenerate``
``stop_after_first_decision``  ``stop_after_first_decision``
``record`` / ``max_total_ops`` ``record`` / ``max_total_ops``
``check``                      ``check``
``seed``                       stays a call-site argument
                               (``run_trial(spec, seed)``)
=============================  =============================================

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.types import Decision, Operation, OpKind, OpResult, read, write
from repro.errors import (
    ConfigurationError,
    DistributionError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    SchedulerError,
    SimulationError,
)
from repro.core.machine import LeanConsensus, SharedCoinLean
from repro.core.bounded import BoundedLeanConsensus, suggested_round_cap
from repro.api import (
    AdversarySpec,
    BatchRunner,
    CompiledTrial,
    DeltaSpec,
    FailureSpec,
    HybridModelSpec,
    NoiseSpec,
    NoisyModelSpec,
    PickerSpec,
    ProtocolSpec,
    StepModelSpec,
    TrialSpec,
    compile_death_ops,
    compile_spec,
    fast_ineligibility,
    noise_to_spec,
    resolve_engine,
    resolve_engine_info,
    run_batch,
    run_trial,
    run_trials,
)
from repro.sim.runner import (
    half_and_half,
    run_hybrid_trial,
    run_noisy_trial,
    run_noisy_trials,
    run_step_trial,
)
from repro.sim.metrics import summarize
from repro.sim.results import TrialResult

__version__ = "1.1.0"

__all__ = [
    "AdversarySpec",
    "BatchRunner",
    "BoundedLeanConsensus",
    "CompiledTrial",
    "ConfigurationError",
    "Decision",
    "DeltaSpec",
    "DistributionError",
    "FailureSpec",
    "HybridModelSpec",
    "InvariantViolation",
    "LeanConsensus",
    "NoiseSpec",
    "NoisyModelSpec",
    "OpKind",
    "OpResult",
    "Operation",
    "PickerSpec",
    "ProtocolError",
    "ProtocolSpec",
    "ReproError",
    "SchedulerError",
    "SharedCoinLean",
    "SimulationError",
    "StepModelSpec",
    "TrialResult",
    "TrialSpec",
    "__version__",
    "compile_death_ops",
    "compile_spec",
    "fast_ineligibility",
    "half_and_half",
    "noise_to_spec",
    "read",
    "resolve_engine",
    "resolve_engine_info",
    "run_batch",
    "run_hybrid_trial",
    "run_noisy_trial",
    "run_noisy_trials",
    "run_step_trial",
    "run_trial",
    "run_trials",
    "suggested_round_cap",
    "summarize",
    "write",
]
