"""repro — a reproduction of Aspnes, "Fast Deterministic Consensus in a
Noisy Environment" (PODC 2000).

The package implements the paper's protocol (**lean-consensus**), both of
its scheduling models (noisy scheduling and hybrid quantum/priority
uniprocessor scheduling), the bounded-space combined protocol, failure
injection, an exhaustive interleaving model checker, and experiment
harnesses that regenerate Figure 1 and every quantitative theorem claim.

Quickstart::

    from repro import run_noisy_trial
    from repro.noise import Exponential

    result = run_noisy_trial(n=100, noise=Exponential(1.0), seed=42)
    assert result.agreed
    print("first decision at round", result.first_decision_round)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.types import Decision, Operation, OpKind, OpResult, read, write
from repro.errors import (
    ConfigurationError,
    DistributionError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    SchedulerError,
    SimulationError,
)
from repro.core.machine import LeanConsensus, SharedCoinLean
from repro.core.bounded import BoundedLeanConsensus, suggested_round_cap
from repro.sim.runner import (
    half_and_half,
    run_hybrid_trial,
    run_noisy_trial,
    run_noisy_trials,
    run_step_trial,
)
from repro.sim.metrics import summarize
from repro.sim.results import TrialResult

__version__ = "1.0.0"

__all__ = [
    "BoundedLeanConsensus",
    "ConfigurationError",
    "Decision",
    "DistributionError",
    "InvariantViolation",
    "LeanConsensus",
    "OpKind",
    "OpResult",
    "Operation",
    "ProtocolError",
    "ReproError",
    "SchedulerError",
    "SharedCoinLean",
    "SimulationError",
    "TrialResult",
    "__version__",
    "half_and_half",
    "read",
    "run_hybrid_trial",
    "run_noisy_trial",
    "run_noisy_trials",
    "run_step_trial",
    "suggested_round_cap",
    "summarize",
    "write",
]
