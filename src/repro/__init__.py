"""repro — a reproduction of Aspnes, "Fast Deterministic Consensus in a
Noisy Environment" (PODC 2000).

The package implements the paper's protocol (**lean-consensus**), both of
its scheduling models (noisy scheduling and hybrid quantum/priority
uniprocessor scheduling), the bounded-space combined protocol, failure
injection, an exhaustive interleaving model checker, and experiment
harnesses that regenerate Figure 1 and every quantitative theorem claim.

Quickstart — declare a trial as a :class:`TrialSpec` and run it::

    from repro import NoiseSpec, NoisyModelSpec, TrialSpec, run_batch

    spec = TrialSpec(n=100, model=NoisyModelSpec(
        noise=NoiseSpec.of("exponential", mean=1.0)))

    results = run_batch(spec, n_trials=50, seed=42)   # serial
    assert all(r.agreed for r in results)

    # The same batch across 4 worker processes — bit-identical results.
    assert run_batch(spec, 50, seed=42, workers=4) == results

Specs are frozen, validated, and serializable (``spec.to_dict()`` /
``TrialSpec.from_dict``), so sweeps are declared as spec grids and fanned
out by the :class:`BatchRunner`; ``result.engine`` records which engine
actually ran.  One-off runs can use :func:`run_trial`, or the legacy
one-call wrappers, which remain fully supported::

    from repro import run_noisy_trial
    from repro.noise import Exponential

    result = run_noisy_trial(n=100, noise=Exponential(1.0), seed=42)
    assert result.agreed

Engine selection — which configurations run where:

===========================  ===========================================
configuration                engine
===========================  ===========================================
step / hybrid model          ``"step"`` / ``"hybrid"`` (always)
noisy, protocol in the fast  ``engine="fast"``: the scalar vectorized
family (lean, optimized,     replay at any n.  ``engine="kernel"``: the
eager, conservative,         trial-parallel lockstep replay — the whole
random-tie), any noise       batch steps simultaneously, bit-identical
distribution, random         to ``"fast"`` and fastest at high trial
halting (``h``), round       counts (a 10,000-trial Figure-1 cell runs
caps, ``max_total_ops``      5x+ the frame path; at n=1024 the lockstep
budgets                      replay clears it ~1.5x).  ``engine="auto"``:
                             kernel when the batch carries >= 512 trials
                             and n <= 128 — or n <= 1024 when the noise
                             distribution has a closed-form inverse CDF
                             (every Figure-1 distribution: exponential,
                             shifted-exponential, uniform, geometric,
                             two-point, bounded truncated-normal), where
                             the per-event pick is a segmented O(log n)
                             tournament min instead of a flat scan; else
                             fast when n >= 256, else event —
                             ``result.engine_reason`` explains fallbacks
                             (e.g. a narrow n miss).  Random halting
                             compiles to per-process death schedules;
                             round caps and op budgets replay exactly
                             (the budget stops at the precise executed
                             event, recorded in the frame's
                             ``budget_exhausted`` column).
noisy + adaptive adversary,  event engine only.  ``engine="auto"`` falls
recorder (``record=True``),  back silently-but-explained
per-op-kind write noise,     (``engine_reason``, listing *every*
shared-coin / bounded /      applicable blocker); ``engine="fast"`` /
factory protocols            ``engine="kernel"`` raise
                             :class:`ConfigurationError` naming them.
===========================  ===========================================

What the kernel refuses, it refuses exactly where the fast engine does
(the two share eligibility); what it cannot *accelerate* it still runs:
distributions without a closed-form inverse CDF (unbounded truncated
normals, opaque instances, subclasses, ...) keep the legacy per-trial
sampling lane — and the legacy n cap of 128 — and only the replay
itself is lockstep.  The discrete lanes (geometric, two-point) quantize
their cumulative time chains so exact cross-process ties break
identically on every engine; that discipline rides the packed-pid tie
break, so explicit ``engine="kernel"`` refuses those distributions past
n = 2048.  Trials whose sampled horizon overflows fall back one-by-one
to the scalar replay on an exactly-extended schedule, so ragged
horizons never cost bit-identity — even at n=1024 under a round cap or
an op budget.

``engine="fast"``/``"kernel"`` compose with the batch runner's
``workers``: the engine choice is resolved once per batch (never per
worker chunk), and results stay bit-identical to serial per-trial runs
for every ``workers`` value.  The differential oracle
(:mod:`repro.sim.differential`) cross-validates all three engines on
shared schedules.

The lockstep kernel's array math is pluggable
(``TrialSpec(backend=...)``, CLI ``--backend``; registry in
:mod:`repro.sim.backend`):

===========  ============  =============================================
backend      oracle tier   what runs there
===========  ============  =============================================
``numpy``    bitwise       the default — every engine, every lane.
``numba``    bitwise       JIT-compiled lockstep inner loops (same
                           float64 ops in the same order); requires the
                           ``numba`` wheel.
``cupy``     float-tol     device-resident schedule tensors with a
                           host-side event pick; plain lean variant,
                           no crash schedules / round caps / op
                           budgets, n <= 2048; requires ``cupy`` + a
                           CUDA device.
===========  ============  =============================================

Backend resolution mirrors engine resolution: a backend that cannot run
(missing import, no device, or an unsupported feature) degrades to
numpy with the reason appended to ``result.engine_reason`` — unless
``engine="kernel"`` was explicitly pinned, in which case the spec
raises :class:`ConfigurationError` naming the blocker.  ``result.backend``
records what actually ran.  The differential oracle gates every backend
(``assert_equivalent(spec, backend=...)``) and never degrades.

Sweeps — declare a grid instead of writing a loop.  A
:class:`SweepSpec` is a base :class:`TrialSpec` plus named axes that
mutate spec fields by dotted path (including component-spec parameters
like ``"model.noise.params.sigma"``); :func:`run_sweep` executes the
grid through the batch runner with deterministic grid-order seeding and
returns one columnar :class:`ResultFrame` per cell::

    from repro import (NoiseSpec, NoisyModelSpec, SweepAxis, SweepSpec,
                       TrialSpec, run_sweep)
    from repro.analysis.aggregate import MeanCI

    sweep = SweepSpec(
        base=TrialSpec(n=1, model=NoisyModelSpec(
            noise=NoiseSpec.of("exponential", mean=1.0)),
            engine="fast", stop_after_first_decision=True),
        axes=(SweepAxis("n", (1, 10, 100, 1000)),),
        trials=10_000)
    mean_ci = MeanCI("first_decision_round")
    for cell, frame in run_sweep(sweep, seed=2000, workers=8,
                                 cache_dir="~/.cache/repro-sweeps"):
        print(cell.coord("n"), *mean_ci(frame))

Frames are the columnar twin of the result list:
``run_batch(spec, k, seed, as_frame=True).to_trial_results()`` is
bit-identical to ``run_batch(spec, k, seed)``, but the fast engine
writes numpy columns directly (zero per-trial ``TrialResult``/dict
churn — 2-4x more trials/sec on Figure-1-shaped sweeps), pool workers
ship arrays instead of pickled dataclass lists, and aggregations
(:mod:`repro.analysis.aggregate`: ``Mean``, ``MeanCI``,
``BootstrapCI``, ``TailProbabilities``, rates, log fits) run columnar.
Aggregating an optional column of a cell in which *no* trial decided
raises :class:`AggregationError` naming the offending spec.  The
``cache_dir`` cache (CLI: ``--cache-dir``) persists finished grid cells
keyed by (spec, seed state, code version), so interrupted
``--paper``-scale runs resume instead of recomputing.

Migration — per-experiment ``run()`` grid loops map onto sweep
declarations as follows (the experiment harnesses themselves are now
implemented this way):

==============================================  ==========================================
legacy hand-rolled loop                         sweep declaration
==============================================  ==========================================
``for dist in dists: for n in ns:`` (figure1)   axes ``("model.noise", dists)``,
                                                ``("n", ns)``
``for n in ns:`` (scaling / lower_bound)        axis ``("n", ns)``
``for h in hs:`` (failures)                     axis ``("failures.h", hs)``
``for sigma in sigmas:`` (ablations ABL2a)      axis ``("model.noise.params.sigma",
                                                sigmas)``
``for style: for burst:`` (extensions EXP-STAT) axes ``("model.delta.params.style", ...)``,
                                                ``("model.delta.params.burst_every", ...)``
``runner.run(spec, trials, seed=root)``         ``run_sweep(sweep, seed=root)`` (same
per cell                                        root-generator child-block discipline —
                                                bit-identical output, pinned by the
                                                golden stdout tests)
``[t.first_decision_round for t in batch]``     ``frame.column("first_decision_round")``
+ ``mean_confidence_interval``                  + ``MeanCI("first_decision_round")``
==============================================  ==========================================

Loops that a sweep deliberately does **not** express: paired-seed
protocol comparisons (ablations ABL1 re-consumes one seed block across
protocols) and live-object experiments (adaptive adversaries, contention
meters, machine factories) keep their bespoke loops.

Migration note — legacy kwargs map onto spec fields as follows:

=============================  =============================================
``run_noisy_trial(...)`` kwarg  ``TrialSpec`` field
=============================  =============================================
``n``                          ``n``
``noise``                      ``model.noise`` (``NoiseSpec`` /
                               ``noise_to_spec``); ``model.write_noise``
                               for per-op-kind noise
``inputs``                     ``inputs``
``protocol`` / ``round_cap``   ``protocol`` (``ProtocolSpec``)
``delta`` / ``dither_epsilon`` ``model.delta`` (``DeltaSpec``, e.g.
                               ``DeltaSpec.of("dithered", epsilon=...)``)
``h`` / ``crash_adversary``    ``failures`` (``FailureSpec`` /
                               ``AdversarySpec``)
``engine``                     ``engine``
``allow_degenerate``           ``model.allow_degenerate``
``stop_after_first_decision``  ``stop_after_first_decision``
``record`` / ``max_total_ops`` ``record`` / ``max_total_ops``
``check``                      ``check``
``seed``                       stays a call-site argument
                               (``run_trial(spec, seed)``)
=============================  =============================================

Sweeps as jobs — :mod:`repro.serve` is the production lane over the
same deterministic core: a sweep + seed compiles into a persisted,
content-addressed :class:`~repro.serve.SweepJob` split into
chunk-granular work units, executed by a :class:`~repro.serve.JobRunner`
that survives worker death (requeue), survives coordinator death
(resume from the store), streams per-cell aggregates while running
(mean/CI queryable mid-run, O(chunk) memory), and deduplicates shared
chunks across jobs.  ``python -m repro serve serve --store DIR`` exposes
the same lifecycle over a localhost HTTP API.  The contract: job frames
are **bit-identical** to ``run_sweep`` of the same sweep and seed, no
matter how the work was chunked, pooled, killed, or resumed.

Failure semantics — every failure mode has a defined recovery, and none
of them can change the bytes of the result:

=================================  =====================================
failure                            recovery
=================================  =====================================
worker killed mid-chunk            chunk requeued with persisted
                                   exponential backoff; after 3 losses
                                   the job fails typed
                                   (:class:`~repro.serve.JobFailedError`)
                                   with the chunk named
worker wedged past a deadline      ``chunk_timeout=`` cancels and
                                   requeues; a straggler that finishes
                                   late stores idempotently and the
                                   retry adopts its chunk
coordinator killed (any point)     rerun adopts every stored chunk;
                                   time-bounded leases expire so another
                                   coordinator can take over — a stale
                                   claim (dead pid, reused pid, expired
                                   deadline) never blocks progress
torn/truncated object on disk      reads as a miss on every path (store
                                   hit, dedup adoption, HTTP
                                   ``/objects/<key>``, ``--check-local``)
                                   and is recomputed, then repaired
operator cancel                    ``cancel`` (CLI/HTTP) drains
                                   cooperatively: stored chunks are
                                   kept, leases released, state
                                   ``cancelled``; resubmission resumes
hung/unreachable service           :class:`~repro.serve.client.ServeClient`
                                   bounds every call with timeouts and
                                   retries, then raises a typed
                                   :class:`~repro.errors.ServeTimeoutError`
=================================  =====================================

The whole table is exercised, deterministically, by the seeded chaos
harness (:mod:`repro.serve.chaos`): a :class:`~repro.serve.chaos.FaultPlan`
compiled from a seed injects worker kills, torn writes, stale-claim
squats, frozen heartbeats, slow workers, and coordinator crashes — and
the surviving job's frames must still be bit-identical to ``run_sweep``.
``python -m repro serve gc --store DIR`` reclaims unreferenced or aged
objects (never under a live lease).

===========================================  ================================================
in-process ``run_sweep``                     job lane (``python -m repro serve ...``)
===========================================  ================================================
``run_sweep(sweep, seed=2000)``              ``submit --preset figure1 --seed 2000 --sync``
                                             (or ``SweepJob.from_sweep(sweep, seed=2000)``
                                             + ``JobRunner(store).run(job)``)
``cache_dir=`` cell cache (whole cells,      content-addressed chunk store (chunk-granular,
same-process reuse)                          cross-job dedup, claim files keep concurrent
                                             coordinators from double-computing)
interrupted run recomputes unfinished        killed run resumes: stored chunks are adopted,
cells from scratch                           only missing chunks recompute
aggregate after the sweep returns            ``status`` / ``aggregates`` mid-run
                                             (trials/s, ETA, streaming mean/CI)
``SweepResult.frame(...)``                   ``result`` (CLI), ``JobResult.frame(...)``,
                                             or ``ServeClient.result_frames(job_id)``
seed: int / SeedSequence / Generator         int / SeedSequence only — the legacy
(Generator warns ``LegacySeedLaneWarning``)  spawn lane cannot be jobbed or resumed
===========================================  ================================================

Submitting the same sweep twice is a no-op (jobs are content-addressed
by what they compute); submitting an *overlapping* sweep computes each
shared chunk once and reuses it from the store.

Migration note — from ``run_sweep`` to multi-node: nothing in the sweep
declaration changes.  Point every coordinator at the same store
directory and run the same job from each —
``JobRunner(store, workers=W, backend="worker-pool").run(job)`` — and
the lease protocol partitions the chunks between them (each chunk is
computed once, stragglers are adopted from the store).  Leases are an
optimization, not a correctness requirement: object writes are atomic
and idempotent, so the worst a lost lease costs is a duplicated chunk
computation, never a wrong byte.  The default in-process pool
(``backend="pool"``) remains for single-node runs; both backends sit
behind the same :class:`~repro.serve.executor.Dispatcher` seam.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.types import Decision, Operation, OpKind, OpResult, read, write
from repro.errors import (
    AggregationError,
    ConfigurationError,
    DistributionError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    SchedulerError,
    SimulationError,
)
from repro.core.machine import LeanConsensus, SharedCoinLean
from repro.core.bounded import BoundedLeanConsensus, suggested_round_cap
from repro.api import (
    AdversarySpec,
    BatchRunner,
    CompiledTrial,
    DeltaSpec,
    FailureSpec,
    HybridModelSpec,
    NoiseSpec,
    NoisyModelSpec,
    PickerSpec,
    ProtocolSpec,
    ResultFrame,
    StepModelSpec,
    SweepAxis,
    SweepResult,
    SweepSpec,
    TrialSpec,
    compile_death_ops,
    compile_spec,
    fast_ineligibility,
    noise_to_spec,
    resolve_engine,
    resolve_engine_info,
    run_batch,
    run_sweep,
    run_trial,
    run_trials,
    run_trials_frame,
)
from repro.sim.runner import (
    half_and_half,
    run_hybrid_trial,
    run_noisy_trial,
    run_noisy_trials,
    run_step_trial,
)
from repro.sim.metrics import summarize
from repro.sim.results import TrialResult

__version__ = "1.1.0"

__all__ = [
    "AdversarySpec",
    "AggregationError",
    "BatchRunner",
    "BoundedLeanConsensus",
    "CompiledTrial",
    "ConfigurationError",
    "Decision",
    "DeltaSpec",
    "DistributionError",
    "FailureSpec",
    "HybridModelSpec",
    "InvariantViolation",
    "LeanConsensus",
    "NoiseSpec",
    "NoisyModelSpec",
    "OpKind",
    "OpResult",
    "Operation",
    "PickerSpec",
    "ProtocolError",
    "ProtocolSpec",
    "ReproError",
    "ResultFrame",
    "SchedulerError",
    "SharedCoinLean",
    "SimulationError",
    "StepModelSpec",
    "SweepAxis",
    "SweepResult",
    "SweepSpec",
    "TrialResult",
    "TrialSpec",
    "__version__",
    "compile_death_ops",
    "compile_spec",
    "fast_ineligibility",
    "half_and_half",
    "noise_to_spec",
    "read",
    "resolve_engine",
    "resolve_engine_info",
    "run_batch",
    "run_hybrid_trial",
    "run_noisy_trial",
    "run_noisy_trials",
    "run_step_trial",
    "run_sweep",
    "run_trial",
    "run_trials",
    "run_trials_frame",
    "suggested_round_cap",
    "summarize",
    "write",
]
