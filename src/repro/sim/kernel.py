"""Trial-parallel lockstep replay kernel.

The fast engine of :mod:`repro.sim.fast` replays one pre-sampled schedule
per call: a tight Python loop over that trial's events.  At sweep scale
(Figure 1 is 10,000 trials per grid point) the interpreter executes
``trials x events`` iterations — the dominant cost of the PR-3 frame
pipeline.  This module replays **all trials of a chunk simultaneously**:
one Python loop over the *global lockstep index*, where iteration ``j``
executes the ``j``-th event of every still-running trial with numpy
operations over the trials axis.

Event order without an argsort
------------------------------

The scalar replay argsorts the flattened schedule to obtain the global
interleaving (and needs a starvation guard when it argsorts only a
column prefix).  The kernel instead maintains, per (process, trial), the
*next* completion time ``NT`` and picks each trial's next event as
``NT.argmin`` down the process axis — the exact k-way merge of the
per-process (sorted) schedule rows.  This produces the true time order
directly, so a trial that reaches its stopping condition strictly inside
the sampled horizon provably matches the infinite-horizon replay: every
unseen operation's completion time exceeds every executed one.

Segmented min for wide process axes
-----------------------------------

A flat column min is O(n) per event, which is what historically capped
auto-promotion at n <= 128.  For wide chunks the kernel keeps a single
reduction tier above ``NT`` (branching :data:`_TREE_BRANCH`): one
``(n / B, trials)`` plane of B-way group mins, so the pick is a
contiguous min over at most ``_PACK_MAX_N / B`` rows.  Because every
per-event state write lands on the one (process, trial) cell the trial
just executed, each iteration refreshes exactly one group segment per
column — a single flat ``take`` of the B member rows against a
precomputed index plane (``NT`` is padded to a multiple of B with the
retirement sentinel so the gather never branches on a partial tail
group).  One tier measured ~5x faster per refresh than the former
multi-level ancestor walk at n = 1024: the advanced-indexing gathers
per level, not the Python dispatch, were the dominant per-event cost.
The packed-pid trick (the owner pid in the low mantissa bits, so the
min *is* the argmin, ties breaking toward the lowest pid) covers
n <= 2048 in both sampling lanes; retired columns park at a huge finite
sentinel rather than +inf so the pid bits stay clean.

The unguarded lockstep loop (no crash schedule, no op budget, no round
cap, no coin stream — the shape every figure-1/scaling sweep cell
actually runs) additionally takes a *batched hot path* that executes the
TWO earliest events of every live trial per Python iteration.  The tier
min yields event A; the strict runner-up B is the min of A's group with
A's slot masked against the min of the remaining groups with A's group
masked.  Both lanes run stacked ``[B-half; A-half]`` through single
take/ufunc dispatches — numpy scalars and flat views hoisted out of the
loop, every gather a bounds-checked ``take`` on precomputed int64
indices — nearly halving the per-event interpreter dispatch count.
Serial order is A then B, and the only cross-process state is the shared
a-bit plane, so executing B from the pre-state is exact except in four
masked cases (A's step-2 write sets a bit B reads; B's step-2 write
would be clobbered by A's stacked-last no-op; A decides or drains; A's
refill undercuts B), where B simply runs next iteration.  Every executed
lane is op-for-op the general body — same ufuncs, same dtypes, same
order — so bit-identity with the scalar replay is preserved (and pinned
by the differential oracle).  Decision/drain bookkeeping stays deferred
behind one ``any()`` flag test; when it fires, retirement masks apply at
*column* granularity so the sibling lane of a deciding or draining pick
never refills a retired trial.

Ragged horizons and the scalar fallback
---------------------------------------

Trials finish at different lockstep indices: finished trials park every
``NT`` entry at ``+inf`` (and are periodically compacted away).  When a
still-running trial's process consumes its whole sampled horizon the
trial's remaining order is unknowable; it is marked ``overflow`` and the
caller finishes it on the scalar replay with a grown horizon (the
sampling lane of :mod:`repro.sim.sampler` makes the regrown schedule an
exact extension, so the fallback stays bit-identical).

The kernel covers the full :data:`repro.sim.fast.FAST_VARIANTS` family —
the ``lag`` variants share one lockstep loop, the Section-4 elision
variant has its own — plus per-process crash schedules (``death_ops``)
and pre-sampled per-process coin flips for the random-tie rule.
Bit-identity against the scalar replay on the same tensor is pinned by
``tests/test_kernel.py`` and the extended differential oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.sim.backend import BACKEND_NAMES, kernel_backend_gap
from repro.sim.fast import FAST_VARIANTS, replay

_INF = np.inf

#: Compact the trial axis when at least this fraction has finished.
_COMPACT_FRACTION = 0.25
#: ... but never below this many slots (compaction is then pure overhead).
#: Kept small: the straggler tail of a wide chunk spends most of its
#: iterations at a tiny live count, and every dead window slot still
#: pays full freight in the batched hot path's 2m-lane arrays.
_COMPACT_MIN = 32

#: Widest process axis the packed-pid trick covers: 11 mantissa bits keep
#: the relative perturbation under 2**-41, still far below any sampled
#: time's spacing (see _ChunkState).
_PACK_MAX_N = 2048
#: Branching factor of the reduction tier over the process axis.
_TREE_BRANCH = 16
_TREE_SHIFT = 4
assert _TREE_BRANCH == 1 << _TREE_SHIFT
#: Build the tier only when the process axis is wide enough for the
#: O(B + n/B) per-event pick+refresh to beat the flat O(n) column min.
_TREE_MIN_N = 128
_TREE_STEPS = np.arange(_TREE_BRANCH, dtype=np.int64)[:, None]


@dataclass
class KernelResult:
    """One chunk's outcomes, columnar over the trial axis.

    Trials flagged in :attr:`overflow` carry no outcome (the caller
    replays them on the scalar path with a larger horizon); every other
    field matches the scalar replay of the same schedule bit for bit.
    ``decisions``/``halted`` hold one chronological tuple per trial —
    the exact payloads :meth:`repro.sim.frame.FrameBuilder.append_fast`
    takes.
    """

    overflow: np.ndarray
    total_ops: np.ndarray
    max_round: np.ndarray
    preference_changes: np.ndarray
    n_decided: np.ndarray
    n_distinct: np.ndarray
    n_halted: np.ndarray
    first_round: np.ndarray
    first_ops: np.ndarray
    last_round: np.ndarray
    decided_value: np.ndarray
    budget_exhausted: np.ndarray
    decisions: List[tuple]
    halted: List[tuple]


def lean_flip_bound(k: int) -> int:
    """Coin flips per process a ``k``-op replay can consume (ties <= rounds)."""
    return k // 4 + 2


def replay_chunk(times: np.ndarray, inputs, variant: str = "lean",
                 death_ops: Optional[np.ndarray] = None,
                 tie_flips: Optional[np.ndarray] = None,
                 stop_after_first_decision: bool = True,
                 horizon_is_final: bool = False,
                 trials_major: bool = False,
                 round_cap: Optional[int] = None,
                 max_total_ops: Optional[int] = None,
                 backend: str = "numpy") -> KernelResult:
    """Replay every trial of a chunk in lockstep.

    Args:
        times: ``(n, trials, k)`` completion-time tensor, C-contiguous;
            ``times[i, t, j]`` is trial ``t``'s completion time of
            process ``i``'s (j+1)-th operation (rows increasing in j).
        inputs: per-process input bits (shared by all trials).
        variant: a :data:`~repro.sim.fast.FAST_VARIANTS` protocol name.
        death_ops: optional ``(n, trials)`` 1-based op index before which
            each process halts (huge sentinel for survivors).
        tie_flips: pre-sampled ``(n, trials, flips)`` coin bits for the
            random-tie rule (each process consumes its row in order, the
            same sequence its ``tie_rngs`` generator would produce);
            required for ``"random-tie"``, ignored otherwise.
        stop_after_first_decision: stop each trial at its first decision.
        trials_major: ``times`` is laid out ``(trials, k, n)`` instead —
            the natural shape of the batched per-trial draws, accepted
            directly so callers skip a 10-million-element transpose.
        horizon_is_final: the tensor is the trial's *whole* schedule
            (legacy-lane semantics): a process that consumes all ``k``
            ops simply runs out of events and the trial continues —
            overflow then means every process drained before the stop,
            exactly when the scalar full-matrix replay returns ``None``.
            With ``False`` (inverse-lane semantics) the tensor is a
            prefix of an infinite schedule, so a drained live process
            immediately overflows its trial (its unseen next event could
            precede — and change — anything that follows).
        round_cap: optional maximum round, matching
            :func:`repro.sim.fast.replay_lean`'s contract — a process
            that would advance past the cap freezes there (the event
            machine's ``overflowed`` flag), unrecorded.
        max_total_ops: optional global per-trial operation budget with
            the event engine's exact stop semantics — executed
            operations only (halting events consume a schedule slot
            without executing), decision-stop checked before the budget,
            ``budget_exhausted`` set iff the budget stop left some
            process undecided.  The budget stop is *at* an executed
            event, so it is exact even mid-horizon: unseen later events
            cannot precede it.
        backend: the array backend (:data:`repro.sim.backend
            .BACKEND_NAMES`) the lockstep runs on.  ``"numpy"`` is the
            reference; ``"numba"`` dispatches to the JIT per-trial merge
            lane (bitwise-identical; runs un-jitted pure Python when the
            wheel is absent — availability gating is engine
            resolution's job, not this function's); ``"cupy"`` to the
            device-array lane.  A backend that does not cover this
            chunk's feature shape raises
            :class:`~repro.errors.ConfigurationError` naming the gap
            (:func:`repro.sim.backend.kernel_backend_gap`); empty and
            single-process chunks short-circuit identically on every
            backend before dispatch.

    Returns:
        A :class:`KernelResult` over the chunk.
    """
    cfg = FAST_VARIANTS.get(variant)
    if cfg is None:
        raise ConfigurationError(
            f"protocol {variant!r} has no vectorized replay; supported: "
            f"{sorted(FAST_VARIANTS)}")
    if times.ndim != 3:
        raise SimulationError(
            f"times must be a 3-D schedule tensor, got shape {times.shape}")
    if trials_major:
        trials, k, n = times.shape
    else:
        n, trials, k = times.shape
    if len(inputs) != n:
        raise SimulationError(f"{len(inputs)} inputs for {n} processes")
    if cfg.random_tie and tie_flips is None and n > 1:
        # (A solo process never reaches a contended tie, so the n == 1
        # broadcast below needs no coin stream.)
        raise ConfigurationError(
            "random-tie lockstep replay requires pre-sampled tie_flips")
    if backend not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown kernel backend {backend!r} "
            f"(choose from {list(BACKEND_NAMES)})")
    if trials == 0:
        return _empty_result()
    if n == 1 and death_ops is None:
        # Before the tensor copy below: the broadcast never reads times
        # (and is backend-independent — no array work to offload).
        return _broadcast_single_process(trials, k, inputs, variant,
                                         stop_after_first_decision,
                                         round_cap, max_total_ops)
    if backend != "numpy":
        gap = kernel_backend_gap(
            backend, variant=variant, n=n,
            has_death_ops=death_ops is not None,
            has_tie_flips=tie_flips is not None,
            round_cap=round_cap, max_total_ops=max_total_ops)
        if gap is not None:
            raise ConfigurationError(
                f'backend="{backend}" cannot replay this chunk: {gap}')
    times = np.ascontiguousarray(times, dtype=np.float64)
    if backend == "numba":
        from repro.sim import _kernel_numba
        return _kernel_numba.replay_chunk_numba(
            times, inputs, variant=variant, death_ops=death_ops,
            tie_flips=tie_flips if cfg.random_tie else None,
            stop_after_first_decision=stop_after_first_decision,
            horizon_is_final=horizon_is_final, trials_major=trials_major,
            round_cap=round_cap, max_total_ops=max_total_ops)
    if backend == "cupy":
        from repro.sim import _kernel_xp
        return _kernel_xp.replay_chunk_xp(
            times, inputs, variant=variant,
            tie_flips=tie_flips if cfg.random_tie else None,
            stop_after_first_decision=stop_after_first_decision,
            horizon_is_final=horizon_is_final, trials_major=trials_major)
    pack = 1 < n <= _PACK_MAX_N
    loop = _lockstep_optimized if cfg.optimized else _lockstep_lean
    return loop(times, trials_major, inputs, cfg, death_ops,
                tie_flips if cfg.random_tie else None,
                stop_after_first_decision, horizon_is_final, pack,
                round_cap, max_total_ops)


def _empty_result() -> KernelResult:
    zi = np.zeros(0, np.int64)
    zf = np.zeros(0, np.float64)
    return KernelResult(np.zeros(0, bool), zi, zi.copy(), zi.copy(),
                        zi.copy(), zi.copy(), zi.copy(), zf, zf.copy(),
                        zf.copy(), zf.copy(), np.zeros(0, bool), [], [])


def _broadcast_single_process(trials, k, inputs, variant, stop_first,
                              round_cap=None, max_total_ops=None):
    """n == 1, no crashes: the outcome is schedule-independent.

    A lone process's events happen in its own program order whatever the
    completion times, so one scalar replay on a placeholder schedule
    yields the chunk's shared outcome; broadcasting it is bit-identical
    to replaying each trial (pinned by tests/test_kernel.py).  The
    random-tie variant gets a placeholder coin too: a solo process never
    reads a contended tie (the only writer of either bit is itself, and
    it reads before it writes), so no flip is ever drawn.  Round caps
    and op budgets are schedule-independent too (both count the solo
    process's own rounds/ops), so they forward to the scalar replay.
    """
    probe = np.arange(1.0, k + 1.0)[None, :]
    dummy_coins = ([np.random.Generator(np.random.PCG64(0))]
                   if FAST_VARIANTS[variant].random_tie else None)
    result = replay(probe, list(inputs), variant=variant,
                    tie_rngs=dummy_coins,
                    stop_after_first_decision=stop_first,
                    round_cap=round_cap, max_total_ops=max_total_ops)
    if result is None:  # horizon shorter than the fixed solo run
        out = _empty_result()
        return KernelResult(
            np.ones(trials, bool),
            *(np.zeros(trials, c.dtype) for c in
              (out.total_ops, out.max_round, out.preference_changes,
               out.n_decided, out.n_distinct, out.n_halted,
               out.first_round, out.first_ops, out.last_round,
               out.decided_value, out.budget_exhausted)),
            decisions=[()] * trials, halted=[()] * trials)

    def full(value, dtype):
        return np.full(trials, value, dtype)

    decisions = tuple((pid, dec.value, dec.round, dec.ops)
                      for pid, dec in result.decisions.items())
    first = decisions[0] if decisions else None
    return KernelResult(
        overflow=np.zeros(trials, bool),
        total_ops=full(result.total_ops, np.int64),
        max_round=full(result.max_round, np.int64),
        preference_changes=full(result.preference_changes, np.int64),
        n_decided=full(len(decisions), np.int64),
        n_distinct=full(1 if decisions else 0, np.int64),
        n_halted=full(0, np.int64),
        first_round=full(first[2] if first else np.nan, np.float64),
        first_ops=full(first[3] if first else np.nan, np.float64),
        last_round=full(decisions[-1][2] if decisions else np.nan,
                        np.float64),
        decided_value=full(first[1] if first else np.nan, np.float64),
        budget_exhausted=full(result.budget_exhausted, bool),
        decisions=[decisions] * trials,
        halted=[()] * trials)


class _ChunkState:
    """Mutable lockstep state shared by the two variant loops.

    Trial-axis arrays are kept *compact*: ``orig`` maps compact slots to
    original trial indices (``times``/``death_ops``/``tie_flips`` are
    indexed through it, per-trial state through the slot).  Per-process
    state lives in flat ``(n * m,)`` arrays indexed ``pid * m + slot``.
    """

    #: Retirement sentinel for packed mode — a huge finite float64 whose
    #: low mantissa bits are zero, so a retired column's "pid" reads 0.
    _DEAD_PACKED = np.frombuffer(
        (np.uint64(0x7FE0000000000000)).tobytes(), np.float64)[0]

    def __init__(self, times, trials_major, inputs, rounds_cap, death_ops,
                 tie_flips, pack=False, track_ops=False):
        if trials_major:
            trials, k, n = times.shape
        else:
            n, trials, k = times.shape
        self.n, self.trials, self.k = n, trials, k
        self.trials_major = trials_major
        self.R = rounds_cap
        self.m = trials
        self.timesf = times.reshape(-1)
        self.deathsf = (None if death_ops is None
                        else np.ascontiguousarray(
                            death_ops, dtype=np.int64).reshape(-1))
        self.flipsf = (None if tie_flips is None
                       else np.ascontiguousarray(
                           tie_flips, dtype=np.int8).reshape(-1))
        self.F = 0 if tie_flips is None else tie_flips.shape[2]
        m = trials
        self.cols = np.arange(m, dtype=np.int64)
        self.orig = self.cols.copy()
        if trials_major:
            self.NT = np.ascontiguousarray(times[:, 0, :].T)
        else:
            self.NT = np.ascontiguousarray(times[:, :, 0])
        # Smallest unsigned dtype for the multiply-sum pid extraction:
        # pids reach n - 1, so uint8 is safe only while n <= 255 (the
        # accumulate stays int64 either way); the 255/256/257 boundary
        # is pinned by tests/test_kernel.py against silent truncation.
        self.pid_col = np.arange(n, dtype=(np.uint8 if n <= 255
                                           else np.int64))[:, None]
        # Packed-pid mode: the owner pid rides in the low mantissa bits
        # of every NT entry, so the column min *is* the event pick (see
        # _pick_events).  All times are positive, so float order equals
        # uint64 bit order and the perturbation (< 2**-41 relative for
        # n <= _PACK_MAX_N) only reorders exact-collision events — which
        # it then breaks by lowest pid, the scalar stable-argsort rule.
        self.pack = pack
        if pack:
            self.pack_mask = np.uint64((1 << (n - 1).bit_length()) - 1)
            self.dead = self._DEAD_PACKED
            u = self.NT.view(np.uint64)
            u &= ~self.pack_mask
            u |= np.arange(n, dtype=np.uint64)[:, None]
        else:
            self.pack_mask = None
            self.dead = _INF
        # Single reduction tier over the process axis: a (n/B, m) plane
        # of B-way group mins of NT, so the per-event pick is one
        # contiguous min over <= _PACK_MAX_N/B rows and each iteration
        # refreshes only the one group segment every column wrote (see
        # refresh_tree).  NT is padded to a multiple of B with the dead
        # sentinel so the refresh gather needs no tail-group clamp.
        # Packed mode only: the min *carries* the owning pid.
        self.tree: Optional[np.ndarray] = None
        self.NTf = self.NT.reshape(-1)
        if pack and n >= _TREE_MIN_N:
            pad = -n % _TREE_BRANCH
            if pad:
                self.NT = np.concatenate(
                    [self.NT, np.full((pad, m), self.dead)])
            self._build_tree()
        # Per-slot executed-op counter for max_total_ops budgets.
        self.exec_ops = np.zeros(m, np.int64) if track_ops else None
        # Packed per-process state; subclass loops define the layout.
        self.opsf = np.zeros(n * m, np.int32)
        self.codef = np.zeros(n * m, np.int32)   # round/step/flags pack
        self.vpf = np.tile(np.asarray(inputs, np.int8), (m, 1)).T.reshape(-1).copy()
        self.tiecntf = (np.zeros(n * m, np.int32)
                        if tie_flips is not None else None)
        # Shared a-bit planes: flat (2, R, m); a[x][0] starts set.
        self.af = np.zeros(2 * self.R * m, np.uint8)
        self.af[0:m] = 1
        self.af[self.R * m:self.R * m + m] = 1
        self.remaining = np.full(m, n, np.int32)
        self.prefchg = np.zeros(m, np.int32)
        # State-code unpacking, overridden by the variant loops.
        self.round_shift = 2
        self.round_mask = np.int32(0x3FF)
        self.ops_shift = None
        self.finished = np.zeros(m, bool)
        self.alive = m
        # Chunk outputs (original trial indexing).
        self.overflow = np.zeros(trials, bool)
        self.out_total = np.zeros(trials, np.int64)
        self.out_maxr = np.zeros(trials, np.int64)
        self.out_chg = np.zeros(trials, np.int64)
        self.out_ndec = np.zeros(trials, np.int64)
        self.out_nhalt = np.zeros(trials, np.int64)
        self.out_firstr = np.full(trials, np.nan)
        self.out_firsto = np.full(trials, np.nan)
        self.out_lastr = np.full(trials, np.nan)
        self.out_budget = np.zeros(trials, bool)
        self._seen0 = np.zeros(trials, bool)
        self._seen1 = np.zeros(trials, bool)
        self.dec_records: list = []      # (trial, pid, value, round, ops)
        self.halt_records: list = []     # (trial, pid)

    # -- tournament tree ---------------------------------------------------

    def _build_tree(self) -> None:
        """(Re)build the group-min tier (and its flat views) from NT."""
        B = _TREE_BRANCH
        m = self.m
        rows = self.NT.shape[0]  # already padded to a multiple of B
        self.tree = np.ascontiguousarray(
            self.NT.reshape(rows // B, B, m).min(axis=1))
        self.treef = self.tree.reshape(-1)
        self.NTf = self.NT.reshape(-1)
        self._m64 = np.int64(m)
        self._Bm = np.int64(B * m)
        # Flat row-step offsets of one group's B members: group g's
        # member (b, col) lives at NTf[g*B*m + b*m + col].
        self._stepm = _TREE_STEPS * m + self.cols

    def refresh_tree(self, p) -> None:
        """Recompute the group segment of row ``p[col]`` per column.

        Every NT write an iteration makes — the crash/decide/drain
        retirements and the next-time refill — lands at ``(p[col],
        col)`` (whole-column retirements update the tier in
        finish/mark_overflow directly), so restoring the tier is one
        flat gather of the touched group's B member rows followed by a
        row min: O(B) per column instead of the flat O(n).
        """
        g = p >> _TREE_SHIFT
        self.treef[g * self._m64 + self.cols] = \
            self.NTf.take(g * self._Bm + self._stepm).min(axis=0)

    # -- bookkeeping -------------------------------------------------------

    def record_decisions(self, slots, pids, values, rounds, ops):
        trials = self.orig[slots]
        self.dec_records.extend(zip(
            trials.tolist(), pids.tolist(), values.tolist(),
            rounds.tolist(), ops.tolist()))
        firsts = np.isnan(self.out_firstr[trials])
        self.out_firstr[trials] = np.where(firsts, rounds,
                                           self.out_firstr[trials])
        self.out_firsto[trials] = np.where(firsts, ops,
                                           self.out_firsto[trials])
        self.out_lastr[trials] = rounds
        self.out_ndec[trials] += 1
        self._seen0[trials] |= values == 0
        self._seen1[trials] |= values == 1

    def record_halts(self, slots, pids):
        trials = self.orig[slots]
        self.halt_records.extend(zip(trials.tolist(), pids.tolist()))
        self.out_nhalt[trials] += 1

    def finish(self, slots):
        """Emit outcomes for finishing slots and retire them.

        The loops declare how to unpack their state codes via
        ``round_shift``/``round_mask``/``ops_shift`` (the lean loop packs
        the op counter into the code; the optimized loop keeps ``opsf``).
        """
        if not slots.size:
            return
        trials = self.orig[slots]
        n, m = self.n, self.m
        codes = self.codef.reshape(n, m)[:, slots]
        if self.ops_shift is not None:
            self.out_total[trials] = (codes >> self.ops_shift).sum(axis=0)
        else:
            self.out_total[trials] = \
                self.opsf.reshape(n, m)[:, slots].sum(axis=0)
        self.out_maxr[trials] = \
            ((codes >> self.round_shift) & self.round_mask).max(axis=0)
        self.out_chg[trials] = self.prefchg[slots]
        self.finished[slots] = True
        self.NT[:, slots] = self.dead
        if self.tree is not None:
            self.tree[:, slots] = self.dead
        self.alive -= slots.size

    def mark_overflow(self, slots):
        if not slots.size:
            return
        self.overflow[self.orig[slots]] = True
        self.finished[slots] = True
        self.NT[:, slots] = self.dead
        if self.tree is not None:
            self.tree[:, slots] = self.dead
        self.alive -= slots.size

    def maybe_compact(self) -> bool:
        m = self.m
        # After a compaction every kept slot is alive, so the finished
        # count inside the current window is just m - alive: O(1).
        done = m - self.alive
        if m < _COMPACT_MIN or done < m * _COMPACT_FRACTION:
            return False
        keep = ~self.finished
        n, m2 = self.n, int(keep.sum())
        self.NT = np.ascontiguousarray(self.NT[:, keep])
        self.orig = self.orig[keep]
        self.cols = np.arange(m2, dtype=np.int64)
        for name in ("opsf", "codef", "vpf", "tiecntf"):
            arr = getattr(self, name)
            if arr is not None:
                setattr(self, name,
                        arr.reshape(n, m)[:, keep].copy().reshape(-1))
        self.af = self.af.reshape(2 * self.R, m)[:, keep].copy().reshape(-1)
        self.remaining = self.remaining[keep]
        self.prefchg = self.prefchg[keep]
        if self.exec_ops is not None:
            self.exec_ops = self.exec_ops[keep]
        self.finished = np.zeros(m2, bool)
        self.m = m2
        self.NTf = self.NT.reshape(-1)
        if self.tree is not None:
            self._build_tree()
        return True

    def build(self, stop_first: bool) -> KernelResult:
        if stop_first:
            # At most one decision (and rarely any halt) per trial:
            # assemble the per-trial tuples directly.
            decisions: List[tuple] = [()] * self.trials
            for rec in self.dec_records:
                decisions[rec[0]] = (rec[1:],)
            halted: List[tuple] = [()] * self.trials
            for trial, pid in self.halt_records:
                halted[trial] += (pid,)
        else:
            dec_lists: List[list] = [[] for _ in range(self.trials)]
            for rec in self.dec_records:
                dec_lists[rec[0]].append(rec[1:])
            decisions = [tuple(d) for d in dec_lists]
            halt_lists: List[list] = [[] for _ in range(self.trials)]
            for trial, pid in self.halt_records:
                halt_lists[trial].append(pid)
            halted = [tuple(h) for h in halt_lists]
        distinct = (self._seen0.astype(np.int64)
                    + self._seen1.astype(np.int64))
        value = np.where(self._seen0 & ~self._seen1, 0.0,
                         np.where(self._seen1 & ~self._seen0, 1.0, np.nan))
        return KernelResult(
            overflow=self.overflow, total_ops=self.out_total,
            max_round=self.out_maxr, preference_changes=self.out_chg,
            n_decided=self.out_ndec, n_distinct=distinct,
            n_halted=self.out_nhalt, first_round=self.out_firstr,
            first_ops=self.out_firsto, last_round=self.out_lastr,
            decided_value=value, budget_exhausted=self.out_budget,
            decisions=decisions, halted=halted)


def _pick_events(st: _ChunkState):
    """Each active trial's next event: (pids, live mask) or None when done.

    ``NT.min`` + an equality multiply-sum is an order of magnitude
    faster than a direct ``argmin`` here (both reductions vectorize
    across the trial axis, and bool argmax has no SIMD path at all).
    Exact cross-process time ties — where the sum would blend two pids —
    are measure-zero for the sampled schedules (the same assumption the
    legacy dither already leans on); the tie-exact discrete lanes of
    :mod:`repro.sim.sampler` therefore require packed mode, where ties
    are broken exactly.  With the group-min tier the min reads its
    <= _PACK_MAX_N/B rows instead of all n (the packed entry carries the
    owning pid through the reduction, ties breaking toward the lowest
    pid exactly as the flat min does).
    """
    tmin = (st.tree if st.tree is not None else st.NT).min(axis=0)
    live = tmin != st.dead
    if not live.any():
        return None
    if st.pack:
        p = (tmin.view(np.uint64) & st.pack_mask).astype(np.int64)
        return p, live
    p = ((st.NT == tmin) * st.pid_col).sum(axis=0, dtype=np.int64)
    # Finished slots match every +inf row at once, summing several pids;
    # they are masked by ``live`` everywhere, but their state writes land
    # on their own column, so the pid only needs to stay in range.
    np.minimum(p, st.n - 1, out=p)
    return p, live


def _lockstep_lean(times, trials_major, inputs, cfg, death_ops, tie_flips,
                   stop_first, final, pack=False, round_cap=None,
                   max_total_ops=None):
    """The four-step-round family (lean / conservative / eager / random-tie).

    Per-process packed state mirrors :func:`repro.sim.fast.replay_lean`:
    ``code = round * 4 + step`` and ``vp = v0 * 2 + pref``.
    """
    n, k = len(inputs), (times.shape[1] if trials_major
                         else times.shape[2])
    R = k // 4 + 2
    if R > 0x3FF:
        raise SimulationError(f"horizon {k} exceeds the packed-round range")
    lag = np.int32(cfg.lag)
    cap = None if round_cap is None else np.int32(round_cap)
    budget = None if max_total_ops is None else np.int64(max_total_ops)
    st = _ChunkState(times, trials_major, inputs, R, death_ops, tie_flips,
                     pack=pack, track_ops=budget is not None)
    # code = ops << 12 | round << 2 | step: every transition the loop
    # takes — step advance, round advance (4r+3+1 == 4(r+1)), decide
    # (freeze round/step) — is code + 4097 - dec.
    st.codef += np.int32(4)  # round 1, step 0, ops 0
    st.ops_shift = 12
    k_i32 = np.int32(k)

    # Hot path: the unguarded shape (no crash schedule, no budget, no
    # round cap, no coin stream) in packed+tier mode — the shape every
    # figure-1/scaling sweep cell runs.  Each iteration batches the TWO
    # earliest events of every live trial: pick A (the tier min), pick B
    # (the runner-up: the min of A's group with A's slot masked, vs the
    # min of the other groups with A's group masked), then run both
    # lanes stacked ``[B-half; A-half]`` through single take/ufunc
    # dispatches, which nearly halves the per-event Python dispatch
    # count.  Serial order is A then B, and the only cross-process state
    # is the shared a-bit plane, so executing B from the pre-state is
    # exact unless (a) A's step-2 write sets a bit B reads, (b) B's
    # step-2 write would be clobbered by A's lane landing last in the
    # scatter, (c) A decides or drains (trial-level bookkeeping), or
    # (d) A's *new* time undercuts B (A is next again).  Those lanes are
    # masked — B simply runs next iteration — so every executed lane is
    # op-for-op the general body below (same ufuncs, same dtypes, same
    # order), keeping bit-identity with the scalar replay.  Scatter
    # collisions between the halves only happen at the masked junk pick
    # of a retired column (p_B reads 0 off the dead sentinel); the A
    # half is stacked last so its write wins.
    hot = (st.deathsf is None and budget is None and cap is None
           and st.flipsf is None and st.tree is not None)
    i32_0, i32_1, i32_2, i32_3 = (np.int32(v) for v in range(4))
    i32_4097 = np.int32(4097)
    mask3ff = np.int32(0x3FF)
    i8_1 = np.int8(1)
    u8_0 = np.uint8(0)
    u8_1 = np.uint8(1)
    i64_15 = np.int64(_TREE_BRANCH - 1)
    fresh = True

    while st.alive:
        if hot:
            if fresh:
                m, m64, cols = st.m, st._m64, st.cols
                codef, vpf, af = st.codef, st.vpf, st.af
                NTf, treef, tree = st.NTf, st.treef, st.tree
                timesf = st.timesf
                Rm = np.int64(R * st.m)
                R_1 = np.int32(R - 1)
                k_m1 = k_i32 - i32_1
                lag_off = np.int64((R - cfg.lag) * st.m)
                stepm, Bm = st._stepm, st._Bm
                n64 = np.int64(n)
                tmaj = st.trials_major
                if tmaj:
                    nxt_base = st.orig * np.int64(k * n)
                else:
                    nxt_base = st.orig * np.int64(k)
                    tk64 = np.int64(st.trials * k)
                cols2 = np.concatenate((cols, cols))
                stepm2 = _TREE_STEPS * m + cols2
                nxt_base2 = np.concatenate((nxt_base, nxt_base))
                pack_mask = st.pack_mask
                keep_mask = ~pack_mask
                dead = st.dead
                fresh = False
            # -- pick A (the min) and B (the strict runner-up) ---------
            tmin = tree.min(axis=0)
            # Finished slots pick junk (the dead sentinel's pid bits read
            # 0); like the general body, their garbage self-writes are
            # free — only decisions, drains and the NT refill mask them.
            live = tmin != dead
            # Pids fit far below 2**63, so the masked uint64 reinterprets
            # as int64 for free (no astype copy).
            pA = (tmin.view(np.uint64) & pack_mask).view(np.int64)
            gA = pA >> _TREE_SHIFT
            gAm = gA * m64 + cols
            grp = NTf.take(gA * Bm + stepm)
            grp.reshape(-1)[(pA & i64_15) * m64 + cols] = dead
            runner = grp.min(axis=0)
            treef[gAm] = dead
            omin = tree.min(axis=0)
            treef[gAm] = tmin
            tB = np.minimum(runner, omin)
            # -- stacked field extraction (B lanes first, A lanes last) -
            t2 = np.concatenate((tB, tmin))
            pu2 = t2.view(np.uint64) & pack_mask
            p2 = pu2.view(np.int64)
            flatS2 = p2 * m64 + cols2
            code2 = codef.take(flatS2)
            s2 = code2 & i32_3
            r2 = (code2 >> 2) & mask3ff
            newo2 = (code2 >> 12) + i32_1
            rclip2 = np.minimum(r2, R_1)
            vp2 = vpf.take(flatS2)
            pref2 = vp2 & i8_1
            ar2 = rclip2 * m64 + cols2
            b0r = s2 == i32_0
            b1r = s2 == i32_1
            b2r = s2 == i32_2
            b3r = s2 == i32_3
            idx_av = b1r * Rm + ar2
            av2 = af.take(idx_av)
            wi2 = pref2 * Rm + ar2
            av_wi = af.take(wi2)
            if lag <= 1:
                riv_idx = ar2 + ar2 - wi2 + lag_off
            else:
                riv_idx = ((i8_1 - pref2) * Rm
                           + np.maximum(rclip2 - lag, i32_0) * m64 + cols2)
            rival2 = af.take(riv_idx)
            # -- next completion times (needed for the B legality test) -
            clamped2 = np.minimum(newo2, k_m1)
            nxt2 = timesf.take(nxt_base2 + clamped2 * n64 + p2 if tmaj
                               else p2 * tk64 + nxt_base2 + clamped2)
            u2 = nxt2.view(np.uint64)
            u2 &= keep_mask
            u2 |= pu2
            # -- B-lane legality: does executing B pre-refresh commute? -
            wiA = wi2[m:]
            # A's a-bit write observably changes state only when it sets
            # a cleared bit; B reads the a-plane at its step-0/1 gather
            # cell and (step 3 only) its rival cell.
            changedA = b2r[m:] & (av_wi[m:] == u8_0)
            readhit = (((b0r[:m] | b1r[:m]) & (idx_av[:m] == wiA))
                       | (b3r[:m] & (riv_idx[:m] == wiA)))
            # B setting a bit that A's (stacked-last, stale) no-op write
            # would erase.
            wwhit = (b2r[:m] & ~b2r[m:] & (wi2[:m] == wiA)
                     & (av_wi[:m] == u8_0))
            decA = live & b3r[m:] & (rival2[m:] == 0)
            drainedA = live & (newo2[m:] >= k_i32)
            execB = (live & ~(decA | drainedA)
                     & ~((changedA & readhit) | wwhit)
                     & (tB < nxt2[m:]))
            exec2 = np.concatenate((execB, live))
            dec2 = exec2 & b3r & (rival2 == 0)
            drained2 = exec2 & (newo2 >= k_i32)
            # -- state updates, masked per lane -------------------------
            new_vp = np.where(b0r, (av2 << u8_1) | pref2.view(np.uint8),
                              vp2.view(np.uint8)).astype(np.int8)
            w0 = vp2 >> i8_1
            newp = np.where(w0 == av2, pref2, av2.view(np.int8))
            changed = b1r & (newp != pref2) & exec2
            st.prefchg += changed[:m]
            st.prefchg += changed[m:]
            new_vp = np.where(b1r, (w0 << i8_1) | newp, new_vp)
            vpf[flatS2] = np.where(exec2, new_vp, vp2)
            af[wi2] = av_wi | (b2r & exec2)
            codef[flatS2] = code2 + exec2 * i32_4097 - dec2
            if not (dec2.any() or drained2.any()):
                final2 = np.where(exec2, nxt2, t2)
                NTf[flatS2] = final2
                # A's group needs no gather: only A's slot changed in it
                # (B lives at p_B; when that lands in the same group the
                # B-half scatter below overwrites with the true min), so
                # the refreshed group min is min(runner-up, A's refill).
                treef[gAm] = np.minimum(runner, final2[m:])
                gB = p2[:m] >> _TREE_SHIFT
                treef[gB * m64 + cols] = \
                    NTf.take(gB * Bm + stepm).min(axis=0)
                continue
            # Rare: a decision and/or a drained horizon this iteration —
            # the general tail below, specialized to no-cap/no-budget.
            # Trial-level bookkeeping is per *column*; at most one lane
            # per column can land here (a deciding/draining A masks B).
            cont2 = exec2
            if dec2.any():
                e = np.nonzero(dec2)[0]
                ecols = cols2[e]
                NTf[flatS2[e]] = dead
                st.record_decisions(ecols, p2[e], pref2[e], r2[e],
                                    newo2[e])
                st.remaining[ecols] -= 1
                if stop_first:
                    fin = ecols[dec2[e] | (st.remaining[ecols] == 0)]
                else:
                    fin = ecols[st.remaining[ecols] == 0]
                st.finish(fin)
                cont2 = exec2 & ~dec2 & ~st.finished[cols2]
                drained2 &= cont2
            if drained2.any():
                dr = np.nonzero(drained2)[0]
                drcols = cols2[dr]
                if final:
                    NTf[flatS2[dr]] = dead
                    st.mark_overflow(
                        drcols[(st.NT[:, drcols] >= dead).all(axis=0)])
                else:
                    st.mark_overflow(drcols)
                # Column-level mask, like the decision branch above: when
                # the *B* lane drains (final=False), mark_overflow retires
                # the whole column, and A's still-cont2 lane must not
                # refill a live time into it — that resurrected column
                # would drain again later and double-retire the slot.
                cont2 = cont2 & ~drained2 & ~st.finished[cols2]
            NTf[flatS2] = np.where(cont2, nxt2, NTf.take(flatS2))
            g2 = p2 >> _TREE_SHIFT
            treef[g2 * m64 + cols2] = \
                NTf.take(g2 * Bm + stepm2).min(axis=0)
            if st.maybe_compact():
                fresh = True
            continue
        picked = _pick_events(st)
        if picked is None:
            break
        p, live = picked
        m = st.m
        flatS = p * m + st.cols
        flatT = (p * st.trials + st.orig
                 if (st.deathsf is not None or st.flipsf is not None
                     or not st.trials_major) else None)
        code = st.codef[flatS]
        s = code & np.int32(3)
        r = (code >> 2) & np.int32(0x3FF)
        o = code >> 12
        guarded = st.deathsf is not None
        # Crash schedule: the event is consumed, the op is not executed.
        if guarded:
            dying = live & (o + 1 >= st.deathsf[flatT])
            if dying.any():
                dy = np.nonzero(dying)[0]
                st.record_halts(dy, p[dy])
                st.NT.reshape(-1)[flatS[dy]] = st.dead
                st.remaining[dy] -= 1
                st.finish(dy[st.remaining[dy] == 0])
                live = live & ~dying
                if not live.any():
                    if st.tree is not None:
                        st.refresh_tree(p)
                    st.maybe_compact()
                    continue
        if budget is not None:
            # Exactly one op executes per live slot this iteration
            # (halting events were just excluded — they consume a
            # schedule slot without executing, as in the event engine).
            st.exec_ops += live
        newo = o + 1
        # Unguarded junk picks keep stepping a finished slot's own code,
        # so the round used for *addressing* is clamped into the planes
        # (live rounds provably stay below R).
        rclip = np.minimum(r, np.int32(R - 1))
        vp = st.vpf[flatS]
        pref = vp & np.int8(1)
        m64 = np.int64(m)
        ar = rclip * m64 + st.cols
        Rm = np.int64(R * m)

        if guarded:
            b0 = live & (s == 0)
            b1 = live & (s == 1)
            b2 = live & (s == 2)
        else:
            b0 = s == 0
            b1 = s == 1
            b2 = s == 2
        b3 = live & (s == 3)

        # Steps 0 and 1 read different planes at the same round index —
        # one plane-selected gather serves both (av is a0[r] for step-0
        # slots and a1[r] for step-1 slots; other slots read junk they
        # never use).
        av = st.af[b1 * Rm + ar]
        # step 0: read a0[r] into v0.
        new_vp = np.where(b0, (av << np.uint8(1)) | pref.view(np.uint8),
                          vp.view(np.uint8)).astype(np.int8)
        # step 1: read a1[r], adopt the leader (or flip on a contended
        # tie).  With one-bit operands the three-way rule collapses: the
        # reads disagree -> adopt a1's value (it equals the leader's
        # bit), agree -> keep the current preference.
        w0 = vp >> np.int8(1)
        newp = np.where(w0 == av, pref, av.view(np.int8))
        if st.flipsf is not None:
            tie = b1 & (w0 == 1) & (av == 1)
            if tie.any():
                cnt = st.tiecntf[flatS]
                fv = st.flipsf[flatT * st.F + np.minimum(cnt, st.F - 1)]
                newp = np.where(tie, fv, newp)
                st.tiecntf[flatS] = np.where(tie, cnt + 1, cnt)
        changed = b1 & (newp != pref)
        st.prefchg += changed
        new_vp = np.where(b1, (w0 << np.int8(1)) | newp, new_vp)
        st.vpf[flatS] = new_vp
        # step 2: write a[pref][r].
        wi = pref * Rm + ar
        st.af[wi] = st.af[wi] | b2
        # step 3: read the rival bit lag rounds behind; 0 decides.  For
        # lag <= 1 the rival index is derivable from what's in hand:
        # (1-pref)*Rm + (rclip-lag)*m + cols == 2*ar - wi + (Rm - lag*m).
        if lag <= 1:
            rival = st.af[ar + ar - wi + np.int64(R * m - lag * m)]
        else:
            behind = np.maximum(rclip - lag, 0)
            rival = st.af[(1 - pref) * Rm + behind * m64 + st.cols]
        dec = b3 & (rival == 0)
        if cap is not None:
            # Round cap: a step-3 read that would advance past the cap
            # freezes instead (the event machine's overflowed flag) —
            # same code freeze as a decision, nothing recorded.
            capped = b3 & ~dec & (r >= cap)
            ended = dec | capped
            new_code = code + np.int32(4097) - dec - capped
        else:
            ended = dec
            new_code = code + np.int32(4097) - dec
        if guarded:
            # Dying slots (and retired junk picks) must not see their
            # per-process state move.
            st.codef[flatS] = np.where(live, new_code, code)
        else:
            # Without crashes every non-live slot is a *finished* trial
            # whose outputs are already emitted; garbage writes to its
            # own state are free, so the guard can go.
            st.codef[flatS] = new_code

        cont = live
        if ended.any():
            e = np.nonzero(ended)[0]
            st.NT.reshape(-1)[flatS[e]] = st.dead
            d = e if cap is None else np.nonzero(dec)[0]
            if d.size:
                st.record_decisions(d, p[d], pref[d], r[d], newo[d])
            st.remaining[e] -= 1
            if stop_first:
                fin = e[dec[e] | (st.remaining[e] == 0)]
            else:
                fin = e[st.remaining[e] == 0]
            st.finish(fin)
            cont = live & ~ended & ~st.finished
        if budget is not None:
            # Event-engine stop order: decision stop first (handled
            # above), then the budget — checked after every executed op,
            # flagged iff the trial still had undecided processes (an
            # unfinished slot always does).  The stop is *at* this
            # event, so later (even unseen) events cannot affect it.
            hit = live & ~st.finished & (st.exec_ops >= budget)
            if hit.any():
                h = np.nonzero(hit)[0]
                st.out_budget[st.orig[h]] = True
                st.finish(h)
                cont = cont & ~hit
        # Refill next completion times; a drained live process means the
        # trial's order is unknowable from here: fall back.
        drained = cont & (newo >= k_i32)
        if drained.any():
            dr = np.nonzero(drained)[0]
            if final:
                # Whole-schedule semantics: the process just runs out of
                # events; the trial is unknowable only once *every*
                # process has (the scalar replay's None condition).
                st.NT.reshape(-1)[flatS[dr]] = st.dead
                st.mark_overflow(dr[(st.NT[:, dr] >= st.dead).all(axis=0)])
            else:
                st.mark_overflow(dr)
            cont = cont & ~drained
        # Clamp into [0, k): junk slots' wrapped counters must never
        # reach the fancy-indexing bounds check.
        clamped = np.minimum(newo, k_i32 - 1)
        np.maximum(clamped, 0, out=clamped)
        if st.trials_major:
            nxt = st.timesf[st.orig * (k * n) + clamped * n + p]
        else:
            nxt = st.timesf[flatT * k + clamped]
        if st.pack:
            u = nxt.view(np.uint64)
            u &= ~st.pack_mask
            u |= p.astype(np.uint64)
        ntf = st.NT.reshape(-1)
        ntf[flatS] = np.where(cont, nxt, ntf[flatS])
        if st.tree is not None:
            st.refresh_tree(p)
        st.maybe_compact()
    if st.alive:
        # No events left but trials unfinished (every remaining process
        # decided or drained while others still ran): the scalar replay
        # returns None here, so these fall back too.
        st.mark_overflow(np.nonzero(~st.finished)[0])
    return st.build(stop_first)


def _lockstep_optimized(times, trials_major, inputs, cfg, death_ops,
                        tie_flips, stop_first, final, pack=False,
                        round_cap=None, max_total_ops=None):
    """The Section-4 elision variant (2-4 ops per round).

    Packed state: ``code = round * 8 + step * 2 + skip_final`` (the
    deterministic tie rule is kept, mirroring ``_replay_optimized``).
    """
    n, k = len(inputs), (times.shape[1] if trials_major
                         else times.shape[2])
    R = k // 2 + 2
    cap = None if round_cap is None else np.int64(round_cap)
    budget = None if max_total_ops is None else np.int64(max_total_ops)
    st = _ChunkState(times, trials_major, inputs, R, death_ops, None,
                     pack=pack, track_ops=budget is not None)
    st.codef += np.int32(8)  # round 1, step 0, skip_final unset
    st.round_shift = 3
    st.round_mask = np.int32(0x0FFFFFFF)
    k_i32 = np.int32(k)

    while st.alive:
        picked = _pick_events(st)
        if picked is None:
            break
        p, live = picked
        m = st.m
        flatS = p * m + st.cols
        flatT = (p * st.trials + st.orig
                 if (st.deathsf is not None or st.flipsf is not None
                     or not st.trials_major) else None)
        o = st.opsf[flatS]
        if st.deathsf is not None:
            dying = live & (o + 1 >= st.deathsf[flatT])
            if dying.any():
                dy = np.nonzero(dying)[0]
                st.record_halts(dy, p[dy])
                st.NT.reshape(-1)[flatS[dy]] = st.dead
                st.remaining[dy] -= 1
                st.finish(dy[st.remaining[dy] == 0])
                live = live & ~dying
                if not live.any():
                    if st.tree is not None:
                        st.refresh_tree(p)
                    st.maybe_compact()
                    continue
        if budget is not None:
            # One executed op per live slot (halting events were just
            # excluded — consumed without executing, as in the engine).
            st.exec_ops += live
        newo = o + 1
        st.opsf[flatS] = np.where(live, newo, o)
        code = st.codef[flatS]
        skip = code & np.int32(1)
        s = (code >> 1) & np.int32(3)
        r = (code >> 3).astype(np.int64)
        vp = st.vpf[flatS]
        pref = vp & np.int8(1)
        ar = r * m + st.cols
        Rm = R * m
        a0v = st.af[ar]
        a1v = st.af[Rm + ar]

        b0 = live & (s == 0)
        b1 = live & (s == 1)
        b2 = live & (s == 2)
        b3 = live & (s == 3)

        # step 0: read a0[r] into v0; -> step 1.
        new_vp = np.where(b0, (a0v << np.uint8(1)) | pref.view(np.uint8),
                          vp.view(np.uint8)).astype(np.int8)
        # step 1: read a1[r]; adopt leader; elide per own/rival bits.
        w0 = vp >> np.int8(1)
        newp = np.where((w0 == 1) & (a1v == 0), np.int8(0),
                        np.where((a1v == 1) & (w0 == 0), np.int8(1), pref))
        changed = b1 & (newp != pref)
        st.prefchg += changed
        new_vp = np.where(b1, (w0 << np.int8(1)) | newp, new_vp)
        st.vpf[flatS] = new_vp
        own = np.where(newp == 0, w0, a1v)
        rival1 = np.where(newp == 0, a1v, w0)
        adv1 = b1 & (own == 1) & (rival1 == 1)
        # step 2: write a[pref][r]; advance if the final read is elided.
        wi = pref.astype(np.int64) * Rm + ar
        st.af[wi] = st.af[wi] | b2
        adv2 = b2 & (skip == 1)
        # step 3: read a[1-pref][r-1]; 0 decides, 1 advances.
        rival = st.af[(1 - pref).astype(np.int64) * Rm
                      + (r - 1) * m + st.cols]
        dec = b3 & (rival == 0)
        adv3 = b3 & (rival != 0)

        adv = adv1 | adv2 | adv3
        if cap is not None:
            # Every advance point routes through _advance_round in the
            # event machine: cap reached -> overflowed, frozen at round
            # r (the "stay" code branch keeps the round bits; step bits
            # are junk on a done process).
            capped = adv & (r >= cap)
            adv = adv & ~capped
            ended = dec | capped
        else:
            ended = dec
        # Non-advancing transitions: s0 -> s1; s1 -> s3 if own bit known
        # set else s2; s2 -> s3; encode (step << 1) | skip with the new
        # skip_final = rival-bit-known-set latched at step 1.
        s1_next = np.where(own == 1, np.int32(3), np.int32(2))
        stay_step = np.where(b0, np.int32(1),
                             np.where(b1, s1_next, np.int32(3)))
        stay_skip = np.where(b1, rival1.astype(np.int32), skip)
        new_code = np.where(
            adv, (r.astype(np.int32) + np.int32(1)) << 3,
            (r.astype(np.int32) << 3) | (stay_step << 1) | stay_skip)
        st.codef[flatS] = np.where(live, new_code, code)

        cont = live
        if ended.any():
            e = np.nonzero(ended)[0]
            st.NT.reshape(-1)[flatS[e]] = st.dead
            d = e if cap is None else np.nonzero(dec)[0]
            if d.size:
                st.record_decisions(d, p[d], pref[d], r[d], newo[d])
            st.remaining[e] -= 1
            if stop_first:
                fin = e[dec[e] | (st.remaining[e] == 0)]
            else:
                fin = e[st.remaining[e] == 0]
            st.finish(fin)
            cont = live & ~ended & ~st.finished
        if budget is not None:
            # Decision stop first, then the budget, checked after every
            # executed op (engine order); flagged iff the slot still had
            # undecided processes — an unfinished slot always does.
            hit = live & ~st.finished & (st.exec_ops >= budget)
            if hit.any():
                h = np.nonzero(hit)[0]
                st.out_budget[st.orig[h]] = True
                st.finish(h)
                cont = cont & ~hit
        drained = cont & (newo >= k_i32)
        if drained.any():
            dr = np.nonzero(drained)[0]
            if final:
                # Whole-schedule semantics: the process just runs out of
                # events; the trial is unknowable only once *every*
                # process has (the scalar replay's None condition).
                st.NT.reshape(-1)[flatS[dr]] = st.dead
                st.mark_overflow(dr[(st.NT[:, dr] >= st.dead).all(axis=0)])
            else:
                st.mark_overflow(dr)
            cont = cont & ~drained
        # Clamp into [0, k): junk slots' wrapped counters must never
        # reach the fancy-indexing bounds check.
        clamped = np.minimum(newo, k_i32 - 1)
        np.maximum(clamped, 0, out=clamped)
        if st.trials_major:
            nxt = st.timesf[st.orig * (k * n) + clamped * n + p]
        else:
            nxt = st.timesf[flatT * k + clamped]
        if st.pack:
            u = nxt.view(np.uint64)
            u &= ~st.pack_mask
            u |= p.astype(np.uint64)
        ntf = st.NT.reshape(-1)
        ntf[flatS] = np.where(cont, nxt, ntf[flatS])
        if st.tree is not None:
            st.refresh_tree(p)
        st.maybe_compact()
    if st.alive:
        # No events left but trials unfinished (every remaining process
        # decided or drained while others still ran): the scalar replay
        # returns None here, so these fall back too.
        st.mark_overflow(np.nonzero(~st.finished)[0])
    return st.build(stop_first)
