"""The lockstep sampling lane: column-major inverse-CDF schedules.

The fast-engine family (scalar replay, trial-batched frame path, and the
trial-parallel lockstep kernel of :mod:`repro.sim.kernel`) shares one
schedule-sampling discipline per spec, because the three paths must stay
*bit-identical* to each other.  For the continuous distributions that
admit a cheap exact inverse CDF this module defines that discipline:

* one consumed stream per trial (the compiler's ``rng_noise`` child);
* for a dithered start schedule, the first ``n`` doubles are the start
  dithers (``start_i = base + epsilon * u_i``);
* operation increments are drawn **column-major**: a ``(k, n)`` uniform
  block assigns ``u[j, i]`` to operation ``j`` of process ``i``, and the
  increment is the distribution's inverse CDF at ``u``.

Column-major order is the load-bearing choice: a ``(k1, n)`` block is a
*prefix* of the ``(k2 > k1, n)`` block drawn from the same stream, so a
replay that runs out of schedule can grow its horizon — or a fallback can
redraw the whole schedule from the stream's start at a larger horizon —
without changing a single already-consumed completion time.  The paper's
model is oblivious (Section 3.1), so when the stopping condition is met
strictly inside the sampled horizon the result provably equals the
infinite-horizon replay.

Distributions without a closed-form inverse (geometric, two-point,
truncated normal, ...) keep the legacy row-major
:meth:`~repro.sched.noisy.NoisyScheduler.presample` lane, which remains
bit-identical to the PR-3 fast engine; this lane exists because drawing
one uniform block per trial (plus one vectorized transform per chunk) is
what makes the kernel's trial-parallel throughput possible.

The anti-simultaneity dither of the legacy lane is deliberately absent
here: it exists to break the *common* exact ties of discrete
distributions, while for continuous inverse transforms a cross-process
tie requires two sums of distinct random doubles to collide exactly — the
same measure-zero event the dither itself already relies on avoiding.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.noise.distributions import (
    Exponential,
    NoiseDistribution,
    ShiftedExponential,
    Uniform,
)

#: Delta-schedule kinds the lane covers (starts drawn inline; no per-op
#: adversary delays).
_LANE_DELTA_KINDS = ("zero", "dithered")


class InverseSampler:
    """One distribution's inverse-CDF transform plus its lane metadata.

    Attributes:
        name: short label for diagnostics.
    """

    def __init__(self, name: str, shift: float, scale: float,
                 log_form: bool) -> None:
        self.name = name
        self._shift = shift
        self._scale = scale
        self._log = log_form

    def transform(self, u: np.ndarray) -> np.ndarray:
        """Map uniforms in [0, 1) to increments (new array, same shape).

        Exponential families use ``shift - scale * log1p(-u)`` (the exact
        inverse CDF; ``log1p`` keeps u -> 1 finite and u = 0 mapping to
        the support's infimum), uniforms ``shift + scale * u``.
        """
        if self._log:
            out = np.log1p(-u)
            out *= -self._scale
        else:
            out = u * self._scale
        if self._shift:
            out += self._shift
        return out

    def transform_inplace(self, u: np.ndarray) -> np.ndarray:
        """:meth:`transform` overwriting ``u`` (the batched pipelines'
        whole-chunk tensors are too large to duplicate).  Bit-identical
        to :meth:`transform`: the same ufuncs in the same order.
        """
        if self._log:
            np.negative(u, out=u)
            np.log1p(u, out=u)
            u *= -self._scale
        else:
            u *= self._scale
        if self._shift:
            u += self._shift
        return u


def inverse_sampler_for(noise: NoiseDistribution) -> Optional[InverseSampler]:
    """The lane's sampler for ``noise``, or ``None`` (legacy lane).

    Only *exact* types are recognized: a subclass may override
    ``sample_array`` and must keep the legacy per-trial discipline.
    """
    kind = type(noise)
    if kind is Exponential or kind is ShiftedExponential:
        return InverseSampler(noise.name, shift=noise.shift,
                              scale=noise.exp_mean, log_form=True)
    if kind is Uniform:
        return InverseSampler(noise.name, shift=noise.low,
                              scale=noise.high - noise.low, log_form=False)
    return None


def lane_applies(model) -> bool:
    """True when a noisy model spec takes the inverse lane.

    ``model`` is a :class:`~repro.api.spec.NoisyModelSpec`; the lane
    needs an invertible noise distribution and a zero/dithered start
    schedule (anything else keeps the legacy presample lane).
    """
    if model.delta.kind not in _LANE_DELTA_KINDS:
        return False
    return inverse_sampler_for(model.noise.build()) is not None


def draw_starts(rng: np.random.Generator, n: int, delta_kind: str,
                base: float, epsilon: float) -> np.ndarray:
    """The lane's start times: ``base + epsilon * u`` or all zeros.

    Must be called *before* any increment block so every path consumes
    the stream identically.
    """
    if delta_kind == "dithered":
        return base + epsilon * rng.random(n)
    return np.zeros(n)


def draw_times(rng: np.random.Generator, sampler: InverseSampler,
               starts: np.ndarray, k: int) -> np.ndarray:
    """An ``(n, k)`` completion-time matrix from the stream's current point.

    Drawing ``k2`` columns yields the ``k1 < k2`` matrix as its exact
    column prefix (see the module docstring), which is what makes horizon
    growth and scalar fallbacks bit-identical.
    """
    n = len(starts)
    u = rng.random((k, n))
    incs = sampler.transform(u)
    # Seed the sequential cumulative chain with the start times (rather
    # than adding them afterwards): extension then continues the exact
    # float association — ``(((start + i0) + i1) + ...)`` — so a grown
    # matrix is bit-equal to having drawn the larger one up front.
    incs[0] += starts
    return np.ascontiguousarray(incs.cumsum(axis=0).T)


def extend_times(rng: np.random.Generator, sampler: InverseSampler,
                 times: np.ndarray, extra: int) -> np.ndarray:
    """Grow an ``(n, k)`` matrix by ``extra`` columns, continuing the stream.

    Bit-equal to having drawn ``k + extra`` columns up front.
    """
    n, k = times.shape
    u = rng.random((extra, n))
    incs = sampler.transform(u)
    if k:
        incs[0] += times[:, -1]
    tail = incs.cumsum(axis=0)
    return np.concatenate([times, np.ascontiguousarray(tail.T)], axis=1)
