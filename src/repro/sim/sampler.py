"""The lockstep sampling lane: column-major inverse-CDF schedules.

The fast-engine family (scalar replay, trial-batched frame path, and the
trial-parallel lockstep kernel of :mod:`repro.sim.kernel`) shares one
schedule-sampling discipline per spec, because the three paths must stay
*bit-identical* to each other.  For the continuous distributions that
admit a cheap exact inverse CDF this module defines that discipline:

* one consumed stream per trial (the compiler's ``rng_noise`` child);
* for a dithered start schedule, the first ``n`` doubles are the start
  dithers (``start_i = base + epsilon * u_i``);
* operation increments are drawn **column-major**: a ``(k, n)`` uniform
  block assigns ``u[j, i]`` to operation ``j`` of process ``i``, and the
  increment is the distribution's inverse CDF at ``u``.

Column-major order is the load-bearing choice: a ``(k1, n)`` block is a
*prefix* of the ``(k2 > k1, n)`` block drawn from the same stream, so a
replay that runs out of schedule can grow its horizon — or a fallback can
redraw the whole schedule from the stream's start at a larger horizon —
without changing a single already-consumed completion time.  The paper's
model is oblivious (Section 3.1), so when the stopping condition is met
strictly inside the sampled horizon the result provably equals the
infinite-horizon replay.

Every Figure-1 distribution now has a lane: the affine/log family
(exponential, shifted exponential, uniform), the quantile-function
discrete pair (geometric, two-point), and the truncated normal via a
pure-numpy normal quantile (AS241) — scipy is deliberately not a
dependency.  Remaining exotics (lognormal, the ``2^(k^2)`` family, any
``sample_array`` override) keep the legacy row-major
:meth:`~repro.sched.noisy.NoisyScheduler.presample` lane, which remains
bit-identical to the PR-3 fast engine.

The anti-simultaneity dither of the legacy lane is deliberately absent
here: it exists to break the *common* exact ties of discrete
distributions, while for continuous inverse transforms a cross-process
tie requires two sums of distinct random doubles to collide exactly — the
same measure-zero event the dither itself already relies on avoiding.
Discrete lanes instead embrace exact ties and make every engine break
them identically — by lowest pid.  The scalar replay already does (its
flat stable argsort visits the lower pid first on equal times), and the
lockstep kernel's packed-pid column min does too, *provided* packing is
lossless: the kernel stores the owner pid in the low 11 mantissa bits of
each completion time, so two times that differ only below that
granularity would compare as a tie in the kernel but as strictly ordered
in the scalar replay.  ``tie_exact`` samplers therefore run the cumsum
chain *quantized*: ``t_j = Q(t_{j-1} + inc_j)`` with ``Q`` clearing the
low 11 mantissa bits (:func:`quantize_times`), making "differ only in
the packed bits" impossible by construction.  The quantization error is
below ``2**-41`` relative — far inside the schedule-model noise — and
identical across the scalar, frame, and kernel paths, which is all that
bit-identity needs.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.noise.distributions import (
    Exponential,
    Geometric,
    NoiseDistribution,
    ShiftedExponential,
    TruncatedNormal,
    TwoPoint,
    Uniform,
)

#: Delta-schedule kinds the lane covers (starts drawn inline; no per-op
#: adversary delays).
_LANE_DELTA_KINDS = ("zero", "dithered")


#: Low-mantissa bits cleared by :func:`quantize_times` — must stay >= the
#: kernel's widest packed-pid payload (``_PACK_MAX_N = 2048`` -> 11 bits),
#: so a quantized schedule survives pid packing without reordering.
_TIE_QUANT_BITS = 11

_TIE_QUANT_MASK = np.uint64(~np.uint64((1 << _TIE_QUANT_BITS) - 1))


def quantize_times(block: np.ndarray) -> np.ndarray:
    """Clear the low ``_TIE_QUANT_BITS`` mantissa bits of ``block`` in place.

    The tie-exact chain quantizer (see the module docstring): applied to
    every partial sum of a ``tie_exact`` sampler's completion-time chain,
    it guarantees two distinct times differ *above* the granularity the
    lockstep kernel's packed-pid embedding consumes, so the packed column
    min realizes exactly the scalar replay's order-then-lowest-pid rule.
    """
    v = block.view(np.uint64)
    v &= _TIE_QUANT_MASK
    return block


class InverseSampler:
    """One distribution's inverse-CDF transform plus its lane metadata.

    Attributes:
        name: short label for diagnostics.
        tie_exact: True for samplers whose schedules carry *exact*
            cross-process time ties (discrete increments); their cumsum
            chains run quantized (:func:`quantize_times`) so every engine
            resolves those ties identically.
    """

    tie_exact = False

    def __init__(self, name: str, shift: float, scale: float,
                 log_form: bool) -> None:
        self.name = name
        self._shift = shift
        self._scale = scale
        self._log = log_form

    def transform(self, u: np.ndarray, xp=np) -> np.ndarray:
        """Map uniforms in [0, 1) to increments (new array, same shape).

        Exponential families use ``shift - scale * log1p(-u)`` (the exact
        inverse CDF; ``log1p`` keeps u -> 1 finite and u = 0 mapping to
        the support's infimum), uniforms ``shift + scale * u``.

        ``xp`` is the array module the transform runs on (the backend
        shim of :mod:`repro.sim.backend` passes cupy to keep device
        tensors resident); the default is numpy and every ``xp``
        dispatch below is the identical ufunc sequence there.  Device
        libm may differ from the host in final ULPs — the documented
        ``float-tolerance`` oracle tier of non-host sampling.
        """
        if self._log:
            out = xp.log1p(-u)
            out *= -self._scale
        else:
            out = u * self._scale
        if self._shift:
            out += self._shift
        return out

    def transform_inplace(self, u: np.ndarray, xp=np) -> np.ndarray:
        """:meth:`transform` overwriting ``u`` (the batched pipelines'
        whole-chunk tensors are too large to duplicate).  Bit-identical
        to :meth:`transform`: the same ufuncs in the same order.
        """
        if self._log:
            xp.negative(u, out=u)
            xp.log1p(u, out=u)
            u *= -self._scale
        else:
            u *= self._scale
        if self._shift:
            u += self._shift
        return u


class GeometricSampler(InverseSampler):
    """Geometric(p) on {1, 2, ...} via its exact quantile function.

    ``F(j) = 1 - (1-p)^j`` inverts to ``floor(log(1-u)/log(1-p)) + 1``;
    ``log1p`` keeps both logs exact near their small arguments.  The
    edge cases fall out of IEEE arithmetic: ``u = 0`` gives ``0/log1p(-p)
    = -0.0 -> 1`` and ``p = 1`` gives ``finite/-inf = -0.0 -> 1``.
    Integer increments mean exact ties, hence ``tie_exact``.
    """

    tie_exact = True

    def __init__(self, name: str, p: float) -> None:
        self.name = name
        self._denom = math.log1p(-p) if p < 1.0 else -math.inf

    def transform(self, u: np.ndarray, xp=np) -> np.ndarray:
        out = xp.log1p(-u)
        out /= self._denom
        xp.floor(out, out=out)
        out += 1.0
        return out

    def transform_inplace(self, u: np.ndarray, xp=np) -> np.ndarray:
        xp.negative(u, out=u)
        xp.log1p(u, out=u)
        u /= self._denom
        xp.floor(u, out=u)
        u += 1.0
        return u


class TwoPointSampler(InverseSampler):
    """TwoPoint(a, b, p) via its (sorted-support) quantile function.

    The quantile map must be monotone in ``u``, so the support is sorted
    first: the smaller value owns the leading probability mass whichever
    of ``a``/``b`` it is.  Same *distribution* as the legacy
    ``rng.random() < p`` draw, not the same sample path — the lane owns
    its stream discipline (see the module docstring).
    """

    tie_exact = True

    def __init__(self, name: str, a: float, b: float, p: float) -> None:
        self.name = name
        self._lo, self._hi = min(a, b), max(a, b)
        self._p_lo = p if a <= b else 1.0 - p

    def transform(self, u: np.ndarray, xp=np) -> np.ndarray:
        return xp.where(u < self._p_lo, self._lo, self._hi)

    def transform_inplace(self, u: np.ndarray, xp=np) -> np.ndarray:
        lo = u < self._p_lo
        u[...] = self._hi
        u[lo] = self._lo
        return u


#: AS241 (Wichura's PPND16) rational approximations of the standard
#: normal quantile, |relative error| < 1e-15 over (0, 1) in doubles.
#: Central region |p - 0.5| <= 0.425:
_NDTRI_A = (2.5090809287301226727e3, 3.3430575583588128105e4,
            6.7265770927008700853e4, 4.5921953931549871457e4,
            1.3731693765509461125e4, 1.9715909503065514427e3,
            1.3314166789178437745e2, 3.3871328727963666080e0)
_NDTRI_B = (5.2264952788528545610e3, 2.8729085735721942674e4,
            3.9307895800092710610e4, 2.1213794301586595867e4,
            5.3941960214247511077e3, 6.8718700749205790830e2,
            4.2313330701600911252e1, 1.0)
#: Intermediate tail  sqrt(-log(min(p, 1-p))) in (1.6..., 5]:
_NDTRI_C = (7.74545014278341407640e-4, 2.27238449892691845833e-2,
            2.41780725177450611770e-1, 1.27045825245236838258e0,
            3.64784832476320460504e0, 5.76949722146069140550e0,
            4.63033784615654529590e0, 1.42343711074968357734e0)
_NDTRI_D = (1.05075007164441684324e-9, 5.47593808499534494600e-4,
            1.51986665636164571966e-2, 1.48103976427480074590e-1,
            6.89767334985100004550e-1, 1.67638483018380384940e0,
            2.05319162663775882187e0, 1.0)
#: Far tail (> 5):
_NDTRI_E = (2.01033439929228813265e-7, 2.71155556874348757815e-5,
            1.24266094738807843860e-3, 2.65321895265761230930e-2,
            2.96560571828504891230e-1, 1.78482653991729133580e0,
            5.46378491116411436990e0, 6.65790464350110377720e0)
_NDTRI_F = (2.04426310338993978564e-15, 1.42151175831644588870e-7,
            1.84631831751005468180e-5, 7.86869131145613259100e-4,
            1.48753612908506148525e-2, 1.36929880922735805310e-1,
            5.99832206555887937690e-1, 1.0)

#: Clamp for the quantile's argument: half-open draws keep ``u < 1`` but
#: extreme bound CDFs can round the affine map onto {0.0, 1.0}, where the
#: tail expansion is singular; the clamp maps those measure-``2**-53``
#: events to the support's edges (which the transform clips to anyway).
_NDTRI_P_MIN = 5e-324
_NDTRI_P_MAX = math.nextafter(1.0, 0.0)


def _horner(r: np.ndarray, coeffs, xp=np) -> np.ndarray:
    out = xp.full_like(r, coeffs[0])
    for c in coeffs[1:]:
        out *= r
        out += c
    return out


def _ndtri(p: np.ndarray, xp=np) -> np.ndarray:
    """Vectorized standard normal quantile (AS241; array-module generic)."""
    q = p - 0.5
    out = xp.empty_like(p)
    central = xp.abs(q) <= 0.425
    if central.any():
        qc = q[central]
        r = 0.180625 - qc * qc
        out[central] = (qc * _horner(r, _NDTRI_A, xp)
                        / _horner(r, _NDTRI_B, xp))
    tails = ~central
    if tails.any():
        qt = q[tails]
        r = xp.sqrt(-xp.log(xp.where(qt < 0.0, p[tails], 1.0 - p[tails])))
        near = r <= 5.0
        r1 = r - 1.6
        r2 = r - 5.0
        val = xp.where(near,
                       _horner(r1, _NDTRI_C, xp) / _horner(r1, _NDTRI_D, xp),
                       _horner(r2, _NDTRI_E, xp) / _horner(r2, _NDTRI_F, xp))
        out[tails] = xp.where(qt < 0.0, -val, val)
    return out


class TruncatedNormalSampler(InverseSampler):
    """TruncatedNormal(mu, sigma, [low, high]) by CDF inversion.

    ``F^-1(u) = mu + sigma * ndtri(Phi_a + u * (Phi_b - Phi_a))`` with
    ``Phi`` at the standardized bounds precomputed once (``erfc`` keeps
    the deep lower tail accurate).  The final clip only guards the
    quantile's last-ulp wobble at the clamped edges; continuous support
    keeps ties measure-zero, so no ``tie_exact``.  Same *distribution*
    as the legacy rejection sampler, not the same sample path.
    """

    def __init__(self, name: str, mu: float, sigma: float,
                 low: float, high: float) -> None:
        self.name = name
        self._mu, self._sigma = mu, sigma
        self._low, self._high = low, high
        root2 = math.sqrt(2.0)
        self._cdf_lo = 0.5 * math.erfc(-(low - mu) / (sigma * root2))
        self._width = (0.5 * math.erfc(-(high - mu) / (sigma * root2))
                       - self._cdf_lo)

    def transform(self, u: np.ndarray, xp=np) -> np.ndarray:
        x = u * self._width
        x += self._cdf_lo
        xp.clip(x, _NDTRI_P_MIN, _NDTRI_P_MAX, out=x)
        out = _ndtri(x, xp)
        out *= self._sigma
        out += self._mu
        xp.clip(out, self._low, self._high, out=out)
        return out

    def transform_inplace(self, u: np.ndarray, xp=np) -> np.ndarray:
        u *= self._width
        u += self._cdf_lo
        xp.clip(u, _NDTRI_P_MIN, _NDTRI_P_MAX, out=u)
        # _ndtri writes through boolean masks; routing the result back
        # into ``u`` keeps the chunk tensor as the only horizon-sized
        # live buffer (the quantile's temporaries are transient).
        u[...] = _ndtri(u, xp)
        u *= self._sigma
        u += self._mu
        xp.clip(u, self._low, self._high, out=u)
        return u


def inverse_sampler_for(noise: NoiseDistribution) -> Optional[InverseSampler]:
    """The lane's sampler for ``noise``, or ``None`` (legacy lane).

    Only *exact* types are recognized: a subclass may override
    ``sample_array`` and must keep the legacy per-trial discipline.
    """
    kind = type(noise)
    if kind is Exponential or kind is ShiftedExponential:
        return InverseSampler(noise.name, shift=noise.shift,
                              scale=noise.exp_mean, log_form=True)
    if kind is Uniform:
        return InverseSampler(noise.name, shift=noise.low,
                              scale=noise.high - noise.low, log_form=False)
    if kind is Geometric:
        return GeometricSampler(noise.name, noise.p)
    if kind is TwoPoint:
        return TwoPointSampler(noise.name, noise.a, noise.b, noise.p)
    if kind is TruncatedNormal:
        if math.isfinite(noise.low) and math.isfinite(noise.high):
            return TruncatedNormalSampler(noise.name, noise.mu, noise.sigma,
                                          noise.low, noise.high)
    return None


def lane_applies(model) -> bool:
    """True when a noisy model spec takes the inverse lane.

    ``model`` is a :class:`~repro.api.spec.NoisyModelSpec`; the lane
    needs an invertible noise distribution and a zero/dithered start
    schedule (anything else keeps the legacy presample lane).
    """
    if model.delta.kind not in _LANE_DELTA_KINDS:
        return False
    return inverse_sampler_for(model.noise.build()) is not None


def draw_starts(rng: np.random.Generator, n: int, delta_kind: str,
                base: float, epsilon: float) -> np.ndarray:
    """The lane's start times: ``base + epsilon * u`` or all zeros.

    Must be called *before* any increment block so every path consumes
    the stream identically.
    """
    if delta_kind == "dithered":
        return base + epsilon * rng.random(n)
    return np.zeros(n)


def draw_times(rng: np.random.Generator, sampler: InverseSampler,
               starts: np.ndarray, k: int) -> np.ndarray:
    """An ``(n, k)`` completion-time matrix from the stream's current point.

    Drawing ``k2`` columns yields the ``k1 < k2`` matrix as its exact
    column prefix (see the module docstring), which is what makes horizon
    growth and scalar fallbacks bit-identical.
    """
    n = len(starts)
    u = rng.random((k, n))
    incs = sampler.transform(u)
    # Seed the sequential cumulative chain with the start times (rather
    # than adding them afterwards): extension then continues the exact
    # float association — ``(((start + i0) + i1) + ...)`` — so a grown
    # matrix is bit-equal to having drawn the larger one up front.
    incs[0] += starts
    if sampler.tie_exact:
        return np.ascontiguousarray(_quantized_chain(incs).T)
    return np.ascontiguousarray(incs.cumsum(axis=0).T)


def _quantized_chain(incs: np.ndarray) -> np.ndarray:
    """In-place row chain ``t_j = Q(t_{j-1} + inc_j)`` (tie-exact lanes).

    Every partial sum is quantized — including the seeded first row — so
    an extension continuing from a stored (quantized) last column is
    bit-equal to the longer up-front chain.
    """
    quantize_times(incs[0])
    for j in range(1, incs.shape[0]):
        np.add(incs[j - 1], incs[j], out=incs[j])
        quantize_times(incs[j])
    return incs


def extend_times(rng: np.random.Generator, sampler: InverseSampler,
                 times: np.ndarray, extra: int) -> np.ndarray:
    """Grow an ``(n, k)`` matrix by ``extra`` columns, continuing the stream.

    Bit-equal to having drawn ``k + extra`` columns up front.
    """
    n, k = times.shape
    u = rng.random((extra, n))
    incs = sampler.transform(u)
    if k:
        incs[0] += times[:, -1]
    tail = (_quantized_chain(incs) if sampler.tie_exact
            else incs.cumsum(axis=0))
    return np.concatenate([times, np.ascontiguousarray(tail.T)], axis=1)
