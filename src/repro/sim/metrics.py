"""Aggregation of trial results into experiment statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.results import TrialResult


@dataclass
class TrialStats:
    """Summary statistics over a batch of trials.

    ``mean_first_round`` is the paper's Figure-1 quantity: the mean, over
    trials, of the round at which the chronologically first process
    terminated.
    """

    trials: int
    decided_trials: int
    mean_first_round: Optional[float]
    std_first_round: Optional[float]
    ci95_first_round: Optional[float]
    mean_last_round: Optional[float]
    mean_first_ops: Optional[float]
    mean_total_ops: float
    agreement_rate: float
    backup_rate: float
    mean_halted: float
    max_round_seen: int

    def row(self) -> str:
        """A fixed-width table row for experiment printers."""
        mfr = "-" if self.mean_first_round is None else f"{self.mean_first_round:8.3f}"
        ci = "-" if self.ci95_first_round is None else f"{self.ci95_first_round:6.3f}"
        return (f"{self.trials:6d}  {mfr} +/- {ci}  "
                f"ops/total={self.mean_total_ops:10.1f}  "
                f"agree={self.agreement_rate:5.3f}")


def _mean(xs: Sequence[float]) -> Optional[float]:
    return sum(xs) / len(xs) if xs else None


def _std(xs: Sequence[float]) -> Optional[float]:
    if len(xs) < 2:
        return None
    m = sum(xs) / len(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (len(xs) - 1))


def summarize(results: Sequence[TrialResult]) -> TrialStats:
    """Aggregate a batch of trials (empty batches are rejected)."""
    if not results:
        raise ValueError("cannot summarize zero trials")
    firsts = [r.first_decision_round for r in results
              if r.first_decision_round is not None]
    lasts = [r.last_decision_round for r in results
             if r.last_decision_round is not None]
    first_ops = [r.first_decision_ops for r in results
                 if r.first_decision_ops is not None]
    std = _std(firsts)
    ci = None
    if std is not None and firsts:
        ci = 1.96 * std / math.sqrt(len(firsts))
    return TrialStats(
        trials=len(results),
        decided_trials=len(firsts),
        mean_first_round=_mean(firsts),
        std_first_round=std,
        ci95_first_round=ci,
        mean_last_round=_mean(lasts),
        mean_first_ops=_mean(first_ops),
        mean_total_ops=sum(r.total_ops for r in results) / len(results),
        agreement_rate=sum(1 for r in results if r.agreed) / len(results),
        backup_rate=sum(r.used_backup for r in results)
        / max(1, sum(r.n for r in results)),
        mean_halted=sum(len(r.halted) for r in results) / len(results),
        max_round_seen=max(r.max_round for r in results),
    )
