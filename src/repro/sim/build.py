"""Machine and shared-memory builders used by the trial compilers.

These helpers used to live in :mod:`repro.sim.runner`; they were moved here
so that both the legacy one-call runners and the declarative
:mod:`repro.api` compiler can share them without an import cycle.  The
runner re-exports them, so existing imports keep working.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro._rng import make_rng, spawn
from repro.errors import ConfigurationError
from repro.core.bounded import (
    BoundedLeanConsensus,
    default_backup_factory,
    suggested_round_cap,
)
from repro.core.invariants import check_agreement, check_validity
from repro.core.machine import (
    LeanConsensus,
    ProcessMachine,
    RandomCoin,
    RandomTie,
    SharedCoinLean,
)
from repro.core.variants import ConservativeLean, EagerDecideLean, OptimizedLean
from repro.memory.history import HistoryRecorder
from repro.memory.registers import SharedMemory, UnboundedBitArray
from repro.sim.results import TrialResult

ProtocolLike = Union[str, Callable[[int, int], ProcessMachine]]


def half_and_half(n: int) -> Dict[int, int]:
    """The paper's Figure-1 input assignment: half 0s, half 1s."""
    return {pid: (0 if pid < n // 2 else 1) for pid in range(n)}


def _factory_keywords(factory: Callable) -> set:
    """Keyword parameters a machine factory can accept beyond (pid, input).

    Only explicitly named parameters opt in: a bare ``**kwargs`` does not
    imply the factory wants ``rng``/``round_cap`` forwarded (legacy
    factories with ``**kwargs`` never received them).
    """
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):
        return set()
    return {param.name for param in sig.parameters.values()
            if param.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                              inspect.Parameter.KEYWORD_ONLY)}


def make_machines(protocol: ProtocolLike, inputs: Dict[int, int],
                  rng: Optional[np.random.Generator] = None,
                  round_cap: Optional[int] = None) -> list[ProcessMachine]:
    """Instantiate one machine per (pid, input).

    ``protocol`` may be a factory ``(pid, input) -> machine`` or one of the
    built-in names: ``"lean"`` (the paper), ``"optimized"``, ``"eager"``
    (unsafe negative control), ``"conservative"``, ``"random-tie"``,
    ``"shared-coin"``, ``"bounded"``.

    When ``protocol`` is a callable factory, ``rng`` and ``round_cap`` are
    forwarded as keyword arguments if the factory's signature accepts them.
    An explicit ``round_cap`` that the factory cannot accept raises
    :class:`ConfigurationError` instead of being silently dropped (``rng``
    is supplied by the runners on every call, so an unaccepted ``rng`` is
    simply unused).
    """
    if callable(protocol):
        accepted = _factory_keywords(protocol)
        kwargs = {}
        if round_cap is not None:
            if "round_cap" not in accepted:
                raise ConfigurationError(
                    "round_cap was given but the protocol factory does not "
                    "accept a 'round_cap' keyword; it would be silently "
                    "ignored. Add the parameter to the factory or bake the "
                    "cap into it.")
            kwargs["round_cap"] = round_cap
        if rng is not None and "rng" in accepted:
            kwargs["rng"] = rng
        return [protocol(pid, bit, **kwargs)
                for pid, bit in sorted(inputs.items())]

    rng = make_rng(rng)
    n = len(inputs)
    if protocol == "lean":
        factory = lambda pid, bit: LeanConsensus(pid, bit, round_cap=round_cap)
    elif protocol == "optimized":
        factory = lambda pid, bit: OptimizedLean(pid, bit, round_cap=round_cap)
    elif protocol == "eager":
        factory = lambda pid, bit: EagerDecideLean(pid, bit, round_cap=round_cap)
    elif protocol == "conservative":
        factory = lambda pid, bit: ConservativeLean(pid, bit, round_cap=round_cap)
    elif protocol == "random-tie":
        coins = spawn(rng, n)
        factory = lambda pid, bit: LeanConsensus(
            pid, bit, tie_rule=RandomTie(RandomCoin(coins[pid])),
            round_cap=round_cap)
    elif protocol == "shared-coin":
        coins = spawn(rng, n)
        factory = lambda pid, bit: SharedCoinLean(
            pid, bit, coin=RandomCoin(coins[pid]), round_cap=round_cap)
    elif protocol == "bounded":
        cap = round_cap if round_cap is not None else suggested_round_cap(n)
        coins = spawn(rng, n)
        factory = lambda pid, bit: BoundedLeanConsensus(
            pid, bit, round_cap=cap,
            backup_factory=default_backup_factory(coins[pid]))
    else:
        raise ConfigurationError(f"unknown protocol {protocol!r}")
    return [factory(pid, bit) for pid, bit in sorted(inputs.items())]


def make_memory_for(machines: Sequence[ProcessMachine],
                    record: bool = False,
                    capacity: Optional[int] = None) -> SharedMemory:
    """Build a shared memory with every array the machines require."""
    from repro.core.idconsensus import IdConsensus

    recorder = HistoryRecorder() if record else None
    specs: dict[str, Optional[int]] = {}
    for machine in machines:
        required = getattr(type(machine), "required_arrays", None)
        if required is None:
            pairs = [("a0", 1), ("a1", 1)]
        elif isinstance(machine, SharedCoinLean):
            pairs = SharedCoinLean.required_arrays(machine.prefix)
        elif isinstance(machine, IdConsensus):
            pairs = IdConsensus.required_arrays(machine.bits)
        else:
            pairs = required()
        for name, prefix in pairs:
            specs.setdefault(name, prefix)
    memory = SharedMemory(recorder=recorder)
    for name, prefix in sorted(specs.items()):
        memory.add_array(UnboundedBitArray(name, default=0,
                                           prefix_value=prefix,
                                           capacity=capacity))
    return memory


def check_result(result: TrialResult, check: bool) -> TrialResult:
    """Optionally verify agreement and validity before returning."""
    if check:
        check_agreement(result.decisions)
        check_validity(result.inputs, result.decisions)
    return result
