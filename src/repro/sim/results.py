"""Per-trial result records shared by every engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.types import Decision


@dataclass
class TrialResult:
    """Everything a single consensus execution produced.

    Attributes:
        n: number of participating processes.
        inputs: pid -> input bit.
        decisions: pid -> decision (absent for halted/undecided processes).
        halted: pids that halted (by failure injection) before deciding.
        total_ops: shared-memory operations executed across all processes.
        first_decision_round: round of the chronologically first decision
            (the paper's Figure-1 metric), or None if nobody decided.
        first_decision_ops: that process's operation count at its decision.
        first_decision_time: simulation time of the first decision (event
            engines only; None for sequential engines).
        last_decision_round: round of the chronologically last decision.
        sim_time: simulation clock when the run ended (event engines).
        budget_exhausted: True when the engine stopped because it hit its
            operation budget with undecided processes still alive (expected
            for deliberately lockstep/adversarial schedules).
        used_backup: how many processes fell through to the backup protocol
            (bounded-space runs only).
        max_round: the largest round any process entered.
        preference_changes: total preference adoptions across processes.
        engine: which engine actually executed the trial (``"fast"``,
            ``"event"``, ``"step"``, or ``"hybrid"``) — in particular the
            resolution of ``engine="auto"``, so benchmarks and tests can
            assert on it.  ``None`` for results built outside the runners.
        engine_reason: why ``engine="auto"`` resolved to the event engine
            (e.g. a protocol without a vectorized replay, an adaptive
            adversary, or n below the fast threshold), and/or why a
            requested array backend degraded to numpy; ``None`` when the
            engine was requested explicitly or the fast engine ran.
        backend: the array backend the resolution picked (``"numpy"``,
            ``"numba"``, or ``"cupy"``; noisy-model runs only).  ``None``
            for step/hybrid runs and results built outside the runners.
    """

    n: int
    inputs: Dict[int, int]
    decisions: Dict[int, Decision] = field(default_factory=dict)
    halted: Set[int] = field(default_factory=set)
    total_ops: int = 0
    first_decision_round: Optional[int] = None
    first_decision_ops: Optional[int] = None
    first_decision_time: Optional[float] = None
    last_decision_round: Optional[int] = None
    sim_time: Optional[float] = None
    budget_exhausted: bool = False
    used_backup: int = 0
    max_round: int = 0
    preference_changes: int = 0
    engine: Optional[str] = None
    engine_reason: Optional[str] = None
    backend: Optional[str] = None

    @property
    def all_decided(self) -> bool:
        """True when every non-halted process decided."""
        return len(self.decisions) + len(self.halted) >= self.n and bool(
            self.decisions or self.halted
        )

    @property
    def decided_values(self) -> Set[int]:
        return {d.value for d in self.decisions.values()}

    @property
    def agreed(self) -> bool:
        """True when no two processes decided differently."""
        return len(self.decided_values) <= 1

    def note_decision(self, pid: int, decision: Decision,
                      time: Optional[float] = None) -> None:
        """Record a decision in chronological order of calls."""
        self.decisions[pid] = decision
        if self.first_decision_round is None:
            self.first_decision_round = decision.round
            self.first_decision_ops = decision.ops
            self.first_decision_time = time
        self.last_decision_round = decision.round
        self.max_round = max(self.max_round, decision.round)
