"""Columnar trial results: one numpy column per ``TrialResult`` field.

A :class:`ResultFrame` stores a batch of trial outcomes as flat numpy
arrays instead of a list of per-trial
:class:`~repro.sim.results.TrialResult` dataclasses.  At the paper's
sweep scale (Figure 1 alone is 36 grid cells x 10,000 trials) the list
representation dominates the pipeline: every trial allocates a 16-field
dataclass, an n-entry ``inputs`` dict, a decisions dict of
:class:`~repro.types.Decision` objects, and a halted set, all of which
exist only to be immediately reduced to a handful of means.  The frame
keeps the same information in O(columns) arrays:

* scalar fields become ``int64`` / ``bool`` columns;
* optional fields (``first_decision_round`` and friends) become
  ``float64`` columns with ``NaN`` as the "None" sentinel;
* the variable-size payloads (``inputs``, ``decisions``, ``halted``) and
  the engine labels become object columns of compact tuples.

Frames are constructed three ways: the vectorized fast engine writes
rows through a :class:`FrameBuilder` sink without materializing any
``TrialResult`` (see :func:`repro.sim.fast.replay`); event-engine
batches are converted with :meth:`ResultFrame.from_results`; and pool
workers / the sweep cache round-trip frames through
:meth:`ResultFrame.to_payload` / :meth:`ResultFrame.from_payload` (plain
dict-of-arrays, no pickled dataclass lists).

:meth:`ResultFrame.to_trial_results` reconstructs the exact
``TrialResult`` list — bit-identical to the legacy list path, which is
what the frame/list differential tests pin down.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.types import Decision
from repro.sim.results import TrialResult

#: Integer-valued columns (never None in a TrialResult).
INT_COLUMNS = (
    "n",
    "total_ops",
    "used_backup",
    "max_round",
    "preference_changes",
    "n_decided",
    "n_distinct_decisions",
    "n_halted",
)

#: Optional columns stored as float64 with NaN standing in for None.
#: ``decided_value`` is derived (the agreed bit, NaN when undecided) and
#: exists so validity/agreement checks and aggregators stay columnar.
FLOAT_COLUMNS = (
    "first_decision_round",
    "first_decision_ops",
    "first_decision_time",
    "last_decision_round",
    "sim_time",
    "decided_value",
)

BOOL_COLUMNS = ("budget_exhausted",)

#: Object columns: compact tuples (``inputs`` as (pid, bit) pairs,
#: ``decisions`` as chronological (pid, value, round, ops) tuples,
#: ``halted`` as a pid tuple) plus the engine and backend labels.
OBJECT_COLUMNS = ("inputs", "decisions", "halted", "engine",
                  "engine_reason", "backend")

ALL_COLUMNS = INT_COLUMNS + FLOAT_COLUMNS + BOOL_COLUMNS + OBJECT_COLUMNS

#: Columns whose per-trial values are int-or-None on the dataclass.
_INT_OPTIONALS = ("first_decision_round", "first_decision_ops",
                  "last_decision_round")


class ResultFrame:
    """A batch of trial results in columnar (struct-of-arrays) form.

    Attributes:
        spec: the :class:`~repro.api.spec.TrialSpec` the batch ran (when
            known) — carried so aggregation errors can name the offending
            configuration; not part of the payload or of equality.
    """

    def __init__(self, columns: Dict[str, np.ndarray], spec=None) -> None:
        missing = [name for name in ALL_COLUMNS if name not in columns]
        if missing:
            raise ValueError(f"frame is missing columns {missing}")
        lengths = {len(columns[name]) for name in ALL_COLUMNS}
        if len(lengths) > 1:
            raise ValueError(f"ragged frame columns (lengths {lengths})")
        self._columns = {name: columns[name] for name in ALL_COLUMNS}
        self.spec = spec

    # -- basic access ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._columns["n"])

    def column(self, name: str) -> np.ndarray:
        """The raw column array (float columns use NaN for None)."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"unknown column {name!r}; available: {list(ALL_COLUMNS)}"
            ) from None

    @property
    def decided(self) -> np.ndarray:
        """Boolean mask of trials in which at least one process decided."""
        return self._columns["n_decided"] > 0

    @property
    def agreed(self) -> np.ndarray:
        """Boolean mask of trials with no two differing decisions."""
        return self._columns["n_distinct_decisions"] <= 1

    def __eq__(self, other) -> bool:
        if not isinstance(other, ResultFrame):
            return NotImplemented
        for name in INT_COLUMNS + BOOL_COLUMNS:
            if not np.array_equal(self._columns[name], other._columns[name]):
                return False
        for name in FLOAT_COLUMNS:
            if not np.array_equal(self._columns[name], other._columns[name],
                                  equal_nan=True):
                return False
        for name in OBJECT_COLUMNS:
            if self._columns[name].tolist() != other._columns[name].tolist():
                return False
        return True

    __hash__ = None  # mutable container semantics

    # -- conversions -------------------------------------------------------

    @classmethod
    def from_results(cls, results: Sequence[TrialResult],
                     spec=None) -> "ResultFrame":
        """Build a frame from a list of trial results (any engine)."""
        builder = FrameBuilder(spec=spec)
        for result in results:
            builder.append_result(result)
        return builder.build()

    def to_trial_results(self) -> List[TrialResult]:
        """Reconstruct the per-trial dataclass list.

        Bit-identical to the legacy list path for frames built by the
        batch runner: every field round-trips exactly (``NaN`` columns
        back to ``None``, decision tuples back to insertion-ordered
        :class:`~repro.types.Decision` dicts).
        """
        cols = self._columns

        def opt_int(name: str, i: int) -> Optional[int]:
            v = cols[name][i]
            return None if np.isnan(v) else int(v)

        def opt_float(name: str, i: int) -> Optional[float]:
            v = cols[name][i]
            return None if np.isnan(v) else float(v)

        out: List[TrialResult] = []
        for i in range(len(self)):
            result = TrialResult(n=int(cols["n"][i]),
                                 inputs=dict(cols["inputs"][i]))
            result.decisions = {
                pid: Decision(value, rnd, ops)
                for pid, value, rnd, ops in cols["decisions"][i]
            }
            result.halted = set(cols["halted"][i])
            result.total_ops = int(cols["total_ops"][i])
            result.first_decision_round = opt_int("first_decision_round", i)
            result.first_decision_ops = opt_int("first_decision_ops", i)
            result.first_decision_time = opt_float("first_decision_time", i)
            result.last_decision_round = opt_int("last_decision_round", i)
            result.sim_time = opt_float("sim_time", i)
            result.budget_exhausted = bool(cols["budget_exhausted"][i])
            result.used_backup = int(cols["used_backup"][i])
            result.max_round = int(cols["max_round"][i])
            result.preference_changes = int(cols["preference_changes"][i])
            result.engine = cols["engine"][i]
            result.engine_reason = cols["engine_reason"][i]
            result.backend = cols["backend"][i]
            out.append(result)
        return out

    # -- wire format -------------------------------------------------------

    def to_payload(self) -> Dict[str, np.ndarray]:
        """The frame as a plain dict of arrays (pool / cache wire form)."""
        return dict(self._columns)

    @classmethod
    def from_payload(cls, payload: Dict[str, np.ndarray],
                     spec=None) -> "ResultFrame":
        columns = {}
        for name in ALL_COLUMNS:
            if name == "backend" and name not in payload:
                # Payloads written before the backend column existed
                # (cached .npz blobs, older serve peers) load as
                # backend-unknown rather than failing.
                filler = np.empty(len(np.asarray(payload["n"])), object)
                filler[:] = None
                columns[name] = filler
                continue
            columns[name] = np.asarray(payload[name])
        return cls(columns, spec=spec)

    def to_npz_bytes(self) -> bytes:
        """The payload serialized as ``.npz`` bytes.

        The wire/storage form of a frame outside the process pool: the
        sweep cache, the content-addressed serve store, and the serve
        HTTP object endpoint all ship exactly these bytes.
        """
        import io

        buffer = io.BytesIO()
        np.savez(buffer, **self.to_payload())
        return buffer.getvalue()

    @classmethod
    def from_npz_bytes(cls, blob: bytes, spec=None) -> "ResultFrame":
        """Inverse of :meth:`to_npz_bytes` (raises on torn/foreign bytes)."""
        import io

        with np.load(io.BytesIO(blob), allow_pickle=True) as data:
            payload = {name: data[name] for name in data.files}
        return cls.from_payload(payload, spec=spec)

    @classmethod
    def concat(cls, frames: Sequence["ResultFrame"],
               spec=None) -> "ResultFrame":
        """Concatenate frames (in order) into one frame."""
        if not frames:
            return FrameBuilder(spec=spec).build()
        columns = {
            name: np.concatenate([f._columns[name] for f in frames])
            for name in ALL_COLUMNS
        }
        if spec is None:
            spec = next((f.spec for f in frames if f.spec is not None), None)
        return cls(columns, spec=spec)


_NAN = float("nan")


def derive_decision_fields(decisions):
    """Derived per-trial decision columns from the chronological tuples.

    The single source of the (n_decided, n_distinct, first/last rounds,
    decided_value-NaN-on-disagreement) rule, shared by the fast sink and
    the kernel's overflow-fallback row writer.
    """
    if not decisions:
        return 0, 0, _NAN, _NAN, _NAN, _NAN
    first = decisions[0]
    value = first[1]
    distinct = 1
    for dec in decisions:
        if dec[1] != value:
            distinct = 2
            break
    # NaN on disagreement, mirroring append_result's semantics
    # (reachable only on check=False runs of unsafe variants).
    decided_value = value if distinct == 1 else _NAN
    return (len(decisions), distinct, first[2], first[3],
            decisions[-1][2], decided_value)


class FrameBuilder:
    """Row-at-a-time accumulator producing a :class:`ResultFrame`.

    Two append paths: :meth:`append_fast` is the vectorized engine's sink
    (constant per-batch fields — ``n``, ``inputs``, engine labels — are
    supplied once at construction and never re-materialized per trial),
    and :meth:`append_result` ingests a ready ``TrialResult`` from the
    event-driven engines.
    """

    def __init__(self, spec=None, n: Optional[int] = None,
                 inputs: Optional[Tuple[Tuple[int, int], ...]] = None,
                 engine: Optional[str] = None,
                 engine_reason: Optional[str] = None,
                 backend: Optional[str] = None) -> None:
        self.spec = spec
        self._n = n
        self._inputs = inputs
        self._engine = engine
        self._engine_reason = engine_reason
        self._backend = backend
        # Ordered segments: ("rows", [tuple, ...]) runs of per-trial
        # appends (one tuple per trial in ALL_COLUMNS order, transposed
        # at build()) interleaved with ("block", count, {column: array})
        # whole-chunk appends from the lockstep kernel.
        self._segments: List[tuple] = []
        self._count = 0

    def _rows(self) -> List[tuple]:
        if not self._segments or self._segments[-1][0] != "rows":
            self._segments.append(("rows", []))
        return self._segments[-1][1]

    def __len__(self) -> int:
        return self._count

    def append_fast(self, decisions: Tuple[Tuple[int, int, int, int], ...],
                    halted: Tuple[int, ...], total_ops: int, max_round: int,
                    preference_changes: int,
                    budget_exhausted: bool = False) -> None:
        """Append one fast-engine trial from its raw replay outcome.

        ``decisions`` is the chronological (pid, value, round, ops) tuple;
        the derived first/last/distinct columns are computed here
        (:func:`derive_decision_fields`), and no ``TrialResult`` (or
        per-trial dict/set) ever exists.
        """
        (n_decided, distinct, first_round, first_ops, last_round,
         decided_value) = derive_decision_fields(decisions)
        self._count += 1
        self._rows().append((
            self._n, total_ops, 0, max_round, preference_changes,
            n_decided, distinct, len(halted),
            first_round, first_ops, _NAN, last_round, _NAN, decided_value,
            budget_exhausted,
            self._inputs, decisions, halted, self._engine,
            self._engine_reason, self._backend))

    def append_result(self, result: TrialResult) -> None:
        """Append one trial from a materialized ``TrialResult``."""
        values = {dec.value for dec in result.decisions.values()}

        def opt(value):
            return _NAN if value is None else value

        self._count += 1
        self._rows().append((
            result.n, result.total_ops, result.used_backup,
            result.max_round, result.preference_changes,
            len(result.decisions), len(values), len(result.halted),
            opt(result.first_decision_round), opt(result.first_decision_ops),
            opt(result.first_decision_time), opt(result.last_decision_round),
            opt(result.sim_time),
            next(iter(values)) if len(values) == 1 else _NAN,
            result.budget_exhausted,
            tuple(result.inputs.items()),
            tuple((pid, dec.value, dec.round, dec.ops)
                  for pid, dec in result.decisions.items()),
            tuple(result.halted), result.engine, result.engine_reason,
            getattr(result, "backend", None)))

    def append_block(self, count: int, total_ops, max_round,
                     preference_changes, n_decided, n_distinct, n_halted,
                     first_round, first_ops, last_round, decided_value,
                     decisions, halted, budget_exhausted=None) -> None:
        """Append a whole chunk of fast-engine trials as ready columns.

        The lockstep kernel produces its outcomes as arrays over the
        trial axis; this path adopts them without a per-trial append.
        ``decisions``/``halted`` are lists of the per-trial payload
        tuples ``append_fast`` takes; constant columns (``n``, inputs,
        engine labels, the event-engine-only optionals) are filled from
        the builder's per-batch fields.  ``budget_exhausted`` (a bool
        array from budgeted kernel runs) is optional; omitted, the
        column fills with ``False`` like the other block defaults.
        """
        self._count += count
        data = {
            "total_ops": total_ops, "max_round": max_round,
            "preference_changes": preference_changes,
            "n_decided": n_decided, "n_distinct_decisions": n_distinct,
            "n_halted": n_halted, "first_decision_round": first_round,
            "first_decision_ops": first_ops,
            "last_decision_round": last_round,
            "decided_value": decided_value,
            "decisions": decisions, "halted": halted,
        }
        if budget_exhausted is not None:
            data["budget_exhausted"] = budget_exhausted
        self._segments.append(("block", count, data))

    #: Per-column constant fill for block segments (columns the fast
    #: engines never populate per trial).
    _BLOCK_DEFAULTS = {
        "used_backup": 0, "first_decision_time": _NAN, "sim_time": _NAN,
        "budget_exhausted": False,
    }

    def _block_column(self, name: str, count: int, data: Dict) -> "np.ndarray | list":
        if name in data:
            return data[name]
        if name == "n":
            return np.full(count, self._n, np.int64)
        if name == "inputs":
            return [self._inputs] * count
        if name == "engine":
            return [self._engine] * count
        if name == "engine_reason":
            return [self._engine_reason] * count
        if name == "backend":
            return [self._backend] * count
        value = self._BLOCK_DEFAULTS[name]
        if name in BOOL_COLUMNS:
            return np.full(count, value, bool)
        if name in FLOAT_COLUMNS:
            return np.full(count, value, np.float64)
        return np.full(count, value, np.int64)

    def build(self) -> ResultFrame:
        parts: Dict[str, list] = {name: [] for name in ALL_COLUMNS}
        for segment in self._segments:
            if segment[0] == "rows":
                rows = segment[1]
                if not rows:
                    continue
                transposed = list(zip(*rows))
                for i, name in enumerate(ALL_COLUMNS):
                    parts[name].append(transposed[i])
            else:
                _, count, data = segment
                for name in ALL_COLUMNS:
                    parts[name].append(self._block_column(name, count,
                                                          data))
        columns: Dict[str, np.ndarray] = {}
        for name in ALL_COLUMNS:
            if name in INT_COLUMNS:
                dtype = np.int64
            elif name in FLOAT_COLUMNS:
                dtype = np.float64
            elif name in BOOL_COLUMNS:
                dtype = bool
            else:
                arr = np.empty(self._count, dtype=object)
                offset = 0
                for part in parts[name]:
                    arr[offset:offset + len(part)] = part
                    offset += len(part)
                columns[name] = arr
                continue
            if len(parts[name]) == 1:
                columns[name] = np.asarray(parts[name][0], dtype=dtype)
            elif parts[name]:
                columns[name] = np.concatenate(
                    [np.asarray(part, dtype=dtype) for part in parts[name]])
            else:
                columns[name] = np.asarray((), dtype=dtype)
        return ResultFrame(columns, spec=self.spec)
