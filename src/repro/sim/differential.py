"""Cross-engine differential oracle.

The vectorized replays of :mod:`repro.sim.fast`, the trial-parallel
lockstep kernel of :mod:`repro.sim.kernel`, and the event-driven
reference engine realize the *same* abstract execution whenever they
consume the same schedule: the noisy model is oblivious, so a pre-sampled
``(n, max_ops)`` completion-time matrix (plus a per-process death
schedule and, for coin protocols, per-process coin streams) pins the
interleaving completely.  This module pre-samples exactly one such
schedule per (spec, seed), feeds it to all three engines, and compares
every engine-independent observable:

* per-process decision values, rounds, and operation counts;
* the halted-process set;
* total operations, maximum round, preference adoptions;
* the first/last-decision summary fields.

``first_decision_time`` and ``sim_time`` are engine artifacts (the fast
replay has no clock) and are deliberately excluded.

The oracle is the library's schedule-exploration safety net: the
property-style test sweep drives it over a seeded grid of (n, noise
distribution, protocol variant, failure fraction) configurations, so any
divergence between a vectorized replay and the reference semantics is a
one-line repro (spec + seed).

Typical use::

    from repro.api import NoiseSpec, NoisyModelSpec, TrialSpec
    from repro.sim.differential import assert_equivalent

    spec = TrialSpec(n=40, model=NoisyModelSpec(
        noise=NoiseSpec.of("exponential", mean=1.0)), engine="fast")
    assert_equivalent(spec, seed=7)   # raises DifferentialMismatch on bug
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro._rng import make_rng
from repro.errors import ConfigurationError, SimulationError
from repro.failures.injection import NoFailures, PresampledDeaths
from repro.core.machine import LeanConsensus, RandomCoin, RandomTie
from repro.sched.noisy import NoisyScheduler, PresampledScheduler
from repro.sim.backend import BACKENDS, backend_spec_gap
from repro.sim.build import check_result, make_machines, make_memory_for
from repro.sim.engine import NoisyEngine
from repro.sim.fast import FAST_VARIANTS, lean_horizon_ops, replay
from repro.sim.kernel import lean_flip_bound, replay_chunk
from repro.sim.results import TrialResult
from repro.api.spec import NoisyModelSpec, TrialSpec


class DifferentialMismatch(SimulationError):
    """The two engines disagreed on a shared schedule (a real bug)."""


@dataclass
class DifferentialReport:
    """Everything one oracle run produced.

    Attributes:
        spec: the spec under test.
        fast: the vectorized replay's result.
        event: the reference event engine's result.
        horizon: the schedule horizon (in ops) that finally sufficed.
        mismatches: human-readable descriptions of every disagreement
            (empty when the engines agree).
        backend: the array backend the kernel leg replayed on.
        backend_tier: that backend's equivalence tier (``"bitwise"`` or
            ``"float-tolerance"``).  The oracle pre-samples every
            schedule host-side, and the lockstep itself performs no
            float arithmetic on any backend, so replay *outcomes* are
            compared exactly on both tiers; the float-tolerance tier
            documents the slack reserved for device-side sampling
            transforms (:data:`repro.sim.backend.FLOAT_TOLERANCE`),
            which this oracle's schedules do not exercise.
    """

    spec: TrialSpec
    fast: TrialResult
    event: TrialResult
    horizon: int
    mismatches: List[str] = field(default_factory=list)
    backend: str = "numpy"
    backend_tier: str = "bitwise"

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _clone_seq(seq: np.random.SeedSequence) -> np.random.SeedSequence:
    """A fresh SeedSequence with the same identity (and spawn counter 0)."""
    return np.random.SeedSequence(entropy=seq.entropy,
                                  spawn_key=tuple(seq.spawn_key))


def _gen(seq: np.random.SeedSequence) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(_clone_seq(seq)))


class _PaddedSchedule(PresampledScheduler):
    """A presampled schedule that parks post-horizon ops at +inf.

    The event engine eagerly prices each process's *next* operation; when
    the replay finished strictly inside the horizon, any such lookahead
    beyond it is unreachable, so pricing it at infinity (instead of
    raising) keeps the two engines consuming identical event prefixes.
    """

    def next_time(self, pid: int, op_index: int, kind, prev_time: float):
        if op_index > self.max_ops:
            return float("inf")
        return float(self.times[pid, op_index - 1])


def run_differential(spec: TrialSpec, seed=None,
                     horizon: Optional[int] = None,
                     max_attempts: int = 10,
                     backend: str = "numpy") -> DifferentialReport:
    """Replay one shared pre-sampled schedule through both engines.

    The spec must use the noisy model and a protocol with a vectorized
    replay (anything :func:`repro.api.compile.fast_ineligibility` accepts);
    the spec's ``engine`` field is ignored — this function *always* runs
    both engines.  All randomness (noise, dither, deaths, coins) derives
    from ``seed`` with the compiler's stream-spawn discipline.

    ``backend`` selects the array backend the kernel leg replays on (the
    oracle's backend axis); a backend that does not cover the spec's
    features raises :class:`~repro.errors.ConfigurationError` naming the
    gap — the oracle never silently degrades, since a degraded run would
    vacuously re-test numpy.
    """
    # Lazy import: repro.api.compile imports repro.sim.build, which would
    # cycle with the repro.sim package initialization importing this module.
    from repro.api.compile import (
        compile_death_ops,
        fast_ineligibility,
        replay_schedule,
    )

    if not isinstance(spec.model, NoisyModelSpec):
        raise ConfigurationError(
            "the differential oracle covers the noisy model only")
    why_not = fast_ineligibility(spec)
    if why_not is not None:
        raise ConfigurationError(
            f"spec has no fast-engine replay to differentiate: {why_not}")
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of "
            f"{list(BACKENDS)}")
    gap = backend_spec_gap(backend, spec)
    if gap is not None:
        raise ConfigurationError(
            f'the oracle cannot drive backend="{backend}" over this '
            f"spec: {gap}")

    model = spec.model
    n = spec.n
    root = make_rng(seed)
    noise_seq, dither_seq, fail_seq, proto_seq = \
        root.bit_generator.seed_seq.spawn(4)  # type: ignore[attr-defined]
    rng_noise = _gen(noise_seq)
    rng_fail = _gen(fail_seq)
    noise = model.noise.build()
    delta = model.delta.build(n, _gen(dither_seq))
    input_map = spec.input_map()
    inputs = [input_map[pid] for pid in range(n)]
    variant = FAST_VARIANTS[spec.protocol.name]
    # Twin per-process coin streams: both engines get generators built from
    # the same child SeedSequences, so every tie flips the same way.
    coin_seqs = (_clone_seq(proto_seq).spawn(n)
                 if variant.random_tie else None)

    horizon = horizon if horizon is not None else lean_horizon_ops(n)
    fast_result = None
    for _attempt in range(max_attempts):
        scheduler = NoisyScheduler(noise, rng_noise, delta=delta,
                                   allow_degenerate=model.allow_degenerate)
        times = scheduler.presample(n, horizon)
        death_ops = compile_death_ops(spec.failures, n, rng_fail)
        tie_rngs = ([_gen(s) for s in coin_seqs]
                    if coin_seqs is not None else None)
        fast_result = replay(
            times, inputs, variant=spec.protocol.name, death_ops=death_ops,
            stop_after_first_decision=spec.stop_after_first_decision,
            tie_rngs=tie_rngs, round_cap=spec.protocol.round_cap,
            max_total_ops=spec.max_total_ops)
        if fast_result is not None:
            break
        horizon *= 2
    else:
        raise ConfigurationError(
            f"schedule horizon kept overflowing (last tried {horizon} ops); "
            "is the noise distribution effectively degenerate?")
    fast_result = check_result(fast_result, spec.check)
    fast_result.engine = "fast"

    event_result = _run_event(spec, times, death_ops, inputs, coin_seqs)
    mismatches = compare_results(fast_result, event_result)

    # Also drive the *production* prefix-doubling path over the same
    # schedule: a truncated replay that completes must match the full
    # replay exactly (the starvation guard retries the inexact cases).
    prefix_result = replay_schedule(spec, times, inputs, death_ops,
                                    coin_seqs)
    if prefix_result is None:
        mismatches.append("prefix replay overflowed where the full "
                          "replay completed")
    else:
        mismatches.extend(
            "prefix " + m for m in compare_results(prefix_result,
                                                   fast_result))

    # ... and the trial-parallel lockstep kernel, as a one-trial chunk
    # over the identical tensor (whole-schedule semantics, matching the
    # full scalar replay above), with twin pre-sampled coin flips.
    mismatches.extend(_kernel_mismatches(spec, times, death_ops,
                                         coin_seqs, inputs, fast_result,
                                         backend=backend))

    report = DifferentialReport(
        spec=spec, fast=fast_result, event=event_result, horizon=horizon,
        mismatches=mismatches, backend=backend,
        backend_tier=BACKENDS[backend].tier)
    return report


def assert_equivalent(spec: TrialSpec, seed=None,
                      horizon: Optional[int] = None,
                      backend: str = "numpy") -> DifferentialReport:
    """Run the oracle and raise :class:`DifferentialMismatch` on any diff."""
    report = run_differential(spec, seed, horizon=horizon, backend=backend)
    if not report.ok:
        detail = "\n  ".join(report.mismatches)
        raise DifferentialMismatch(
            f"fast and event engines diverged on a shared schedule "
            f"(n={spec.n}, protocol={spec.protocol.name!r}, "
            f"h={spec.failures.h}, backend={report.backend!r}):\n  {detail}")
    return report


def _kernel_mismatches(spec: TrialSpec, times: np.ndarray, death_ops,
                       coin_seqs, inputs, fast: TrialResult,
                       backend: str = "numpy") -> List[str]:
    """Replay the shared schedule through the lockstep kernel, described.

    The kernel consumes the exact ``(n, max_ops)`` tensor as a one-trial
    chunk (on the requested array backend); every observable it reports
    must equal the scalar replay's — exactly, on every backend: the
    schedule is already sampled, and no backend lane performs float
    arithmetic on it (the float-tolerance tier budgets device-side
    *sampling*, which never happens here).
    """
    n, max_ops = times.shape
    flips = None
    if coin_seqs is not None:
        flips = np.empty((n, 1, lean_flip_bound(max_ops)), np.int8)
        for pid, seq in enumerate(coin_seqs):
            flips[pid, 0] = _gen(seq).integers(0, 2,
                                               size=flips.shape[2])
    out = replay_chunk(times[:, None, :], inputs,
                       variant=spec.protocol.name,
                       death_ops=(death_ops[:, None]
                                  if death_ops is not None else None),
                       tie_flips=flips,
                       stop_after_first_decision=
                       spec.stop_after_first_decision,
                       horizon_is_final=True,
                       round_cap=spec.protocol.round_cap,
                       max_total_ops=spec.max_total_ops,
                       backend=backend)
    if out.overflow[0]:
        return [f"kernel[{backend}] replay overflowed where the full "
                "replay completed"]
    mismatches = []
    if bool(out.budget_exhausted[0]) != fast.budget_exhausted:
        mismatches.append(
            f"kernel budget_exhausted differs: "
            f"{bool(out.budget_exhausted[0])} != {fast.budget_exhausted}")
    fast_dec = tuple((pid, d.value, d.round, d.ops)
                     for pid, d in fast.decisions.items())
    if out.decisions[0] != fast_dec:
        mismatches.append(
            f"kernel decisions differ: kernel={out.decisions[0]} "
            f"fast={fast_dec}")
    if set(out.halted[0]) != fast.halted:
        mismatches.append(
            f"kernel halted sets differ: kernel={sorted(out.halted[0])} "
            f"fast={sorted(fast.halted)}")
    for name, value in (("total_ops", out.total_ops[0]),
                        ("max_round", out.max_round[0]),
                        ("preference_changes", out.preference_changes[0])):
        if int(value) != getattr(fast, name):
            mismatches.append(f"kernel {name} differs: {int(value)} != "
                              f"{getattr(fast, name)}")
    return mismatches


def _run_event(spec: TrialSpec, times: np.ndarray,
               death_ops: Optional[np.ndarray], inputs: Sequence[int],
               coin_seqs) -> TrialResult:
    """The reference run over the exact schedule the replay consumed."""
    if coin_seqs is not None:
        coins = [RandomCoin(_gen(s)) for s in coin_seqs]
        machines = [LeanConsensus(pid, bit,
                                  tie_rule=RandomTie(coins[pid]),
                                  round_cap=spec.protocol.round_cap)
                    for pid, bit in enumerate(inputs)]
    else:
        machines = make_machines(spec.protocol.name, dict(enumerate(inputs)),
                                 round_cap=spec.protocol.round_cap)
    memory = make_memory_for(machines)
    failures = (PresampledDeaths(death_ops) if death_ops is not None
                else NoFailures())
    # A spec-level op budget is the semantics under test; otherwise the
    # budget is just the overrun guard past the padded horizon.
    budget = (spec.max_total_ops if spec.max_total_ops is not None
              else times.size + 1)
    engine = NoisyEngine(
        machines, memory, _PaddedSchedule(times), failures=failures,
        max_total_ops=budget,
        stop_after_first_decision=spec.stop_after_first_decision)
    result = engine.run()
    result = check_result(result, spec.check)
    result.engine = "event"
    return result


#: Observables compared by the oracle (engine clocks excluded).
_COMPARED_FIELDS = ("total_ops", "max_round", "preference_changes",
                    "first_decision_round", "first_decision_ops",
                    "last_decision_round", "budget_exhausted")


def compare_results(fast: TrialResult, event: TrialResult) -> List[str]:
    """Every engine-independent observable that differs, described."""
    mismatches: List[str] = []
    if set(fast.decisions) != set(event.decisions):
        mismatches.append(
            f"decided pids differ: fast={sorted(fast.decisions)} "
            f"event={sorted(event.decisions)}")
    for pid in sorted(set(fast.decisions) & set(event.decisions)):
        df, de = fast.decisions[pid], event.decisions[pid]
        if (df.value, df.round, df.ops) != (de.value, de.round, de.ops):
            mismatches.append(
                f"p{pid} decision differs: fast={df} event={de}")
    if fast.halted != event.halted:
        mismatches.append(
            f"halted sets differ: fast={sorted(fast.halted)} "
            f"event={sorted(event.halted)}")
    for name in _COMPARED_FIELDS:
        vf, ve = getattr(fast, name), getattr(event, name)
        if vf != ve:
            mismatches.append(f"{name} differs: fast={vf} event={ve}")
    return mismatches
