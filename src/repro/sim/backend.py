"""Array-backend registry for the trial-parallel lockstep kernel.

The kernel of :mod:`repro.sim.kernel` is one Python loop over the global
event index with array operations over the trials axis — a shape that
maps directly onto JIT compilers and device-array libraries.  This
module is the single place that knows which array backends exist, which
of them is importable on this host, what equivalence tier each one
guarantees against the scalar replay, and which spec features each one
covers:

``numpy`` (default)
    The reference lockstep implementation.  Always available, covers
    every kernel feature, and is **bitwise** identical to the scalar
    replay (pinned by the differential oracle and ``tests/test_kernel``).

``numba``
    JIT-compiles a per-trial scalar merge of the per-process schedule
    rows (:mod:`repro.sim._kernel_numba`) — the exact event order the
    numpy lockstep produces, executed by the scalar state machine of
    :mod:`repro.sim.fast`.  The inner loop only *compares* completion
    times (no float arithmetic), so outcomes are **bitwise** identical
    to the numpy lane.  Covers the full kernel feature set: every
    :data:`~repro.sim.fast.FAST_VARIANTS` protocol, crash schedules,
    tie flips, round caps, op budgets, and both horizon semantics.

``cupy``
    Keeps the schedule tensor and the next-completion-time plane on the
    device; each lockstep iteration reduces the event pick on the
    device and runs the (small) per-trial state machine host-side
    (:mod:`repro.sim._kernel_xp`).  The lockstep itself is bitwise on
    the schedules it is handed, but device-side sampling transforms are
    only guaranteed to a documented **float tolerance** (libm on the
    device may differ in final ULPs), so the backend's oracle tier is
    ``"float-tolerance"``.  Covers the lag-variant family (lean /
    conservative / eager / random-tie) without crash schedules, round
    caps, or op budgets, at ``n`` within the packed-pid range.

Availability is probed lazily and cached (:func:`backend_unavailability`
returns ``None`` or a reason naming the missing import); spec-level
feature coverage is answered by :func:`backend_spec_gap`.  Engine
resolution (:func:`repro.api.compile.resolve_engine_info`) combines the
two: an unavailable or uncovered backend degrades to numpy with the
reason recorded on ``engine_reason`` — unless the caller pinned
``engine="kernel"`` explicitly, which raises instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: Every selectable array backend, numpy first (the default).
BACKEND_NAMES = ("numpy", "numba", "cupy")

#: Relative float tolerance the non-bitwise tier allows on *sampled
#: schedule values* (device libm transforms); discrete replay outcomes
#: are always compared exactly.
FLOAT_TOLERANCE = 1e-12


@dataclass(frozen=True)
class BackendInfo:
    """Registry entry for one array backend.

    Attributes:
        name: the backend's :data:`BACKEND_NAMES` entry.
        tier: the differential-oracle equivalence tier — ``"bitwise"``
            when the backend guarantees IEEE-754 semantics for every
            operation the lockstep performs, ``"float-tolerance"`` when
            sampling transforms may run on device libm.
        summary: one-line description for tables and ``--help``.
    """

    name: str
    tier: str
    summary: str


BACKENDS: Dict[str, BackendInfo] = {
    "numpy": BackendInfo(
        "numpy", "bitwise",
        "reference lockstep; full feature coverage"),
    "numba": BackendInfo(
        "numba", "bitwise",
        "JIT per-trial merge replay; full feature coverage"),
    "cupy": BackendInfo(
        "cupy", "float-tolerance",
        "device-array lockstep, host-side event pick; lag-variant "
        "family only"),
}

#: Probe results, keyed by backend name (``None`` = available).  Module
#: state rather than a functools cache so tests can force a backend
#: available/unavailable by writing the cache directly.
_probe_cache: Dict[str, Optional[str]] = {}


def _probe(name: str) -> Optional[str]:
    """Import-probe one backend; returns ``None`` or the blocker."""
    if name == "numpy":
        return None
    if name == "numba":
        try:
            import numba  # noqa: F401
        except ImportError as exc:
            return f"the numba import failed ({exc})"
        return None
    if name == "cupy":
        try:
            import cupy
        except ImportError as exc:
            return f"the cupy import failed ({exc})"
        try:
            count = cupy.cuda.runtime.getDeviceCount()
        except Exception as exc:  # no driver / no device
            return f"cupy imported but no CUDA device is usable ({exc})"
        if count < 1:
            return "cupy imported but no CUDA device is present"
        return None
    return f"unknown backend {name!r} (choose from {list(BACKEND_NAMES)})"


def backend_unavailability(name: str) -> Optional[str]:
    """Why a backend cannot run on this host, or ``None`` if it can.

    The reason names the missing import (or device), mirroring the
    fast-ineligibility contract: it is what lands on ``engine_reason``
    when an ``engine="auto"`` spec degrades to numpy, and inside the
    :class:`~repro.errors.ConfigurationError` when ``engine="kernel"``
    was pinned explicitly.  Probes once per process (cached).
    """
    if name not in _probe_cache:
        _probe_cache[name] = _probe(name)
    return _probe_cache[name]


def kernel_backend_gap(name: str, *, variant: str, n: int,
                       has_death_ops: bool, has_tie_flips: bool,
                       round_cap: Optional[int],
                       max_total_ops: Optional[int]) -> Optional[str]:
    """Why a backend cannot replay this exact chunk shape, or ``None``.

    This is the *feature-coverage* check, orthogonal to availability;
    :func:`repro.sim.kernel.replay_chunk` applies it to its literal
    arguments, :func:`backend_spec_gap` derives the same answer from a
    :class:`~repro.api.spec.TrialSpec`.
    """
    if name in ("numpy", "numba"):
        # Full feature coverage on both bitwise lanes.
        return None
    if name == "cupy":
        del has_tie_flips  # the xp lane consumes presampled flips
        from repro.sim.fast import FAST_VARIANTS
        from repro.sim.kernel import _PACK_MAX_N
        reasons = []
        cfg = FAST_VARIANTS.get(variant)
        if cfg is not None and cfg.optimized:
            reasons.append("the cupy lane does not cover the Section-4 "
                           "elision variant")
        if has_death_ops:
            reasons.append("the cupy lane does not cover crash schedules")
        if round_cap is not None:
            reasons.append("the cupy lane does not cover round caps")
        if max_total_ops is not None:
            reasons.append("the cupy lane does not cover op budgets")
        if n > _PACK_MAX_N:
            reasons.append(f"n={n} exceeds the packed-pid range "
                           f"(n <= {_PACK_MAX_N}) the cupy lane requires")
        return "; ".join(reasons) or None
    return f"unknown backend {name!r} (choose from {list(BACKEND_NAMES)})"


def backend_spec_gap(name: str, spec) -> Optional[str]:
    """The :func:`kernel_backend_gap` answer for a whole trial spec."""
    variant = spec.protocol.name
    return kernel_backend_gap(
        name, variant=variant if isinstance(variant, str) else "",
        n=spec.n, has_death_ops=spec.failures.h > 0.0,
        has_tie_flips=False, round_cap=spec.protocol.round_cap,
        max_total_ops=spec.max_total_ops)
