"""Simulation engines and trial orchestration.

* :mod:`repro.sim.engine` — the reference engines: event-driven (noisy
  model), sequential (picker-driven interleavings), and hybrid-scheduled
  (uniprocessor).  Exact, fully instrumented, O(total ops · log n).
* :mod:`repro.sim.fast` — the vectorized engine for large Figure-1 sweeps;
  pre-samples the whole schedule (legal because noisy scheduling is
  oblivious) and replays it in a tight loop.
* :mod:`repro.sim.runner` — one-call trial runners and batch helpers.
* :mod:`repro.sim.results` / :mod:`repro.sim.metrics` — result records and
  their aggregation.
"""

from repro.sim.results import TrialResult
from repro.sim.engine import HybridEngine, NoisyEngine, StepEngine
from repro.sim.fast import FastLeanTrial, replay_lean
from repro.sim.runner import (
    half_and_half,
    make_machines,
    make_memory_for,
    run_hybrid_trial,
    run_noisy_trial,
    run_noisy_trials,
    run_step_trial,
)
from repro.sim.metrics import TrialStats, summarize

__all__ = [
    "FastLeanTrial",
    "HybridEngine",
    "NoisyEngine",
    "StepEngine",
    "TrialResult",
    "TrialStats",
    "half_and_half",
    "make_machines",
    "make_memory_for",
    "replay_lean",
    "run_hybrid_trial",
    "run_noisy_trial",
    "run_noisy_trials",
    "run_step_trial",
    "summarize",
]
