"""Simulation engines and trial orchestration.

* :mod:`repro.sim.engine` — the reference engines: event-driven (noisy
  model), sequential (picker-driven interleavings), and hybrid-scheduled
  (uniprocessor).  Exact, fully instrumented, O(total ops · log n).
* :mod:`repro.sim.fast` — the vectorized engines for large sweeps;
  pre-sample the whole schedule (legal because noisy scheduling is
  oblivious) and replay it in a tight loop.  :data:`FAST_VARIANTS` lists
  the protocols with a vectorized replay (lean, the decision-lag and
  tie-rule variants, and the Section-4 optimized variant), with crash
  failures compiled to per-process death schedules.
* :mod:`repro.sim.differential` — the cross-engine differential oracle:
  replays identical pre-sampled schedules through a vectorized replay and
  the reference event engine and asserts identical observables.
* :mod:`repro.sim.runner` — one-call trial runners and batch helpers.
* :mod:`repro.sim.results` / :mod:`repro.sim.frame` /
  :mod:`repro.sim.metrics` — per-trial result records, the columnar
  batch representation (one numpy column per result field; the fast
  engine's sink target), and their aggregation.
"""

from repro.sim.frame import FrameBuilder, ResultFrame
from repro.sim.results import TrialResult
from repro.sim.engine import HybridEngine, NoisyEngine, StepEngine
from repro.sim.fast import (
    FAST_VARIANTS,
    FastLeanTrial,
    FastVariant,
    has_fast_replay,
    replay,
    replay_lean,
)
from repro.sim.differential import (
    DifferentialMismatch,
    DifferentialReport,
    assert_equivalent,
    compare_results,
    run_differential,
)
from repro.sim.runner import (
    half_and_half,
    make_machines,
    make_memory_for,
    run_hybrid_trial,
    run_noisy_trial,
    run_noisy_trials,
    run_step_trial,
)
from repro.sim.metrics import TrialStats, summarize

__all__ = [
    "DifferentialMismatch",
    "DifferentialReport",
    "FAST_VARIANTS",
    "FastLeanTrial",
    "FastVariant",
    "FrameBuilder",
    "HybridEngine",
    "NoisyEngine",
    "ResultFrame",
    "StepEngine",
    "TrialResult",
    "TrialStats",
    "assert_equivalent",
    "compare_results",
    "half_and_half",
    "has_fast_replay",
    "make_machines",
    "make_memory_for",
    "replay",
    "replay_lean",
    "run_differential",
    "run_hybrid_trial",
    "run_noisy_trial",
    "run_noisy_trials",
    "run_step_trial",
    "summarize",
]
