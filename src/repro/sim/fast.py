"""Vectorized engines for large-scale consensus sweeps.

The noisy-scheduling model is *oblivious*: operation completion times
S_ij = Delta_i0 + sum(Delta_ik + X_ik) do not depend on the algorithm's
state.  The entire schedule can therefore be drawn up front as an
``(n, max_ops)`` matrix, argsorted once into the global interleaving, and
replayed in a tight Python loop with flat array state — no heap, no object
dispatch.  This is what makes the paper's n = 100,000 Figure-1 points
affordable in pure Python.

The same argument covers every protocol whose operation sequence is a
function of the values it reads (not of the clock), so the replay is not
limited to plain lean-consensus.  :data:`FAST_VARIANTS` is the dispatch
table of protocols with a vectorized replay:

* ``"lean"`` — the paper's four-step round with the deterministic tie
  rule (:class:`repro.core.machine.LeanConsensus`);
* ``"conservative"`` / ``"eager"`` — the decision-lag variants of
  :mod:`repro.core.variants` (``lag=2`` / ``lag=0``; eager is the unsafe
  negative control and needs ``check=False``);
* ``"random-tie"`` — lean with a local coin on contended ties; per-process
  coin streams are spawned with the same discipline as
  :func:`repro.sim.build.make_machines`, so a replay and the event engine
  given twin coin streams flip identically;
* ``"optimized"`` — the Section-4 elision variant
  (:class:`repro.core.variants.OptimizedLean`), whose rounds shrink to as
  few as two operations.

Random halting compiles into a per-process ``death_ops`` array (the H_ij
of Section 3.1.2) and is honoured event-for-event.  The differential
oracle in :mod:`repro.sim.differential` replays identical pre-sampled
schedules (including death schedules and coin streams) through these
replays and the reference event engine and asserts identical decisions,
rounds, and operation counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.types import Decision
from repro.sim.results import TrialResult


@dataclass
class FastLeanTrial:
    """Configuration knobs for :func:`replay_lean` callers."""

    stop_after_first_decision: bool = True
    record_last: bool = True


@dataclass(frozen=True)
class FastVariant:
    """One protocol with a vectorized replay.

    Attributes:
        name: the :class:`~repro.api.spec.ProtocolSpec` name this serves.
        lag: the decision read of round ``r`` targets ``a_{1-p}[r - lag]``
            (clamped at index 0); 1 is the paper's protocol.
        random_tie: flip a per-process local coin on contended ties.
        optimized: use the Section-4 elision state machine instead of the
            fixed four-step round (whose rounds take as few as two ops;
            the replay sizes its round-indexed arrays accordingly).
    """

    name: str
    lag: int = 1
    random_tie: bool = False
    optimized: bool = False


#: Protocol name -> vectorized replay configuration.  ``resolve_engine``
#: consults this table instead of a "plain lean only" guard.
FAST_VARIANTS = {
    "lean": FastVariant("lean"),
    "conservative": FastVariant("conservative", lag=2),
    "eager": FastVariant("eager", lag=0),
    "random-tie": FastVariant("random-tie", random_tie=True),
    "optimized": FastVariant("optimized", optimized=True),
}


def has_fast_replay(protocol_name: str) -> bool:
    """True when ``protocol_name`` appears in :data:`FAST_VARIANTS`."""
    return protocol_name in FAST_VARIANTS


def replay(times: np.ndarray, inputs: Sequence[int],
           variant: str = "lean",
           death_ops: Optional[np.ndarray] = None,
           stop_after_first_decision: bool = True,
           tie_rngs: Optional[Sequence[np.random.Generator]] = None,
           order: Optional[np.ndarray] = None,
           truncated: bool = False,
           round_cap: Optional[int] = None,
           max_total_ops: Optional[int] = None,
           sink=None):
    """Replay a protocol variant over a pre-sampled schedule.

    Dispatches through :data:`FAST_VARIANTS`; see :func:`replay_lean` for
    the argument contract.  ``tie_rngs`` (one generator per process) is
    required for ``"random-tie"`` and ignored otherwise.  With a ``sink``
    (a :class:`repro.sim.frame.FrameBuilder`) the outcome is appended as
    one columnar row — no ``TrialResult`` is materialized — and the
    return value is ``True`` instead of the result (``None`` still means
    horizon overflow, with nothing appended).
    """
    cfg = FAST_VARIANTS.get(variant)
    if cfg is None:
        raise ConfigurationError(
            f"protocol {variant!r} has no vectorized replay; supported: "
            f"{sorted(FAST_VARIANTS)}")
    if cfg.random_tie and tie_rngs is None:
        raise ConfigurationError(
            "random-tie replay requires per-process tie_rngs")
    if cfg.optimized:
        return _replay_optimized(times, inputs, death_ops=death_ops,
                                 stop_after_first_decision=
                                 stop_after_first_decision, order=order,
                                 truncated=truncated, round_cap=round_cap,
                                 max_total_ops=max_total_ops, sink=sink)
    return replay_lean(times, inputs, death_ops=death_ops,
                       stop_after_first_decision=stop_after_first_decision,
                       lag=cfg.lag,
                       tie_rngs=tie_rngs if cfg.random_tie else None,
                       order=order, truncated=truncated, round_cap=round_cap,
                       max_total_ops=max_total_ops, sink=sink)


def _global_order(times: np.ndarray, order) -> list:
    """Per-event pid list from the (possibly precomputed) argsort.

    ``order`` may be the flat argsort array, an already-divided pid
    *list* (trial-batched callers map a whole block of argsorts to pids
    in one vectorized call), or ``None`` to argsort here.
    """
    if type(order) is list:
        return order
    if order is None:
        # Global interleaving: event k is operation (order[k] % max_ops) of
        # process (order[k] // max_ops).  Per-process op sequence is
        # preserved because each row of `times` is increasing.
        order = np.argsort(times, axis=None, kind="stable")
    max_ops = times.shape[1]
    # A plain list iterates several times faster than an ndarray here, and
    # this loop dominates the large-n Figure-1 runtime.
    return (order // max_ops).tolist()


def _finish(sink, n: int, inputs: Sequence[int], decisions: list,
            halted: list, total_ops: int, max_round: int,
            preference_changes: int, budget_exhausted: bool = False):
    """Emit a completed replay: columnar row (sink) or ``TrialResult``.

    ``decisions`` is the chronological (pid, value, round, ops) list the
    replay loops accumulate instead of a live result object; rebuilding
    the dataclass from it here reproduces the historical
    ``note_decision`` call order exactly, so the no-sink path stays
    bit-identical while the sink path materializes nothing per trial.
    """
    if sink is not None:
        sink.append_fast(decisions=tuple(decisions), halted=tuple(halted),
                         total_ops=total_ops, max_round=max_round,
                         preference_changes=preference_changes,
                         budget_exhausted=budget_exhausted)
        return True
    result = TrialResult(n=n, inputs={i: int(b) for i, b in enumerate(inputs)})
    for pid in halted:
        result.halted.add(pid)
    for pid, value, rnd, op_count in decisions:
        result.note_decision(pid, Decision(value, rnd, op_count))
    result.preference_changes = preference_changes
    result.total_ops = total_ops
    result.max_round = max_round
    result.budget_exhausted = budget_exhausted
    return result


def replay_lean(times: np.ndarray, inputs: Sequence[int],
                death_ops: Optional[np.ndarray] = None,
                stop_after_first_decision: bool = True,
                lag: int = 1,
                tie_rngs: Optional[Sequence[np.random.Generator]] = None,
                order: Optional[np.ndarray] = None,
                truncated: bool = False,
                round_cap: Optional[int] = None,
                max_total_ops: Optional[int] = None,
                sink=None):
    """Replay the four-step-round family over a pre-sampled schedule.

    Args:
        times: ``(n, max_ops)`` matrix; ``times[i, j]`` is the completion
            time of process i's (j+1)-th operation.  Rows must be strictly
            increasing (they are cumulative sums of positive increments).
        inputs: per-process input bits.
        death_ops: optional per-process 1-based operation index before which
            the process halts (``H_ij`` of Section 3.1.2); use a huge
            sentinel for survivors.
        stop_after_first_decision: stop at the paper's Figure-1 measurement
            point (the first decision) instead of running to quiescence.
        lag: the decision read of round ``r`` targets ``a_{1-p}[r - lag]``
            (clamped at 0).  1 is lean-consensus; 2 the conservative
            variant; 0 the unsafe eager variant.
        tie_rngs: per-process generators for the local-coin tie rule
            (``None`` keeps the paper's deterministic rule).
        order: optional precomputed ``argsort(times, axis=None,
            kind="stable")`` — trial-batched callers argsort a whole chunk
            of schedules in one numpy call and pass each row here.
        truncated: the caller passed a column *prefix* of a longer
            schedule.  A first-decision stop is then only exact when no
            still-running process consumed its whole prefix first (a
            starved process's dropped events could precede the stop and
            change it); such completions return ``None`` so the caller
            grows the prefix.
        round_cap: optional maximum round (the Section 8 bounded
            construction).  A process that would advance past the cap
            freezes instead — round stays at the cap, no decision and no
            halt is recorded — exactly like the event machine's
            ``overflowed`` flag.
        max_total_ops: optional global operation budget.  After each
            *executed* operation (halting events consume a schedule slot
            but execute nothing, matching the event engine) the replay
            stops once the budget is reached; ``budget_exhausted`` is set
            iff some process was still undecided, mirroring
            ``engine._should_stop``'s decision -> budget -> quiescence
            check order.
        sink: optional :class:`repro.sim.frame.FrameBuilder`; when given,
            the outcome is appended as one columnar row (no per-trial
            ``TrialResult``) and ``True`` is returned on success.

    Returns:
        The trial result (or ``True`` with a sink), or ``None`` if the
        schedule horizon was exhausted before the stopping condition was
        met (caller should retry with a larger horizon).
    """
    times = np.asarray(times)
    n, max_ops = times.shape
    if len(inputs) != n:
        raise SimulationError(f"{len(inputs)} inputs for {n} processes")
    if lag < 0:
        raise ConfigurationError(f"lag must be >= 0, got {lag}")
    # Round-indexed arrays: a process advances a round only after a full
    # four-op round, so rounds stay below max_ops // 4 + 2 by counting.
    horizon_rounds = max_ops // 4 + 2

    event_pids = _global_order(times, order)

    # Flat per-process state.
    pref = list(inputs)
    rounds = [1] * n
    step = [0] * n
    v0 = [0] * n
    ops = [0] * n
    done = [False] * n
    a = (bytearray(horizon_rounds + 2), bytearray(horizon_rounds + 2))
    a[0][0] = 1
    a[1][0] = 1

    deaths = death_ops if death_ops is not None else None
    decisions: list = []       # chronological (pid, value, round, ops)
    halted: list = []
    preference_changes = 0
    remaining = n
    cap = round_cap
    budget = max_total_ops
    executed = 0
    budget_exhausted = False

    for pid in event_pids:
        if done[pid]:
            continue
        if deaths is not None and ops[pid] + 1 >= deaths[pid]:
            done[pid] = True
            halted.append(int(pid))
            remaining -= 1
            if remaining == 0:
                break
            continue
        ops[pid] += 1
        s = step[pid]
        r = rounds[pid]
        if s == 0:
            v0[pid] = a[0][r]
            step[pid] = 1
        elif s == 1:
            v1 = a[1][r]
            w0 = v0[pid]
            if w0 == 1 and v1 == 0:
                if pref[pid] != 0:
                    preference_changes += 1
                    pref[pid] = 0
            elif v1 == 1 and w0 == 0:
                if pref[pid] != 1:
                    preference_changes += 1
                    pref[pid] = 1
            elif tie_rngs is not None and w0 == 1 and v1 == 1:
                # Contended tie: the local-coin rule of RandomTie.
                flip = int(tie_rngs[pid].integers(0, 2))
                if flip != pref[pid]:
                    preference_changes += 1
                    pref[pid] = flip
            step[pid] = 2
        elif s == 2:
            a[pref[pid]][r] = 1
            step[pid] = 3
        else:
            behind = r - lag if r > lag else 0
            if a[1 - pref[pid]][behind] == 0:
                done[pid] = True
                remaining -= 1
                decisions.append((int(pid), pref[pid], r, ops[pid]))
                if stop_after_first_decision or remaining == 0:
                    break
            elif cap is not None and r >= cap:
                # Round cap exhausted without a decision: the machine's
                # overflowed flag — frozen at the cap, done, unrecorded.
                done[pid] = True
                remaining -= 1
                if remaining == 0:
                    break
            else:
                rounds[pid] = r + 1
                step[pid] = 0
        if budget is not None:
            executed += 1
            if executed >= budget:
                budget_exhausted = remaining > 0
                break
    else:
        # Events exhausted without reaching the stop condition.
        if remaining > 0:
            return None

    if truncated and remaining and any(
            ops[p] >= max_ops and not done[p] for p in range(n)):
        return None  # a starved process's dropped events may precede the stop

    return _finish(sink, n, inputs, decisions, halted,
                   total_ops=sum(ops), max_round=max(rounds),
                   preference_changes=preference_changes,
                   budget_exhausted=budget_exhausted)


def _replay_optimized(times: np.ndarray, inputs: Sequence[int],
                      death_ops: Optional[np.ndarray] = None,
                      stop_after_first_decision: bool = True,
                      tie_rngs: Optional[Sequence] = None,
                      order: Optional[np.ndarray] = None,
                      truncated: bool = False,
                      round_cap: Optional[int] = None,
                      max_total_ops: Optional[int] = None,
                      sink=None):
    """Replay :class:`~repro.core.variants.OptimizedLean` (Section 4).

    Rounds elide the write when the own bit is known set and the final
    read when the rival bit is known set, so a round takes 2-4 operations;
    the round-indexed arrays are sized for the 2-op worst case.
    ``tie_rngs`` is accepted for call-signature uniformity with
    :func:`replay_lean` and ignored (the optimized variant keeps the
    deterministic tie rule).
    """
    times = np.asarray(times)
    n, max_ops = times.shape
    if len(inputs) != n:
        raise SimulationError(f"{len(inputs)} inputs for {n} processes")
    # Sized for the 2-op elided round, the fewest ops a round can take.
    horizon_rounds = max_ops // 2 + 2

    event_pids = _global_order(times, order)

    pref = list(inputs)
    rounds = [1] * n
    step = [0] * n          # 0=read a0, 1=read a1, 2=write, 3=final read
    v0 = [0] * n
    ops = [0] * n
    done = [False] * n
    skip_final = [False] * n
    a = (bytearray(horizon_rounds + 2), bytearray(horizon_rounds + 2))
    a[0][0] = 1
    a[1][0] = 1

    deaths = death_ops if death_ops is not None else None
    decisions: list = []       # chronological (pid, value, round, ops)
    halted: list = []
    preference_changes = 0
    remaining = n
    cap = round_cap
    budget = max_total_ops
    executed = 0
    budget_exhausted = False

    for pid in event_pids:
        if done[pid]:
            continue
        if deaths is not None and ops[pid] + 1 >= deaths[pid]:
            done[pid] = True
            halted.append(int(pid))
            remaining -= 1
            if remaining == 0:
                break
            continue
        ops[pid] += 1
        s = step[pid]
        r = rounds[pid]
        advance = False
        if s == 0:
            v0[pid] = a[0][r]
            step[pid] = 1
        elif s == 1:
            v1 = a[1][r]
            w0 = v0[pid]
            if w0 == 1 and v1 == 0:
                if pref[pid] != 0:
                    preference_changes += 1
                    pref[pid] = 0
            elif v1 == 1 and w0 == 0:
                if pref[pid] != 1:
                    preference_changes += 1
                    pref[pid] = 1
            p = pref[pid]
            own_set = (w0, v1)[p] == 1
            rival_set = (w0, v1)[1 - p] == 1
            skip_final[pid] = rival_set
            if own_set and rival_set:
                advance = True
            elif own_set:
                step[pid] = 3
            else:
                step[pid] = 2
        elif s == 2:
            a[pref[pid]][r] = 1
            if skip_final[pid]:
                advance = True
            else:
                step[pid] = 3
        else:
            if a[1 - pref[pid]][r - 1] == 0:
                done[pid] = True
                remaining -= 1
                decisions.append((int(pid), pref[pid], r, ops[pid]))
                if stop_after_first_decision or remaining == 0:
                    break
            else:
                advance = True
        if advance:
            if cap is not None and r >= cap:
                # Every advance point routes through _advance_round in the
                # event machine: cap reached -> overflowed, frozen at r.
                done[pid] = True
                remaining -= 1
                if remaining == 0:
                    break
            else:
                skip_final[pid] = False
                rounds[pid] = r + 1
                step[pid] = 0
        if budget is not None:
            executed += 1
            if executed >= budget:
                budget_exhausted = remaining > 0
                break
    else:
        if remaining > 0:
            return None

    if truncated and remaining and any(
            ops[p] >= max_ops and not done[p] for p in range(n)):
        return None  # a starved process's dropped events may precede the stop

    return _finish(sink, n, inputs, decisions, halted,
                   total_ops=sum(ops), max_round=max(rounds),
                   preference_changes=preference_changes,
                   budget_exhausted=budget_exhausted)


def lean_horizon_ops(n: int, slack_rounds: int = 16) -> int:
    """A schedule horizon (in operations) that almost always suffices.

    Empirically (Section 9) the first decision happens well before
    2·log2(n) rounds for every admissible distribution tried; the horizon
    adds generous slack, and callers double it on the rare ``None`` return.
    """
    rounds = int(6 * np.log2(n + 2)) + slack_rounds
    return 4 * rounds
