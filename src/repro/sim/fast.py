"""Vectorized engine for large-scale lean-consensus sweeps.

The noisy-scheduling model is *oblivious*: operation completion times
S_ij = Delta_i0 + sum(Delta_ik + X_ik) do not depend on the algorithm's
state.  The entire schedule can therefore be drawn up front as an
``(n, max_ops)`` matrix, argsorted once into the global interleaving, and
replayed in a tight Python loop with flat array state — no heap, no object
dispatch.  This is what makes the paper's n = 100,000 Figure-1 points
affordable in pure Python.

The replay implements exactly the four-step round of
:class:`repro.core.machine.LeanConsensus` with the deterministic (paper)
tie rule; the test suite replays identical pre-sampled schedules through
this engine and the reference event engine and asserts identical decisions,
rounds, and operation counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.types import Decision
from repro.sim.results import TrialResult


@dataclass
class FastLeanTrial:
    """Configuration knobs for :func:`replay_lean` callers."""

    stop_after_first_decision: bool = True
    record_last: bool = True


def replay_lean(times: np.ndarray, inputs: Sequence[int],
                death_ops: Optional[np.ndarray] = None,
                stop_after_first_decision: bool = True) -> Optional[TrialResult]:
    """Replay lean-consensus over a pre-sampled schedule.

    Args:
        times: ``(n, max_ops)`` matrix; ``times[i, j]`` is the completion
            time of process i's (j+1)-th operation.  Rows must be strictly
            increasing (they are cumulative sums of positive increments).
        inputs: per-process input bits.
        death_ops: optional per-process 1-based operation index before which
            the process halts (``H_ij`` of Section 3.1.2); use a huge
            sentinel for survivors.
        stop_after_first_decision: stop at the paper's Figure-1 measurement
            point (the first decision) instead of running to quiescence.

    Returns:
        The trial result, or ``None`` if the schedule horizon was exhausted
        before the stopping condition was met (caller should retry with a
        larger horizon).
    """
    times = np.asarray(times)
    n, max_ops = times.shape
    if len(inputs) != n:
        raise SimulationError(f"{len(inputs)} inputs for {n} processes")
    horizon_rounds = max_ops // 4 + 2

    # Global interleaving: event k is operation (order[k] % max_ops) of
    # process (order[k] // max_ops).  Per-process op sequence is preserved
    # because each row of `times` is increasing.
    order = np.argsort(times, axis=None, kind="stable")
    # A plain list iterates several times faster than an ndarray here, and
    # this loop dominates the large-n Figure-1 runtime.
    event_pids = (order // max_ops).tolist()

    # Flat per-process state.
    pref = list(inputs)
    rounds = [1] * n
    step = [0] * n
    v0 = [0] * n
    ops = [0] * n
    done = [False] * n
    a = (bytearray(horizon_rounds + 2), bytearray(horizon_rounds + 2))
    a[0][0] = 1
    a[1][0] = 1

    deaths = death_ops if death_ops is not None else None
    result = TrialResult(n=n, inputs={i: int(b) for i, b in enumerate(inputs)})
    remaining = n

    for pid in event_pids:
        if done[pid]:
            continue
        if deaths is not None and ops[pid] + 1 >= deaths[pid]:
            done[pid] = True
            result.halted.add(int(pid))
            remaining -= 1
            if remaining == 0:
                break
            continue
        ops[pid] += 1
        s = step[pid]
        r = rounds[pid]
        if s == 0:
            v0[pid] = a[0][r]
            step[pid] = 1
        elif s == 1:
            v1 = a[1][r]
            w0 = v0[pid]
            if w0 == 1 and v1 == 0:
                if pref[pid] != 0:
                    result.preference_changes += 1
                pref[pid] = 0
            elif v1 == 1 and w0 == 0:
                if pref[pid] != 1:
                    result.preference_changes += 1
                pref[pid] = 1
            step[pid] = 2
        elif s == 2:
            a[pref[pid]][r] = 1
            step[pid] = 3
        else:
            if a[1 - pref[pid]][r - 1] == 0:
                done[pid] = True
                remaining -= 1
                dec = Decision(pref[pid], r, ops[pid])
                result.note_decision(int(pid), dec)
                if stop_after_first_decision or remaining == 0:
                    break
            else:
                rounds[pid] = r + 1
                step[pid] = 0
                if r + 1 >= horizon_rounds:
                    return None  # would outrun the materialized arrays
    else:
        # Events exhausted without reaching the stop condition.
        if remaining > 0:
            return None

    result.total_ops = sum(ops)
    result.max_round = max(rounds)
    return result


def lean_horizon_ops(n: int, slack_rounds: int = 16) -> int:
    """A schedule horizon (in operations) that almost always suffices.

    Empirically (Section 9) the first decision happens well before
    2·log2(n) rounds for every admissible distribution tried; the horizon
    adds generous slack, and callers double it on the rare ``None`` return.
    """
    rounds = int(6 * np.log2(n + 2)) + slack_rounds
    return 4 * rounds
