"""Reference simulation engines.

All three engines share the execution contract: exactly one atomic
shared-memory operation per step, applied through
:meth:`repro.memory.registers.SharedMemory.execute`, which realizes the
interleaving semantics of Section 3.

* :class:`NoisyEngine` — the Section 3.1 model.  A priority queue holds the
  next completion time of each live process; operations execute in
  completion order.
* :class:`StepEngine` — picker-driven interleavings (no clock), used for
  safety testing under arbitrary/adversarial schedules.
* :class:`HybridEngine` — the Section 3.2 uniprocessor model, with the
  legality rules enforced by :class:`repro.sched.hybrid.HybridScheduler`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.failures.injection import (
    AdaptiveCrashAdversary,
    ExecutionView,
    FailureModel,
    NoFailures,
)
from repro.memory.registers import SharedMemory
from repro.core.machine import ProcessMachine
from repro.sched.hybrid import HybridScheduler
from repro.sched.pickers import Picker
from repro.sim.results import TrialResult

#: Default cap on total operations; generous relative to the O(n log n)
#: expectation, yet finite so lockstep schedules terminate the simulation.
DEFAULT_BUDGET_PER_PROCESS = 4_000


def _finalize(result: TrialResult, machines: Sequence[ProcessMachine]) -> TrialResult:
    result.total_ops = sum(m.ops for m in machines)
    result.max_round = max(
        [result.max_round] + [getattr(m, "round", 0) for m in machines]
    )
    result.preference_changes = sum(
        getattr(m, "preference_changes", 0) for m in machines
    )
    result.used_backup = sum(
        1 for m in machines if getattr(m, "used_backup", False)
    )
    return result


class _EngineBase:
    """Shared bookkeeping for the three engines."""

    def __init__(self, machines: Sequence[ProcessMachine],
                 memory: SharedMemory,
                 failures: Optional[FailureModel] = None,
                 crash_adversary: Optional[AdaptiveCrashAdversary] = None,
                 max_total_ops: Optional[int] = None,
                 stop_after_first_decision: bool = False) -> None:
        if not machines:
            raise SimulationError("need at least one machine")
        pids = [m.pid for m in machines]
        if len(set(pids)) != len(pids):
            raise SimulationError(f"duplicate pids: {pids}")
        self.machines = list(machines)
        self.by_pid: Dict[int, ProcessMachine] = {m.pid: m for m in machines}
        self.memory = memory
        self.failures = failures if failures is not None else NoFailures()
        self.crash_adversary = crash_adversary
        if max_total_ops is None:
            max_total_ops = DEFAULT_BUDGET_PER_PROCESS * len(machines)
        self.max_total_ops = max_total_ops
        self.stop_after_first_decision = stop_after_first_decision
        self.result = TrialResult(
            n=len(machines),
            inputs={m.pid: m.input for m in machines},
        )
        self._executed = 0
        self._view = ExecutionView(
            rounds=lambda pid: getattr(self.by_pid[pid], "round", 0),
            alive=lambda: [m.pid for m in self.machines if not m.done],
            decided=lambda: [m.pid for m in self.machines
                             if m.decision is not None],
        )

    def _apply_crashes(self) -> None:
        if self.crash_adversary is None:
            return
        for pid in self.crash_adversary.consider(self._view):
            machine = self.by_pid[pid]
            if not machine.done:
                machine.halted = True
                self.result.halted.add(pid)

    def _maybe_halt(self, machine: ProcessMachine) -> bool:
        """Apply random halting; True if the machine just died."""
        if self.failures.halts_before(machine.pid, machine.ops + 1):
            machine.halted = True
            self.result.halted.add(machine.pid)
            return True
        return False

    def _execute_one(self, machine: ProcessMachine,
                     now: Optional[float] = None):
        op = machine.peek()
        res = self.memory.execute(op, pid=machine.pid)
        machine.apply(res)
        self._executed += 1
        if machine.decision is not None and machine.pid not in self.result.decisions:
            self.result.note_decision(machine.pid, machine.decision, time=now)
        return op

    @property
    def _budget_left(self) -> bool:
        return self._executed < self.max_total_ops

    def _should_stop(self) -> bool:
        if self.stop_after_first_decision and self.result.decisions:
            return True
        if not self._budget_left:
            if any(not m.done for m in self.machines):
                self.result.budget_exhausted = True
            return True
        return all(m.done for m in self.machines)


class NoisyEngine(_EngineBase):
    """Event-driven engine for the noisy-scheduling model.

    Args:
        scheduler: anything with ``start_time(pid)`` and
            ``next_time(pid, op_index, kind, prev_time)`` — i.e.
            :class:`repro.sched.noisy.NoisyScheduler` or
            :class:`repro.sched.noisy.PresampledScheduler`.
    """

    def __init__(self, machines: Sequence[ProcessMachine],
                 memory: SharedMemory, scheduler, **kwargs) -> None:
        super().__init__(machines, memory, **kwargs)
        self.scheduler = scheduler

    def run(self) -> TrialResult:
        heap: List = []
        counter = itertools.count()
        for machine in self.machines:
            if machine.done:
                continue
            t0 = self.scheduler.start_time(machine.pid)
            t1 = self.scheduler.next_time(
                machine.pid, 1, machine.peek().kind, t0)
            heapq.heappush(heap, (t1, next(counter), machine.pid))

        now = 0.0
        while heap:
            now, _, pid = heapq.heappop(heap)
            machine = self.by_pid[pid]
            if machine.done:
                continue
            self._apply_crashes()
            if machine.done:  # crashed just now
                continue
            if self._maybe_halt(machine):
                continue
            op = self._execute_one(machine, now=now)
            observe = getattr(self.scheduler, "observe", None)
            if observe is not None:
                # Contention-aware schedulers price each executed access
                # and stall the process's next operation accordingly.
                observe(op, pid, now)
            if self._should_stop():
                break
            if not machine.done:
                t_next = self.scheduler.next_time(
                    pid, machine.ops + 1, machine.peek().kind, now)
                heapq.heappush(heap, (t_next, next(counter), pid))

        self.result.sim_time = now
        return _finalize(self.result, self.machines)


class StepEngine(_EngineBase):
    """Sequential engine: a picker chooses who steps next.

    There is no clock; this engine explores *interleavings*, which is all
    that safety properties depend on.
    """

    def __init__(self, machines: Sequence[ProcessMachine],
                 memory: SharedMemory, picker: Picker, **kwargs) -> None:
        super().__init__(machines, memory, **kwargs)
        self.picker = picker

    def run(self) -> TrialResult:
        while True:
            enabled = sorted(m.pid for m in self.machines if not m.done)
            if not enabled:
                break
            self._apply_crashes()
            enabled = sorted(m.pid for m in self.machines if not m.done)
            if not enabled:
                break
            pid = self.picker.pick(enabled)
            if pid not in enabled:
                raise SimulationError(f"picker chose disabled pid {pid}")
            machine = self.by_pid[pid]
            if self._maybe_halt(machine):
                continue
            self._execute_one(machine)
            if self._should_stop():
                break
        return _finalize(self.result, self.machines)


class HybridEngine(_EngineBase):
    """Uniprocessor engine under hybrid quantum/priority scheduling.

    Args:
        scheduler: the legality oracle.
        chooser: picks among the legal next pids; defaults to "continue the
            current process whenever legal" (no pre-emption).
    """

    def __init__(self, machines: Sequence[ProcessMachine],
                 memory: SharedMemory, scheduler: HybridScheduler,
                 chooser: Optional[Callable[[List[int]], int]] = None,
                 **kwargs) -> None:
        super().__init__(machines, memory, **kwargs)
        self.scheduler = scheduler
        self.chooser = chooser if chooser is not None else (lambda legal: legal[0])

    def run(self) -> TrialResult:
        while True:
            alive = sorted(m.pid for m in self.machines if not m.done)
            if not alive:
                break
            legal = self.scheduler.legal_next(alive)
            # Keep the current process first so the default chooser models
            # run-to-completion.
            cur = self.scheduler.state.current
            if cur in legal:
                legal = [cur] + [p for p in legal if p != cur]
            pid = self.chooser(legal)
            if pid not in legal:
                raise SimulationError(f"chooser picked illegal pid {pid}")
            machine = self.by_pid[pid]
            if self._maybe_halt(machine):
                continue
            self.scheduler.dispatch(pid, alive)
            self._execute_one(machine)
            if self._should_stop():
                break
        return _finalize(self.result, self.machines)
