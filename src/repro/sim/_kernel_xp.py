"""The cupy backend lane: device-array lockstep, host-side event pick.

The lockstep kernel's per-event cost has two parts: the O(n) event pick
down the process axis and the O(1)-per-trial state machine.  This lane
splits them across the PCIe boundary: the schedule tensor and the
packed next-completion-time plane live on the device (``xp`` — cupy in
production, numpy under test), where each iteration runs the
``min``-reduction pick and the gather/scatter refill; the per-trial
protocol state (a few small integer arrays) stays host-side, where the
(m,)-wide vectorized transition runs on numpy.  Per iteration the
transfer is one ``(m,)`` download of the packed column minima and two
``(m,)`` index uploads — independent of ``n``, which is where the
device pays off.

The packed-pid trick is the same as the numpy lockstep's (owner pid in
the low mantissa bits, so the column min *is* the event pick, exact
ties breaking toward the lowest pid); every device operation on the
times is a comparison, gather, or bit mask — no float arithmetic — so
on a given schedule tensor the replay outcomes are **bitwise**
identical to the numpy kernel.  The backend's documented
``float-tolerance`` oracle tier exists because *sampling* on device
libm may differ from the host in final ULPs; the pipeline currently
samples host-side and transfers, which stays exact.

Coverage (enforced by :func:`repro.sim.backend.kernel_backend_gap`):
the lag-variant family (lean / conservative / eager / random-tie)
without crash schedules, round caps, or op budgets, at ``n`` within the
packed-pid range.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.sim.fast import FAST_VARIANTS

#: Retirement sentinel: a huge finite float64 whose low mantissa bits
#: are zero (the numpy lockstep's ``_DEAD_PACKED``).
_DEAD = np.frombuffer(
    (np.uint64(0x7FE0000000000000)).tobytes(), np.float64)[0]


def get_xp():
    """The array module this lane runs on (monkeypatchable in tests)."""
    import cupy

    return cupy


def _to_host(arr) -> np.ndarray:
    """Download a device array (no-op for numpy)."""
    if hasattr(arr, "get"):
        return arr.get()
    return np.asarray(arr)


def replay_chunk_xp(times: np.ndarray, inputs, variant: str = "lean",
                    tie_flips: Optional[np.ndarray] = None,
                    stop_after_first_decision: bool = True,
                    horizon_is_final: bool = False,
                    trials_major: bool = False, xp=None):
    """Replay a validated chunk on the device-array lane.

    Argument contract and result layout match
    :func:`repro.sim.kernel.replay_chunk`, which validates and
    dispatches here (the coverage gaps — crash schedules, round caps,
    op budgets, the elision variant, n past the packed range — were
    refused there).
    """
    from repro.sim.kernel import KernelResult  # late: kernel imports us

    if xp is None:
        xp = get_xp()
    cfg = FAST_VARIANTS[variant]
    if trials_major:
        trials, k, n = times.shape
    else:
        n, trials, k = times.shape
    m = trials
    lag = int(cfg.lag)
    stop_first = stop_after_first_decision
    final = horizon_is_final
    R = k // 4 + 2
    pack_mask = np.uint64((1 << max((n - 1).bit_length(), 1)) - 1)
    keep_mask = ~pack_mask

    # Device state: the full schedule tensor (flat) and the packed NT
    # plane.  The NT seed is built host-side (one small (n, m) slice),
    # packed, then uploaded.
    timesf_d = xp.asarray(times).reshape(-1)
    if trials_major:
        nt0 = np.ascontiguousarray(times[:, 0, :].T)
    else:
        nt0 = np.ascontiguousarray(times[:, :, 0])
    u = nt0.view(np.uint64)
    u &= keep_mask
    u |= np.arange(n, dtype=np.uint64)[:, None]
    NT_d = xp.asarray(nt0)
    NTf_d = NT_d.reshape(-1)

    # Host state, flat (n * m,) per-process and (m,) per-trial.
    cols = np.arange(m, dtype=np.int64)
    inputs_arr = np.asarray(inputs, np.int8)
    preff = np.tile(inputs_arr, (m, 1)).T.reshape(-1).copy()
    v0f = np.zeros(n * m, np.int8)
    stepf = np.zeros(n * m, np.int32)
    roundf = np.ones(n * m, np.int32)
    opsf = np.zeros(n * m, np.int32)
    af = np.zeros(2 * R * m, np.uint8)
    af[0:m] = 1
    af[R * m:R * m + m] = 1
    use_flips = cfg.random_tie and tie_flips is not None
    if use_flips:
        flipsf = np.ascontiguousarray(tie_flips, np.int8).reshape(-1)
        F = tie_flips.shape[2]
        tiecntf = np.zeros(n * m, np.int32)
    remaining = np.full(m, n, np.int32)
    prefchg = np.zeros(m, np.int64)
    finished = np.zeros(m, bool)
    alive = m

    overflow = np.zeros(m, bool)
    out_total = np.zeros(m, np.int64)
    out_maxr = np.zeros(m, np.int64)
    out_chg = np.zeros(m, np.int64)
    out_ndec = np.zeros(m, np.int64)
    out_firstr = np.full(m, np.nan)
    out_firsto = np.full(m, np.nan)
    out_lastr = np.full(m, np.nan)
    seen0 = np.zeros(m, bool)
    seen1 = np.zeros(m, bool)
    dec_records: list = []  # (trial, pid, value, round, ops)

    m64 = np.int64(m)
    Rm = np.int64(R * m)
    R_1 = np.int32(R - 1)
    k_i32 = np.int32(k)
    opsa = opsf.reshape(n, m)
    rounda = roundf.reshape(n, m)

    def finish(fin_cols: np.ndarray) -> None:
        nonlocal alive
        if not fin_cols.size:
            return
        out_total[fin_cols] = opsa[:, fin_cols].sum(axis=0)
        out_maxr[fin_cols] = rounda[:, fin_cols].max(axis=0)
        out_chg[fin_cols] = prefchg[fin_cols]
        finished[fin_cols] = True
        NT_d[:, xp.asarray(fin_cols)] = _DEAD
        alive -= fin_cols.size

    def mark_overflow(ov_cols: np.ndarray) -> None:
        nonlocal alive
        if not ov_cols.size:
            return
        overflow[ov_cols] = True
        finished[ov_cols] = True
        NT_d[:, xp.asarray(ov_cols)] = _DEAD
        alive -= ov_cols.size

    while alive:
        # -- device pick: packed column minima, one (m,) download ------
        tmin = _to_host(NT_d.min(axis=0))
        live = tmin != _DEAD
        if not live.any():
            break
        p = (tmin.view(np.uint64) & pack_mask).astype(np.int64)
        flat = p * m64 + cols

        # -- host state machine, vectorized over the trial axis --------
        # Junk picks on finished columns step their own (already
        # emitted) state — free, exactly as in the unguarded numpy loop.
        s = stepf[flat]
        r = roundf[flat]
        o = opsf[flat]
        newo = o + np.int32(1)
        opsf[flat] = newo
        rclip = np.minimum(r, R_1)
        pref = preff[flat]
        ar = rclip.astype(np.int64) * m64 + cols
        b0 = s == 0
        b1 = s == 1
        b2 = s == 2
        b3 = live & (s == 3)
        # Steps 0 and 1 read different planes at the same round index —
        # one plane-selected gather serves both.
        av = af[b1 * Rm + ar]
        w0 = v0f[flat]
        v0f[flat] = np.where(b0, av.view(np.int8), w0)
        newp = np.where(w0 == av, pref, av.view(np.int8))
        if use_flips:
            tie = b1 & (w0 == 1) & (av == 1)
            if tie.any():
                cnt = tiecntf[flat]
                fv = flipsf[flat * F + np.minimum(cnt, F - 1)]
                newp = np.where(tie, fv, newp)
                tiecntf[flat] = np.where(tie, cnt + 1, cnt)
        changed = b1 & (newp != pref)
        prefchg += changed
        preff[flat] = np.where(b1, newp, pref)
        wi = pref.astype(np.int64) * Rm + ar
        af[wi] = af[wi] | b2
        behind = np.maximum(rclip - np.int32(lag), np.int32(0))
        rival = af[(1 - pref).astype(np.int64) * Rm
                   + behind.astype(np.int64) * m64 + cols]
        dec = b3 & (rival == 0)
        stepf[flat] = np.where(dec, s, np.where(s < 3, s + 1, 0))
        roundf[flat] = np.where(b3 & ~dec, r + np.int32(1), r)

        # -- trial bookkeeping (host) ----------------------------------
        cont = live
        if dec.any():
            e = np.nonzero(dec)[0]
            NTf_d[xp.asarray(flat[e])] = _DEAD
            dec_records.extend(zip(e.tolist(), p[e].tolist(),
                                   pref[e].tolist(), r[e].tolist(),
                                   newo[e].tolist()))
            firsts = np.isnan(out_firstr[e])
            out_firstr[e] = np.where(firsts, r[e], out_firstr[e])
            out_firsto[e] = np.where(firsts, newo[e], out_firsto[e])
            out_lastr[e] = r[e]
            out_ndec[e] += 1
            seen0[e] |= pref[e] == 0
            seen1[e] |= pref[e] == 1
            remaining[e] -= 1
            if stop_first:
                fin = e
            else:
                fin = e[remaining[e] == 0]
            finish(fin)
            cont = live & ~dec & ~finished
        drained = cont & (newo >= k_i32)
        if drained.any():
            dr = np.nonzero(drained)[0]
            if final:
                # Whole-schedule semantics: the process just runs out of
                # events; the trial is unknowable only once every
                # process has.
                NTf_d[xp.asarray(flat[dr])] = _DEAD
                all_dead = _to_host(
                    (NT_d[:, xp.asarray(dr)] >= _DEAD).all(axis=0))
                mark_overflow(dr[all_dead])
            else:
                mark_overflow(dr)
            cont = cont & ~drained

        # -- device refill: gather next packed times, masked scatter ---
        clamped = np.minimum(newo, k_i32 - np.int32(1)).astype(np.int64)
        np.maximum(clamped, 0, out=clamped)
        if trials_major:
            src = cols * np.int64(k * n) + clamped * np.int64(n) + p
        else:
            src = (p * m64 + cols) * np.int64(k) + clamped
        nxt = timesf_d.take(xp.asarray(src))
        un = nxt.view(xp.uint64)
        un &= xp.uint64(keep_mask)
        un |= xp.asarray(p.astype(np.uint64))
        flat_d = xp.asarray(flat)
        NTf_d[flat_d] = xp.where(xp.asarray(cont), nxt, NTf_d.take(flat_d))
    if alive:
        # No events left but trials unfinished: scalar-replay None.
        mark_overflow(np.nonzero(~finished)[0])

    # -- assemble the KernelResult (mirrors _ChunkState.build) ---------
    if stop_first:
        decisions: List[tuple] = [()] * m
        for rec in dec_records:
            decisions[rec[0]] = (rec[1:],)
    else:
        dec_lists: List[list] = [[] for _ in range(m)]
        for rec in dec_records:
            dec_lists[rec[0]].append(rec[1:])
        decisions = [tuple(d) for d in dec_lists]
    distinct = seen0.astype(np.int64) + seen1.astype(np.int64)
    value = np.where(seen0 & ~seen1, 0.0,
                     np.where(seen1 & ~seen0, 1.0, np.nan))
    return KernelResult(
        overflow=overflow, total_ops=out_total, max_round=out_maxr,
        preference_changes=out_chg, n_decided=out_ndec,
        n_distinct=distinct, n_halted=np.zeros(m, np.int64),
        first_round=out_firstr, first_ops=out_firsto,
        last_round=out_lastr, decided_value=value,
        budget_exhausted=np.zeros(m, bool),
        decisions=decisions, halted=[()] * m)
