"""One-call trial runners: the library's main entry points.

Typical use::

    from repro.sim import run_noisy_trial
    from repro.noise import Exponential

    result = run_noisy_trial(n=64, noise=Exponential(1.0), seed=1)
    print(result.first_decision_round, result.decided_values)

Everything is reproducible from the integer seed: the runner spawns
independent child generators for the noise, the start-time dither, the
failure model, and (for coin protocols) the coins.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro._rng import SeedLike, make_rng, spawn
from repro.errors import ConfigurationError
from repro.core.bounded import (
    BoundedLeanConsensus,
    default_backup_factory,
    suggested_round_cap,
)
from repro.core.invariants import check_agreement, check_validity
from repro.core.machine import (
    LeanConsensus,
    ProcessMachine,
    RandomCoin,
    RandomTie,
    SharedCoinLean,
)
from repro.core.variants import ConservativeLean, EagerDecideLean, OptimizedLean
from repro.failures.injection import (
    AdaptiveCrashAdversary,
    FailureModel,
    NoFailures,
    RandomHalting,
)
from repro.memory.history import HistoryRecorder
from repro.memory.registers import SharedMemory, UnboundedBitArray
from repro.noise.distributions import NoiseDistribution, PerOpKindNoise
from repro.sched.delta import DeltaSchedule, DitheredStart
from repro.sched.hybrid import HybridScheduler
from repro.sched.noisy import NoisyScheduler
from repro.sched.pickers import Picker
from repro.sim.engine import HybridEngine, NoisyEngine, StepEngine
from repro.sim.fast import lean_horizon_ops, replay_lean
from repro.sim.results import TrialResult

ProtocolLike = Union[str, Callable[[int, int], ProcessMachine]]


def half_and_half(n: int) -> Dict[int, int]:
    """The paper's Figure-1 input assignment: half 0s, half 1s."""
    return {pid: (0 if pid < n // 2 else 1) for pid in range(n)}


def make_machines(protocol: ProtocolLike, inputs: Dict[int, int],
                  rng: Optional[np.random.Generator] = None,
                  round_cap: Optional[int] = None) -> list[ProcessMachine]:
    """Instantiate one machine per (pid, input).

    ``protocol`` may be a factory ``(pid, input) -> machine`` or one of the
    built-in names: ``"lean"`` (the paper), ``"optimized"``, ``"eager"``
    (unsafe negative control), ``"conservative"``, ``"random-tie"``,
    ``"shared-coin"``, ``"bounded"``.
    """
    if callable(protocol):
        return [protocol(pid, bit) for pid, bit in sorted(inputs.items())]

    rng = make_rng(rng)
    n = len(inputs)
    if protocol == "lean":
        factory = lambda pid, bit: LeanConsensus(pid, bit, round_cap=round_cap)
    elif protocol == "optimized":
        factory = lambda pid, bit: OptimizedLean(pid, bit, round_cap=round_cap)
    elif protocol == "eager":
        factory = lambda pid, bit: EagerDecideLean(pid, bit, round_cap=round_cap)
    elif protocol == "conservative":
        factory = lambda pid, bit: ConservativeLean(pid, bit, round_cap=round_cap)
    elif protocol == "random-tie":
        coins = spawn(rng, n)
        factory = lambda pid, bit: LeanConsensus(
            pid, bit, tie_rule=RandomTie(RandomCoin(coins[pid])),
            round_cap=round_cap)
    elif protocol == "shared-coin":
        coins = spawn(rng, n)
        factory = lambda pid, bit: SharedCoinLean(
            pid, bit, coin=RandomCoin(coins[pid]), round_cap=round_cap)
    elif protocol == "bounded":
        cap = round_cap if round_cap is not None else suggested_round_cap(n)
        coins = spawn(rng, n)
        factory = lambda pid, bit: BoundedLeanConsensus(
            pid, bit, round_cap=cap,
            backup_factory=default_backup_factory(coins[pid]))
    else:
        raise ConfigurationError(f"unknown protocol {protocol!r}")
    return [factory(pid, bit) for pid, bit in sorted(inputs.items())]


def make_memory_for(machines: Sequence[ProcessMachine],
                    record: bool = False,
                    capacity: Optional[int] = None) -> SharedMemory:
    """Build a shared memory with every array the machines require."""
    from repro.core.idconsensus import IdConsensus

    recorder = HistoryRecorder() if record else None
    specs: dict[str, Optional[int]] = {}
    for machine in machines:
        required = getattr(type(machine), "required_arrays", None)
        if required is None:
            pairs = [("a0", 1), ("a1", 1)]
        elif isinstance(machine, SharedCoinLean):
            pairs = SharedCoinLean.required_arrays(machine.prefix)
        elif isinstance(machine, IdConsensus):
            pairs = IdConsensus.required_arrays(machine.bits)
        else:
            pairs = required()
        for name, prefix in pairs:
            specs.setdefault(name, prefix)
    memory = SharedMemory(recorder=recorder)
    for name, prefix in sorted(specs.items()):
        memory.add_array(UnboundedBitArray(name, default=0,
                                           prefix_value=prefix,
                                           capacity=capacity))
    return memory


def _resolve_inputs(n: int, inputs) -> Dict[int, int]:
    if inputs is None or inputs == "half":
        return half_and_half(n)
    if isinstance(inputs, dict):
        return dict(inputs)
    return {pid: int(b) for pid, b in enumerate(inputs)}


def _check_result(result: TrialResult, check: bool) -> TrialResult:
    if check:
        check_agreement(result.decisions)
        check_validity(result.inputs, result.decisions)
    return result


def run_noisy_trial(n: int,
                    noise: Union[NoiseDistribution, PerOpKindNoise],
                    seed: SeedLike = None,
                    inputs=None,
                    protocol: ProtocolLike = "lean",
                    delta: Optional[DeltaSchedule] = None,
                    h: float = 0.0,
                    crash_adversary: Optional[AdaptiveCrashAdversary] = None,
                    engine: str = "auto",
                    stop_after_first_decision: bool = False,
                    record: bool = False,
                    max_total_ops: Optional[int] = None,
                    allow_degenerate: bool = False,
                    dither_epsilon: float = 1e-8,
                    round_cap: Optional[int] = None,
                    check: bool = True) -> TrialResult:
    """Run one consensus execution under the noisy-scheduling model.

    Args:
        n: number of processes.
        noise: the noise distribution F.
        seed: reproducibility seed (int, Generator, or None).
        inputs: ``None``/"half" for the paper's half-and-half split, or an
            explicit dict/sequence of bits.
        protocol: built-in name or machine factory (see
            :func:`make_machines`).
        delta: adversary delay schedule; defaults to the Figure-1 setting
            (equal starts dithered by U(0, ``dither_epsilon``), zero
            delays).
        h: random halting probability per operation.
        crash_adversary: optional adaptive crash adversary (event engine
            only).
        engine: ``"event"``, ``"fast"``, or ``"auto"`` (fast when the
            protocol is plain lean and no feature forces the event engine).
        stop_after_first_decision: measure the Figure-1 quantity and stop.
        record: attach a :class:`HistoryRecorder` (event engine only).
        max_total_ops: operation budget (guards non-terminating schedules).
        allow_degenerate: accept a model-violating constant distribution.
        round_cap: optional cutoff for the machines.
        check: verify agreement and validity before returning.

    Returns:
        The trial's :class:`~repro.sim.results.TrialResult`.
    """
    root = make_rng(seed)
    rng_noise, rng_dither, rng_fail, rng_proto = spawn(root, 4)
    input_map = _resolve_inputs(n, inputs)

    if engine == "auto":
        fast_ok = (protocol == "lean" and crash_adversary is None
                   and not record and round_cap is None
                   and isinstance(noise, NoiseDistribution))
        engine = "fast" if (fast_ok and n >= 256) else "event"

    if delta is None:
        delta = DitheredStart(n, rng_dither, epsilon=dither_epsilon)

    if engine == "fast":
        if protocol != "lean":
            raise ConfigurationError("fast engine only supports plain lean")
        return _run_fast(n, noise, delta, rng_noise, rng_fail, input_map, h,
                         stop_after_first_decision, allow_degenerate, check)

    scheduler = NoisyScheduler(noise, rng_noise, delta=delta,
                               allow_degenerate=allow_degenerate)
    machines = make_machines(protocol, input_map, rng=rng_proto,
                             round_cap=round_cap)
    memory = make_memory_for(machines, record=record)
    failures: FailureModel = (RandomHalting(h, rng_fail) if h > 0
                              else NoFailures())
    eng = NoisyEngine(machines, memory, scheduler,
                      failures=failures,
                      crash_adversary=crash_adversary,
                      max_total_ops=max_total_ops,
                      stop_after_first_decision=stop_after_first_decision)
    result = eng.run()
    result.memory = memory  # type: ignore[attr-defined]
    result.machines = machines  # type: ignore[attr-defined]
    return _check_result(result, check)


def _run_fast(n, noise, delta, rng_noise, rng_fail, input_map, h,
              stop_first, allow_degenerate, check) -> TrialResult:
    inputs = [input_map[pid] for pid in range(n)]
    horizon = lean_horizon_ops(n)
    for _attempt in range(10):
        scheduler = NoisyScheduler(noise, rng_noise, delta=delta,
                                   allow_degenerate=allow_degenerate)
        times = scheduler.presample(n, horizon)
        death_ops = None
        if h > 0:
            death_ops = RandomHalting(h, rng_fail).presample_death_ops(n)
        result = replay_lean(times, inputs, death_ops=death_ops,
                             stop_after_first_decision=stop_first)
        if result is not None:
            return _check_result(result, check)
        horizon *= 2
    raise ConfigurationError(
        f"schedule horizon kept overflowing (last tried {horizon} ops); "
        "is the noise distribution effectively degenerate?"
    )


def run_noisy_trials(n_trials: int, n: int,
                     noise: Union[NoiseDistribution, PerOpKindNoise],
                     seed: SeedLike = None, **kwargs) -> list[TrialResult]:
    """Run ``n_trials`` independent trials; each gets its own child stream."""
    return [
        run_noisy_trial(n, noise, seed=trial_rng, **kwargs)
        for trial_rng in spawn(make_rng(seed), n_trials)
    ]


def run_step_trial(n: int, picker: Picker,
                   seed: SeedLike = None,
                   inputs=None,
                   protocol: ProtocolLike = "lean",
                   h: float = 0.0,
                   record: bool = False,
                   max_total_ops: Optional[int] = None,
                   round_cap: Optional[int] = None,
                   check: bool = True) -> TrialResult:
    """Run one execution under an explicit interleaving (no clock)."""
    root = make_rng(seed)
    rng_fail, rng_proto = spawn(root, 2)
    input_map = _resolve_inputs(n, inputs)
    machines = make_machines(protocol, input_map, rng=rng_proto,
                             round_cap=round_cap)
    memory = make_memory_for(machines, record=record)
    failures: FailureModel = (RandomHalting(h, rng_fail) if h > 0
                              else NoFailures())
    eng = StepEngine(machines, memory, picker,
                     failures=failures, max_total_ops=max_total_ops)
    result = eng.run()
    result.memory = memory  # type: ignore[attr-defined]
    result.machines = machines  # type: ignore[attr-defined]
    return _check_result(result, check)


def run_hybrid_trial(n: int, quantum: int,
                     priorities: Optional[Sequence[int]] = None,
                     initial_used: Optional[Dict[int, int]] = None,
                     debt_policy: str = "holder",
                     chooser: Optional[Callable[[list[int]], int]] = None,
                     seed: SeedLike = None,
                     inputs=None,
                     protocol: ProtocolLike = "lean",
                     max_total_ops: Optional[int] = None,
                     check: bool = True) -> TrialResult:
    """Run one execution on the hybrid-scheduled uniprocessor (Section 7)."""
    root = make_rng(seed)
    (rng_proto,) = spawn(root, 1)
    input_map = _resolve_inputs(n, inputs)
    machines = make_machines(protocol, input_map, rng=rng_proto)
    memory = make_memory_for(machines)
    if priorities is None:
        priorities = [0] * n
    scheduler = HybridScheduler(priorities, quantum, initial_used=initial_used,
                                debt_policy=debt_policy)
    eng = HybridEngine(machines, memory, scheduler, chooser=chooser,
                       max_total_ops=max_total_ops)
    result = eng.run()
    result.memory = memory  # type: ignore[attr-defined]
    result.machines = machines  # type: ignore[attr-defined]
    return _check_result(result, check)
