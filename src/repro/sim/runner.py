"""One-call trial runners: thin wrappers over the declarative spec layer.

Typical use::

    from repro.sim import run_noisy_trial
    from repro.noise import Exponential

    result = run_noisy_trial(n=64, noise=Exponential(1.0), seed=1)
    print(result.first_decision_round, result.decided_values)

Each runner builds a :class:`repro.api.TrialSpec` from its keyword
arguments and executes it through :func:`repro.api.run_trial`, so a legacy
call and the equivalent spec produce bit-identical results from the same
seed.  New code should construct specs directly (they serialize, sweep,
and parallelize; see :func:`repro.api.run_batch`); these wrappers keep the
historical 15-kwarg surface working unchanged.

Everything is reproducible from the integer seed: the compiler spawns
independent child generators for the noise, the start-time dither, the
failure model, and (for coin protocols) the coins.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

from repro._rng import SeedLike
from repro.api.spec import (
    OPAQUE,
    AdversarySpec,
    DeltaSpec,
    FailureSpec,
    HybridModelSpec,
    NoisyModelSpec,
    PickerSpec,
    ProtocolSpec,
    StepModelSpec,
    TrialSpec,
    noise_to_spec,
)
from repro.failures.injection import AdaptiveCrashAdversary
from repro.noise.distributions import NoiseDistribution, PerOpKindNoise
from repro.sched.delta import DeltaSchedule
from repro.sched.pickers import Picker
from repro.sim.build import (  # noqa: F401  (re-exported; historical home)
    ProtocolLike,
    half_and_half,
    make_machines,
    make_memory_for,
)
from repro.sim.results import TrialResult


def _run_trial(spec: TrialSpec, seed: SeedLike) -> TrialResult:
    # Lazy import: repro.api.compile imports repro.sim.build, which would
    # cycle with the repro.sim package initialization importing this module.
    from repro.api.compile import run_trial
    return run_trial(spec, seed)


def _protocol_spec(protocol: ProtocolLike,
                   round_cap: Optional[int]) -> ProtocolSpec:
    if callable(protocol):
        return ProtocolSpec(factory=protocol, round_cap=round_cap)
    return ProtocolSpec(name=protocol, round_cap=round_cap)


def _noisy_spec(n: int,
                noise: Union[NoiseDistribution, PerOpKindNoise],
                inputs=None,
                protocol: ProtocolLike = "lean",
                delta: Optional[DeltaSchedule] = None,
                h: float = 0.0,
                crash_adversary: Optional[AdaptiveCrashAdversary] = None,
                engine: str = "auto",
                backend: str = "numpy",
                stop_after_first_decision: bool = False,
                record: bool = False,
                max_total_ops: Optional[int] = None,
                allow_degenerate: bool = False,
                dither_epsilon: float = 1e-8,
                round_cap: Optional[int] = None,
                check: bool = True) -> TrialSpec:
    """Translate the historical kwarg surface into a :class:`TrialSpec`."""
    if isinstance(noise, PerOpKindNoise):
        noise_spec = noise_to_spec(noise.read)
        write_spec = noise_to_spec(noise.write)
    else:
        noise_spec, write_spec = noise_to_spec(noise), None
    if delta is None:
        delta_spec = DeltaSpec.of("dithered", epsilon=dither_epsilon)
    else:
        delta_spec = DeltaSpec(kind=OPAQUE, instance=delta)
    adversary = (AdversarySpec(instance=crash_adversary)
                 if crash_adversary is not None else None)
    return TrialSpec(
        n=n,
        model=NoisyModelSpec(noise=noise_spec, write_noise=write_spec,
                             delta=delta_spec,
                             allow_degenerate=allow_degenerate),
        protocol=_protocol_spec(protocol, round_cap),
        failures=FailureSpec(h=h, adversary=adversary),
        engine=engine,
        backend=backend,
        inputs=inputs,
        stop_after_first_decision=stop_after_first_decision,
        record=record,
        max_total_ops=max_total_ops,
        check=check,
    )


def run_noisy_trial(n: int,
                    noise: Union[NoiseDistribution, PerOpKindNoise],
                    seed: SeedLike = None,
                    inputs=None,
                    protocol: ProtocolLike = "lean",
                    delta: Optional[DeltaSchedule] = None,
                    h: float = 0.0,
                    crash_adversary: Optional[AdaptiveCrashAdversary] = None,
                    engine: str = "auto",
                    backend: str = "numpy",
                    stop_after_first_decision: bool = False,
                    record: bool = False,
                    max_total_ops: Optional[int] = None,
                    allow_degenerate: bool = False,
                    dither_epsilon: float = 1e-8,
                    round_cap: Optional[int] = None,
                    check: bool = True) -> TrialResult:
    """Run one consensus execution under the noisy-scheduling model.

    Args:
        n: number of processes.
        noise: the noise distribution F.
        seed: reproducibility seed (int, Generator, or None).
        inputs: ``None``/"half" for the paper's half-and-half split, or an
            explicit dict/sequence of bits.
        protocol: built-in name or machine factory (see
            :func:`repro.sim.build.make_machines`).
        delta: adversary delay schedule; defaults to the Figure-1 setting
            (equal starts dithered by U(0, ``dither_epsilon``), zero
            delays).
        h: random halting probability per operation.
        crash_adversary: optional adaptive crash adversary (event engine
            only).
        engine: ``"event"``, ``"fast"``, or ``"auto"`` (fast when the
            protocol is plain lean and no feature forces the event engine).
        backend: array backend for the lockstep kernel (``"numpy"``,
            ``"numba"``, or ``"cupy"``; see :mod:`repro.sim.backend`).
        stop_after_first_decision: measure the Figure-1 quantity and stop.
        record: attach a :class:`HistoryRecorder` (event engine only).
        max_total_ops: operation budget (guards non-terminating schedules).
        allow_degenerate: accept a model-violating constant distribution.
        round_cap: optional cutoff for the machines.
        check: verify agreement and validity before returning.

    Returns:
        The trial's :class:`~repro.sim.results.TrialResult`, with
        ``result.engine`` recording which engine actually ran.
    """
    spec = _noisy_spec(
        n, noise, inputs=inputs, protocol=protocol, delta=delta, h=h,
        crash_adversary=crash_adversary, engine=engine, backend=backend,
        stop_after_first_decision=stop_after_first_decision, record=record,
        max_total_ops=max_total_ops, allow_degenerate=allow_degenerate,
        dither_epsilon=dither_epsilon, round_cap=round_cap, check=check)
    return _run_trial(spec, seed)


def run_noisy_trials(n_trials: int, n: int,
                     noise: Union[NoiseDistribution, PerOpKindNoise],
                     seed: SeedLike = None,
                     workers: Optional[int] = None,
                     **kwargs) -> list[TrialResult]:
    """Run ``n_trials`` independent trials; each gets its own child stream.

    ``workers`` > 1 fans the batch out across a process pool with results
    bit-identical to the serial loop (see :func:`repro.api.run_batch`).
    """
    from repro.api.batch import run_batch
    return run_batch(_noisy_spec(n, noise, **kwargs), n_trials,
                     seed=seed, workers=workers)


def run_step_trial(n: int, picker: Picker,
                   seed: SeedLike = None,
                   inputs=None,
                   protocol: ProtocolLike = "lean",
                   h: float = 0.0,
                   record: bool = False,
                   max_total_ops: Optional[int] = None,
                   round_cap: Optional[int] = None,
                   check: bool = True) -> TrialResult:
    """Run one execution under an explicit interleaving (no clock)."""
    picker_spec = (picker if isinstance(picker, PickerSpec)
                   else PickerSpec(kind=OPAQUE, instance=picker))
    spec = TrialSpec(
        n=n,
        model=StepModelSpec(picker=picker_spec),
        protocol=_protocol_spec(protocol, round_cap),
        failures=FailureSpec(h=h),
        inputs=inputs,
        record=record,
        max_total_ops=max_total_ops,
        check=check,
    )
    return _run_trial(spec, seed)


def run_hybrid_trial(n: int, quantum: int,
                     priorities: Optional[Sequence[int]] = None,
                     initial_used: Optional[Dict[int, int]] = None,
                     debt_policy: str = "holder",
                     chooser: Optional[Callable[[list[int]], int]] = None,
                     seed: SeedLike = None,
                     inputs=None,
                     protocol: ProtocolLike = "lean",
                     max_total_ops: Optional[int] = None,
                     check: bool = True) -> TrialResult:
    """Run one execution on the hybrid-scheduled uniprocessor (Section 7)."""
    spec = TrialSpec(
        n=n,
        model=HybridModelSpec(
            quantum=quantum,
            priorities=tuple(priorities) if priorities is not None else None,
            initial_used=tuple((initial_used or {}).items()),
            debt_policy=debt_policy,
            chooser=chooser,
        ),
        protocol=_protocol_spec(protocol, None),
        inputs=inputs,
        max_total_ops=max_total_ops,
        check=check,
    )
    return _run_trial(spec, seed)
