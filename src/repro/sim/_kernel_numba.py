"""The numba backend lane: JIT-compiled per-trial merge replay.

The numpy lockstep of :mod:`repro.sim.kernel` amortizes the interpreter
over the trials axis; a JIT needs no amortization, so this lane takes
the opposite layout — one compiled scalar loop per trial — and recovers
the global event order with the same k-way merge the lockstep uses:
each step picks the process whose next completion time is smallest,
ties breaking toward the lowest pid (``np.argmin``'s first-occurrence
rule), which is exactly the stable flat argsort order the scalar replay
of :mod:`repro.sim.fast` walks.  The state machines below are verbatim
ports of :func:`~repro.sim.fast.replay_lean` and
``fast._replay_optimized`` — same branch structure, same stop order
(decision, then round cap, then budget), same halting rule — so the
outcomes are **bitwise** identical to both the scalar replay and the
numpy lockstep: the only floating-point operations are comparisons of
the pre-sampled completion times.

Feature coverage is total: every :data:`~repro.sim.fast.FAST_VARIANTS`
protocol, crash schedules (``death_ops``), pre-sampled tie flips, round
caps, op budgets, and both horizon semantics.

When the numba wheel is absent the ``@njit`` decorator degrades to a
no-op and the lane runs as pure Python — identical results, no speedup
— which keeps it importable and testable everywhere; engine resolution
(:func:`repro.sim.backend.backend_unavailability`) is what keeps specs
off this lane when the JIT is missing.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.sim.fast import FAST_VARIANTS

try:  # pragma: no cover - exercised only where the wheel is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pure-Python fallback: the decorator is identity
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # noqa: D103 - mirror numba's signature
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap

_INF = np.inf


@njit(cache=True)
def _trial_lean(times, inputs, deaths, use_deaths, flips, nflips,
                use_flips, lag, stop_first, final, cap, use_cap, budget,
                use_budget, dec_pid, dec_val, dec_rnd, dec_ops, halt_pid):
    """One trial of the four-step-round family, merge-ordered.

    Ports ``fast.replay_lean`` branch for branch; the schedule walk is
    the min-time merge instead of a precomputed argsort (done processes
    park at ``+inf`` and are never picked, matching the scalar loop's
    ``continue`` skip).  Returns ``(overflow, n_dec, n_halt, total_ops,
    max_round, preference_changes, budget_exhausted)``; decision/halt
    payloads land in the preallocated ``dec_*``/``halt_pid`` rows.
    """
    n, k = times.shape
    pref = inputs.copy()
    rounds = np.ones(n, np.int64)
    step = np.zeros(n, np.int64)
    v0 = np.zeros(n, np.int64)
    ops = np.zeros(n, np.int64)
    fcnt = np.zeros(n, np.int64)
    a = np.zeros((2, k // 4 + 4), np.uint8)
    a[0, 0] = 1
    a[1, 0] = 1
    nt = np.empty(n, np.float64)
    for i in range(n):
        nt[i] = times[i, 0] if k > 0 else _INF
    ndec = 0
    nhalt = 0
    preference_changes = 0
    remaining = n
    executed = 0
    budget_exhausted = False
    overflow = False
    while True:
        pid = int(np.argmin(nt))
        if nt[pid] == _INF:
            # Events exhausted without reaching the stop condition: the
            # scalar replay returns None here (the caller falls back).
            if remaining > 0:
                overflow = True
            break
        if use_deaths and ops[pid] + 1 >= deaths[pid]:
            # Crash schedule: the event consumes its slot, executes
            # nothing, and halts the process.
            nt[pid] = _INF
            halt_pid[nhalt] = pid
            nhalt += 1
            remaining -= 1
            if remaining == 0:
                break
            continue
        ops[pid] += 1
        s = step[pid]
        r = rounds[pid]
        done = False
        if s == 0:
            v0[pid] = a[0, r]
            step[pid] = 1
        elif s == 1:
            v1 = a[1, r]
            w0 = v0[pid]
            if w0 == 1 and v1 == 0:
                if pref[pid] != 0:
                    preference_changes += 1
                    pref[pid] = 0
            elif v1 == 1 and w0 == 0:
                if pref[pid] != 1:
                    preference_changes += 1
                    pref[pid] = 1
            elif use_flips and w0 == 1 and v1 == 1:
                fi = fcnt[pid]
                if fi >= nflips:
                    fi = nflips - 1
                flip = flips[pid, fi]
                fcnt[pid] += 1
                if flip != pref[pid]:
                    preference_changes += 1
                    pref[pid] = flip
            step[pid] = 2
        elif s == 2:
            a[pref[pid], r] = 1
            step[pid] = 3
        else:
            behind = r - lag if r > lag else 0
            if a[1 - pref[pid], behind] == 0:
                done = True
                nt[pid] = _INF
                remaining -= 1
                dec_pid[ndec] = pid
                dec_val[ndec] = pref[pid]
                dec_rnd[ndec] = r
                dec_ops[ndec] = ops[pid]
                ndec += 1
                if stop_first or remaining == 0:
                    break
            elif use_cap and r >= cap:
                # Round cap exhausted without a decision: frozen at the
                # cap, done, unrecorded (the machine's overflowed flag).
                done = True
                nt[pid] = _INF
                remaining -= 1
                if remaining == 0:
                    break
            else:
                rounds[pid] = r + 1
                step[pid] = 0
        if use_budget:
            executed += 1
            if executed >= budget:
                budget_exhausted = remaining > 0
                break
        if not done:
            o = ops[pid]
            if o < k:
                nt[pid] = times[pid, o]
            else:
                nt[pid] = _INF
                if not final:
                    # Prefix-of-infinite-schedule semantics: a drained
                    # live process overflows the trial immediately.
                    overflow = True
                    break
    total_ops = 0
    max_round = np.int64(0)
    for i in range(n):
        total_ops += ops[i]
        if rounds[i] > max_round:
            max_round = rounds[i]
    return (overflow, ndec, nhalt, total_ops, max_round,
            preference_changes, budget_exhausted)


@njit(cache=True)
def _trial_optimized(times, inputs, deaths, use_deaths, stop_first, final,
                     cap, use_cap, budget, use_budget, dec_pid, dec_val,
                     dec_rnd, dec_ops, halt_pid):
    """One trial of the Section-4 elision variant, merge-ordered.

    Verbatim port of ``fast._replay_optimized`` (the deterministic tie
    rule; rounds take 2-4 ops via write/final-read elision).
    """
    n, k = times.shape
    pref = inputs.copy()
    rounds = np.ones(n, np.int64)
    step = np.zeros(n, np.int64)
    v0 = np.zeros(n, np.int64)
    ops = np.zeros(n, np.int64)
    skip_final = np.zeros(n, np.uint8)
    a = np.zeros((2, k // 2 + 4), np.uint8)
    a[0, 0] = 1
    a[1, 0] = 1
    nt = np.empty(n, np.float64)
    for i in range(n):
        nt[i] = times[i, 0] if k > 0 else _INF
    ndec = 0
    nhalt = 0
    preference_changes = 0
    remaining = n
    executed = 0
    budget_exhausted = False
    overflow = False
    while True:
        pid = int(np.argmin(nt))
        if nt[pid] == _INF:
            if remaining > 0:
                overflow = True
            break
        if use_deaths and ops[pid] + 1 >= deaths[pid]:
            nt[pid] = _INF
            halt_pid[nhalt] = pid
            nhalt += 1
            remaining -= 1
            if remaining == 0:
                break
            continue
        ops[pid] += 1
        s = step[pid]
        r = rounds[pid]
        done = False
        advance = False
        if s == 0:
            v0[pid] = a[0, r]
            step[pid] = 1
        elif s == 1:
            v1 = a[1, r]
            w0 = v0[pid]
            if w0 == 1 and v1 == 0:
                if pref[pid] != 0:
                    preference_changes += 1
                    pref[pid] = 0
            elif v1 == 1 and w0 == 0:
                if pref[pid] != 1:
                    preference_changes += 1
                    pref[pid] = 1
            p = pref[pid]
            own_set = (w0 if p == 0 else v1) == 1
            rival_set = (v1 if p == 0 else w0) == 1
            skip_final[pid] = 1 if rival_set else 0
            if own_set and rival_set:
                advance = True
            elif own_set:
                step[pid] = 3
            else:
                step[pid] = 2
        elif s == 2:
            a[pref[pid], r] = 1
            if skip_final[pid] == 1:
                advance = True
            else:
                step[pid] = 3
        else:
            if a[1 - pref[pid], r - 1] == 0:
                done = True
                nt[pid] = _INF
                remaining -= 1
                dec_pid[ndec] = pid
                dec_val[ndec] = pref[pid]
                dec_rnd[ndec] = r
                dec_ops[ndec] = ops[pid]
                ndec += 1
                if stop_first or remaining == 0:
                    break
            else:
                advance = True
        if advance:
            if use_cap and r >= cap:
                done = True
                nt[pid] = _INF
                remaining -= 1
                if remaining == 0:
                    break
            else:
                skip_final[pid] = 0
                rounds[pid] = r + 1
                step[pid] = 0
        if use_budget:
            executed += 1
            if executed >= budget:
                budget_exhausted = remaining > 0
                break
        if not done:
            o = ops[pid]
            if o < k:
                nt[pid] = times[pid, o]
            else:
                nt[pid] = _INF
                if not final:
                    overflow = True
                    break
    total_ops = 0
    max_round = np.int64(0)
    for i in range(n):
        total_ops += ops[i]
        if rounds[i] > max_round:
            max_round = rounds[i]
    return (overflow, ndec, nhalt, total_ops, max_round,
            preference_changes, budget_exhausted)


def replay_chunk_numba(times: np.ndarray, inputs, variant: str = "lean",
                       death_ops: Optional[np.ndarray] = None,
                       tie_flips: Optional[np.ndarray] = None,
                       stop_after_first_decision: bool = True,
                       horizon_is_final: bool = False,
                       trials_major: bool = False,
                       round_cap: Optional[int] = None,
                       max_total_ops: Optional[int] = None):
    """Replay a validated chunk trial by trial on the JIT lane.

    Argument contract and result layout match
    :func:`repro.sim.kernel.replay_chunk` exactly (which is the only
    caller and performs all validation); the output is bitwise identical
    to the numpy lockstep, including the bookkeeping split on overflow
    trials (record-based columns reflect pre-overflow progress, the
    finish-based ``total_ops``/``max_round``/``preference_changes`` stay
    zero — the caller's scalar fallback overwrites both kinds).
    """
    from repro.sim.kernel import KernelResult  # late: kernel imports us

    cfg = FAST_VARIANTS[variant]
    if trials_major:
        trials, k, n = times.shape
    else:
        n, trials, k = times.shape
    inputs_arr = np.asarray(inputs, np.int64)
    use_deaths = death_ops is not None
    deaths_dummy = np.zeros(1, np.int64)
    use_flips = cfg.random_tie and tie_flips is not None
    flips_dummy = np.zeros((1, 1), np.int8)
    nflips = tie_flips.shape[2] if use_flips else 1
    use_cap = round_cap is not None
    use_budget = max_total_ops is not None

    overflow = np.zeros(trials, bool)
    total_ops = np.zeros(trials, np.int64)
    max_round = np.zeros(trials, np.int64)
    prefchg = np.zeros(trials, np.int64)
    n_decided = np.zeros(trials, np.int64)
    n_distinct = np.zeros(trials, np.int64)
    n_halted = np.zeros(trials, np.int64)
    first_round = np.full(trials, np.nan)
    first_ops = np.full(trials, np.nan)
    last_round = np.full(trials, np.nan)
    decided_value = np.full(trials, np.nan)
    budget_exhausted = np.zeros(trials, bool)
    decisions: List[tuple] = [()] * trials
    halted: List[tuple] = [()] * trials

    dec_pid = np.empty(n, np.int64)
    dec_val = np.empty(n, np.int64)
    dec_rnd = np.empty(n, np.int64)
    dec_ops = np.empty(n, np.int64)
    halt_pid = np.empty(n, np.int64)

    for t in range(trials):
        if trials_major:
            tr = np.ascontiguousarray(times[t].T)
        else:
            tr = np.ascontiguousarray(times[:, t, :])
        deaths = (np.ascontiguousarray(death_ops[:, t])
                  if use_deaths else deaths_dummy)
        if cfg.optimized:
            (ov, ndec, nhalt, total, maxr, chg, budget_x) = \
                _trial_optimized(
                    tr, inputs_arr, deaths, use_deaths,
                    stop_after_first_decision, horizon_is_final,
                    round_cap if use_cap else 0, use_cap,
                    max_total_ops if use_budget else 0, use_budget,
                    dec_pid, dec_val, dec_rnd, dec_ops, halt_pid)
        else:
            flips = (np.ascontiguousarray(tie_flips[:, t, :])
                     if use_flips else flips_dummy)
            (ov, ndec, nhalt, total, maxr, chg, budget_x) = \
                _trial_lean(
                    tr, inputs_arr, deaths, use_deaths, flips, nflips,
                    use_flips, cfg.lag, stop_after_first_decision,
                    horizon_is_final,
                    round_cap if use_cap else 0, use_cap,
                    max_total_ops if use_budget else 0, use_budget,
                    dec_pid, dec_val, dec_rnd, dec_ops, halt_pid)
        if ndec:
            decisions[t] = tuple(
                (int(dec_pid[j]), int(dec_val[j]), int(dec_rnd[j]),
                 int(dec_ops[j])) for j in range(ndec))
            n_decided[t] = ndec
            first_round[t] = dec_rnd[0]
            first_ops[t] = dec_ops[0]
            last_round[t] = dec_rnd[ndec - 1]
            seen0 = False
            seen1 = False
            for j in range(ndec):
                if dec_val[j] == 0:
                    seen0 = True
                else:
                    seen1 = True
            n_distinct[t] = int(seen0) + int(seen1)
            if seen0 != seen1:
                decided_value[t] = 0.0 if seen0 else 1.0
        if nhalt:
            halted[t] = tuple(int(halt_pid[j]) for j in range(nhalt))
            n_halted[t] = nhalt
        if ov:
            # Overflow: no finish-based outcome (the caller's scalar
            # fallback rewrites this row), record-based columns above
            # keep the pre-overflow progress, as in the numpy lockstep.
            overflow[t] = True
            continue
        total_ops[t] = total
        max_round[t] = maxr
        prefchg[t] = chg
        budget_exhausted[t] = bool(budget_x)
    return KernelResult(
        overflow=overflow, total_ops=total_ops, max_round=max_round,
        preference_changes=prefchg, n_decided=n_decided,
        n_distinct=n_distinct, n_halted=n_halted, first_round=first_round,
        first_ops=first_ops, last_round=last_round,
        decided_value=decided_value, budget_exhausted=budget_exhausted,
        decisions=decisions, halted=halted)
