"""Benchmark trajectory: engine-throughput workloads, table, and ledger.

The repository tracks fast-path performance across PRs in a repo-root
``BENCH_results.json`` ledger: one appended entry per benchmark run
(labelled, typically per PR), each recording frame-path vs. lockstep-
kernel trials/sec on two canonical workloads:

* **figure1-shaped** — the left edge of the paper's Figure-1 grid
  (exponential(1) interarrivals, dithered equal starts, half-and-half
  inputs, stop at the first decision) at the paper's per-point trial
  count;
* **scaling-shaped** — one mid-scale n of the scaling sweep, same
  protocol and stopping rule, inside the kernel's auto range;
* **scaling-wide** — the n=1024 point (PR 7), exercising the kernel's
  tournament min and packed pid plane at the paper's O(n log n) scale;
* **figure1-distributions** — the *other* Figure-1 noise distributions
  (geometric, two-point, truncated normal) at n=1024 (PR 8), pinning
  the new inverse-CDF lanes' kernel eligibility and throughput.

``python -m repro bench`` runs the suite, prints the table, and records
a ledger entry; ``benchmarks/test_bench_kernel.py`` drives the same
functions under pytest (with the wall-clock-gated speedup assertion) so
CI and the CLI measure identical workloads.  Identity between the two
engines is asserted unconditionally in both.

Ledger hygiene: entries whose label starts with ``bench-`` (the CI
jobs' run-local labels) are *rolling* — one entry per label, overwritten
in place on every run — while any other label (PR entries, manual runs)
appends, so the committed trajectory stays one entry per milestone
instead of accreting a copy per CI run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

#: The repo-root ledger (the CLI resolves it relative to this package's
#: checkout so it works from any working directory).
LEDGER_NAME = "BENCH_results.json"


def default_ledger_path() -> str:
    """``<repo-root>/BENCH_results.json`` for an in-tree checkout."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.normpath(os.path.join(here, "..", "..", LEDGER_NAME))


def _timed(fn, reps: int = 3):
    """Best-of-``reps`` wall clock, GC parked (the standard timeit
    discipline — a collection pause inside one run would otherwise put
    noise straight into the speedup ratio).  Three reps, not two: the
    shared-runner boxes show multi-x hypervisor-neighbor spikes, and the
    asserted figure1-shaped gate has run with < 10% margin."""
    import gc

    result, best = None, float("inf")
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
    finally:
        if enabled:
            gc.enable()
    return result, best


def _engine_pair(n: int, trials: int, seed: int,
                 noise: Optional[dict] = None,
                 backend: str = "numpy") -> Dict[str, object]:
    """Frame path vs. kernel path on one Figure-1-style cell.

    ``noise`` is an optional ``{"name": ..., **params}`` override of the
    default exponential(1) interarrivals; ``backend`` is the kernel's
    array backend (the frame reference always runs the scalar numpy
    path, so the identity column doubles as a backend-equivalence
    check).  Pinning ``engine="kernel"`` + an unavailable backend
    raises rather than degrading — a benchmark that silently re-times
    numpy under another label would poison the ledger.
    """
    from repro.api import BatchRunner, NoiseSpec, NoisyModelSpec, TrialSpec

    noise = dict(noise) if noise else {"name": "exponential", "mean": 1.0}
    runner = BatchRunner()
    fast = TrialSpec(n=n, model=NoisyModelSpec(
        noise=NoiseSpec.of(noise.pop("name"), **noise)),
        engine="fast", stop_after_first_decision=True)
    kernel = fast.replace(engine="kernel", backend=backend)
    # Warm both paths (imports, allocator, numpy dispatch).
    runner.run_frame(fast, min(200, trials), seed=1)
    runner.run_frame(kernel, min(200, trials), seed=1)
    frame, frame_s = _timed(lambda: runner.run_frame(fast, trials,
                                                     seed=seed))
    kern, kernel_s = _timed(lambda: runner.run_frame(kernel, trials,
                                                     seed=seed))
    identical = all(
        frame.column(c).tolist() == kern.column(c).tolist()
        for c in ("total_ops", "first_decision_round",
                  "first_decision_ops", "max_round", "preference_changes",
                  "decisions", "halted"))
    return {"n": n, "trials": trials, "frame_seconds": frame_s,
            "kernel_seconds": kernel_s, "identical": identical}


def figure1_shaped(trials: int = 10_000, ns=(1, 10),
                   seed: int = 2000,
                   backend: str = "numpy") -> Dict[str, object]:
    """The figure1-shaped engine comparison (frame vs. kernel)."""
    cells = [_engine_pair(n, trials, seed, backend=backend) for n in ns]
    frame_s = sum(c["frame_seconds"] for c in cells)
    kernel_s = sum(c["kernel_seconds"] for c in cells)
    total = trials * len(ns)
    return {
        "workload": ("figure1-shaped: exponential(1), dithered starts, "
                     "stop at first decision"),
        "ns": list(ns), "trials_per_point": trials,
        "frame_seconds": round(frame_s, 3),
        "kernel_seconds": round(kernel_s, 3),
        "frame_trials_per_sec": round(total / max(frame_s, 1e-9), 1),
        "kernel_trials_per_sec": round(total / max(kernel_s, 1e-9), 1),
        "kernel_speedup": round(frame_s / max(kernel_s, 1e-9), 2),
        "identical": all(c["identical"] for c in cells),
        "backend": backend,
    }


def scaling_shaped(trials: int = 4_000, n: int = 64,
                   seed: int = 2000,
                   backend: str = "numpy") -> Dict[str, object]:
    """The scaling-shaped engine comparison (one mid-scale n)."""
    cell = _engine_pair(n, trials, seed, backend=backend)
    frame_s, kernel_s = cell["frame_seconds"], cell["kernel_seconds"]
    return {
        "workload": ("scaling-shaped: exponential(1), dithered starts, "
                     "stop at first decision, mid-scale n"),
        "n": n, "trials": trials,
        "frame_seconds": round(frame_s, 3),
        "kernel_seconds": round(kernel_s, 3),
        "frame_trials_per_sec": round(trials / max(frame_s, 1e-9), 1),
        "kernel_trials_per_sec": round(trials / max(kernel_s, 1e-9), 1),
        "kernel_speedup": round(frame_s / max(kernel_s, 1e-9), 2),
        "identical": cell["identical"],
        "backend": backend,
    }


def scaling_wide(trials: int = 1_000, n: int = 1024,
                 seed: int = 2000,
                 backend: str = "numpy") -> Dict[str, object]:
    """The wide-n scaling comparison (PR 7's tournament-min kernel).

    One n=1024 cell — the scale the paper's O(n log n) total-work claim
    targets — pitting the per-trial scalar frame path against the
    lockstep kernel with the segmented min and packed pid plane engaged.
    """
    cell = _engine_pair(n, trials, seed, backend=backend)
    frame_s, kernel_s = cell["frame_seconds"], cell["kernel_seconds"]
    return {
        "workload": ("scaling-wide: exponential(1), dithered starts, "
                     "stop at first decision, n=1024"),
        "n": n, "trials": trials,
        "frame_seconds": round(frame_s, 3),
        "kernel_seconds": round(kernel_s, 3),
        "frame_trials_per_sec": round(trials / max(frame_s, 1e-9), 1),
        "kernel_trials_per_sec": round(trials / max(kernel_s, 1e-9), 1),
        "kernel_speedup": round(frame_s / max(kernel_s, 1e-9), 2),
        "identical": cell["identical"],
        "backend": backend,
    }


#: The non-exponential Figure-1 noise distributions (PR 8 lanes).
_F1_DISTRIBUTIONS = (
    {"name": "geometric", "p": 0.5},
    {"name": "two-point", "a": 0.5, "b": 2.0, "p": 0.5},
    {"name": "truncated-normal", "mu": 1.0, "sigma": 0.2,
     "low": 0.0, "high": 2.0},
)


def figure1_distributions(trials: int = 400, n: int = 1024,
                          seed: int = 2000,
                          backend: str = "numpy") -> Dict[str, object]:
    """The new inverse-lane distributions at the wide-n kernel scale.

    One n=1024 cell per non-exponential Figure-1 distribution
    (geometric, two-point, truncated normal), each asserting the kernel
    and frame paths bit-identical — the PR-8 lanes' standing regression
    guard at exactly the shape their auto-promotion covers.
    """
    cells = [_engine_pair(n, trials, seed, noise=dist, backend=backend)
             for dist in _F1_DISTRIBUTIONS]
    frame_s = sum(c["frame_seconds"] for c in cells)
    kernel_s = sum(c["kernel_seconds"] for c in cells)
    total = trials * len(cells)
    return {
        "workload": ("figure1-distributions: geometric(0.5), "
                     "two-point(0.5,2), normal(1,0.04) on [0,2], "
                     f"dithered starts, stop at first decision, n={n}"),
        "n": n, "trials": total, "trials_per_point": trials,
        "distributions": [d["name"] for d in _F1_DISTRIBUTIONS],
        "frame_seconds": round(frame_s, 3),
        "kernel_seconds": round(kernel_s, 3),
        "frame_trials_per_sec": round(total / max(frame_s, 1e-9), 1),
        "kernel_trials_per_sec": round(total / max(kernel_s, 1e-9), 1),
        "kernel_speedup": round(frame_s / max(kernel_s, 1e-9), 2),
        "identical": all(c["identical"] for c in cells),
        "backend": backend,
    }


def serve_throughput(trials: int = 2_000, ns=(1, 10),
                     seed: int = 2000) -> Dict[str, object]:
    """The job lane vs. direct ``run_sweep`` on one figure1-shaped sweep.

    Three numbers: the in-process sweep, the same sweep as a cold
    :class:`~repro.serve.SweepJob` (chunked, content-addressed, state
    persisted per chunk), and the rerun against the now-populated store
    (every chunk adopted, nothing computed).  Identity between the job
    frames and the sweep frames is asserted unconditionally.
    """
    import shutil
    import tempfile

    from repro.api import (NoiseSpec, NoisyModelSpec, SweepAxis, SweepSpec,
                           TrialSpec, run_sweep)
    from repro.serve import JobRunner, ResultStore, SweepJob

    def make_sweep(k: int) -> SweepSpec:
        return SweepSpec(
            base=TrialSpec(n=1, model=NoisyModelSpec(
                noise=NoiseSpec.of("exponential", mean=1.0)),
                engine="fast", stop_after_first_decision=True),
            axes=(SweepAxis("n", tuple(ns)),),
            trials=k)

    sweep = make_sweep(trials)
    # Warm the sweep/job machinery (imports, engine resolution).
    run_sweep(make_sweep(min(200, trials)), seed=1)
    ref, direct_s = _timed(lambda: run_sweep(sweep, seed=seed))

    tmp = tempfile.mkdtemp(prefix="repro-bench-serve-")
    try:
        job = SweepJob.from_sweep(sweep, seed=seed)
        # Cold: best-of-2, each against a fresh store (a populated store
        # would turn rep 2 into the adopted path).
        result, cold_s = None, float("inf")
        for rep in range(2):
            store = ResultStore(os.path.join(tmp, f"cold{rep}"))
            start = time.perf_counter()
            result = JobRunner(store, workers=1).run(job)
            cold_s = min(cold_s, time.perf_counter() - start)
        # Adopted: rerun against the last populated store.
        _, warm_s = _timed(lambda: JobRunner(store, workers=1).run(job))
        identical = all(frame == ref.frames[cell.index]
                        for cell, frame in result)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    total = trials * len(ns)
    return {
        "workload": ("serve-throughput: figure1-shaped sweep through the "
                     "job lane (chunked + content-addressed store) vs. "
                     "direct run_sweep"),
        "ns": list(ns), "trials_per_point": trials,
        "chunks": len(job.chunks()),
        "direct_seconds": round(direct_s, 3),
        "job_seconds": round(cold_s, 3),
        "adopted_seconds": round(warm_s, 3),
        "direct_trials_per_sec": round(total / max(direct_s, 1e-9), 1),
        "job_trials_per_sec": round(total / max(cold_s, 1e-9), 1),
        "adopted_trials_per_sec": round(total / max(warm_s, 1e-9), 1),
        "job_overhead": round(cold_s / max(direct_s, 1e-9), 2),
        "identical": identical,
    }


def load_ledger(path: str) -> Dict[str, List[dict]]:
    """The ledger at ``path``, or a fresh empty one.

    Missing, empty, and torn/corrupt files all load as an empty ledger
    (with a stderr warning for the corrupt case) instead of raising:
    the ledger is advisory trajectory data, and a truncated file left
    by a killed run must not be able to wedge every later benchmark.
    The corrupt file is left in place — :func:`append_entry` writes
    through a rename, so recording over it never tears it further.
    """
    if os.path.exists(path):
        try:
            with open(path) as fh:
                text = fh.read()
            if not text.strip():
                return {"entries": []}
            data = json.loads(text)
        except (OSError, ValueError) as exc:
            print(f"warning: ignoring unreadable benchmark ledger "
                  f"{path}: {exc}", file=sys.stderr)
            return {"entries": []}
        if isinstance(data, dict) and isinstance(data.get("entries"), list):
            return data
        # Pre-ledger format (a single PR-3 benchmark payload): keep it
        # as the trajectory's first entry.
        return {"entries": [{"label": "imported", "results": data}]}
    return {"entries": []}


#: Labels with this prefix are CI-run entries: rolling, one per label.
ROLLING_LABEL_PREFIX = "bench-"


def append_entry(path: str, label: str, results: Dict[str, dict]) -> dict:
    """Record one labelled benchmark entry in the ledger (atomically).

    ``bench-*`` labels (the CI jobs') overwrite their previous entry in
    place — one rolling entry per label — so repeated CI runs can't
    accrete duplicates; every other label appends (the committed PR
    trajectory stays append-only).  The write goes through
    :func:`repro._atomicio.atomic_write_bytes` (temp file + fsync +
    rename), so a crash mid-record can never leave a truncated ledger.
    """
    ledger = load_ledger(path)
    entry = {"label": label,
             "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
             "results": results}
    entries = ledger["entries"]
    if label.startswith(ROLLING_LABEL_PREFIX):
        kept, replaced = [], False
        for existing in entries:
            if existing.get("label") == label:
                if not replaced:  # refresh in place, at the first slot
                    kept.append(entry)
                    replaced = True
                # accumulated older duplicates under this label drop out
            else:
                kept.append(existing)
        if not replaced:
            kept.append(entry)
        ledger["entries"] = kept
    else:
        entries.append(entry)
    from repro._atomicio import atomic_write_bytes

    # Same on-disk format as the historical plain write (indent=2,
    # insertion order, trailing newline) — the committed ledger must not
    # reflow — but staged through fsync + rename.
    atomic_write_bytes(path,
                       (json.dumps(ledger, indent=2) + "\n").encode())
    return entry


def latest_result(path: str, workload: str) -> Optional[dict]:
    """The most recent ledger entry carrying ``workload``, or ``None``."""
    for entry in reversed(load_ledger(path)["entries"]):
        result = entry.get("results", {}).get(workload)
        if result is not None:
            return result
    return None


def format_table(results: Dict[str, dict]) -> str:
    """The ledger results as fixed-width tables."""
    from repro.experiments._common import format_table as table

    rows = []
    for name, r in results.items():
        if "kernel_trials_per_sec" not in r:
            continue
        rows.append([
            name,
            r.get("backend", "numpy"),
            r.get("n", ",".join(str(v) for v in r.get("ns", []))),
            r.get("trials", r.get("trials_per_point")),
            f"{r['frame_trials_per_sec']:,.0f}",
            f"{r['kernel_trials_per_sec']:,.0f}",
            f"{r['kernel_speedup']:.2f}x",
            "yes" if r["identical"] else "NO",
        ])
    out = [table(
        ["workload", "backend", "n", "trials/pt", "frame/s", "kernel/s",
         "speedup", "bit-identical"],
        rows, title="Engine benchmark: frame path vs. lockstep kernel")]
    serve_rows = []
    for name, r in results.items():
        if "job_trials_per_sec" not in r:
            continue
        serve_rows.append([
            name,
            ",".join(str(v) for v in r.get("ns", [])),
            r.get("trials_per_point"),
            r.get("chunks"),
            f"{r['direct_trials_per_sec']:,.0f}",
            f"{r['job_trials_per_sec']:,.0f}",
            f"{r['adopted_trials_per_sec']:,.0f}",
            f"{r['job_overhead']:.2f}x",
            "yes" if r["identical"] else "NO",
        ])
    if serve_rows:
        out.append(table(
            ["workload", "n", "trials/pt", "chunks", "direct/s", "job/s",
             "adopted/s", "overhead", "bit-identical"],
            serve_rows,
            title="Sweep service: job lane vs. direct run_sweep"))
    return "\n\n".join(out)


def run_suite(trials: int = 10_000,
              scaling_trials: int = 4_000,
              wide_trials: int = 1_000,
              distribution_trials: int = 400,
              serve_trials: int = 2_000,
              backend: str = "numpy") -> Dict[str, dict]:
    """The full suite on one kernel backend.

    Non-numpy backends record under suffixed workload keys
    (``figure1_shaped[numba]``), so every backend's trials/s trajectory
    lives side by side in one ledger and the numpy keys stay exactly
    what the committed history and CI regression check expect.  The
    serve workload only runs on numpy — the job lane's overhead is
    backend-independent.
    """
    suffix = "" if backend == "numpy" else f"[{backend}]"
    results = {
        "figure1_shaped" + suffix: figure1_shaped(
            trials=trials, backend=backend),
        "scaling_shaped" + suffix: scaling_shaped(
            trials=scaling_trials, backend=backend),
        "scaling_wide" + suffix: scaling_wide(
            trials=wide_trials, backend=backend),
        "figure1_distributions" + suffix: figure1_distributions(
            trials=distribution_trials, backend=backend),
    }
    if backend == "numpy":
        results["serve_throughput"] = serve_throughput(trials=serve_trials)
    return results


#: Default output path of ``python -m repro bench --profile``.
PROFILE_NAME = "BENCH_profile.txt"


def profile_kernel(wide_trials: int = 500, distribution_trials: int = 200,
                   top: int = 20) -> str:
    """cProfile the kernel workloads; return the top-``top`` report.

    Profiles exactly the suite's kernel-heavy cells (the wide-n
    scaling point plus the Figure-1-distribution lanes) and formats the
    cumulative-time top of the profile — the dataset the next
    dispatch-overhead hunt should start from.  Wall-clock numbers taken
    *under* the profiler are not comparable to the ledger's (tracing
    inflates dispatch-heavy loops); only the relative shape is.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    scaling_wide(trials=wide_trials)
    figure1_distributions(trials=distribution_trials)
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    header = (f"cProfile of the kernel workloads: scaling_wide"
              f"(trials={wide_trials}) + figure1_distributions"
              f"(trials={distribution_trials}), top {top} by cumulative "
              f"time.\nProfiled wall clock is NOT comparable to the "
              f"ledger (tracing overhead); use the shape, not the "
              f"seconds.\n\n")
    return header + buf.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the engine benchmark suite and record the "
                    "trajectory ledger.")
    parser.add_argument("--trials", type=int, default=10_000,
                        help="trials per figure1-shaped point "
                             "(default: the paper's 10,000)")
    parser.add_argument("--scaling-trials", type=int, default=4_000,
                        help="trials for the scaling-shaped point")
    parser.add_argument("--wide-trials", type=int, default=1_000,
                        help="trials for the scaling-wide n=1024 point")
    parser.add_argument("--distribution-trials", type=int, default=400,
                        help="trials per distribution for the "
                             "figure1-distributions n=1024 workload")
    parser.add_argument("--serve-trials", type=int, default=2_000,
                        help="trials per point for the serve-throughput "
                             "(job lane vs. direct run_sweep) workload")
    parser.add_argument("--backend", default="numpy",
                        choices=("numpy", "numba", "cupy"),
                        help="kernel array backend to benchmark; "
                             "non-numpy runs record under suffixed "
                             "workload keys (e.g. figure1_shaped[numba])")
    parser.add_argument("--label", default="manual",
                        help="ledger entry label (e.g. 'PR 4'); "
                             f"'{ROLLING_LABEL_PREFIX}*' labels keep one "
                             "rolling ledger entry per label")
    parser.add_argument("--out", default=None,
                        help=f"ledger path (default: repo-root "
                             f"{LEDGER_NAME})")
    parser.add_argument("--no-append", action="store_true",
                        help="print the table without touching the ledger")
    parser.add_argument("--profile", nargs="?", const=PROFILE_NAME,
                        default=None, metavar="PATH",
                        help="skip the suite; cProfile the kernel "
                             "workloads and write the top-20 cumulative "
                             f"report (default path: {PROFILE_NAME})")
    args = parser.parse_args(argv)
    if args.backend != "numpy":
        from repro.sim.backend import backend_unavailability

        blocker = backend_unavailability(args.backend)
        if blocker is not None:
            # A benchmark must never silently degrade: timing numpy
            # under another backend's label would poison the ledger.
            print(f"ERROR: cannot benchmark backend "
                  f"{args.backend!r}: {blocker}", file=sys.stderr)
            return 2
    if args.profile is not None:
        report = profile_kernel()
        with open(args.profile, "w") as fh:
            fh.write(report)
        print(report)
        print(f"profile written to {args.profile}")
        return 0
    results = run_suite(trials=args.trials,
                        scaling_trials=args.scaling_trials,
                        wide_trials=args.wide_trials,
                        distribution_trials=args.distribution_trials,
                        serve_trials=args.serve_trials,
                        backend=args.backend)
    print(format_table(results))
    if not args.no_append:
        path = args.out or default_ledger_path()
        append_entry(path, args.label, results)
        print(f"\nrecorded entry {args.label!r} in {path}")
    if not all(r["identical"] for r in results.values()):
        print("ERROR: kernel results diverged from the frame path")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
