"""Atomic registers and unbounded bit arrays.

Atomicity here is trivial by construction: the simulation engines execute
exactly one operation per step, so each read returns the value of the last
preceding write (interleaving semantics, Section 3 of the paper).  The value
of this module is in the *bookkeeping*: read-only prefixes, default values
for untouched locations of the conceptually infinite arrays, per-location
statistics, and cheap snapshot/restore for the model checker.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.errors import MemoryError_
from repro.types import OpKind, Operation, OpResult


class AtomicRegister:
    """A single multi-writer multi-reader atomic register."""

    __slots__ = ("value", "writes", "reads")

    def __init__(self, initial: int = 0) -> None:
        self.value = initial
        #: Number of writes applied to this register.
        self.writes = 0
        #: Number of reads served by this register.
        self.reads = 0

    def read(self) -> int:
        self.reads += 1
        return self.value

    def write(self, value: int) -> None:
        self.value = value
        self.writes += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AtomicRegister({self.value})"


class UnboundedBitArray:
    """A conceptually infinite array of atomic bits, materialized lazily.

    Untouched locations read as ``default`` (0 for the paper's arrays).
    Index 0 can be declared a read-only prefix with a fixed value, realizing
    the paper's convention that ``a0[0]`` and ``a1[0]`` are "effectively
    read-only locations ... set to 1".

    An optional ``capacity`` turns the array into the bounded array of the
    Section 8 construction: accesses beyond ``capacity`` raise
    :class:`~repro.errors.MemoryError_`, so tests can prove the combined
    protocol never touches more than r_max locations.
    """

    __slots__ = ("name", "default", "prefix_value", "capacity", "_cells")

    def __init__(self, name: str, default: int = 0,
                 prefix_value: Optional[int] = None,
                 capacity: Optional[int] = None) -> None:
        self.name = name
        self.default = default
        self.prefix_value = prefix_value
        self.capacity = capacity
        self._cells: Dict[int, AtomicRegister] = {}

    def _check_index(self, index: int) -> None:
        if index < 0:
            raise MemoryError_(f"{self.name}[{index}]: negative index")
        if self.capacity is not None and index > self.capacity:
            raise MemoryError_(
                f"{self.name}[{index}]: beyond bounded capacity {self.capacity}"
            )

    def read(self, index: int) -> int:
        self._check_index(index)
        if index == 0 and self.prefix_value is not None:
            return self.prefix_value
        cell = self._cells.get(index)
        if cell is None:
            return self.default
        return cell.read()

    def write(self, index: int, value: int) -> None:
        self._check_index(index)
        if index == 0 and self.prefix_value is not None:
            raise MemoryError_(f"{self.name}[0] is a read-only prefix")
        cell = self._cells.get(index)
        if cell is None:
            cell = self._cells[index] = AtomicRegister(self.default)
        cell.write(value)

    def max_touched_index(self) -> int:
        """The largest index ever written (0 if none)."""
        return max(self._cells, default=0)

    def touched_count(self) -> int:
        """Number of distinct locations materialized by writes."""
        return len(self._cells)

    def items(self) -> Iterable[Tuple[int, int]]:
        """Yield ``(index, value)`` for every materialized location."""
        for idx in sorted(self._cells):
            yield idx, self._cells[idx].value

    def snapshot(self) -> Tuple[Tuple[int, int], ...]:
        """An immutable, hashable image of the array contents."""
        return tuple((i, c.value) for i, c in sorted(self._cells.items()))

    def restore(self, snap: Tuple[Tuple[int, int], ...]) -> None:
        """Restore contents from a :meth:`snapshot` image (counters reset)."""
        self._cells = {i: AtomicRegister(v) for i, v in snap}
        # Restored registers report the restored value but fresh counters;
        # snapshots are a model-checking device, not a statistics device.
        for i, v in snap:
            self._cells[i].value = v

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{i}:{v}" for i, v in self.items())
        return f"UnboundedBitArray({self.name}; {body})"


class SharedMemory:
    """A named collection of unbounded arrays plus an execution entry point.

    All protocol interaction with memory goes through :meth:`execute`, which
    performs exactly one atomic operation and returns its result.  An
    optional recorder (see :mod:`repro.memory.history`) observes every
    operation for invariant checking and debugging.
    """

    def __init__(self, arrays: Optional[Iterable[UnboundedBitArray]] = None,
                 recorder: Optional["HistoryRecorderLike"] = None) -> None:
        self.arrays: Dict[str, UnboundedBitArray] = {}
        for arr in arrays or ():
            self.add_array(arr)
        self.recorder = recorder
        #: Total operations executed through this memory.
        self.total_ops = 0

    def add_array(self, array: UnboundedBitArray) -> UnboundedBitArray:
        if array.name in self.arrays:
            raise MemoryError_(f"array {array.name!r} already exists")
        self.arrays[array.name] = array
        return array

    def array(self, name: str) -> UnboundedBitArray:
        try:
            return self.arrays[name]
        except KeyError:
            raise MemoryError_(f"unknown array {name!r}") from None

    def execute(self, op: Operation, pid: Optional[int] = None) -> OpResult:
        """Atomically execute one operation, returning its result."""
        arr = self.array(op.array)
        if op.kind is OpKind.READ:
            value = arr.read(op.index)
        else:
            arr.write(op.index, op.value)  # type: ignore[arg-type]
            value = op.value  # type: ignore[assignment]
        self.total_ops += 1
        result = OpResult(op, value)  # type: ignore[arg-type]
        if self.recorder is not None:
            self.recorder.record(self.total_ops, pid, op, value)  # type: ignore[arg-type]
        return result

    def snapshot(self) -> Tuple[Tuple[str, Tuple[Tuple[int, int], ...]], ...]:
        """Immutable, hashable image of all array contents."""
        return tuple((name, arr.snapshot())
                     for name, arr in sorted(self.arrays.items()))

    def restore(self, snap) -> None:
        """Restore all arrays from a :meth:`snapshot` image."""
        for name, arr_snap in snap:
            self.array(name).restore(arr_snap)


class HistoryRecorderLike:
    """Protocol for operation observers (see :mod:`repro.memory.history`)."""

    def record(self, seq: int, pid: Optional[int], op: Operation,
               value: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError


def make_racing_arrays(recorder: Optional[HistoryRecorderLike] = None,
                       capacity: Optional[int] = None) -> SharedMemory:
    """Build the lean-consensus memory: arrays ``a0``/``a1`` with the 1-prefix.

    Args:
        recorder: optional operation observer.
        capacity: optional bound on indices, for the Section 8 construction.
    """
    return SharedMemory(
        arrays=[
            UnboundedBitArray("a0", default=0, prefix_value=1, capacity=capacity),
            UnboundedBitArray("a1", default=0, prefix_value=1, capacity=capacity),
        ],
        recorder=recorder,
    )
