"""Memory-contention model (Section 10, "Synchronization and contention").

The paper notes it has not analyzed memory contention, and conjectures
that, to the extent contention slows laggards fighting over congested
early-round registers while the speedy sail through clear late-round
registers, it *helps* the algorithm disperse.  This module provides the
substrate to test that conjecture (experiment EXP-CONT).

The model: each operation on location L pays a contention penalty
proportional to how many *other* processes touched L within the last
``window`` time units — a standard interference approximation that keeps
the simulation a discrete-event system (no bus model needed).  The penalty
delays the process's *next* operation, mirroring stall-on-retry hardware.

This deliberately breaks the independence assumption of the noisy model
(the paper's point); the termination measurements are therefore empirical
only.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

from repro.errors import ConfigurationError
from repro.types import Operation


class ContentionMeter:
    """Tracks recent accesses per location and prices the interference.

    Args:
        penalty: extra delay per recent *other*-process access to the same
            location.
        window: how far back (in simulation time) accesses interfere.
    """

    def __init__(self, penalty: float = 0.1, window: float = 2.0) -> None:
        if penalty < 0:
            raise ConfigurationError(f"penalty must be >= 0, got {penalty}")
        if window <= 0:
            raise ConfigurationError(f"window must be > 0, got {window}")
        self.penalty = penalty
        self.window = window
        self._recent: Dict[Tuple[str, int], Deque[Tuple[float, int]]] = {}
        #: Total penalty charged, for reporting.
        self.total_penalty = 0.0
        #: Total accesses observed.
        self.accesses = 0

    def charge(self, op: Operation, pid: int, now: float) -> float:
        """Record an access and return the contention delay it incurs."""
        key = (op.array, op.index)
        queue = self._recent.setdefault(key, deque())
        while queue and queue[0][0] < now - self.window:
            queue.popleft()
        others = sum(1 for _, other in queue if other != pid)
        queue.append((now, pid))
        self.accesses += 1
        cost = self.penalty * others
        self.total_penalty += cost
        return cost

    def hot_locations(self, top: int = 5) -> list:
        """The ``top`` locations with the most queued recent accesses."""
        ranked = sorted(self._recent.items(),
                        key=lambda kv: len(kv[1]), reverse=True)
        return [(array, index, len(q)) for (array, index), q in ranked[:top]]


class ContentiousScheduler:
    """Wraps a noisy scheduler, adding contention stalls to next-op times.

    Satisfies the scheduler protocol of
    :class:`~repro.sim.engine.NoisyEngine`.  The stall charged for
    operation j is based on the location of operation j-1 (the operation
    just executed) — i.e., a congested access delays the process's *next*
    step, which is when real hardware surfaces the stall.

    Use :meth:`observe` from the engine loop (the runner wires this up) or
    simply rely on ``next_time``'s internal bookkeeping of the previous
    operation per process.
    """

    def __init__(self, base, meter: ContentionMeter) -> None:
        self.base = base
        self.meter = meter
        self._pending_stall: Dict[int, float] = {}

    def start_time(self, pid: int) -> float:
        return self.base.start_time(pid)

    def observe(self, op: Operation, pid: int, now: float) -> None:
        """Record an executed operation; its contention stalls the next op."""
        self._pending_stall[pid] = self.meter.charge(op, pid, now)

    def next_time(self, pid: int, op_index: int, kind, prev_time: float) -> float:
        stall = self._pending_stall.pop(pid, 0.0)
        return self.base.next_time(pid, op_index, kind, prev_time) + stall
