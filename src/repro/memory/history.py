"""Linearized operation histories and queries over them.

The engines execute operations one at a time, so the recorded history *is*
the linearization.  The recorder supports the queries the paper's proofs are
phrased in terms of — "the first process to set a_b[r]", "P's read of
a_{1-b}[r-1] occurs after Q's write of a_b[r]" — which the lemma-checking
tests use to validate executions against Lemmas 2 and 4 directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.types import OpKind, Operation


@dataclass(frozen=True)
class HistoryEvent:
    """One executed operation in the global linear order.

    Attributes:
        seq: 1-based position in the linearization.
        pid: the executing process id (``None`` when unattributed).
        op: the operation executed.
        value: value read, or value written.
    """

    seq: int
    pid: Optional[int]
    op: Operation
    value: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        who = f"p{self.pid}" if self.pid is not None else "?"
        return f"#{self.seq} {who}: {self.op} -> {self.value}"


class HistoryRecorder:
    """Records every operation executed through a :class:`SharedMemory`.

    Recording every operation costs memory proportional to the execution
    length; use it for tests, debugging, and invariant checks, not for the
    large-scale Figure-1 sweeps (the fast engine records nothing).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.events: List[HistoryEvent] = []
        #: Optional hard cap on recorded events (guards runaway tests).
        self.capacity = capacity

    def record(self, seq: int, pid: Optional[int], op: Operation,
               value: int) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            return
        self.events.append(HistoryEvent(seq, pid, op, value))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[HistoryEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    # Queries used by the lemma-validation tests.
    # ------------------------------------------------------------------

    def writes_to(self, array: str, index: int) -> List[HistoryEvent]:
        """All writes to ``array[index]``, in linearization order."""
        return [e for e in self.events
                if e.op.kind is OpKind.WRITE
                and e.op.array == array and e.op.index == index]

    def reads_of(self, array: str, index: int) -> List[HistoryEvent]:
        """All reads of ``array[index]``, in linearization order."""
        return [e for e in self.events
                if e.op.kind is OpKind.READ
                and e.op.array == array and e.op.index == index]

    def first_setter(self, array: str, index: int) -> Optional[HistoryEvent]:
        """The first write of a nonzero value to ``array[index]``, if any."""
        for e in self.events:
            if (e.op.kind is OpKind.WRITE and e.op.array == array
                    and e.op.index == index and e.value != 0):
                return e
        return None

    def ops_by(self, pid: int) -> List[HistoryEvent]:
        """All operations executed by process ``pid``."""
        return [e for e in self.events if e.pid == pid]

    def ops_between(self, pid: int, lo_seq: int, hi_seq: int) -> int:
        """Count operations by ``pid`` with ``lo_seq < seq < hi_seq``."""
        return sum(1 for e in self.events
                   if e.pid == pid and lo_seq < e.seq < hi_seq)

    def max_index_written(self, arrays: Iterable[str]) -> int:
        """Largest index written across the named arrays (0 if none)."""
        best = 0
        names = set(arrays)
        for e in self.events:
            if e.op.kind is OpKind.WRITE and e.op.array in names:
                best = max(best, e.op.index)
        return best

    def check_read_your_writes(self) -> bool:
        """Sanity check that reads return the last preceding write.

        Returns True when the history is consistent with interleaving
        semantics.  (It always is for histories produced by
        :class:`~repro.memory.registers.SharedMemory`; this method exists so
        property tests can assert the substrate really is linearizable.)
        """
        state: dict[tuple[str, int], int] = {}
        defaults = {"a0": 0, "a1": 0}
        for e in self.events:
            key = (e.op.array, e.op.index)
            if e.op.kind is OpKind.WRITE:
                state[key] = e.value
            else:
                if e.op.index == 0 and e.op.array in ("a0", "a1"):
                    expected = 1  # read-only prefix
                else:
                    expected = state.get(key, defaults.get(e.op.array, 0))
                if e.value != expected:
                    return False
        return True
