"""Shared-memory substrate: atomic registers, unbounded bit arrays, history.

The paper's model (Section 3) is a shared-memory system of atomic read/write
registers under interleaving semantics.  lean-consensus uses two unbounded
arrays ``a0`` and ``a1`` of multi-writer bits, zero-initialized, with an
effectively read-only ``1`` prefixed at index 0.
"""

from repro.memory.registers import (
    AtomicRegister,
    SharedMemory,
    UnboundedBitArray,
    make_racing_arrays,
)
from repro.memory.history import HistoryEvent, HistoryRecorder

__all__ = [
    "AtomicRegister",
    "HistoryEvent",
    "HistoryRecorder",
    "SharedMemory",
    "UnboundedBitArray",
    "make_racing_arrays",
]
