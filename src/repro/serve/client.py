"""A stdlib HTTP client for the sweep service.

:class:`ServeClient` wraps the job API with the same vocabulary as the
CLI (``submit`` / ``status`` / ``watch`` / ``result`` / ``cancel``),
using only ``urllib`` — no client-side dependencies.  ``result``
reassembles per-cell :class:`~repro.sim.frame.ResultFrame` objects by
fetching each chunk from the object endpoint and concatenating in grid
order, so the frames a remote client receives are byte-identical to
what :func:`~repro.api.sweep.run_sweep` computes in process.

Every call carries a connect/read deadline and a bounded
exponential-backoff retry schedule: a hung or briefly unreachable
server costs ``timeout * (retries + 1)`` plus backoff at most, then
surfaces as a typed :class:`~repro.errors.ServeTimeoutError` (timeouts)
or :class:`ServeError` (refusals) — never an indefinite block.
Retrying is safe across the whole API because the service is
idempotent by construction: submissions dedup on content id, cancels
of a terminal job no-op, and reads are reads.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError, ServeTimeoutError
from repro.sim.frame import ResultFrame


class ServeError(ReproError):
    """The service answered with an error (or could not be reached)."""


class ServeClient:
    """Talks to a ``python -m repro serve`` endpoint.

    ``timeout`` bounds each attempt's connect+read; ``retries`` extra
    attempts are made on timeouts and connection failures (never on an
    HTTP error response — the server answered), with exponential
    backoff ``backoff * 2**attempt`` between attempts.
    """

    def __init__(self, url: str, timeout: float = 30.0,
                 retries: int = 2, backoff: float = 0.25) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff

    # -- transport ---------------------------------------------------------

    def _request(self, path: str, body: Optional[Dict] = None) -> bytes:
        data = json.dumps(body).encode() if body is not None else None
        last: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff * (2.0 ** (attempt - 1)))
            request = urllib.request.Request(
                self.url + path, data=data,
                headers={"Content-Type": "application/json"}
                if body is not None else {})
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as response:
                    return response.read()
            except urllib.error.HTTPError as exc:
                # the server answered: a definitive outcome, no retry
                detail = exc.read().decode(errors="replace")
                try:
                    detail = json.loads(detail).get("error", detail)
                except ValueError:
                    pass
                raise ServeError(
                    f"{request.get_method()} {path} -> {exc.code}: {detail}"
                ) from exc
            except urllib.error.URLError as exc:
                last = exc
                if isinstance(exc.reason, (socket.timeout, TimeoutError,
                                           OSError)):
                    continue  # deadline/refused/reset: retry with backoff
                raise ServeError(
                    f"cannot reach sweep service at {self.url}: "
                    f"{exc.reason}") from exc
            except (socket.timeout, TimeoutError) as exc:
                last = exc  # a read() that timed out mid-body
                continue
        if isinstance(last, urllib.error.URLError) and not isinstance(
                getattr(last, "reason", None), (socket.timeout,
                                                TimeoutError)):
            raise ServeError(
                f"cannot reach sweep service at {self.url} after "
                f"{self.retries + 1} attempts: {last.reason}") from last
        raise ServeTimeoutError(
            f"sweep service at {self.url} did not answer {path} within "
            f"{self.timeout:.0f}s x {self.retries + 1} attempts") from last

    def _json(self, path: str, body: Optional[Dict] = None) -> Dict:
        return json.loads(self._request(path, body))

    # -- job API -----------------------------------------------------------

    def healthz(self) -> Dict:
        return self._json("/healthz")

    def submit(self, body: Dict) -> Dict:
        """Submit a job (``{"job": ...}`` or ``{"preset": ...}``) body."""
        return self._json("/jobs", body=body)

    def submit_job(self, job) -> Dict:
        """Submit a compiled :class:`~repro.serve.job.SweepJob`."""
        return self.submit({"job": job.to_dict()})

    def jobs(self) -> List[Dict]:
        return self._json("/jobs")["jobs"]

    def status(self, job_id: str) -> Dict:
        return self._json(f"/jobs/{job_id}")

    def aggregates(self, job_id: str) -> Dict:
        return self._json(f"/jobs/{job_id}/aggregates")

    def manifest(self, job_id: str) -> Dict:
        return self._json(f"/jobs/{job_id}/result")

    def object_bytes(self, key: str) -> bytes:
        return self._request(f"/objects/{key}")

    def cancel(self, job_id: str, reason: Optional[str] = None) -> Dict:
        """Request a cooperative cancel; returns the status document."""
        return self._json(f"/jobs/{job_id}/cancel",
                          body={"reason": reason})

    # -- conveniences ------------------------------------------------------

    def watch(self, job_id: str, interval: float = 0.5,
              timeout: Optional[float] = None) -> Iterator[Dict]:
        """Yield status documents until the job reaches a terminal state.

        Terminal means ``done``/``failed``/``cancelled``/``partial``
        (neither a ``partial`` nor a ``cancelled`` job progresses until
        someone resubmits it).  Raises :class:`ServeError` on
        ``timeout`` (seconds, ``None`` = wait forever).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            yield status
            if status.get("state") in ("done", "failed", "partial",
                                       "cancelled"):
                return
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id} still {status.get('state')!r} after "
                    f"{timeout:.0f}s")
            time.sleep(interval)

    def wait(self, job_id: str, interval: float = 0.5,
             timeout: Optional[float] = None) -> Dict:
        """Block until terminal; returns the final status document."""
        status: Dict = {}
        for status in self.watch(job_id, interval=interval, timeout=timeout):
            pass
        return status

    def result_frames(self, job_id: str
                      ) -> List[Tuple[Tuple[Tuple[str, str], ...],
                                      ResultFrame]]:
        """Fetch and reassemble every cell's frame, in grid order.

        Returns ``[(labels, frame), ...]``.  Raises if any chunk is
        still missing (check ``manifest()['complete']`` or ``wait()``
        first for a friendlier flow).
        """
        manifest = self.manifest(job_id)
        if not manifest["complete"]:
            missing = sum(1 for cell in manifest["cells"]
                          for chunk in cell["chunks"] if not chunk["stored"])
            raise ServeError(
                f"job {job_id} is {manifest['state']!r}: {missing} chunks "
                "not yet stored; wait for completion (or resubmit a "
                "partial job) before fetching the result")
        out = []
        for cell in manifest["cells"]:
            frames = [ResultFrame.from_npz_bytes(
                          self.object_bytes(chunk["key"]))
                      for chunk in cell["chunks"]]
            frame = (frames[0] if len(frames) == 1
                     else ResultFrame.concat(frames))
            labels = tuple((str(k), str(v)) for k, v in cell["labels"])
            out.append((labels, frame))
        return out
