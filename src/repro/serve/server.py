"""The sweep service: a local HTTP job API over the result store.

``python -m repro serve`` binds a :class:`ThreadingHTTPServer` (stdlib
only — the container has no web framework, and none is needed for a
localhost job API) whose endpoints mirror the job lifecycle:

========================  ==================================================
``POST /jobs``            submit a job document (or a named preset);
                          deduplicated by content id — resubmitting the
                          same sweep returns the existing job
``GET  /jobs``            list known job ids and their effective states
``GET  /jobs/<id>``       the status document (state, progress, trials/s,
                          ETA, recent events)
``GET  /jobs/<id>/aggregates``  per-cell streaming aggregates, queryable
                          mid-run (partial results)
``GET  /jobs/<id>/result``      the result manifest: per-cell chunk keys
                          + labels (the client assembles frames from the
                          object endpoint)
``POST /jobs/<id>/cancel``      request a cooperative cancel: the live
                          coordinator drains in-flight chunks and parks
                          the job ``cancelled`` (stored chunks are kept
                          for dedup; resubmitting resumes)
``GET  /objects/<key>``   one stored chunk as ``.npz`` bytes (*validated*:
                          a torn object on disk answers 404, never
                          corrupt bytes)
``GET  /healthz``         liveness + store path
========================  ==================================================

Each submitted job runs on its own daemon coordinator thread (chunks fan
out across that job's process pool); the store's claim protocol keeps
concurrent jobs from duplicating shared chunks.  Submissions are
accepted while a job for the same content id is queued/running/done —
the server simply reports the existing one — and a ``partial`` job (a
previous coordinator died) is restarted by resubmitting it.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.errors import ReproError
from repro.serve.executor import (
    JobRunner,
    job_status,
    request_cancel,
    withdraw_cancel,
)
from repro.serve.job import JobState, SweepJob, effective_state
from repro.serve.store import ResultStore


def build_preset_sweep(preset: Dict):
    """A named sweep preset -> SweepSpec (the CLI/CI submission path).

    ``figure1`` is the canonical smoke preset: the paper's Figure-1 grid
    (optionally restricted to a subset of its six distributions) at the
    requested ns/trials.
    """
    name = preset.get("name")
    if name != "figure1":
        raise ReproError(f"unknown sweep preset {name!r} (have: figure1)")
    from repro.noise.distributions import figure1_distributions
    from repro.experiments.figure1 import sweep_spec

    distributions = figure1_distributions()
    wanted = preset.get("distributions")
    if wanted:
        missing = [d for d in wanted if d not in distributions]
        if missing:
            raise ReproError(
                f"unknown figure1 distributions {missing}; "
                f"have {sorted(distributions)}")
        distributions = {name: distributions[name] for name in wanted}
    return sweep_spec(ns=[int(n) for n in preset.get("ns", (1, 10))],
                      trials=int(preset.get("trials", 100)),
                      distributions=distributions,
                      engine=str(preset.get("engine", "auto")))


def job_from_submission(body: Dict) -> SweepJob:
    """Build the job a ``POST /jobs`` body describes.

    Accepts either a complete job document (``{"job": {...}}``, the
    client-compiled form that works for any serializable sweep) or a
    preset (``{"preset": {"name": "figure1", ...}, "seed": 2000}``).
    """
    if "job" in body:
        return SweepJob.from_dict(body["job"])
    if "preset" in body:
        sweep = build_preset_sweep(body["preset"])
        return SweepJob.from_sweep(sweep, seed=body.get("seed"),
                                   chunk_size=body.get("chunk_size"))
    raise ReproError("submission needs a 'job' document or a 'preset'")


class SweepService:
    """Store + per-job coordinator threads behind the HTTP surface."""

    def __init__(self, store: ResultStore,
                 workers: Optional[int] = None) -> None:
        self.store = store
        self.workers = workers
        self._runners: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()

    def submit(self, body: Dict) -> Dict:
        job = job_from_submission(body)
        job.save(self.store)
        with self._lock:
            runner = self._runners.get(job.job_id)
            running_here = runner is not None and runner.is_alive()
            state = effective_state(JobState.load(self.store, job.job_id))
            if not running_here and state != "done":
                if state == "cancelled":
                    # un-cancel before the thread starts, so no status
                    # poll can race the restart into a stale terminal
                    withdraw_cancel(self.store, job.job_id)
                thread = threading.Thread(
                    target=self._run_job, args=(job,),
                    name=f"job-{job.job_id[:8]}", daemon=True)
                self._runners[job.job_id] = thread
                thread.start()
                accepted = True
            else:
                accepted = False  # already running here, or already done
        return {"job_id": job.job_id, "accepted": accepted,
                "state": effective_state(
                    JobState.load(self.store, job.job_id))}

    def _run_job(self, job: SweepJob) -> None:
        try:
            JobRunner(self.store, workers=self.workers).run(job)
        except Exception:
            # The runner already recorded the failure on the job state;
            # a serving thread must not take the process down with it.
            pass

    def status(self, job_id: str) -> Dict:
        return job_status(self.store, job_id)

    def cancel(self, job_id: str, reason: Optional[str] = None) -> Dict:
        # raises KeyError (-> 404) for unknown jobs before touching state
        SweepJob.load(self.store, job_id)
        return request_cancel(self.store, job_id, reason=reason)

    def list_jobs(self) -> Dict:
        jobs = []
        for job_id in SweepJob.list_ids(self.store):
            state = JobState.load(self.store, job_id)
            jobs.append({"job_id": job_id,
                         "state": effective_state(state),
                         "trials_done": state.trials_done,
                         "trials_total": state.trials_total})
        return {"jobs": jobs}

    def aggregates(self, job_id: str) -> Dict:
        job = SweepJob.load(self.store, job_id)
        state = JobState.load(self.store, job_id)
        from repro.analysis.aggregate import RunningCellAggregate

        cells = []
        for cell in job.cells:
            data = state.aggregates.get(str(cell.index))
            cells.append({
                "index": cell.index,
                "labels": [list(pair) for pair in cell.labels],
                "aggregate": (RunningCellAggregate.from_dict(data).table()
                              if data else None),
            })
        return {"job_id": job_id,
                "state": effective_state(state),
                "cells": cells}

    def result_manifest(self, job_id: str) -> Dict:
        job = SweepJob.load(self.store, job_id)
        state = JobState.load(self.store, job_id)
        cells = []
        complete = True
        for cell in job.cells:
            chunks = []
            for task in job.cell_chunks(cell):
                stored = self.store.has(task.key)
                complete = complete and stored
                chunks.append({"key": task.key, "count": task.count,
                               "stored": stored})
            cells.append({"index": cell.index,
                          "labels": [list(pair) for pair in cell.labels],
                          "trials": job.trials, "chunks": chunks})
        return {"job_id": job_id,
                "state": effective_state(state),
                "complete": complete,
                "cells": cells}


class _Handler(BaseHTTPRequestHandler):
    service: SweepService  # injected by make_server

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # requests are not worth a stderr line each

    def _send_json(self, payload: Dict, code: int = 200) -> None:
        blob = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json({"error": message}, code=code)

    def _route(self) -> Tuple[str, ...]:
        return tuple(part for part in self.path.split("?", 1)[0].split("/")
                     if part)

    # -- methods -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        route = self._route()
        try:
            if route == ("healthz",):
                self._send_json({"ok": True,
                                 "store": self.service.store.root})
            elif route == ("jobs",):
                self._send_json(self.service.list_jobs())
            elif len(route) == 2 and route[0] == "jobs":
                self._send_json(self.service.status(route[1]))
            elif len(route) == 3 and route[0] == "jobs" and \
                    route[2] == "aggregates":
                self._send_json(self.service.aggregates(route[1]))
            elif len(route) == 3 and route[0] == "jobs" and \
                    route[2] == "result":
                self._send_json(self.service.result_manifest(route[1]))
            elif len(route) == 2 and route[0] == "objects":
                # validated read: a torn object on disk is a 404 miss,
                # never corrupt bytes a client would decode (or worse,
                # silently mis-decode)
                blob = self.service.store.get_valid_bytes(route[1])
                if blob is None:
                    self._send_error_json(404, f"no object {route[1]}")
                    return
                self.send_response(200)
                self.send_header("Content-Type", "application/octet-stream")
                self.send_header("Content-Length", str(len(blob)))
                self.end_headers()
                self.wfile.write(blob)
            else:
                self._send_error_json(404, f"no route {self.path!r}")
        except KeyError as exc:
            self._send_error_json(404, str(exc))
        except Exception as exc:  # noqa: BLE001 - boundary
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        route = self._route()
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length) or b"{}")
            if route == ("jobs",):
                self._send_json(self.service.submit(body), code=201)
            elif len(route) == 3 and route[0] == "jobs" and \
                    route[2] == "cancel":
                self._send_json(self.service.cancel(
                    route[1], reason=body.get("reason")))
            else:
                self._send_error_json(404, f"no route {self.path!r}")
        except KeyError as exc:
            self._send_error_json(404, str(exc))
        except (ReproError, ValueError) as exc:
            self._send_error_json(400, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: BLE001 - boundary
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")


def make_server(store_dir: str, host: str = "127.0.0.1", port: int = 0,
                workers: Optional[int] = None
                ) -> Tuple[ThreadingHTTPServer, SweepService]:
    """Bind the service (``port=0`` picks an ephemeral port).

    Returns the (unstarted) HTTP server and its service; call
    ``serve_forever()`` (or run it on a thread, as the tests do) to
    accept requests.
    """
    service = SweepService(ResultStore(store_dir), workers=workers)
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server, service


def serve_forever(store_dir: str, host: str = "127.0.0.1", port: int = 8642,
                  workers: Optional[int] = None) -> int:
    """The blocking ``python -m repro serve`` entry point."""
    server, service = make_server(store_dir, host=host, port=port,
                                  workers=workers)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port} "
          f"(store: {service.store.root})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0
