"""Sharded, resumable, lease-coordinated execution of sweep jobs.

The executor turns a :class:`~repro.serve.job.SweepJob` into chunk-
granular work units and drives them to completion with properties the
in-process :func:`~repro.api.sweep.run_sweep` loop does not have:

* **Sharding with a pluggable dispatch seam.**  Chunks fan out across a
  :class:`PoolDispatcher` (a ``concurrent.futures`` process pool) by
  default, or a :class:`WorkerPoolDispatcher` (its own worker
  processes, with explicit liveness monitoring and a restart that
  *terminates* stragglers — the backend that makes per-chunk timeouts
  enforceable); anything implementing the two-method
  :class:`Dispatcher` surface (``submit``/``restart``) can stand in.
* **Lease-based multi-coordinator coordination.**  Every in-flight
  chunk is covered by a time-bounded lease in the store
  (:meth:`~repro.serve.store.ResultStore.claim`), renewed by the
  coordinator at half-life (heartbeat).  Any number of coordinators —
  threads, processes, hosts sharing the store — may run the same or
  overlapping jobs: live leases arbitrate who computes each chunk,
  expired leases (frozen coordinator, SIGKILL, pid reuse) are
  re-elected by whoever notices first, and the content-addressed,
  idempotent object writes make even a double-compute harmless.
* **Crash survival at every level.**  A finished chunk is atomically in
  the store before it is acknowledged, so a SIGKILLed *worker* costs
  one in-flight chunk (detected, requeued under a persisted
  :class:`~repro.serve.job.RetryState` with seeded-jitter exponential
  backoff), a *stuck* worker is bounded by ``chunk_timeout``, and a
  SIGKILLed *coordinator* costs only the chunks in flight at death — a
  resume replans, sees the stored chunks, and computes the remainder.
  Results are bit-identical either way, because chunk identity (spec,
  engine, absolute seed offset) is position-independent.
* **Cooperative cancellation.**  ``request_cancel`` drops a marker in
  the job directory; the live coordinator notices between chunks,
  stops dispatching, harvests what is in flight (stored chunks are
  *kept* — they dedup into any future job), and parks the job in the
  terminal ``cancelled`` state.  Resubmitting clears the cancellation
  and resumes from the stored chunks.
* **Streaming aggregation.**  Workers return each chunk's columnar
  summary (:class:`~repro.analysis.aggregate.RunningCellAggregate`
  sufficient statistics), the coordinator merges them per cell and
  persists the running tables with the job state — so a million-trial
  cell is queryable mid-run while the coordinator holds O(chunk) rows.

Chaos-test seams (used by the kill/resume tests and by
:mod:`repro.serve.chaos`, inert when unset):
``REPRO_SERVE_TEST_KILL_ONCE=<marker>`` makes a worker SIGKILL itself
before its first chunk (creating ``<marker>`` so it only dies once);
``REPRO_SERVE_TEST_CHUNK_DELAY=<seconds>`` sleeps before each chunk;
``JobRunner(renew_filter=...)`` lets the chaos harness freeze
heartbeats for selected chunks.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os
import queue as queue_module
import secrets
import signal
import socket
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro._atomicio import atomic_write_json
from repro._seedhash import SeedBlock
from repro.analysis.aggregate import RunningCellAggregate
from repro.api.compile import run_trials_frame
from repro.api.spec import TrialSpec
from repro.errors import JobCancelledError, ReproError
from repro.sim.frame import ResultFrame
from repro.serve.job import (
    ChunkTask,
    JobState,
    SweepJob,
    effective_state,
)
from repro.serve.store import (
    DEFAULT_LEASE_SECONDS,
    ResultStore,
    process_start_marker,
)


class JobFailedError(ReproError):
    """A job ended in the ``failed`` state (error recorded on the state)."""


class RemoteChunkError(ReproError):
    """A worker-side chunk exception, reconstructed on the coordinator."""


def _test_seams() -> None:
    """Honour the chaos-test environment seams (no-ops when unset)."""
    marker = os.environ.get("REPRO_SERVE_TEST_KILL_ONCE")
    if marker and not os.path.exists(marker):
        try:
            with open(marker, "x"):
                pass
        except OSError:
            pass  # uncreatable marker: the worker dies on every attempt
        os.kill(os.getpid(), signal.SIGKILL)
    delay = os.environ.get("REPRO_SERVE_TEST_CHUNK_DELAY")
    if delay:
        time.sleep(float(delay))


def run_chunk_task(payload: Dict) -> Dict:
    """Compute one chunk and store it (the worker entry point).

    Rebuilds the cell spec, derives the chunk's per-trial seeds as a
    :class:`~repro._seedhash.SeedBlock` at the task's *absolute* child
    offset (the identical identities ``run_sweep`` would hand the batch
    runner), replays them through
    :func:`~repro.api.compile.run_trials_frame` on the cell-resolved
    engine, writes the frame atomically into the store, and returns the
    chunk's streaming-aggregate summary — the frame itself never crosses
    the pipe.  A stored-but-*torn* object reads as a miss here
    (``store.get`` validates), so a truncated or bit-flipped file is
    recomputed and repaired, never adopted.
    """
    _test_seams()
    started = time.perf_counter()
    store = ResultStore(payload["store_root"])
    key = payload["key"]
    stored = store.get(key)
    if stored is not None and len(stored) == payload["count"]:
        frame = stored  # another job raced us to it: adopt, don't recompute
        computed = False
    else:
        spec = TrialSpec.from_dict(payload["spec"])
        block = SeedBlock(payload["entropy"], tuple(payload["spawn_key"]),
                          payload["offset"], payload["count"])
        frame = run_trials_frame(spec, block, engine=payload["engine"])
        store.put(key, frame)
        computed = True
    summary = RunningCellAggregate()
    summary.fold_frame(frame)
    return {"key": key, "cell_index": payload["cell_index"],
            "count": payload["count"], "computed": computed,
            "seconds": time.perf_counter() - started,
            "summary": summary.to_dict()}


def _task_payload(job: SweepJob, task: ChunkTask, store: ResultStore) -> Dict:
    return {
        "store_root": store.root,
        "key": task.key,
        "cell_index": task.cell_index,
        "spec": job.cells[task.cell_index].spec.to_dict(),
        "entropy": job.entropy,
        "spawn_key": list(job.spawn_key),
        "offset": task.offset,
        "count": task.count,
        "engine": task.engine,
    }


class Dispatcher:
    """The dispatch seam: something that runs chunk payloads.

    ``submit`` returns a ``concurrent.futures.Future``; ``restart`` is
    called after a broken-pool event or a chunk timeout and must leave
    the dispatcher usable again.  A multi-node dispatcher (or an
    instrumented test double, or the chaos harness's fault injector)
    implements these methods.
    """

    def submit(self, payload: Dict) -> "concurrent.futures.Future":
        raise NotImplementedError

    def restart(self) -> None:  # pragma: no cover - interface default
        pass

    def shutdown(self) -> None:  # pragma: no cover - interface default
        pass


class InlineDispatcher(Dispatcher):
    """Runs chunks synchronously in the coordinator process.

    The ``workers<=1`` path: no pool, no pickling, and the chunk
    function is swappable (the dedup/concurrency tests count executions
    through it).
    """

    def __init__(self, chunk_fn: Callable[[Dict], Dict] = run_chunk_task
                 ) -> None:
        self.chunk_fn = chunk_fn

    def submit(self, payload: Dict) -> "concurrent.futures.Future":
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(self.chunk_fn(payload))
        except BaseException as exc:  # noqa: BLE001 - forwarded to caller
            future.set_exception(exc)
        return future


class PoolDispatcher(Dispatcher):
    """Fans chunks across a ``ProcessPoolExecutor``.

    A worker SIGKILL breaks the whole pool (every pending future raises
    ``BrokenProcessPool``); the job runner catches that, calls
    :meth:`restart`, and requeues the unfinished chunks — the pool is
    rebuilt from scratch, so one bad worker never wedges the job.
    """

    def __init__(self, workers: int,
                 chunk_fn: Callable[[Dict], Dict] = run_chunk_task) -> None:
        self.workers = max(1, int(workers))
        self.chunk_fn = chunk_fn
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = \
            None

    def _pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._executor is None:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0])
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx)
        return self._executor

    def submit(self, payload: Dict) -> "concurrent.futures.Future":
        return self._pool().submit(self.chunk_fn, payload)

    def restart(self) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


def _worker_pool_main(task_queue, result_queue, chunk_fn) -> None:
    """Worker-process loop of :class:`WorkerPoolDispatcher`."""
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_id, payload = item
        try:
            result_queue.put((task_id, True, chunk_fn(payload)))
        except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
            result_queue.put(
                (task_id, False, f"{type(exc).__name__}: {exc}"))


class WorkerPoolDispatcher(Dispatcher):
    """A self-managed multiprocessing worker pool with kill-aware restart.

    The multi-node-shaped backend behind the :class:`Dispatcher` seam:
    its own worker processes fed from a task queue, completions drained
    by a daemon thread, and *explicit* liveness monitoring — a
    SIGKILLed worker fails every outstanding future with
    ``BrokenProcessPool`` (the job runner's requeue signal) instead of
    hanging, and :meth:`restart` **terminates** straggler processes,
    which is what lets the runner actually enforce a per-chunk timeout
    on a wedged worker (a ``ProcessPoolExecutor`` can only abandon
    them).  One such dispatcher per coordinator; any number of
    coordinators cooperate through the store's chunk leases.
    """

    #: Seconds between liveness sweeps of the worker processes.
    MONITOR_INTERVAL = 0.1

    def __init__(self, workers: int,
                 chunk_fn: Callable[[Dict], Dict] = run_chunk_task) -> None:
        self.workers = max(1, int(workers))
        self.chunk_fn = chunk_fn
        self._lock = threading.Lock()
        self._procs: List = []
        self._task_queue = None
        self._result_queue = None
        self._drainer: Optional[threading.Thread] = None
        self._futures: Dict[int, concurrent.futures.Future] = {}
        self._counter = 0
        self._generation = 0
        self._broken = False

    # -- pool lifecycle ----------------------------------------------------

    def _context(self):
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0])

    def _ensure(self) -> None:
        if self._procs:
            return
        ctx = self._context()
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        self._broken = False
        self._procs = []
        for _ in range(self.workers):
            proc = ctx.Process(
                target=_worker_pool_main,
                args=(self._task_queue, self._result_queue, self.chunk_fn),
                daemon=True)
            proc.start()
            self._procs.append(proc)
        generation = self._generation
        self._drainer = threading.Thread(
            target=self._drain_loop,
            args=(generation, self._result_queue), daemon=True)
        self._drainer.start()

    def _drain_loop(self, generation: int, result_queue) -> None:
        while True:
            with self._lock:
                if generation != self._generation:
                    return
            try:
                item = result_queue.get(timeout=self.MONITOR_INTERVAL)
            except queue_module.Empty:
                self._monitor(generation)
                continue
            task_id, ok, payload = item
            with self._lock:
                if generation != self._generation:
                    return
                future = self._futures.pop(task_id, None)
            if future is None or future.cancelled():
                continue
            if ok:
                future.set_result(payload)
            else:
                future.set_exception(RemoteChunkError(payload))

    def _monitor(self, generation: int) -> None:
        """Fail outstanding futures when a worker has died (SIGKILL/OOM)."""
        with self._lock:
            if generation != self._generation or self._broken:
                return
            if all(proc.is_alive() for proc in self._procs):
                return
            self._broken = True
            outstanding = list(self._futures.values())
            self._futures.clear()
        for future in outstanding:
            if not future.done():
                future.set_exception(
                    BrokenProcessPool("a worker process died unexpectedly"))

    # -- Dispatcher surface ------------------------------------------------

    def submit(self, payload: Dict) -> "concurrent.futures.Future":
        with self._lock:
            if self._broken:
                raise BrokenProcessPool(
                    "worker pool is broken; restart() it first")
        self._ensure()
        future: concurrent.futures.Future = concurrent.futures.Future()
        with self._lock:
            task_id = self._counter
            self._counter += 1
            self._futures[task_id] = future
        self._task_queue.put((task_id, payload))
        return future

    def restart(self) -> None:
        self._teardown()

    def shutdown(self) -> None:
        self._teardown()

    def _teardown(self) -> None:
        with self._lock:
            self._generation += 1
            procs, self._procs = self._procs, []
            outstanding = list(self._futures.values())
            self._futures.clear()
            self._broken = False
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=2.0)
        for future in outstanding:
            if not future.done():
                future.set_exception(
                    BrokenProcessPool("worker pool torn down"))


@dataclass
class JobResult:
    """An assembled job: one frame per cell, in grid order."""

    job: SweepJob
    frames: List[ResultFrame]
    state: JobState

    def __iter__(self):
        return iter(zip(self.job.cells, self.frames))

    def frame(self, **labels) -> ResultFrame:
        """The unique cell frame whose labels match (string-valued)."""
        matches = [frame for cell, frame in self
                   if all(cell.label(name) == str(value)
                          for name, value in labels.items())]
        if len(matches) != 1:
            raise KeyError(
                f"{labels} matches {len(matches)} cells (need exactly 1)")
        return matches[0]


def cancel_marker_path(store: ResultStore, job_id: str) -> str:
    return os.path.join(store.job_dir(job_id), "cancel.json")


def request_cancel(store: ResultStore, job_id: str,
                   reason: Optional[str] = None) -> Dict:
    """Ask a job to cancel (cooperative drain; stored chunks are kept).

    Drops an atomic marker in the job directory.  A *live* coordinator
    notices it between chunks, drains, and parks the job in the
    terminal ``cancelled`` state; when no coordinator is alive (queued
    or partial job) the state is finalized immediately.  Terminal jobs
    (``done``/``failed``/``cancelled``) are left untouched.  Returns
    the post-request status document.
    """
    state = JobState.load(store, job_id)
    current = effective_state(state)
    if current in ("done", "failed", "cancelled"):
        return job_status(store, job_id)
    atomic_write_json(cancel_marker_path(store, job_id), {
        "requested_at": round(time.time(), 3),
        "reason": reason,
    })
    if current != "running":
        # no live coordinator will ever see the marker: finalize here
        state.state = "cancelled"
        state.runner_pid = None
        state.runner_start = None
        state.record_event("cancelled", reason=reason, drained=0)
        state.save(store, job_id)
        try:
            os.unlink(cancel_marker_path(store, job_id))
        except FileNotFoundError:
            pass
    return job_status(store, job_id)


def withdraw_cancel(store: ResultStore, job_id: str) -> None:
    """Un-cancel a parked job *synchronously* (resubmission accepted).

    Removes the marker and re-queues the persisted state so a status
    poll racing the restarted coordinator never reads the stale
    terminal ``cancelled`` (which would end a ``watch`` early).  The
    runner clears the marker again on entry; doing it here as well is
    idempotent.
    """
    try:
        os.unlink(cancel_marker_path(store, job_id))
    except FileNotFoundError:
        pass
    state = JobState.load(store, job_id)
    if state.state == "cancelled":
        state.state = "queued"
        state.save(store, job_id)


@dataclass
class _InFlight:
    """Coordinator-side bookkeeping for one dispatched chunk."""

    task: ChunkTask
    token: Optional[str]
    submitted_at: float
    timeout_at: Optional[float]
    renew_at: float
    lease_lost: bool = field(default=False)


class JobRunner:
    """Drives one job from its current store state to ``done``.

    Safe to call on a fresh job, a ``partial`` job after any crash, a
    ``cancelled`` job (the cancellation is cleared and the run resumes
    from the stored chunks), or an already-``done`` job (instant no-op
    replan).  ``workers`` picks the dispatcher: ``<= 1`` runs chunks
    inline, ``>= 2`` fans out over a process pool (``backend="worker-
    pool"`` selects the self-managed :class:`WorkerPoolDispatcher`
    instead); pass ``dispatcher`` to override entirely.

    Multiple runners — across threads, processes, or hosts sharing the
    store — may drive the same or overlapping jobs concurrently: the
    store's chunk leases elect one computer per chunk, everyone else
    waits and adopts the stored object.
    """

    #: Worker losses (SIGKILL, timeout) one chunk may survive: a chunk
    #: that has lost its worker this many times fails the job instead
    #: of requeueing (the boundary is pinned by the injected-kill
    #: regression test).  Attempts persist in ``JobState.retries``, so
    #: the budget also survives coordinator restarts.
    MAX_CHUNK_RETRIES = 3

    #: Seconds between re-checks of chunks claimed by a foreign job.
    CLAIM_POLL_SECONDS = 0.05

    #: Exponential-backoff schedule for requeued chunks:
    #: ``base * 2**(attempts-1)`` capped at ``cap``, plus a
    #: deterministic jitter in ``[0, base)`` seeded by the chunk key
    #: and attempt number — coordinators never stampede the same chunk
    #: in sync, yet the schedule is reproducible for the chaos harness.
    RETRY_BACKOFF_BASE = 0.1
    RETRY_BACKOFF_CAP = 5.0

    #: Seconds a cooperative cancel waits for in-flight chunks before
    #: abandoning them (their claims are released; any late store
    #: writes remain harmless).
    CANCEL_GRACE_SECONDS = 5.0

    def __init__(self, store: ResultStore, workers: Optional[int] = None,
                 dispatcher: Optional[Dispatcher] = None,
                 on_event: Optional[Callable[[Dict], None]] = None,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 chunk_timeout: Optional[float] = None,
                 backend: str = "pool",
                 renew_filter: Optional[Callable[[str], bool]] = None
                 ) -> None:
        self.store = store
        if dispatcher is None:
            if workers and workers > 1:
                dispatcher = (WorkerPoolDispatcher(workers)
                              if backend == "worker-pool"
                              else PoolDispatcher(workers))
            else:
                dispatcher = InlineDispatcher()
        self.dispatcher = dispatcher
        self.on_event = on_event
        self.lease_seconds = float(lease_seconds)
        self.chunk_timeout = chunk_timeout
        self.renew_filter = renew_filter
        self.owner = (f"{socket.gethostname()}:{os.getpid()}:"
                      f"{secrets.token_hex(4)}")

    # -- public ------------------------------------------------------------

    def run(self, job: SweepJob) -> JobResult:
        job.save(self.store)
        state = JobState.load(self.store, job.job_id)
        try:
            self._execute(job, state)
        except JobCancelledError:
            # Terminal but deliberate: state already saved as cancelled.
            raise
        except (KeyboardInterrupt, SystemExit):
            # Interrupted, not failed: leave the recorded state
            # resumable (a dead runner pid reads as ``partial``).
            state.runner_pid = None
            state.runner_start = None
            state.save(self.store, job.job_id)
            raise
        except Exception as exc:
            if state.state != "failed":
                state.state = "failed"
                state.error = f"{type(exc).__name__}: {exc}"
                state.runner_pid = None
                state.runner_start = None
                state.save(self.store, job.job_id)
            raise
        finally:
            self.dispatcher.shutdown()
        return JobResult(job=job, frames=assemble_frames(self.store, job),
                         state=state)

    # -- internals ---------------------------------------------------------

    def _emit(self, state: JobState, kind: str, **fields) -> None:
        event = state.record_event(kind, **fields)
        if self.on_event is not None:
            self.on_event(event)

    def _backoff_seconds(self, key: str, attempts: int) -> float:
        base = self.RETRY_BACKOFF_BASE
        delay = min(base * (2.0 ** max(attempts - 1, 0)),
                    self.RETRY_BACKOFF_CAP)
        digest = hashlib.sha256(f"{key}:{attempts}".encode()).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2.0 ** 64 * base
        return delay + jitter

    def _cancel_reason(self, job: SweepJob) -> Optional[Dict]:
        path = cancel_marker_path(self.store, job.job_id)
        try:
            with open(path) as handle:
                import json

                marker = json.load(handle)
        except (OSError, ValueError):
            return None
        return marker if isinstance(marker, dict) else {}

    def _clear_cancel_marker(self, job: SweepJob) -> None:
        try:
            os.unlink(cancel_marker_path(self.store, job.job_id))
        except FileNotFoundError:
            pass

    def _stored_frame(self, job: SweepJob,
                      task: ChunkTask) -> Optional[ResultFrame]:
        """The task's stored chunk, validated — torn objects are a miss."""
        frame = self.store.get(task.key,
                               spec=job.cells[task.cell_index].spec)
        if frame is None or len(frame) != task.count:
            return None
        return frame

    def _note_lost(self, state: JobState, job: SweepJob, task: ChunkTask,
                   verb: str, detail: str,
                   pending: List[ChunkTask]) -> None:
        """A dispatched chunk lost its worker: requeue under the budget."""
        retry = state.retry_state(task.key)
        retry.attempts += 1
        retry.last_error = detail
        if retry.attempts >= self.MAX_CHUNK_RETRIES:
            state.set_retry_state(task.key, retry)
            state.state = "failed"
            state.error = (f"chunk (cell={task.cell_index}, "
                           f"start={task.start}) {verb} "
                           f"{self.MAX_CHUNK_RETRIES} times; giving up")
            state.runner_pid = None
            state.runner_start = None
            state.save(self.store, job.job_id)
            raise JobFailedError(state.error)
        backoff = self._backoff_seconds(task.key, retry.attempts)
        retry.next_eligible_at = time.time() + backoff
        state.set_retry_state(task.key, retry)
        self._emit(state, "worker_died", cell=task.cell_index,
                   start=task.start, attempts=retry.attempts,
                   backoff_s=round(backoff, 3), error=detail)
        state.save(self.store, job.job_id)
        pending.append(task)

    def _drain_cancelled(self, job: SweepJob, state: JobState,
                         futures: Dict, note_done, reason: Optional[str]
                         ) -> None:
        """Cooperative cancel: harvest what finishes, keep stored chunks."""
        drained = 0
        deadline = time.monotonic() + self.CANCEL_GRACE_SECONDS
        while futures and time.monotonic() < deadline:
            done, _ = concurrent.futures.wait(
                futures, timeout=self.CLAIM_POLL_SECONDS,
                return_when=concurrent.futures.FIRST_COMPLETED)
            if not done:
                continue
            for future in done:
                flight = futures.pop(future)
                try:
                    outcome = future.result()
                except BaseException:  # noqa: BLE001 - draining anyway
                    continue
                self.store.release(flight.task.key, flight.token)
                note_done(flight.task, outcome["summary"],
                          computed=outcome["computed"],
                          seconds=outcome["seconds"])
                drained += 1
        for future, flight in futures.items():
            future.cancel()
            self.store.release(flight.task.key, flight.token)
        futures.clear()
        state.state = "cancelled"
        state.runner_pid = None
        state.runner_start = None
        self._emit(state, "cancelled", reason=reason, drained=drained)
        state.save(self.store, job.job_id)
        self._clear_cancel_marker(job)
        raise JobCancelledError(
            f"job {job.job_id} cancelled"
            + (f": {reason}" if reason else ""))

    def _execute(self, job: SweepJob, state: JobState) -> None:
        # A fresh run supersedes any stale cancellation (resubmitting a
        # cancelled job is how you un-cancel it).
        self._clear_cancel_marker(job)
        plan = job.chunks()
        cell_chunk_totals: Dict[int, int] = {}
        for task in plan:
            cell_chunk_totals[task.cell_index] = \
                cell_chunk_totals.get(task.cell_index, 0) + 1
        # Aggregates always rebuild from the store at run start (the
        # persisted copy in state.json exists for mid-run status queries
        # only): a crashed run may have stored chunks it never recorded,
        # and a foreign job may have stored chunks this job never saw —
        # refolding every stored chunk once is the only bookkeeping that
        # stays exact across both.
        aggregates = {index: RunningCellAggregate()
                      for index in range(len(job.cells))}
        run_started = time.monotonic()
        progress = {
            "chunks_done": 0, "trials_done": 0, "run_trials": 0,
            "cell_chunks_done": {index: 0 for index in cell_chunk_totals},
        }

        def note_done(task: ChunkTask, summary: Optional[Dict],
                      computed: bool, seconds: float,
                      frame: Optional[ResultFrame] = None) -> None:
            progress["chunks_done"] += 1
            progress["trials_done"] += task.count
            progress["cell_chunks_done"][task.cell_index] += 1
            agg = aggregates[task.cell_index]
            # note_done runs exactly once per chunk per run, so each
            # trial folds exactly once: from the worker's summary when
            # the chunk was just computed, from the stored frame when it
            # was adopted (prior run or foreign job).
            if summary is not None:
                agg.merge(RunningCellAggregate.from_dict(summary))
            else:
                if frame is None:
                    frame = self._stored_frame(job, task)
                if frame is not None:
                    agg.fold_frame(frame)
            state.aggregates[str(task.cell_index)] = agg.to_dict()
            state.clear_retry_state(task.key)
            state.chunks_done = progress["chunks_done"]
            state.trials_done = progress["trials_done"]
            state.cells_done = sum(
                1 for index, total in cell_chunk_totals.items()
                if progress["cell_chunks_done"][index] == total)
            if computed:
                progress["run_trials"] += task.count
            elapsed = max(time.monotonic() - run_started, 1e-9)
            rate = progress["run_trials"] / elapsed
            remaining = state.trials_total - progress["trials_done"]
            self._emit(state, "chunk",
                       cell=task.cell_index, start=task.start,
                       count=task.count, computed=computed,
                       seconds=round(seconds, 4),
                       trials_done=progress["trials_done"],
                       trials_total=state.trials_total,
                       cells_done=state.cells_done,
                       trials_per_sec=round(rate, 1),
                       eta_s=(round(remaining / rate, 1) if rate > 0
                              else None))
            state.save(self.store, job.job_id)

        resumed = state.chunks_done or state.state in ("running", "failed",
                                                       "cancelled")
        state.state = "running"
        state.runner_pid = os.getpid()
        state.runner_start = process_start_marker(os.getpid())
        state.runner_owner = self.owner
        state.started_at = state.started_at or time.time()
        state.chunks_total = len(plan)
        state.trials_total = job.total_trials
        state.cells_total = len(job.cells)
        state.chunks_done = state.trials_done = state.cells_done = 0
        state.error = None
        state.aggregates = {}
        already_stored = [t for t in plan if self.store.has(t.key)]
        if resumed and already_stored:
            self._emit(state, "resume", chunks_stored=len(already_stored),
                       chunks_total=len(plan))
        state.save(self.store, job.job_id)

        pending: List[ChunkTask] = []
        waiting: List[ChunkTask] = []  # leased by a live foreign runner
        for task in plan:
            frame = self._stored_frame(job, task)
            if frame is not None:
                note_done(task, summary=None, computed=False, seconds=0.0,
                          frame=frame)
            else:
                pending.append(task)

        futures: Dict[concurrent.futures.Future, _InFlight] = {}
        try:
            while pending or waiting or futures:
                now_mono = time.monotonic()
                now_wall = time.time()
                # 0. cooperative cancellation
                marker = self._cancel_reason(job)
                if marker is not None:
                    self._drain_cancelled(job, state, futures, note_done,
                                          marker.get("reason"))
                # 1. dispatch everything dispatchable
                still_pending: List[ChunkTask] = []
                backoff_until: Optional[float] = None
                for index, task in enumerate(pending):
                    frame = self._stored_frame(job, task)
                    if frame is not None:
                        note_done(task, None, computed=False, seconds=0.0,
                                  frame=frame)
                        continue
                    eligible_at = state.retry_state(task.key).next_eligible_at
                    if eligible_at > now_wall:
                        still_pending.append(task)
                        if backoff_until is None or eligible_at < \
                                backoff_until:
                            backoff_until = eligible_at
                        continue
                    token = self.store.claim(task.key, owner=self.owner,
                                             lease_seconds=self.lease_seconds)
                    if token is not None:
                        try:
                            future = self.dispatcher.submit(
                                _task_payload(job, task, self.store))
                        except BrokenProcessPool as exc:
                            # Pool already broken from an earlier death:
                            # rebuild it, charge the loss, retry later.
                            self.store.release(task.key, token)
                            self.dispatcher.restart()
                            self._note_lost(state, job, task,
                                            "lost its worker",
                                            f"submit: {exc}", still_pending)
                            continue
                        futures[future] = _InFlight(
                            task=task, token=token, submitted_at=now_mono,
                            timeout_at=(now_mono + self.chunk_timeout
                                        if self.chunk_timeout else None),
                            renew_at=now_mono + self.lease_seconds / 2.0)
                        if future.done():
                            # Synchronous dispatch (InlineDispatcher):
                            # harvest now so progress and streaming
                            # aggregates land chunk by chunk instead of
                            # all at once after the last chunk.
                            still_pending.extend(pending[index + 1:])
                            break
                    else:
                        waiting.append(task)
                pending = still_pending
                # 2. renew heartbeats on in-flight leases
                now_mono = time.monotonic()
                for flight in futures.values():
                    if flight.lease_lost or flight.token is None or \
                            now_mono < flight.renew_at:
                        continue
                    frozen = (self.renew_filter is not None
                              and not self.renew_filter(flight.task.key))
                    renewed = (not frozen) and self.store.renew(
                        flight.task.key, flight.token, self.lease_seconds)
                    if renewed:
                        flight.renew_at = now_mono + self.lease_seconds / 2.0
                    else:
                        # Expired-and-stolen, squatted, or frozen: we no
                        # longer hold the chunk.  The in-flight compute
                        # stays (its store write is idempotent) but we
                        # must not release someone else's lease later.
                        flight.lease_lost = True
                        flight.renew_at = now_mono + self.lease_seconds / 2.0
                        self._emit(state, "lease_lost",
                                   cell=flight.task.cell_index,
                                   start=flight.task.start,
                                   frozen=bool(frozen))
                        state.save(self.store, job.job_id)
                # 3. harvest completions
                if futures:
                    done, _ = concurrent.futures.wait(
                        futures, timeout=self.CLAIM_POLL_SECONDS,
                        return_when=concurrent.futures.FIRST_COMPLETED)
                    restart_needed = False
                    for future in done:
                        flight = futures.pop(future)
                        task = flight.task
                        try:
                            outcome = future.result()
                        except BrokenProcessPool as exc:
                            restart_needed = True
                            self._note_lost(state, job, task,
                                            "lost its worker", str(exc),
                                            pending)
                            continue
                        except concurrent.futures.CancelledError:
                            continue  # timed out earlier; already requeued
                        except Exception as exc:
                            state.state = "failed"
                            state.error = (f"chunk (cell={task.cell_index}, "
                                           f"start={task.start}): "
                                           f"{type(exc).__name__}: {exc}")
                            state.runner_pid = None
                            state.runner_start = None
                            state.save(self.store, job.job_id)
                            raise JobFailedError(state.error) from exc
                        if not flight.lease_lost:
                            self.store.release(task.key, flight.token)
                        note_done(task, outcome["summary"],
                                  computed=outcome["computed"],
                                  seconds=outcome["seconds"])
                    if restart_needed:
                        self.dispatcher.restart()
                    # 3b. bound stuck workers with the chunk timeout
                    now_mono = time.monotonic()
                    stuck = [
                        (future, flight) for future, flight in futures.items()
                        if flight.timeout_at is not None
                        and now_mono > flight.timeout_at]
                    for future, flight in stuck:
                        futures.pop(future)
                        could_cancel = future.cancel()
                        if not flight.lease_lost:
                            self.store.release(flight.task.key, flight.token)
                        self._note_lost(
                            state, job, flight.task, "timed out",
                            f"exceeded chunk_timeout="
                            f"{self.chunk_timeout}s", pending)
                        if not could_cancel:
                            # The worker is still grinding: tear the pool
                            # down so the straggler cannot wedge a slot
                            # forever.  Other in-flight chunks fail with
                            # BrokenProcessPool and requeue next harvest.
                            self.dispatcher.restart()
                # 4. re-check chunks a foreign coordinator is computing
                if waiting:
                    still_waiting: List[ChunkTask] = []
                    for task in waiting:
                        frame = self._stored_frame(job, task)
                        if frame is not None:
                            note_done(task, None, computed=False,
                                      seconds=0.0, frame=frame)
                        elif self.store.lease_live(task.key):
                            still_waiting.append(task)
                        else:  # lease expired or holder died: take over
                            pending.append(task)
                    waiting = still_waiting
                    if still_waiting and not futures and not pending:
                        time.sleep(self.CLAIM_POLL_SECONDS)
                # 5. when everything is backoff-parked, sleep the gap out
                if not futures and not waiting and pending and \
                        backoff_until is not None:
                    gap = backoff_until - time.time()
                    if gap > 0:
                        time.sleep(min(gap, 0.25))
        finally:
            for flight in futures.values():
                if not flight.lease_lost:
                    self.store.release(flight.task.key, flight.token)

        state.state = "done"
        state.runner_pid = None
        state.runner_start = None
        self._emit(state, "done", trials_total=state.trials_total,
                   chunks_total=state.chunks_total,
                   seconds=round(time.monotonic() - run_started, 3))
        state.save(self.store, job.job_id)


def assemble_frames(store: ResultStore, job: SweepJob) -> List[ResultFrame]:
    """One frame per cell, concatenated from the cell's stored chunks.

    Chunk concatenation in grid order reproduces
    ``BatchRunner.run_frame`` output exactly (the pool path is the same
    concatenation, pinned bit-identical to serial execution), so the
    assembled frames match :func:`~repro.api.sweep.run_sweep`'s.  A
    missing **or torn** chunk object raises — incomplete data is an
    error here, never a silently shorter frame.
    """
    frames = []
    for cell in job.cells:
        parts = []
        for task in job.cell_chunks(cell):
            frame = store.get(task.key, spec=cell.spec)
            if frame is None or len(frame) != task.count:
                raise KeyError(
                    f"job {job.job_id} is incomplete: missing chunk "
                    f"(cell={task.cell_index}, start={task.start}); "
                    "resume it before fetching the result")
            parts.append(frame)
        frames.append(ResultFrame.concat(parts, spec=cell.spec))
    return frames


def load_result(store: ResultStore, job_id: str) -> JobResult:
    """Assemble a stored job's result (raises if chunks are missing)."""
    job = SweepJob.load(store, job_id)
    state = JobState.load(store, job_id)
    return JobResult(job=job, frames=assemble_frames(store, job),
                     state=state)


def job_status(store: ResultStore, job_id: str) -> Dict:
    """The queryable status document for one job."""
    job = SweepJob.load(store, job_id)
    state = JobState.load(store, job_id)
    stored = sum(1 for task in job.chunks() if store.has(task.key))
    last_chunk = next((e for e in reversed(state.events)
                       if e.get("type") == "chunk"), None)
    return {
        "job_id": job_id,
        "state": effective_state(state),
        "chunks_done": state.chunks_done,
        "chunks_stored": stored,
        "chunks_total": state.chunks_total or len(job.chunks()),
        "trials_done": state.trials_done,
        "trials_total": job.total_trials,
        "cells_done": state.cells_done,
        "cells_total": len(job.cells),
        "chunks_retrying": len(state.retries),
        "trials_per_sec": (last_chunk or {}).get("trials_per_sec"),
        "eta_s": (last_chunk or {}).get("eta_s"),
        "error": state.error,
        "updated_at": state.updated_at,
        "events": state.events[-10:],
    }


def verify_result(result: JobResult) -> bool:
    """Recompute every cell in-process and compare frames exactly.

    The acceptance gate behind ``repro result --check-local``: each
    cell is re-run through ``BatchRunner.run_frame`` with the job's
    :class:`SeedBlock` offsets — i.e. exactly what ``run_sweep`` would
    execute — and compared column-for-column against the assembled
    store frames.
    """
    from repro.api.batch import BatchRunner

    runner = BatchRunner()
    job = result.job
    for cell, frame in zip(job.cells, result.frames):
        block = SeedBlock(job.entropy, job.spawn_key,
                          job.cell_offset(cell.index), job.trials)
        if runner.run_frame(cell.spec, job.trials, seed=block) != frame:
            return False
    return True
