"""Sharded, resumable execution of sweep jobs over the result store.

The executor turns a :class:`~repro.serve.job.SweepJob` into chunk-
granular work units and drives them to completion with three
properties the in-process :func:`~repro.api.sweep.run_sweep` loop does
not have:

* **Sharding with a pluggable dispatch seam.**  Chunks fan out across a
  :class:`PoolDispatcher` (a ``concurrent.futures`` process pool) by
  default; anything implementing the two-method :class:`Dispatcher`
  surface (``submit``/``restart``) can stand in — the seam a future
  multi-node dispatcher plugs into, and the one the tests use to
  count/instrument chunk execution.
* **Crash survival at every level.**  A finished chunk is atomically in
  the content-addressed store before it is acknowledged, so a SIGKILLed
  *worker* costs one in-flight chunk (detected as a broken pool,
  requeued, pool restarted), and a SIGKILLed *coordinator* costs only
  the chunks in flight at death — a resume replans, sees the stored
  chunks, and computes the remainder.  Results are bit-identical either
  way, because chunk identity (spec, engine, absolute seed offset) is
  position-independent.
* **Streaming aggregation.**  Workers return each chunk's columnar
  summary (:class:`~repro.analysis.aggregate.RunningCellAggregate`
  sufficient statistics), the coordinator merges them per cell and
  persists the running tables with the job state — so a million-trial
  cell is queryable mid-run while the coordinator holds O(chunk) rows.

Cross-job dedup: before computing a chunk the coordinator checks the
store (another job may have produced it) and takes a *claim* on it;
chunks claimed by a live foreign process are deferred and re-checked, so
two concurrent jobs with overlapping grids compute each shared chunk
exactly once.

Chaos-test seams (used by the kill/resume tests, inert when unset):
``REPRO_SERVE_TEST_KILL_ONCE=<marker>`` makes a worker SIGKILL itself
before its first chunk (creating ``<marker>`` so it only dies once);
``REPRO_SERVE_TEST_CHUNK_DELAY=<seconds>`` sleeps before each chunk.
"""

from __future__ import annotations

import concurrent.futures
import os
import signal
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro._seedhash import SeedBlock
from repro.analysis.aggregate import RunningCellAggregate
from repro.api.compile import run_trials_frame
from repro.api.spec import TrialSpec
from repro.errors import ReproError
from repro.sim.frame import ResultFrame
from repro.serve.job import (
    ChunkTask,
    JobState,
    SweepJob,
    effective_state,
)
from repro.serve.store import ResultStore


class JobFailedError(ReproError):
    """A job ended in the ``failed`` state (error recorded on the state)."""


def _test_seams() -> None:
    """Honour the chaos-test environment seams (no-ops when unset)."""
    marker = os.environ.get("REPRO_SERVE_TEST_KILL_ONCE")
    if marker and not os.path.exists(marker):
        try:
            with open(marker, "x"):
                pass
        except OSError:
            pass  # uncreatable marker: the worker dies on every attempt
        os.kill(os.getpid(), signal.SIGKILL)
    delay = os.environ.get("REPRO_SERVE_TEST_CHUNK_DELAY")
    if delay:
        time.sleep(float(delay))


def run_chunk_task(payload: Dict) -> Dict:
    """Compute one chunk and store it (the worker entry point).

    Rebuilds the cell spec, derives the chunk's per-trial seeds as a
    :class:`~repro._seedhash.SeedBlock` at the task's *absolute* child
    offset (the identical identities ``run_sweep`` would hand the batch
    runner), replays them through
    :func:`~repro.api.compile.run_trials_frame` on the cell-resolved
    engine, writes the frame atomically into the store, and returns the
    chunk's streaming-aggregate summary — the frame itself never crosses
    the pipe.
    """
    _test_seams()
    started = time.perf_counter()
    store = ResultStore(payload["store_root"])
    key = payload["key"]
    stored = store.get(key)
    if stored is not None and len(stored) == payload["count"]:
        frame = stored  # another job raced us to it: adopt, don't recompute
        computed = False
    else:
        spec = TrialSpec.from_dict(payload["spec"])
        block = SeedBlock(payload["entropy"], tuple(payload["spawn_key"]),
                          payload["offset"], payload["count"])
        frame = run_trials_frame(spec, block, engine=payload["engine"])
        store.put(key, frame)
        computed = True
    summary = RunningCellAggregate()
    summary.fold_frame(frame)
    return {"key": key, "cell_index": payload["cell_index"],
            "count": payload["count"], "computed": computed,
            "seconds": time.perf_counter() - started,
            "summary": summary.to_dict()}


def _task_payload(job: SweepJob, task: ChunkTask, store: ResultStore) -> Dict:
    return {
        "store_root": store.root,
        "key": task.key,
        "cell_index": task.cell_index,
        "spec": job.cells[task.cell_index].spec.to_dict(),
        "entropy": job.entropy,
        "spawn_key": list(job.spawn_key),
        "offset": task.offset,
        "count": task.count,
        "engine": task.engine,
    }


class Dispatcher:
    """The dispatch seam: something that runs chunk payloads.

    ``submit`` returns a ``concurrent.futures.Future``; ``restart`` is
    called after a broken-pool event and must leave the dispatcher
    usable again.  A multi-node dispatcher (or an instrumented test
    double) implements these two methods.
    """

    def submit(self, payload: Dict) -> "concurrent.futures.Future":
        raise NotImplementedError

    def restart(self) -> None:  # pragma: no cover - interface default
        pass

    def shutdown(self) -> None:  # pragma: no cover - interface default
        pass


class InlineDispatcher(Dispatcher):
    """Runs chunks synchronously in the coordinator process.

    The ``workers<=1`` path: no pool, no pickling, and the chunk
    function is swappable (the dedup/concurrency tests count executions
    through it).
    """

    def __init__(self, chunk_fn: Callable[[Dict], Dict] = run_chunk_task
                 ) -> None:
        self.chunk_fn = chunk_fn

    def submit(self, payload: Dict) -> "concurrent.futures.Future":
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(self.chunk_fn(payload))
        except BaseException as exc:  # noqa: BLE001 - forwarded to caller
            future.set_exception(exc)
        return future


class PoolDispatcher(Dispatcher):
    """Fans chunks across a ``ProcessPoolExecutor``.

    A worker SIGKILL breaks the whole pool (every pending future raises
    ``BrokenProcessPool``); the job runner catches that, calls
    :meth:`restart`, and requeues the unfinished chunks — the pool is
    rebuilt from scratch, so one bad worker never wedges the job.
    """

    def __init__(self, workers: int,
                 chunk_fn: Callable[[Dict], Dict] = run_chunk_task) -> None:
        self.workers = max(1, int(workers))
        self.chunk_fn = chunk_fn
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = \
            None

    def _pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._executor is None:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0])
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx)
        return self._executor

    def submit(self, payload: Dict) -> "concurrent.futures.Future":
        return self._pool().submit(self.chunk_fn, payload)

    def restart(self) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


@dataclass
class JobResult:
    """An assembled job: one frame per cell, in grid order."""

    job: SweepJob
    frames: List[ResultFrame]
    state: JobState

    def __iter__(self):
        return iter(zip(self.job.cells, self.frames))

    def frame(self, **labels) -> ResultFrame:
        """The unique cell frame whose labels match (string-valued)."""
        matches = [frame for cell, frame in self
                   if all(cell.label(name) == str(value)
                          for name, value in labels.items())]
        if len(matches) != 1:
            raise KeyError(
                f"{labels} matches {len(matches)} cells (need exactly 1)")
        return matches[0]


class JobRunner:
    """Drives one job from its current store state to ``done``.

    Safe to call on a fresh job, a ``partial`` job after any crash, or
    an already-``done`` job (instant no-op replan).  ``workers`` picks
    the dispatcher: ``<= 1`` runs chunks inline, ``>= 2`` fans out over
    a process pool; pass ``dispatcher`` to override entirely.
    """

    #: Broken-pool events one chunk may survive: a chunk that has lost
    #: its worker this many times fails the job instead of requeueing
    #: (the boundary is pinned by the injected-kill regression test).
    MAX_CHUNK_RETRIES = 3

    #: Seconds between re-checks of chunks claimed by a foreign job.
    CLAIM_POLL_SECONDS = 0.05

    def __init__(self, store: ResultStore, workers: Optional[int] = None,
                 dispatcher: Optional[Dispatcher] = None,
                 on_event: Optional[Callable[[Dict], None]] = None) -> None:
        self.store = store
        if dispatcher is None:
            dispatcher = (PoolDispatcher(workers) if workers and workers > 1
                          else InlineDispatcher())
        self.dispatcher = dispatcher
        self.on_event = on_event

    # -- public ------------------------------------------------------------

    def run(self, job: SweepJob) -> JobResult:
        job.save(self.store)
        state = JobState.load(self.store, job.job_id)
        try:
            self._execute(job, state)
        except (KeyboardInterrupt, SystemExit):
            # Interrupted, not failed: leave the recorded state
            # resumable (a dead runner pid reads as ``partial``).
            state.runner_pid = None
            state.save(self.store, job.job_id)
            raise
        except Exception as exc:
            if state.state != "failed":
                state.state = "failed"
                state.error = f"{type(exc).__name__}: {exc}"
                state.runner_pid = None
                state.save(self.store, job.job_id)
            raise
        finally:
            self.dispatcher.shutdown()
        return JobResult(job=job, frames=assemble_frames(self.store, job),
                         state=state)

    # -- internals ---------------------------------------------------------

    def _emit(self, state: JobState, kind: str, **fields) -> None:
        event = state.record_event(kind, **fields)
        if self.on_event is not None:
            self.on_event(event)

    def _execute(self, job: SweepJob, state: JobState) -> None:
        plan = job.chunks()
        cell_chunk_totals: Dict[int, int] = {}
        for task in plan:
            cell_chunk_totals[task.cell_index] = \
                cell_chunk_totals.get(task.cell_index, 0) + 1
        # Aggregates always rebuild from the store at run start (the
        # persisted copy in state.json exists for mid-run status queries
        # only): a crashed run may have stored chunks it never recorded,
        # and a foreign job may have stored chunks this job never saw —
        # refolding every stored chunk once is the only bookkeeping that
        # stays exact across both.
        aggregates = {index: RunningCellAggregate()
                      for index in range(len(job.cells))}
        run_started = time.monotonic()
        progress = {
            "chunks_done": 0, "trials_done": 0, "run_trials": 0,
            "cell_chunks_done": {index: 0 for index in cell_chunk_totals},
        }

        def note_done(task: ChunkTask, summary: Optional[Dict],
                      computed: bool, seconds: float) -> None:
            progress["chunks_done"] += 1
            progress["trials_done"] += task.count
            progress["cell_chunks_done"][task.cell_index] += 1
            agg = aggregates[task.cell_index]
            # note_done runs exactly once per chunk per run, so each
            # trial folds exactly once: from the worker's summary when
            # the chunk was just computed, from the stored frame when it
            # was adopted (prior run or foreign job).
            if summary is not None:
                agg.merge(RunningCellAggregate.from_dict(summary))
            else:
                frame = self.store.get(
                    task.key, spec=job.cells[task.cell_index].spec)
                if frame is not None:
                    agg.fold_frame(frame)
            state.aggregates[str(task.cell_index)] = agg.to_dict()
            state.chunks_done = progress["chunks_done"]
            state.trials_done = progress["trials_done"]
            state.cells_done = sum(
                1 for index, total in cell_chunk_totals.items()
                if progress["cell_chunks_done"][index] == total)
            if computed:
                progress["run_trials"] += task.count
            elapsed = max(time.monotonic() - run_started, 1e-9)
            rate = progress["run_trials"] / elapsed
            remaining = state.trials_total - progress["trials_done"]
            self._emit(state, "chunk",
                       cell=task.cell_index, start=task.start,
                       count=task.count, computed=computed,
                       seconds=round(seconds, 4),
                       trials_done=progress["trials_done"],
                       trials_total=state.trials_total,
                       cells_done=state.cells_done,
                       trials_per_sec=round(rate, 1),
                       eta_s=(round(remaining / rate, 1) if rate > 0
                              else None))
            state.save(self.store, job.job_id)

        resumed = state.chunks_done or state.state in ("running", "failed")
        state.state = "running"
        state.runner_pid = os.getpid()
        state.started_at = state.started_at or time.time()
        state.chunks_total = len(plan)
        state.trials_total = job.total_trials
        state.cells_total = len(job.cells)
        state.chunks_done = state.trials_done = state.cells_done = 0
        state.error = None
        state.aggregates = {}
        already_stored = [t for t in plan if self.store.has(t.key)]
        if resumed and already_stored:
            self._emit(state, "resume", chunks_stored=len(already_stored),
                       chunks_total=len(plan))
        state.save(self.store, job.job_id)

        pending: List[Tuple[ChunkTask, int]] = []  # (task, retries)
        waiting: List[ChunkTask] = []  # claimed by a live foreign runner
        for task in plan:
            if self.store.has(task.key):
                note_done(task, summary=None, computed=False, seconds=0.0)
            else:
                pending.append((task, 0))

        futures: Dict[concurrent.futures.Future, Tuple[ChunkTask, int]] = {}
        claimed: List[str] = []
        try:
            while pending or waiting or futures:
                # 1. dispatch everything dispatchable
                still_pending: List[Tuple[ChunkTask, int]] = []
                for index, (task, retries) in enumerate(pending):
                    if self.store.has(task.key):
                        note_done(task, None, computed=False, seconds=0.0)
                    elif self.store.claim(task.key):
                        claimed.append(task.key)
                        try:
                            future = self.dispatcher.submit(
                                _task_payload(job, task, self.store))
                        except BrokenProcessPool:
                            # Pool already broken from an earlier death:
                            # rebuild it and retry this chunk next pass.
                            self.store.release(task.key)
                            self.dispatcher.restart()
                            still_pending.append((task, retries + 1))
                            continue
                        futures[future] = (task, retries)
                        if future.done():
                            # Synchronous dispatch (InlineDispatcher):
                            # harvest now so progress and streaming
                            # aggregates land chunk by chunk instead of
                            # all at once after the last chunk.
                            still_pending.extend(pending[index + 1:])
                            break
                    elif self.store.claim_holder_alive(task.key):
                        waiting.append(task)
                    else:
                        still_pending.append((task, retries))
                pending = still_pending
                # 2. harvest completions
                if futures:
                    done, _ = concurrent.futures.wait(
                        futures, timeout=self.CLAIM_POLL_SECONDS,
                        return_when=concurrent.futures.FIRST_COMPLETED)
                    for future in done:
                        task, retries = futures.pop(future)
                        try:
                            outcome = future.result()
                        except BrokenProcessPool:
                            self._requeue_broken(
                                job, state, futures, pending, task, retries)
                            break
                        except Exception as exc:
                            state.state = "failed"
                            state.error = (f"chunk (cell={task.cell_index}, "
                                           f"start={task.start}): "
                                           f"{type(exc).__name__}: {exc}")
                            state.runner_pid = None
                            state.save(self.store, job.job_id)
                            raise JobFailedError(state.error) from exc
                        self.store.release(task.key)
                        if task.key in claimed:
                            claimed.remove(task.key)
                        note_done(task, outcome["summary"],
                                  computed=outcome["computed"],
                                  seconds=outcome["seconds"])
                # 3. re-check chunks a foreign job is computing
                if waiting:
                    still_waiting: List[ChunkTask] = []
                    for task in waiting:
                        if self.store.has(task.key):
                            note_done(task, None, computed=False,
                                      seconds=0.0)
                        elif self.store.claim_holder_alive(task.key):
                            still_waiting.append(task)
                        else:  # holder died: take it over
                            pending.append((task, 0))
                    waiting = still_waiting
                    if still_waiting and not futures and not pending:
                        time.sleep(self.CLAIM_POLL_SECONDS)
        finally:
            for key in claimed:
                self.store.release(key)

        state.state = "done"
        state.runner_pid = None
        self._emit(state, "done", trials_total=state.trials_total,
                   chunks_total=state.chunks_total,
                   seconds=round(time.monotonic() - run_started, 3))
        state.save(self.store, job.job_id)

    def _requeue_broken(self, job: SweepJob, state: JobState, futures,
                        pending, task: ChunkTask, retries: int) -> None:
        """A worker died: requeue every unfinished chunk, rebuild the pool."""
        unfinished = [(task, retries + 1)]
        for future, (other, other_retries) in list(futures.items()):
            future.cancel()
            unfinished.append((other, other_retries + 1))
        futures.clear()
        for key in {t.key for t, _ in unfinished}:
            self.store.release(key)
        over = [t for t, r in unfinished if r >= self.MAX_CHUNK_RETRIES]
        if over:
            state.state = "failed"
            state.error = (f"chunk (cell={over[0].cell_index}, "
                           f"start={over[0].start}) lost its worker "
                           f"{self.MAX_CHUNK_RETRIES} times; giving up")
            state.runner_pid = None
            state.save(self.store, job.job_id)
            raise JobFailedError(state.error)
        pending.extend(unfinished)
        self._emit(state, "worker_died", requeued=len(unfinished))
        state.save(self.store, job.job_id)
        self.dispatcher.restart()


def assemble_frames(store: ResultStore, job: SweepJob) -> List[ResultFrame]:
    """One frame per cell, concatenated from the cell's stored chunks.

    Chunk concatenation in grid order reproduces
    ``BatchRunner.run_frame`` output exactly (the pool path is the same
    concatenation, pinned bit-identical to serial execution), so the
    assembled frames match :func:`~repro.api.sweep.run_sweep`'s.
    """
    frames = []
    for cell in job.cells:
        parts = []
        for task in job.cell_chunks(cell):
            frame = store.get(task.key, spec=cell.spec)
            if frame is None or len(frame) != task.count:
                raise KeyError(
                    f"job {job.job_id} is incomplete: missing chunk "
                    f"(cell={task.cell_index}, start={task.start}); "
                    "resume it before fetching the result")
            parts.append(frame)
        frames.append(ResultFrame.concat(parts, spec=cell.spec))
    return frames


def load_result(store: ResultStore, job_id: str) -> JobResult:
    """Assemble a stored job's result (raises if chunks are missing)."""
    job = SweepJob.load(store, job_id)
    state = JobState.load(store, job_id)
    return JobResult(job=job, frames=assemble_frames(store, job),
                     state=state)


def job_status(store: ResultStore, job_id: str) -> Dict:
    """The queryable status document for one job."""
    job = SweepJob.load(store, job_id)
    state = JobState.load(store, job_id)
    stored = sum(1 for task in job.chunks() if store.has(task.key))
    last_chunk = next((e for e in reversed(state.events)
                       if e.get("type") == "chunk"), None)
    return {
        "job_id": job_id,
        "state": effective_state(state),
        "chunks_done": state.chunks_done,
        "chunks_stored": stored,
        "chunks_total": state.chunks_total or len(job.chunks()),
        "trials_done": state.trials_done,
        "trials_total": job.total_trials,
        "cells_done": state.cells_done,
        "cells_total": len(job.cells),
        "trials_per_sec": (last_chunk or {}).get("trials_per_sec"),
        "eta_s": (last_chunk or {}).get("eta_s"),
        "error": state.error,
        "updated_at": state.updated_at,
        "events": state.events[-10:],
    }


def verify_result(result: JobResult) -> bool:
    """Recompute every cell in-process and compare frames exactly.

    The acceptance gate behind ``repro result --check-local``: each
    cell is re-run through ``BatchRunner.run_frame`` with the job's
    :class:`SeedBlock` offsets — i.e. exactly what ``run_sweep`` would
    execute — and compared column-for-column against the assembled
    store frames.
    """
    from repro.api.batch import BatchRunner

    runner = BatchRunner()
    job = result.job
    for cell, frame in zip(job.cells, result.frames):
        block = SeedBlock(job.entropy, job.spawn_key,
                          job.cell_offset(cell.index), job.trials)
        if runner.run_frame(cell.spec, job.trials, seed=block) != frame:
            return False
    return True
