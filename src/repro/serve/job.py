"""The sweep-job model: persisted, content-addressed, chunk-granular.

A :class:`SweepJob` is a :class:`~repro.api.sweep.SweepSpec` promoted to
a *submitted* unit of work:

* the grid is compiled to concrete cells at submission time (each cell's
  :class:`~repro.api.spec.TrialSpec` dict plus its axis labels), so the
  job document is self-contained JSON — no live objects, no axis
  machinery — and the job id is a content hash of exactly what will run:
  ``(code version, cell specs, trials, root seed identity, chunk size)``.
  Submitting the same sweep twice yields the same job id, which is how
  the server deduplicates whole jobs;
* the root seed is restricted to the *analytic* lane (ints and fresh
  ``SeedSequence`` roots): every chunk's per-trial seeds derive from a
  :class:`~repro._seedhash.SeedBlock` at an absolute child offset, the
  exact identities :func:`~repro.api.sweep.run_sweep` uses — which is
  what makes job results bit-identical to the in-process sweep (live
  ``Generator`` roots are refused; their spawn counter cannot survive a
  coordinator restart);
* execution granularity is the :class:`ChunkTask`: a contiguous block of
  at most ``chunk_size`` trials of one cell, each content-addressed in
  the shared :class:`~repro.serve.store.ResultStore`.  The engine is
  resolved once per cell from the *cell's* trial count
  (:func:`~repro.api.batch.batch_engine`) and recorded on every task, so
  chunking never changes the drawn streams.

Job lifecycle state lives in a small ``state.json`` next to the job
document (states: ``queued``/``running``/``partial``/``done``/
``failed``/``cancelled``), updated atomically after every chunk;
``partial`` is never stored — it is the *effective* state reported for
a job whose recorded runner died (SIGKILL, OOM, reboot) and is exactly
the state a resume picks up from.  Runner liveness compares the
recorded ``(pid, start marker)`` pair, never the bare pid, so a
recycled pid cannot masquerade as a live coordinator.  Per-chunk
:class:`RetryState` (attempts, last error, next-eligible time) is
persisted alongside, so a resume keeps honouring retry budgets and
backoff schedules across coordinator restarts.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._rng import SeedLike
from repro.errors import ConfigurationError
from repro.api.batch import batch_engine
from repro.api.spec import TrialSpec
from repro.api.sweep import CACHE_CODE_VERSION, SweepSpec
from repro.serve.store import (
    ResultStore,
    atomic_write_json,
    chunk_key,
    process_start_marker,
)

#: Trials per chunk when the submitter does not choose: small enough
#: that a million-trial cell streams in O(chunk) memory and a killed
#: run loses at most one chunk per worker, large enough to amortize
#: per-chunk seeding/dispatch overhead (and to keep the lockstep
#: kernel's trial axis wide).
DEFAULT_CHUNK_SIZE = 4096

JOB_STATES = ("queued", "running", "partial", "done", "failed", "cancelled")


@dataclass(frozen=True)
class JobCell:
    """One compiled grid cell of a job: its spec and display labels."""

    index: int
    spec: TrialSpec
    labels: Tuple[Tuple[str, str], ...]

    def label(self, name: str) -> str:
        for key, value in self.labels:
            if key == name:
                return value
        raise KeyError(name)

    def to_dict(self) -> Dict:
        return {"index": self.index, "spec": self.spec.to_dict(),
                "labels": [list(pair) for pair in self.labels]}

    @classmethod
    def from_dict(cls, data: Dict) -> "JobCell":
        return cls(index=int(data["index"]),
                   spec=TrialSpec.from_dict(data["spec"]),
                   labels=tuple((str(k), str(v))
                                for k, v in data["labels"]))


@dataclass(frozen=True)
class ChunkTask:
    """One dispatchable work unit: ``count`` trials of one cell.

    ``offset`` is the absolute child-seed index of the chunk's first
    trial (cell offset + chunk start), ``key`` its content address in
    the result store, ``engine`` the cell-level resolved engine.
    """

    cell_index: int
    start: int
    count: int
    offset: int
    engine: Optional[str]
    key: str


@dataclass(frozen=True)
class SweepJob:
    """A persisted, content-addressed sweep job."""

    job_id: str
    cells: Tuple[JobCell, ...]
    trials: int
    entropy: int
    spawn_key: Tuple[int, ...]
    chunk_size: int
    code_version: str = CACHE_CODE_VERSION

    # -- construction ------------------------------------------------------

    @classmethod
    def from_sweep(cls, sweep: SweepSpec, seed: SeedLike = None,
                   chunk_size: Optional[int] = None) -> "SweepJob":
        """Compile a sweep + root seed into a submittable job.

        ``seed`` takes the analytic lane only: an int, ``None`` (fresh OS
        entropy, recorded so the job stays reproducible), or a *fresh*
        ``SeedSequence``.  Live ``Generator`` roots and roots with spawn
        history are refused — a job must be recomputable from its
        document alone, on any host, after any number of crashes.
        """
        if isinstance(seed, np.random.Generator):
            raise ConfigurationError(
                "sweep jobs need a value seed (int, None, or a fresh "
                "SeedSequence); a live Generator root's spawn counter "
                "cannot be persisted or resumed — pass the seed it was "
                "built from instead")
        if isinstance(seed, np.random.SeedSequence):
            seq = seed
            if seq.n_children_spawned:
                raise ConfigurationError(
                    "sweep jobs need a fresh SeedSequence root (this one "
                    "has already spawned children)")
        else:
            seq = np.random.SeedSequence(seed)
        entropy = seq.entropy
        if not isinstance(entropy, int):
            raise ConfigurationError(
                f"root entropy must be an int, got {type(entropy).__name__}")
        chunk = int(chunk_size) if chunk_size else DEFAULT_CHUNK_SIZE
        if chunk <= 0:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk}")
        cells = []
        for cell in sweep.cells():
            if not cell.spec.serializable:
                raise ConfigurationError(
                    f"cell {cell.labels} wraps opaque live components and "
                    "cannot be submitted as a job; make the spec "
                    "declarative or run it with run_sweep(workers=1)")
            if cell.spec.record:
                raise ConfigurationError(
                    "record=True specs cannot be submitted as jobs (chunk "
                    "frames cannot carry history recorders)")
            cells.append(JobCell(index=cell.index, spec=cell.spec,
                                 labels=cell.labels))
        job = cls(job_id="", cells=tuple(cells), trials=sweep.trials,
                  entropy=entropy, spawn_key=tuple(seq.spawn_key),
                  chunk_size=chunk)
        object.__setattr__(job, "job_id", job.content_id())
        return job

    def content_id(self) -> str:
        record = {
            "code": self.code_version,
            "trials": self.trials,
            "entropy": str(self.entropy),
            "spawn_key": list(self.spawn_key),
            "chunk_size": self.chunk_size,
            "cells": [cell.to_dict() for cell in self.cells],
        }
        blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    # -- chunk plan --------------------------------------------------------

    def cell_offset(self, cell_index: int) -> int:
        """The absolute child-seed offset of a cell's first trial.

        Identical to :func:`~repro.api.sweep.run_sweep`'s per-cell
        offsets for a fresh root (``spawned == 0``): grid order, one
        block of ``trials`` children per cell.
        """
        return cell_index * self.trials

    def cell_chunks(self, cell: JobCell) -> List[ChunkTask]:
        engine = batch_engine(cell.spec, self.trials)
        base = self.cell_offset(cell.index)
        spec_dict = cell.spec.to_dict()
        tasks = []
        for start in range(0, self.trials, self.chunk_size):
            count = min(self.chunk_size, self.trials - start)
            tasks.append(ChunkTask(
                cell_index=cell.index, start=start, count=count,
                offset=base + start, engine=engine,
                key=chunk_key(spec_dict, engine, self.entropy,
                              self.spawn_key, base + start, count)))
        return tasks

    def chunks(self) -> List[ChunkTask]:
        """Every chunk of every cell, in (cell, chunk) grid order."""
        out: List[ChunkTask] = []
        for cell in self.cells:
            out.extend(self.cell_chunks(cell))
        return out

    @property
    def total_trials(self) -> int:
        return self.trials * len(self.cells)

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "job_id": self.job_id,
            "code": self.code_version,
            "trials": self.trials,
            "entropy": str(self.entropy),
            "spawn_key": list(self.spawn_key),
            "chunk_size": self.chunk_size,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SweepJob":
        job = cls(job_id=str(data["job_id"]),
                  cells=tuple(JobCell.from_dict(c) for c in data["cells"]),
                  trials=int(data["trials"]),
                  entropy=int(data["entropy"]),
                  spawn_key=tuple(int(v) for v in data["spawn_key"]),
                  chunk_size=int(data["chunk_size"]),
                  code_version=str(data["code"]))
        expected = job.content_id()
        if job.job_id != expected:
            raise ConfigurationError(
                f"job document id {job.job_id!r} does not match its "
                f"content (expected {expected!r}); refusing to run a "
                "tampered or hand-edited job")
        return job

    def save(self, store: ResultStore) -> str:
        job_dir = store.job_dir(self.job_id)
        path = os.path.join(job_dir, "job.json")
        if not os.path.exists(path):
            atomic_write_json(path, self.to_dict())
        return job_dir

    @classmethod
    def load(cls, store: ResultStore, job_id: str) -> "SweepJob":
        path = os.path.join(store.job_dir(job_id), "job.json")
        if not os.path.exists(path):
            raise KeyError(f"no job {job_id!r} in {store.root}")
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    @staticmethod
    def list_ids(store: ResultStore) -> List[str]:
        if not os.path.isdir(store.jobs_dir):
            return []
        return sorted(
            name for name in os.listdir(store.jobs_dir)
            if os.path.exists(os.path.join(store.jobs_dir, name, "job.json")))


@dataclass
class RetryState:
    """The persisted retry ledger of one chunk.

    Promoted from a bare in-memory counter: ``attempts`` counts lost
    workers/timeouts so far, ``last_error`` names the most recent loss,
    and ``next_eligible_at`` (wall clock) is when the chunk's
    exponential-backoff window reopens.  Lives in
    ``JobState.retries[chunk_key]`` so the budget survives coordinator
    restarts — a chunk cannot reset its own count by crashing the
    coordinator.
    """

    attempts: int = 0
    last_error: Optional[str] = None
    next_eligible_at: float = 0.0

    def to_dict(self) -> Dict:
        return {"attempts": self.attempts, "last_error": self.last_error,
                "next_eligible_at": self.next_eligible_at}

    @classmethod
    def from_dict(cls, data: Dict) -> "RetryState":
        return cls(attempts=int(data.get("attempts", 0)),
                   last_error=data.get("last_error"),
                   next_eligible_at=float(data.get("next_eligible_at", 0.0)))


@dataclass
class JobState:
    """The mutable lifecycle document of one job (``state.json``).

    ``state`` only ever stores ``queued``/``running``/``done``/
    ``failed``/``cancelled``; the *effective* state adds ``partial``
    for a recorded runner that is no longer alive
    (:func:`effective_state`).  The whole document — including the
    bounded event ring — is written through
    :func:`~repro._atomicio.atomic_write_json` on every save, so a
    coordinator killed mid-append can never tear the event section (a
    reader sees the previous complete document or the new one, nothing
    in between).
    """

    state: str = "queued"
    chunks_done: int = 0
    chunks_total: int = 0
    trials_done: int = 0
    trials_total: int = 0
    cells_done: int = 0
    cells_total: int = 0
    error: Optional[str] = None
    runner_pid: Optional[int] = None
    #: Start marker of the runner's pid incarnation (see
    #: :func:`~repro.serve.store.process_start_marker`): liveness checks
    #: compare (pid, start), so a recycled pid reads as dead.
    runner_start: Optional[str] = None
    #: Lease-owner id of the recorded runner (diagnostics).
    runner_owner: Optional[str] = None
    started_at: Optional[float] = None
    updated_at: Optional[float] = None
    events: List[Dict] = field(default_factory=list)
    aggregates: Dict[str, Dict] = field(default_factory=dict)
    #: chunk key -> persisted RetryState dict (only chunks that have
    #: lost at least one worker; cleared when the chunk completes).
    retries: Dict[str, Dict] = field(default_factory=dict)

    #: Events kept in the ring (chunk completions, resumes, requeues).
    #: The bound is enforced on every append, so the state file — and
    #: every status response embedding it — stays O(1) regardless of
    #: how long or how turbulent the job's life has been.
    MAX_EVENTS = 50

    def record_event(self, kind: str, **fields) -> Dict:
        event = {"type": kind, "t": round(time.time(), 3), **fields}
        self.events.append(event)
        del self.events[:-self.MAX_EVENTS]
        return event

    def retry_state(self, key: str) -> RetryState:
        data = self.retries.get(key)
        return RetryState.from_dict(data) if data else RetryState()

    def set_retry_state(self, key: str, retry: RetryState) -> None:
        self.retries[key] = retry.to_dict()

    def clear_retry_state(self, key: str) -> None:
        self.retries.pop(key, None)

    def to_dict(self) -> Dict:
        return {
            "state": self.state, "chunks_done": self.chunks_done,
            "chunks_total": self.chunks_total,
            "trials_done": self.trials_done,
            "trials_total": self.trials_total,
            "cells_done": self.cells_done, "cells_total": self.cells_total,
            "error": self.error, "runner_pid": self.runner_pid,
            "runner_start": self.runner_start,
            "runner_owner": self.runner_owner,
            "started_at": self.started_at, "updated_at": self.updated_at,
            "events": self.events, "aggregates": self.aggregates,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobState":
        state = cls()
        for name in ("state", "chunks_done", "chunks_total", "trials_done",
                     "trials_total", "cells_done", "cells_total", "error",
                     "runner_pid", "runner_start", "runner_owner",
                     "started_at", "updated_at", "events", "aggregates",
                     "retries"):
            if name in data:
                setattr(state, name, data[name])
        # enforce the ring bound on load too: a foreign writer may have
        # appended without trimming
        del state.events[:-cls.MAX_EVENTS]
        return state

    def save(self, store: ResultStore, job_id: str) -> None:
        self.updated_at = round(time.time(), 3)
        atomic_write_json(os.path.join(store.job_dir(job_id), "state.json"),
                          self.to_dict())

    @classmethod
    def load(cls, store: ResultStore, job_id: str) -> "JobState":
        path = os.path.join(store.job_dir(job_id), "state.json")
        if not os.path.exists(path):
            return cls()
        try:
            with open(path) as handle:
                return cls.from_dict(json.load(handle))
        except (OSError, ValueError):
            # A torn state file cannot happen (atomic writes) but a
            # foreign/corrupt one should not brick the job: progress is
            # recoverable from the store itself.
            return cls()


def _pid_alive(pid: Optional[int]) -> bool:
    if not pid or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _runner_alive(state: JobState) -> bool:
    """Is the recorded runner *incarnation* still alive?

    Compares the recorded process start marker, not just the pid: a
    pid recycled onto an unrelated process (the classic pid-reuse
    hazard) has a different marker and reads as dead.
    """
    if not _pid_alive(state.runner_pid):
        return False
    if state.runner_start is not None:
        current = process_start_marker(state.runner_pid)
        if current is not None and current != state.runner_start:
            return False
    return True


def effective_state(state: JobState) -> str:
    """The state a reader should report, crash-awareness included.

    A stored ``running`` whose recorded runner is dead — pid gone, or
    pid recycled onto a different process (start marker mismatch) — is
    reported as ``partial``: the job was interrupted (worker or
    coordinator SIGKILL, OOM, reboot) and every finished chunk is
    safely in the store waiting for a resume.
    """
    if state.state == "running" and not _runner_alive(state):
        return "partial"
    return state.state
