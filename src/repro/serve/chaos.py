"""Deterministic fault injection for the sweep service.

The failure semantics of :mod:`repro.serve` — lease election, retry
budgets, backoff, torn-write repair, cancellation, coordinator resume —
are claims about *adversarial schedules*, and adversarial schedules are
exactly what ad-hoc tests never reach.  This module makes the adversary
a first-class, **seeded** object:

* a :class:`FaultPlan` is a serializable list of
  :class:`FaultInjection` records generated deterministically from a
  seed (same seed, same plan, forever — the chaos suite is a property
  grid, not a flake generator);
* :func:`run_with_chaos` executes a job under the plan, injecting each
  fault at its precise seam, resuming through coordinator deaths, and
  returning the assembled result plus a ledger of what actually fired.

The contract the chaos suite enforces (ISSUE 9's acceptance bar): for
**any** plan, the job either completes with frames **bit-identical** to
:func:`~repro.api.sweep.run_sweep` — torn bytes can never leak into a
result because every read path validates — or surfaces a *typed*
terminal state (:class:`~repro.serve.executor.JobFailedError` with the
retry budget exhausted, :class:`~repro.errors.JobCancelledError` after a
cancel).  No hangs, no silent data loss, no third outcome.

Fault kinds and the seam each one drives:

``kill_worker``
    The dispatched future fails with ``BrokenProcessPool`` before the
    chunk computes — a worker SIGKILLed mid-chunk.  Exercises requeue,
    the persisted :class:`~repro.serve.job.RetryState` budget, and the
    seeded-jitter backoff schedule.
``torn_write``
    The chunk's object write dies mid-rename, leaving truncated or
    bit-flipped bytes *under the final name* (the way a non-atomic
    foreign writer or bit rot would; injected through
    :func:`repro._atomicio.set_write_fault_hook`).  Exercises
    corruption-is-a-miss on every read path and
    :meth:`~repro.serve.store.ResultStore.put`'s repair-by-overwrite.
``stale_claim``
    A forged lease squats the chunk *before* the run: a dead pid with a
    future deadline, a live pid with an expired deadline, or a live pid
    with a wrong process-start marker (the pid-reuse hazard).  The
    coordinator must break all three and elect itself.
``frozen_heartbeat``
    The coordinator's lease renewals for the chunk are suppressed (the
    ``renew_filter`` seam) while the chunk runs past its lease
    half-life.  Exercises lease loss detection (``lease_lost`` event)
    and the idempotent-write guarantee that makes losing a lease
    harmless.
``slow_worker``
    The chunk stalls past the lease deadline (and past ``chunk_timeout``
    when one is set).  Exercises timeout → requeue, and the stale-lease
    re-election a second coordinator would perform.
``coordinator_crash``
    The coordinator dies *between* the chunk's store write and the
    acknowledging state save (raised out of the ``on_event`` hook as
    :class:`CoordinatorCrash`).  Exercises the resume path: the next
    run must adopt the stored-but-unacknowledged chunk and fold it
    exactly once.
"""

from __future__ import annotations

import json
import random
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import concurrent.futures

from repro._atomicio import set_write_fault_hook
from repro.errors import ConfigurationError
from repro.serve.executor import (
    Dispatcher,
    JobResult,
    JobRunner,
    run_chunk_task,
)
from repro.serve.job import SweepJob
from repro.serve.store import ResultStore

#: Every injectable fault kind, in the canonical order.
FAULT_KINDS = (
    "kill_worker",
    "torn_write",
    "stale_claim",
    "frozen_heartbeat",
    "slow_worker",
    "coordinator_crash",
)

#: Kinds that charge the target chunk's persisted retry budget.  A
#: generated plan keeps the per-chunk total strictly below
#: ``JobRunner.MAX_CHUNK_RETRIES`` so that *generated* plans are always
#: recoverable; hand-built plans may exceed it to drive the typed
#: ``failed`` terminal state.
_CHARGING_KINDS = ("kill_worker", "torn_write", "slow_worker")

_STALE_VARIANTS = ("dead_pid", "expired", "pid_reuse")
_TORN_VARIANTS = ("truncated", "bit_flipped")


class CoordinatorCrash(KeyboardInterrupt):
    """An injected coordinator death (between chunk store and ack).

    Subclasses ``KeyboardInterrupt`` deliberately: it must take the
    same escape path through :meth:`JobRunner.run` that a real SIGINT/
    SIGKILL takes — the resumable one, never the ``failed`` one.
    """


@dataclass(frozen=True)
class FaultInjection:
    """One fault: a kind, the chunk ordinal it targets, and a variant."""

    kind: str
    chunk: int
    variant: Optional[str] = None

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "chunk": self.chunk,
                "variant": self.variant}

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultInjection":
        return cls(kind=str(data["kind"]), chunk=int(data["chunk"]),
                   variant=data.get("variant"))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable schedule of faults for one job run.

    ``generate`` is a pure function of ``(seed, chunk_count, kinds)``:
    the chaos suite's property grid iterates seeds, and any failure
    reproduces from its seed alone.  Round-trips through JSON so a CI
    failure artifact can carry the exact plan that broke.
    """

    seed: int
    faults: Tuple[FaultInjection, ...] = ()

    @classmethod
    def generate(cls, seed: int, chunk_count: int,
                 kinds: Tuple[str, ...] = FAULT_KINDS,
                 max_faults: int = 4) -> "FaultPlan":
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(f"unknown fault kind {kind!r}")
        if chunk_count <= 0:
            raise ConfigurationError("chunk_count must be >= 1")
        rng = random.Random(f"repro-chaos:{seed}")
        count = rng.randint(1, max(1, max_faults))
        charged: Dict[int, int] = {}
        faults: List[FaultInjection] = []
        for _ in range(count):
            kind = kinds[rng.randrange(len(kinds))]
            chunk = rng.randrange(chunk_count)
            if kind in _CHARGING_KINDS:
                budget = charged.get(chunk, 0)
                if budget >= JobRunner.MAX_CHUNK_RETRIES - 1:
                    continue  # keep generated plans recoverable
                charged[chunk] = budget + 1
            variant = None
            if kind == "stale_claim":
                variant = _STALE_VARIANTS[rng.randrange(
                    len(_STALE_VARIANTS))]
            elif kind == "torn_write":
                variant = _TORN_VARIANTS[rng.randrange(len(_TORN_VARIANTS))]
            faults.append(FaultInjection(kind=kind, chunk=chunk,
                                         variant=variant))
        return cls(seed=seed, faults=tuple(faults))

    def to_dict(self) -> Dict:
        return {"seed": self.seed,
                "faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(seed=int(data["seed"]),
                   faults=tuple(FaultInjection.from_dict(f)
                                for f in data["faults"]))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        return cls.from_dict(json.loads(blob))


class ThreadDispatcher(Dispatcher):
    """Runs chunks in coordinator-process threads.

    The chaos harness's backend of choice: faults are injected as
    exceptions and hooks (no real SIGKILL needed), the
    ``_atomicio`` write-fault hook is visible to the "workers" (same
    process), and slow/frozen chunks genuinely overlap the
    coordinator's renew/timeout passes — while results stay exact,
    because chunk computation is pure and chunk storage idempotent.
    """

    def __init__(self, workers: int = 2,
                 chunk_fn: Callable[[Dict], Dict] = run_chunk_task) -> None:
        self.workers = max(1, int(workers))
        self.chunk_fn = chunk_fn
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = \
            None

    def submit(self, payload: Dict) -> "concurrent.futures.Future":
        if self._executor is None:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers)
        return self._executor.submit(self.chunk_fn, payload)

    def restart(self) -> None:
        # Threads cannot be terminated; stragglers run to completion and
        # their (idempotent) store writes land harmlessly.  Dropping the
        # executor reference is enough to stop waiting on them.
        self._executor = None

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class ChaosDispatcher(Dispatcher):
    """Wraps a dispatcher, injecting the plan's submit-time faults.

    ``kill_worker`` targets fail (once each) with ``BrokenProcessPool``
    before the chunk runs; ``slow_worker`` and ``frozen_heartbeat``
    targets are delayed past the lease deadline / half-life before
    computing (once each: a *requeued* chunk runs at normal speed, so a
    timeout-requeue never cascades into budget exhaustion).  Everything
    else passes straight through.
    """

    def __init__(self, inner: Dispatcher, kills: Dict[str, int],
                 delays: Dict[str, float],
                 fired: Optional[List[Dict]] = None) -> None:
        self.inner = inner
        # shared by reference: un-fired kills survive coordinator resumes
        self._kills = kills              # key -> remaining injected deaths
        self._delays = dict(delays)      # key -> seconds of stall
        self._lock = threading.Lock()
        self.fired = fired if fired is not None else []

    def submit(self, payload: Dict) -> "concurrent.futures.Future":
        key = payload["key"]
        with self._lock:
            remaining = self._kills.get(key, 0)
            if remaining > 0:
                self._kills[key] = remaining - 1
                self.fired.append({"kind": "kill_worker", "key": key})
                future: concurrent.futures.Future = \
                    concurrent.futures.Future()
                future.set_exception(BrokenProcessPool(
                    "chaos: worker killed mid-chunk"))
                return future
            delay = self._delays.pop(key, 0.0)
        if delay > 0.0:
            original = payload
            inner_fn = getattr(self.inner, "chunk_fn", run_chunk_task)

            def stalled(_payload=original, _delay=delay,
                        _fn=inner_fn) -> Dict:
                time.sleep(_delay)
                return _fn(_payload)

            return self._submit_fn(stalled)
        return self.inner.submit(payload)

    def _submit_fn(self, fn: Callable[[], Dict]
                   ) -> "concurrent.futures.Future":
        if isinstance(self.inner, ThreadDispatcher):
            if self.inner._executor is None:
                self.inner._executor = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.inner.workers)
            return self.inner._executor.submit(fn)
        # non-thread inner: run the stall inline (still correct, just
        # serial)
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(fn())
        except BaseException as exc:  # noqa: BLE001 - forwarded
            future.set_exception(exc)
        return future

    def restart(self) -> None:
        self.inner.restart()

    def shutdown(self) -> None:
        self.inner.shutdown()


class _TornWriteHook:
    """One-shot torn-write injector for targeted object paths.

    Installed through :func:`repro._atomicio.set_write_fault_hook`.
    When an armed chunk's object write comes through, it scribbles
    corrupted bytes **onto the final path** (truncated or bit-flipped —
    what a non-atomic writer killed mid-write leaves behind) and raises
    ``BrokenProcessPool`` so the chunk reads as a lost worker.  The
    retry must then treat the corrupt object as a miss, recompute, and
    repair it by overwrite.
    """

    def __init__(self, targets: Dict[str, str],
                 fired: Optional[List[Dict]] = None) -> None:
        self._targets = dict(targets)   # final object path -> variant
        self._lock = threading.Lock()
        self.fired = fired if fired is not None else []

    def __call__(self, path: str, data: bytes) -> None:
        with self._lock:
            variant = self._targets.pop(path, None)
        if variant is None:
            return
        if variant == "bit_flipped" and len(data) > 8:
            torn = bytearray(data)
            torn[len(torn) // 2] ^= 0xFF
            blob = bytes(torn)
        else:
            blob = data[:max(1, len(data) // 3)]
        import os

        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(blob)
        self.fired.append({"kind": "torn_write", "path": path,
                           "variant": variant})
        raise BrokenProcessPool("chaos: writer killed mid-write")


def _forge_stale_claim(store: ResultStore, key: str, variant: str) -> None:
    """Plant a lease file that must read as stale and be broken."""
    import os

    path = store.lock_path(key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    now = time.time()
    if variant == "dead_pid":
        lease = {"owner": "chaos-ghost", "token": "0" * 32,
                 "deadline": now + 3600, "pid": 2 ** 22 + 54321,
                 "start": "1"}
    elif variant == "expired":
        lease = {"owner": "chaos-expired", "token": "0" * 32,
                 "deadline": now - 1.0, "pid": os.getpid(),
                 "start": None}
    else:  # pid_reuse: live pid, wrong incarnation marker
        lease = {"owner": "chaos-recycled", "token": "0" * 32,
                 "deadline": now + 3600, "pid": os.getpid(),
                 "start": "chaos-not-this-incarnation"}
    with open(path, "w") as handle:
        json.dump(lease, handle)


@dataclass
class ChaosOutcome:
    """What a chaos run did: the result plus the fault ledger."""

    result: JobResult
    fired: List[Dict] = field(default_factory=list)
    resumes: int = 0
    plan: Optional[FaultPlan] = None


def run_with_chaos(store: ResultStore, job: SweepJob, plan: FaultPlan,
                   workers: int = 2, lease_seconds: float = 0.4,
                   chunk_timeout: Optional[float] = None,
                   chunk_fn: Callable[[Dict], Dict] = run_chunk_task,
                   max_resumes: Optional[int] = None) -> ChaosOutcome:
    """Run ``job`` under ``plan``, resuming through coordinator deaths.

    Returns a :class:`ChaosOutcome` whose ``result`` frames are — by
    the store's construction — bit-identical to what ``run_sweep``
    computes for the same sweep and seed, whatever the plan did.  A
    plan that legitimately exhausts a chunk's retry budget raises
    :class:`~repro.serve.executor.JobFailedError`; a plan is never
    allowed to hang (coordinator resumes are bounded by
    ``max_resumes``, default ``#crash faults + 2``).
    """
    chunks = job.chunks()
    fired: List[Dict] = []
    kills: Dict[str, int] = {}
    delays: Dict[str, float] = {}
    torn_paths: Dict[str, str] = {}
    frozen_keys = set()
    crash_targets = set()   # (cell_index, start) pairs, one-shot
    stall = max(lease_seconds * 1.5, 0.05)
    half_life_stall = max(lease_seconds * 0.75, 0.05)
    for fault in plan.faults:
        task = chunks[fault.chunk % len(chunks)]
        if fault.kind == "kill_worker":
            kills[task.key] = kills.get(task.key, 0) + 1
        elif fault.kind == "torn_write":
            torn_paths[store.object_path(task.key)] = \
                fault.variant or "truncated"
        elif fault.kind == "stale_claim":
            variant = fault.variant or "dead_pid"
            _forge_stale_claim(store, task.key, variant)
            fired.append({"kind": "stale_claim", "key": task.key,
                          "variant": variant})
        elif fault.kind == "frozen_heartbeat":
            frozen_keys.add(task.key)
            delays[task.key] = max(delays.get(task.key, 0.0),
                                   half_life_stall)
            fired.append({"kind": "frozen_heartbeat", "key": task.key})
        elif fault.kind == "slow_worker":
            delays[task.key] = max(delays.get(task.key, 0.0), stall)
            fired.append({"kind": "slow_worker", "key": task.key})
        elif fault.kind == "coordinator_crash":
            crash_targets.add((task.cell_index, task.start))
        else:
            raise ConfigurationError(f"unknown fault kind {fault.kind!r}")

    crash_budget = sum(1 for f in plan.faults
                       if f.kind == "coordinator_crash")
    if max_resumes is None:
        max_resumes = crash_budget + 2

    def on_event(event: Dict) -> None:
        if event.get("type") != "chunk":
            return
        target = (event.get("cell"), event.get("start"))
        if target in crash_targets:
            crash_targets.discard(target)
            fired.append({"kind": "coordinator_crash", "cell": target[0],
                          "start": target[1]})
            raise CoordinatorCrash(
                "chaos: coordinator died between store and ack")

    def renew_filter(key: str) -> bool:
        return key not in frozen_keys

    hook = _TornWriteHook(torn_paths, fired=fired)
    previous_hook = set_write_fault_hook(hook)
    resumes = 0
    try:
        while True:
            dispatcher = ChaosDispatcher(
                ThreadDispatcher(workers=workers, chunk_fn=chunk_fn),
                kills=kills, delays=delays, fired=fired)
            runner = JobRunner(store, dispatcher=dispatcher,
                               on_event=on_event,
                               lease_seconds=lease_seconds,
                               chunk_timeout=chunk_timeout,
                               renew_filter=renew_filter)
            try:
                result = runner.run(job)
            except CoordinatorCrash:
                resumes += 1
                if resumes > max_resumes:
                    raise
                continue
            return ChaosOutcome(result=result, fired=fired,
                                resumes=resumes, plan=plan)
    finally:
        set_write_fault_hook(previous_hook)
