"""CLI surface of the sweep service: ``python -m repro serve`` & friends.

Subcommands (dispatched from :mod:`repro.__main__`):

* ``serve``   — run the job API server over a result store.
* ``submit``  — submit a sweep (currently the ``figure1`` preset grid)
  either to a running server (``--url``) or straight into a local store
  (``--store``), where the job runs in-process; ``--sync`` blocks until
  done.  Submission is idempotent: the same sweep resolves to the same
  job id, and chunks shared with earlier jobs are adopted from the
  store instead of recomputed.
* ``status``  — one status document (state, progress, trials/s, ETA).
* ``watch``   — poll status until the job reaches a terminal state,
  printing one progress line per change.
* ``result``  — fetch the finished frames and print per-cell summary
  rows; ``--check-local`` recomputes every cell in process and verifies
  the stored frames are bit-identical.
* ``cancel``  — request a cooperative cancel: the coordinator stops
  dispatching, drains in-flight chunks, and parks the job in the
  terminal ``cancelled`` state (stored chunks are kept for dedup;
  resubmitting the job resumes it).
* ``gc``      — mark-and-sweep retention over the store: deletes
  unreferenced (and optionally old / size-pressure) chunk objects,
  stale lease files, and orphaned temp files; ``--dry-run`` reports
  without deleting.  Local mode only (retention is an operator action
  on the store, not a job-API verb).

Every subcommand accepts ``--store DIR`` (local mode) or ``--url URL``
(remote mode); output is line-oriented text by default, ``--json`` where
a structured document exists.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.errors import ReproError


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--store", metavar="DIR",
                        help="local result-store directory (in-process mode)")
    target.add_argument("--url", metavar="URL",
                        help="base URL of a running `repro serve` endpoint")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="sharded, streaming, resumable sweep service")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the job API server")
    serve.add_argument("--store", required=True, metavar="DIR")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--workers", type=int, default=None,
                       help="worker processes per job (default: cpu count)")

    submit = sub.add_parser("submit", help="submit a sweep as a job")
    _add_endpoint_args(submit)
    submit.add_argument("--preset", default="figure1", choices=["figure1"])
    submit.add_argument("--ns", type=int, nargs="+", default=[1, 10])
    submit.add_argument("--trials", type=int, default=100)
    submit.add_argument("--distributions", nargs="+", default=None,
                        metavar="NAME")
    submit.add_argument("--engine", default="auto")
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--chunk-size", type=int, default=None)
    submit.add_argument("--workers", type=int, default=None,
                        help="worker processes (local mode only)")
    submit.add_argument("--sync", action="store_true",
                        help="block until the job is terminal")
    submit.add_argument("--json", action="store_true")

    for name, help_text in (("status", "one status document"),
                            ("watch", "poll status until terminal")):
        cmd = sub.add_parser(name, help=help_text)
        _add_endpoint_args(cmd)
        cmd.add_argument("job_id")
        cmd.add_argument("--json", action="store_true")
        if name == "watch":
            cmd.add_argument("--interval", type=float, default=0.5)
            cmd.add_argument("--timeout", type=float, default=None)

    result = sub.add_parser("result", help="fetch finished frames")
    _add_endpoint_args(result)
    result.add_argument("job_id")
    result.add_argument("--json", action="store_true")
    result.add_argument("--check-local", action="store_true",
                        help="recompute every cell in process and verify "
                             "the stored frames are bit-identical")

    cancel = sub.add_parser("cancel", help="cooperatively cancel a job")
    _add_endpoint_args(cancel)
    cancel.add_argument("job_id")
    cancel.add_argument("--reason", default=None)
    cancel.add_argument("--json", action="store_true")

    gc = sub.add_parser("gc", help="mark-and-sweep store retention")
    gc.add_argument("--store", required=True, metavar="DIR")
    gc.add_argument("--max-age", type=float, default=None, metavar="SECONDS",
                    help="only delete unreferenced objects older than this")
    gc.add_argument("--max-bytes", type=int, default=None,
                    help="evict oldest objects until the store fits")
    gc.add_argument("--dry-run", action="store_true")
    gc.add_argument("--json", action="store_true")
    return parser


# -- local (in-process) endpoint -------------------------------------------


class _LocalEndpoint:
    """The ``--store DIR`` lane: same verbs as ServeClient, no HTTP."""

    def __init__(self, store_dir: str, workers: Optional[int] = None) -> None:
        from repro.serve.store import ResultStore
        self.store = ResultStore(store_dir)
        self.workers = workers

    def submit(self, body: dict) -> dict:
        from repro.errors import JobCancelledError
        from repro.serve.executor import JobRunner
        from repro.serve.job import JobState, effective_state
        from repro.serve.server import job_from_submission
        job = job_from_submission(body)
        job.save(self.store)
        state = effective_state(JobState.load(self.store, job.job_id))
        if state != "done":
            try:
                JobRunner(self.store, workers=self.workers).run(job)
            except JobCancelledError:
                pass  # a terminal-but-deliberate outcome, not an error
        return {"job_id": job.job_id, "accepted": state != "done",
                "state": effective_state(
                    JobState.load(self.store, job.job_id))}

    def status(self, job_id: str) -> dict:
        from repro.serve.executor import job_status
        return job_status(self.store, job_id)

    def wait(self, job_id: str, interval: float = 0.5,
             timeout: Optional[float] = None) -> dict:
        # Local submission is synchronous, so the job is already terminal.
        return self.status(job_id)

    def watch(self, job_id: str, interval: float = 0.5,
              timeout: Optional[float] = None):
        yield self.status(job_id)

    def result_frames(self, job_id: str):
        from repro.serve.executor import load_result
        from repro.serve.job import SweepJob
        result = load_result(self.store, job_id)
        job = SweepJob.load(self.store, job_id)
        return [(cell.labels, result.frames[cell.index])
                for cell in job.cells]

    def verify(self, job_id: str) -> bool:
        from repro.serve.executor import load_result, verify_result
        return verify_result(load_result(self.store, job_id))

    def cancel(self, job_id: str, reason: Optional[str] = None) -> dict:
        from repro.serve.executor import request_cancel
        from repro.serve.job import SweepJob
        SweepJob.load(self.store, job_id)  # KeyError for unknown jobs
        return request_cancel(self.store, job_id, reason=reason)


def _endpoint(args):
    if args.store:
        return _LocalEndpoint(args.store, workers=getattr(args, "workers",
                                                          None))
    from repro.serve.client import ServeClient
    return ServeClient(args.url)


# -- subcommand bodies -----------------------------------------------------


def _submission_body(args) -> dict:
    preset = {"name": args.preset, "ns": args.ns, "trials": args.trials,
              "engine": args.engine}
    if args.distributions:
        preset["distributions"] = args.distributions
    body = {"preset": preset}
    if args.seed is not None:
        body["seed"] = args.seed
    if args.chunk_size is not None:
        body["chunk_size"] = args.chunk_size
    return body


def _progress_line(status: dict) -> str:
    parts = [f"[{status.get('state', '?')}]",
             f"chunks {status.get('chunks_done', 0)}"
             f"/{status.get('chunks_total', '?')}",
             f"trials {status.get('trials_done', 0)}"
             f"/{status.get('trials_total', '?')}",
             f"cells {status.get('cells_done', 0)}"
             f"/{status.get('cells_total', '?')}"]
    rate = status.get("trials_per_sec")
    if rate:
        parts.append(f"{rate:,.0f} trials/s")
    eta = status.get("eta_s")
    if eta is not None:
        parts.append(f"eta {eta:.1f}s")
    if status.get("error"):
        parts.append(f"error: {status['error']}")
    return "  ".join(parts)


def _cmd_submit(args) -> int:
    endpoint = _endpoint(args)
    receipt = endpoint.submit(_submission_body(args))
    if args.json:
        print(json.dumps(receipt))
    else:
        print(f"job {receipt['job_id']} "
              f"({'accepted' if receipt['accepted'] else 'already known'}, "
              f"state: {receipt['state']})")
    if args.sync and receipt["state"] not in ("done", "failed"):
        status = endpoint.wait(receipt["job_id"])
        if not args.json:
            print(_progress_line(status))
        return 0 if status.get("state") == "done" else 1
    return 0 if receipt["state"] != "failed" else 1


def _cmd_status(args) -> int:
    status = _endpoint(args).status(args.job_id)
    print(json.dumps(status, indent=2) if args.json
          else _progress_line(status))
    return 0 if status.get("state") != "failed" else 1


def _cmd_watch(args) -> int:
    endpoint = _endpoint(args)
    last = None
    status: dict = {}
    for status in endpoint.watch(args.job_id, interval=args.interval,
                                 timeout=args.timeout):
        line = _progress_line(status)
        if line != last:
            print(line, flush=True)
            last = line
    if args.json:
        print(json.dumps(status, indent=2))
    return 0 if status.get("state") == "done" else 1


def _cmd_cancel(args) -> int:
    status = _endpoint(args).cancel(args.job_id, reason=args.reason)
    if args.json:
        print(json.dumps(status, indent=2))
    else:
        print(f"job {args.job_id}: state {status.get('state')}")
    return 0


def _cmd_gc(args) -> int:
    from repro.serve.store import ResultStore
    report = ResultStore(args.store).gc(max_age_seconds=args.max_age,
                                        max_bytes=args.max_bytes,
                                        dry_run=args.dry_run)
    doc = report.to_dict()
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        verb = "would delete" if args.dry_run else "deleted"
        print(f"gc: examined {doc['examined']} objects "
              f"({doc['referenced']} referenced), {verb} {doc['deleted']} "
              f"({doc['bytes_freed']:,} bytes), kept {doc['kept_young']} "
              f"young + {doc['kept_leased']} leased, swept "
              f"{doc['locks_removed']} stale locks and "
              f"{doc['tmp_removed']} temp files")
    return 0


def _cmd_result(args) -> int:
    endpoint = _endpoint(args)
    cells = endpoint.result_frames(args.job_id)
    if args.json:
        doc = []
        for labels, frame in cells:
            doc.append({"labels": [list(pair) for pair in labels],
                        "trials": len(frame),
                        "decided": int(frame.decided.sum()),
                        "mean_total_ops": float(frame.column(
                            "total_ops").mean())})
        print(json.dumps(doc, indent=2))
    else:
        for labels, frame in cells:
            tag = " ".join(f"{k}={v}" for k, v in labels)
            print(f"{tag}: trials={len(frame)} "
                  f"decided={int(frame.decided.sum())} "
                  f"mean_total_ops={float(frame.column('total_ops').mean()):.2f}")
    if args.check_local:
        if args.url:
            print("--check-local needs --store (direct store access)",
                  file=sys.stderr)
            return 2
        ok = endpoint.verify(args.job_id)
        print("verify: stored frames are bit-identical to a fresh "
              "in-process run" if ok else
              "verify: MISMATCH between stored frames and in-process run")
        return 0 if ok else 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            from repro.serve.server import serve_forever
            return serve_forever(args.store, host=args.host, port=args.port,
                                 workers=args.workers)
        handler = {"submit": _cmd_submit, "status": _cmd_status,
                   "watch": _cmd_watch, "result": _cmd_result,
                   "cancel": _cmd_cancel, "gc": _cmd_gc}[args.command]
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
