"""``repro.serve``: sweeps as jobs — sharded, streaming, resumable.

The production lane over the same deterministic core as
:func:`~repro.api.sweep.run_sweep`:

* :mod:`repro.serve.job` — :class:`SweepJob` compiles a sweep + root
  seed into a persisted, content-addressed job document split into
  chunk-granular work units; :class:`JobState` tracks lifecycle
  (``queued``/``running``/``partial``/``done``/``failed``/
  ``cancelled``), progress, a bounded event ring, and per-chunk
  :class:`RetryState` ledgers.
* :mod:`repro.serve.store` — the content-addressed
  :class:`ResultStore`: chunk frames keyed by what they compute, atomic
  writes, cross-job dedup, time-bounded **leases** for concurrent
  coordinators, and mark-and-sweep retention (:meth:`ResultStore.gc`).
* :mod:`repro.serve.executor` — :class:`JobRunner` fans chunks across a
  process pool (or the self-managed :class:`WorkerPoolDispatcher`),
  renews chunk leases at half-life, requeues lost/timed-out chunks
  under persisted retry budgets with seeded-jitter backoff, survives
  coordinator death by resuming from the store, drains cooperatively on
  :func:`request_cancel`, and folds each finished chunk into streaming
  per-cell aggregates (mean/CI queryable mid-run, O(chunk) memory).
* :mod:`repro.serve.chaos` — the seeded fault-injection harness:
  :class:`~repro.serve.chaos.FaultPlan` /
  :func:`~repro.serve.chaos.run_with_chaos` drive every failure seam
  (worker kill, torn write, stale claim, frozen heartbeat, slow worker,
  coordinator crash) deterministically.
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — a stdlib HTTP
  job API (``python -m repro serve``) and its ``urllib`` client with
  bounded timeouts and retries.
* :mod:`repro.serve.cli` — ``submit`` / ``status`` / ``watch`` /
  ``result`` / ``cancel`` / ``gc`` subcommands.

The contract throughout: a job's frames are **bit-identical** to the
in-process ``run_sweep`` of the same sweep and seed — same SeedBlock
child identities, same cell-level engine resolution — no matter how the
work was chunked, pooled, killed, timed out, cancelled, or resumed.
"""

from repro.serve.job import (  # noqa: F401
    DEFAULT_CHUNK_SIZE,
    ChunkTask,
    JobCell,
    JobState,
    RetryState,
    SweepJob,
    effective_state,
)
from repro.serve.store import (  # noqa: F401
    DEFAULT_LEASE_SECONDS,
    GCReport,
    ResultStore,
    chunk_key,
    process_start_marker,
)
from repro.serve.executor import (  # noqa: F401
    Dispatcher,
    InlineDispatcher,
    JobFailedError,
    JobResult,
    JobRunner,
    PoolDispatcher,
    WorkerPoolDispatcher,
    job_status,
    load_result,
    request_cancel,
    verify_result,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_LEASE_SECONDS",
    "ChunkTask",
    "Dispatcher",
    "GCReport",
    "InlineDispatcher",
    "JobCell",
    "JobFailedError",
    "JobResult",
    "JobRunner",
    "JobState",
    "PoolDispatcher",
    "ResultStore",
    "RetryState",
    "SweepJob",
    "WorkerPoolDispatcher",
    "chunk_key",
    "effective_state",
    "job_status",
    "load_result",
    "process_start_marker",
    "request_cancel",
    "verify_result",
]
