"""``repro.serve``: sweeps as jobs — sharded, streaming, resumable.

The production lane over the same deterministic core as
:func:`~repro.api.sweep.run_sweep`:

* :mod:`repro.serve.job` — :class:`SweepJob` compiles a sweep + root
  seed into a persisted, content-addressed job document split into
  chunk-granular work units; :class:`JobState` tracks lifecycle
  (``queued``/``running``/``partial``/``done``/``failed``) and progress.
* :mod:`repro.serve.store` — the content-addressed
  :class:`ResultStore`: chunk frames keyed by what they compute, atomic
  writes, cross-job dedup, claim files for concurrent coordinators.
* :mod:`repro.serve.executor` — :class:`JobRunner` fans chunks across a
  process pool, survives worker death by requeuing, survives
  coordinator death by resuming from the store, and folds each finished
  chunk into streaming per-cell aggregates (mean/CI queryable mid-run,
  O(chunk) memory).
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — a stdlib HTTP
  job API (``python -m repro serve``) and its ``urllib`` client.
* :mod:`repro.serve.cli` — ``submit`` / ``status`` / ``watch`` /
  ``result`` subcommands.

The contract throughout: a job's frames are **bit-identical** to the
in-process ``run_sweep`` of the same sweep and seed — same SeedBlock
child identities, same cell-level engine resolution — no matter how the
work was chunked, pooled, killed, or resumed.
"""

from repro.serve.job import (  # noqa: F401
    DEFAULT_CHUNK_SIZE,
    ChunkTask,
    JobCell,
    JobState,
    SweepJob,
    effective_state,
)
from repro.serve.store import ResultStore, chunk_key  # noqa: F401
from repro.serve.executor import (  # noqa: F401
    Dispatcher,
    InlineDispatcher,
    JobFailedError,
    JobResult,
    JobRunner,
    PoolDispatcher,
    job_status,
    load_result,
    verify_result,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ChunkTask",
    "Dispatcher",
    "InlineDispatcher",
    "JobCell",
    "JobFailedError",
    "JobResult",
    "JobRunner",
    "JobState",
    "PoolDispatcher",
    "ResultStore",
    "SweepJob",
    "chunk_key",
    "effective_state",
    "job_status",
    "load_result",
    "verify_result",
]
