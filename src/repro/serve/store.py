"""Content-addressed, chunk-granular result store for sweep jobs.

The store generalizes the PR-3 per-cell sweep cache down to *chunk*
granularity: the unit of storage is one contiguous block of trials of
one cell, addressed purely by content —

    sha256 of (CACHE_CODE_VERSION, cell spec dict, resolved engine,
               root entropy, root spawn key, absolute child-seed offset,
               trial count)

— so any two jobs (or a job and a later resume of itself) that would
compute bit-identical trials share one object on disk.  Nothing in the
key names the job that produced the chunk: cross-job dedup is the
default, not a feature flag.

Durability discipline:

* **Atomic writes.**  Every object is written to a temp file in the same
  directory, flushed + fsynced, then ``os.replace``-d into place
  (:func:`atomic_write_bytes`).  A writer killed at any instant leaves
  either the old object, no object, or a stray ``*.tmp`` — never a torn
  object a concurrent reader could load.
* **Corruption = miss.**  :meth:`ResultStore.get` treats an unreadable
  object as absent; the chunk recomputes and the object is rewritten.
* **Claims.**  :meth:`ResultStore.claim` is an ``O_CREAT | O_EXCL`` lock
  file carrying the claimant pid, so two *concurrent* jobs wanting the
  same chunk elect exactly one computer; the loser waits for the object
  to appear (see the executor).  Claims held by dead processes are
  stale and can be broken.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
from typing import Dict, Iterable, Optional

from repro._atomicio import atomic_write_bytes, atomic_write_json  # noqa: F401
from repro.sim.frame import ResultFrame


def chunk_key(spec_dict: Dict, engine: Optional[str], entropy,
              spawn_key: Iterable[int], offset: int, count: int) -> str:
    """The content address of one chunk of trials.

    ``offset`` is the *absolute* child-seed index of the chunk's first
    trial under the root ``(entropy, spawn_key)`` — the same identity
    :class:`~repro._seedhash.SeedBlock` derives — and ``engine`` is the
    engine resolved for the whole cell (engine choice depends on the
    cell's trial count, and different engines draw different streams, so
    it is part of the content identity).
    """
    from repro.api.sweep import CACHE_CODE_VERSION

    record = {
        "code": CACHE_CODE_VERSION,
        "spec": spec_dict,
        "engine": engine,
        "entropy": str(entropy),
        "spawn_key": list(spawn_key),
        "offset": int(offset),
        "count": int(count),
    }
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultStore:
    """A directory of content-addressed result chunks plus claim locks.

    Layout::

        <root>/objects/<key[:2]>/<key>.npz   one ResultFrame payload each
        <root>/locks/<key>.lock              in-flight computation claims
        <root>/jobs/<job_id>/                job + state documents

    All writes are atomic; concurrent ``put`` calls for the same key are
    harmless (last rename wins, and every writer produced identical
    bytes by construction).
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(os.path.expanduser(root))

    # -- paths -------------------------------------------------------------

    def object_path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key}.npz")

    def lock_path(self, key: str) -> str:
        return os.path.join(self.root, "locks", f"{key}.lock")

    @property
    def jobs_dir(self) -> str:
        return os.path.join(self.root, "jobs")

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    # -- objects -----------------------------------------------------------

    def has(self, key: str) -> bool:
        return os.path.exists(self.object_path(key))

    def put(self, key: str, frame: ResultFrame) -> bool:
        """Store a chunk frame; returns False when already present (dedup)."""
        path = self.object_path(key)
        if os.path.exists(path):
            return False
        atomic_write_bytes(path, frame.to_npz_bytes())
        return True

    def get(self, key: str, spec=None) -> Optional[ResultFrame]:
        """Load a chunk frame, or ``None`` (missing/torn objects miss)."""
        blob = self.get_bytes(key)
        if blob is None:
            return None
        try:
            return ResultFrame.from_npz_bytes(blob, spec=spec)
        except Exception:
            return None

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The raw object bytes (the HTTP object endpoint's read path)."""
        path = self.object_path(key)
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def object_count(self) -> int:
        objects = os.path.join(self.root, "objects")
        total = 0
        for dirpath, _dirnames, filenames in os.walk(objects):
            total += sum(1 for name in filenames if name.endswith(".npz"))
        return total

    # -- claims ------------------------------------------------------------

    def claim(self, key: str) -> bool:
        """Try to claim ``key`` for computation (O_EXCL lock file).

        Returns True when this process now holds the claim.  A claim
        whose recorded pid is no longer alive is stale: it is broken and
        re-taken.  (Claims are an *optimization* — losing one only means
        waiting for the winner's object; correctness never depends on
        the lock because object writes are atomic and idempotent.)
        """
        path = self.lock_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = json.dumps({"pid": os.getpid()}).encode()
        for _ in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._claim_is_stale(path):
                    try:
                        os.unlink(path)
                    except FileNotFoundError:
                        pass
                    continue
                return False
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            return True
        return False

    def _claim_is_stale(self, path: str) -> bool:
        try:
            with open(path, "rb") as handle:
                pid = int(json.loads(handle.read() or b"{}").get("pid", -1))
        except (OSError, ValueError):
            return True  # unreadable/torn claim: break it
        if pid <= 0:
            return True
        try:
            os.kill(pid, 0)
        except OSError as exc:
            return exc.errno != errno.EPERM
        return False

    def claim_holder_alive(self, key: str) -> bool:
        """Whether ``key`` is claimed by a live process (besides us)."""
        path = self.lock_path(key)
        return os.path.exists(path) and not self._claim_is_stale(path)

    def release(self, key: str) -> None:
        try:
            os.unlink(self.lock_path(key))
        except FileNotFoundError:
            pass
