"""Content-addressed, chunk-granular result store for sweep jobs.

The store generalizes the PR-3 per-cell sweep cache down to *chunk*
granularity: the unit of storage is one contiguous block of trials of
one cell, addressed purely by content —

    sha256 of (CACHE_CODE_VERSION, cell spec dict, resolved engine,
               root entropy, root spawn key, absolute child-seed offset,
               trial count)

— so any two jobs (or a job and a later resume of itself) that would
compute bit-identical trials share one object on disk.  Nothing in the
key names the job that produced the chunk: cross-job dedup is the
default, not a feature flag.

Durability discipline:

* **Atomic writes.**  Every object is written to a temp file in the same
  directory, flushed + fsynced, then ``os.replace``-d into place
  (:func:`atomic_write_bytes`).  A writer killed at any instant leaves
  either the old object, no object, or a stray ``*.tmp`` — never a torn
  object a concurrent reader could load.
* **Corruption = miss.**  :meth:`ResultStore.get` treats an unreadable
  object as absent; the chunk recomputes and :meth:`ResultStore.put`
  *overwrites* an unreadable object under its final name (a torn file —
  from a non-atomic foreign writer, bit rot, or an injected chaos fault
  — must be repairable, never load, and never block the rewrite).
* **Leases.**  :meth:`ResultStore.claim` elects one computer per chunk
  via an ``O_CREAT | O_EXCL`` lock file carrying a *time-bounded lease*:
  ``{owner, token, deadline, pid, start}``.  A lease is breakable the
  moment it expires or its holder process is provably gone — where
  "gone" compares the recorded process *start marker*, not the bare
  pid, so a recycled pid can never squat a dead coordinator's claim.
  Holders renew their leases (heartbeat) with :meth:`ResultStore.renew`
  and release them by token, so a claim stolen after expiry cannot be
  un-done by its previous owner.  (Claims are an *optimization* —
  losing one only means waiting for the winner's object; correctness
  never depends on the lock because object writes are atomic and
  idempotent.)
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import secrets
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro._atomicio import atomic_write_bytes, atomic_write_json  # noqa: F401
from repro.sim.frame import ResultFrame

#: Default lease duration on chunk claims.  Long enough that a healthy
#: coordinator renewing at half-life never loses a lease to scheduling
#: jitter; short enough that a frozen or SIGKILLed coordinator's chunks
#: are re-electable within one human attention span.
DEFAULT_LEASE_SECONDS = 30.0


def process_start_marker(pid: int) -> Optional[str]:
    """A marker distinguishing this *incarnation* of ``pid``.

    On Linux this is the ``starttime`` field of ``/proc/<pid>/stat``
    (clock ticks since boot at process start): a recycled pid gets a new
    marker, so ``(pid, marker)`` identifies a process where a bare pid
    does not.  Returns ``None`` where unavailable (non-Linux, or the
    process is already gone) — callers must then fall back to the
    weaker pid-aliveness check.
    """
    try:
        with open(f"/proc/{int(pid)}/stat", "rb") as handle:
            stat = handle.read().decode("ascii", "replace")
        # comm (field 2) may contain spaces/parens; fields resume after
        # the *last* ')'.  starttime is overall field 22 -> index 19 of
        # the remainder.
        rest = stat[stat.rindex(")") + 2:].split()
        return rest[19]
    except (OSError, ValueError, IndexError):
        return None


def _pid_alive(pid: int) -> bool:
    if not pid or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except OSError as exc:
        return exc.errno == errno.EPERM
    return True


def chunk_key(spec_dict: Dict, engine: Optional[str], entropy,
              spawn_key: Iterable[int], offset: int, count: int) -> str:
    """The content address of one chunk of trials.

    ``offset`` is the *absolute* child-seed index of the chunk's first
    trial under the root ``(entropy, spawn_key)`` — the same identity
    :class:`~repro._seedhash.SeedBlock` derives — and ``engine`` is the
    engine resolved for the whole cell (engine choice depends on the
    cell's trial count, and different engines draw different streams, so
    it is part of the content identity).
    """
    from repro.api.sweep import CACHE_CODE_VERSION

    record = {
        "code": CACHE_CODE_VERSION,
        "spec": spec_dict,
        "engine": engine,
        "entropy": str(entropy),
        "spawn_key": list(spawn_key),
        "offset": int(offset),
        "count": int(count),
    }
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class GCReport:
    """What one mark-and-sweep pass examined and removed."""

    examined: int = 0
    referenced: int = 0
    deleted: int = 0
    bytes_freed: int = 0
    bytes_kept: int = 0
    kept_young: int = 0
    kept_leased: int = 0
    locks_removed: int = 0
    tmp_removed: int = 0
    dry_run: bool = False
    deleted_keys: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "examined": self.examined, "referenced": self.referenced,
            "deleted": self.deleted, "bytes_freed": self.bytes_freed,
            "bytes_kept": self.bytes_kept, "kept_young": self.kept_young,
            "kept_leased": self.kept_leased,
            "locks_removed": self.locks_removed,
            "tmp_removed": self.tmp_removed, "dry_run": self.dry_run,
        }


class ResultStore:
    """A directory of content-addressed result chunks plus lease locks.

    Layout::

        <root>/objects/<key[:2]>/<key>.npz   one ResultFrame payload each
        <root>/locks/<key>.lock              time-bounded chunk leases
        <root>/jobs/<job_id>/                job + state documents

    All writes are atomic; concurrent ``put`` calls for the same key are
    harmless (last rename wins, and every writer produced identical
    bytes by construction).
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(os.path.expanduser(root))

    # -- paths -------------------------------------------------------------

    def object_path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key}.npz")

    def lock_path(self, key: str) -> str:
        return os.path.join(self.root, "locks", f"{key}.lock")

    @property
    def jobs_dir(self) -> str:
        return os.path.join(self.root, "jobs")

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    # -- objects -----------------------------------------------------------

    def has(self, key: str) -> bool:
        return os.path.exists(self.object_path(key))

    def put(self, key: str, frame: ResultFrame) -> bool:
        """Store a chunk frame; returns False when already present (dedup).

        "Present" means *readable*: an existing-but-torn object under
        the final name (non-atomic foreign writer, bit rot, injected
        chaos fault) does not count and is overwritten — otherwise a
        single corrupt file would wedge its chunk forever, since every
        reader treats it as a miss but no writer could repair it.
        """
        path = self.object_path(key)
        if os.path.exists(path) and self.get(key) is not None:
            return False
        atomic_write_bytes(path, frame.to_npz_bytes())
        return True

    def get(self, key: str, spec=None) -> Optional[ResultFrame]:
        """Load a chunk frame, or ``None`` (missing/torn objects miss)."""
        blob = self.get_bytes(key)
        if blob is None:
            return None
        try:
            return ResultFrame.from_npz_bytes(blob, spec=spec)
        except Exception:
            return None

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The raw object bytes (unvalidated; see :meth:`get_valid_bytes`)."""
        path = self.object_path(key)
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def get_valid_bytes(self, key: str) -> Optional[bytes]:
        """Object bytes only if they parse as a frame (the HTTP read path).

        A torn object must surface as a *miss* to remote clients — never
        as bytes they would fail (or worse, silently mis-succeed) to
        decode.
        """
        blob = self.get_bytes(key)
        if blob is None:
            return None
        try:
            ResultFrame.from_npz_bytes(blob)
        except Exception:
            return None
        return blob

    def object_count(self) -> int:
        objects = os.path.join(self.root, "objects")
        total = 0
        for dirpath, _dirnames, filenames in os.walk(objects):
            total += sum(1 for name in filenames if name.endswith(".npz"))
        return total

    def object_keys(self) -> List[str]:
        objects = os.path.join(self.root, "objects")
        keys = []
        for dirpath, _dirnames, filenames in os.walk(objects):
            keys.extend(name[:-4] for name in filenames
                        if name.endswith(".npz"))
        return sorted(keys)

    # -- leases ------------------------------------------------------------

    def claim(self, key: str, owner: Optional[str] = None,
              lease_seconds: float = DEFAULT_LEASE_SECONDS
              ) -> Optional[str]:
        """Try to take a time-bounded lease on ``key``.

        Returns the lease *token* (renew/release with it) when this
        caller now holds the claim, ``None`` when a live lease belongs
        to someone else.  An existing lease is broken and re-taken when
        it has expired (``deadline`` passed) **or** its holder process
        is provably gone — the recorded ``(pid, start)`` pair no longer
        names a live process, so a recycled pid cannot keep a dead
        holder's claim alive.
        """
        path = self.lock_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        pid = os.getpid()
        token = secrets.token_hex(16)
        payload = json.dumps({
            "owner": owner or f"pid-{pid}",
            "token": token,
            "deadline": time.time() + float(lease_seconds),
            "pid": pid,
            "start": process_start_marker(pid),
        }).encode()
        for _ in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._lease_is_stale(path):
                    try:
                        os.unlink(path)
                    except FileNotFoundError:
                        pass
                    continue
                return None
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            return token
        return None

    def renew(self, key: str,  token: str,
              lease_seconds: float = DEFAULT_LEASE_SECONDS) -> bool:
        """Extend our lease's deadline (heartbeat).

        Returns False — without touching the file — when the lease is no
        longer ours (expired and re-elected, broken by a chaos fault, or
        simply gone): the caller has *lost* the chunk and must not
        assume exclusivity, though its eventual object write remains
        harmless (atomic, idempotent).
        """
        lease = self.lease_info(key)
        if lease is None or lease.get("token") != token:
            return False
        lease["deadline"] = time.time() + float(lease_seconds)
        atomic_write_json(self.lock_path(key), lease)
        return True

    def release(self, key: str, token: Optional[str] = None) -> None:
        """Drop a lease.  With ``token``, only if it is still ours."""
        if token is not None:
            lease = self.lease_info(key)
            if lease is not None and lease.get("token") != token:
                return
        try:
            os.unlink(self.lock_path(key))
        except FileNotFoundError:
            pass

    def lease_info(self, key: str) -> Optional[Dict]:
        try:
            with open(self.lock_path(key), "rb") as handle:
                lease = json.loads(handle.read() or b"{}")
        except (OSError, ValueError):
            return None
        return lease if isinstance(lease, dict) else None

    def _lease_is_stale(self, path: str) -> bool:
        try:
            with open(path, "rb") as handle:
                lease = json.loads(handle.read() or b"{}")
        except (OSError, ValueError):
            return True  # unreadable/torn lease: break it
        if not isinstance(lease, dict):
            return True
        deadline = lease.get("deadline")
        if not isinstance(deadline, (int, float)):
            return True  # legacy/foreign claim without a lease: break it
        if time.time() > deadline:
            return True
        pid = lease.get("pid")
        if not isinstance(pid, int) or pid <= 0:
            return True
        if not _pid_alive(pid):
            return True
        recorded = lease.get("start")
        if recorded is not None:
            current = process_start_marker(pid)
            if current is not None and current != recorded:
                return True  # the pid was recycled: the holder is dead
        return False

    def lease_live(self, key: str) -> bool:
        """Whether ``key`` is held by a live, unexpired lease."""
        path = self.lock_path(key)
        return os.path.exists(path) and not self._lease_is_stale(path)

    # kept as an alias: "is somebody (else) computing this chunk?"
    claim_holder_alive = lease_live

    # -- retention / GC ----------------------------------------------------

    def referenced_keys(self) -> set:
        """Every chunk key any stored job manifest references (the mark)."""
        from repro.serve.job import SweepJob

        marked: set = set()
        for job_id in SweepJob.list_ids(self):
            try:
                job = SweepJob.load(self, job_id)
            except Exception:
                continue  # unreadable manifest: keep its objects unmarked
            marked.update(task.key for task in job.chunks())
        return marked

    def gc(self, max_age_seconds: Optional[float] = None,
           max_bytes: Optional[int] = None,
           dry_run: bool = False) -> GCReport:
        """Mark-and-sweep retention over the object store.

        *Mark* walks every stored job manifest and collects the chunk
        keys it references; *sweep* deletes unreferenced objects that
        are older than ``max_age_seconds`` (``None`` = any age).  When
        ``max_bytes`` is set and the referenced objects still exceed
        it, the oldest referenced objects are evicted too (they are
        content-addressed: a future run recomputes them) — but an
        object under a **live lease** is never touched, whatever the
        policy says: somebody is computing against it right now.

        Also sweeps expired/stale lease files and orphaned ``*.tmp``
        droppings from killed writers.  ``dry_run`` reports without
        deleting.
        """
        now = time.time()
        report = GCReport(dry_run=dry_run)
        marked = self.referenced_keys()
        entries = []  # (mtime, size, key, path)
        for key in self.object_keys():
            path = self.object_path(key)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, key, path))
        report.examined = len(entries)
        report.referenced = sum(1 for _, _, key, _ in entries
                                if key in marked)

        def removable(key: str) -> bool:
            if self.lease_live(key):
                report.kept_leased += 1
                return False
            return True

        def remove(size: int, key: str, path: str) -> None:
            report.deleted += 1
            report.bytes_freed += size
            report.deleted_keys.append(key)
            if not dry_run:
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass

        survivors = []
        for mtime, size, key, path in sorted(entries):
            if key in marked:
                survivors.append((mtime, size, key, path))
                continue
            age = now - mtime
            if max_age_seconds is not None and age < max_age_seconds:
                report.kept_young += 1
                survivors.append((mtime, size, key, path))
                continue
            if not removable(key):
                survivors.append((mtime, size, key, path))
                continue
            remove(size, key, path)
        if max_bytes is not None:
            total = sum(size for _, size, _, _ in survivors)
            for mtime, size, key, path in list(survivors):
                if total <= max_bytes:
                    break
                if not removable(key):
                    continue
                remove(size, key, path)
                survivors.remove((mtime, size, key, path))
                total -= size
        report.bytes_kept = sum(size for _, size, _, _ in survivors)

        locks_dir = os.path.join(self.root, "locks")
        if os.path.isdir(locks_dir):
            for name in os.listdir(locks_dir):
                path = os.path.join(locks_dir, name)
                if name.endswith(".lock") and self._lease_is_stale(path):
                    report.locks_removed += 1
                    if not dry_run:
                        try:
                            os.unlink(path)
                        except FileNotFoundError:
                            pass
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".tmp"):
                    report.tmp_removed += 1
                    if not dry_run:
                        try:
                            os.unlink(os.path.join(dirpath, name))
                        except FileNotFoundError:
                            pass
        return report
